file(REMOVE_RECURSE
  "CMakeFiles/unit_tests.dir/cache_test.cc.o"
  "CMakeFiles/unit_tests.dir/cache_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/circuit_test.cc.o"
  "CMakeFiles/unit_tests.dir/circuit_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/mem_address_test.cc.o"
  "CMakeFiles/unit_tests.dir/mem_address_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/mem_bank_test.cc.o"
  "CMakeFiles/unit_tests.dir/mem_bank_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/mem_controller_test.cc.o"
  "CMakeFiles/unit_tests.dir/mem_controller_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/sim_test.cc.o"
  "CMakeFiles/unit_tests.dir/sim_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/util_test.cc.o"
  "CMakeFiles/unit_tests.dir/util_test.cc.o.d"
  "unit_tests"
  "unit_tests.pdb"
  "unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
