
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/unit_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/circuit_test.cc" "tests/CMakeFiles/unit_tests.dir/circuit_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/circuit_test.cc.o.d"
  "/root/repo/tests/mem_address_test.cc" "tests/CMakeFiles/unit_tests.dir/mem_address_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/mem_address_test.cc.o.d"
  "/root/repo/tests/mem_bank_test.cc" "tests/CMakeFiles/unit_tests.dir/mem_bank_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/mem_bank_test.cc.o.d"
  "/root/repo/tests/mem_controller_test.cc" "tests/CMakeFiles/unit_tests.dir/mem_controller_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/mem_controller_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/unit_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/unit_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/rcnvm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rcnvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rcnvm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcnvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
