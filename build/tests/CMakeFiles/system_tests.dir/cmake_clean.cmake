file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/cpu_test.cc.o"
  "CMakeFiles/system_tests.dir/cpu_test.cc.o.d"
  "CMakeFiles/system_tests.dir/database_test.cc.o"
  "CMakeFiles/system_tests.dir/database_test.cc.o.d"
  "CMakeFiles/system_tests.dir/energy_salp_test.cc.o"
  "CMakeFiles/system_tests.dir/energy_salp_test.cc.o.d"
  "CMakeFiles/system_tests.dir/hierarchy_test.cc.o"
  "CMakeFiles/system_tests.dir/hierarchy_test.cc.o.d"
  "CMakeFiles/system_tests.dir/imdb_test.cc.o"
  "CMakeFiles/system_tests.dir/imdb_test.cc.o.d"
  "CMakeFiles/system_tests.dir/plan_builder_test.cc.o"
  "CMakeFiles/system_tests.dir/plan_builder_test.cc.o.d"
  "CMakeFiles/system_tests.dir/trace_test.cc.o"
  "CMakeFiles/system_tests.dir/trace_test.cc.o.d"
  "CMakeFiles/system_tests.dir/workload_test.cc.o"
  "CMakeFiles/system_tests.dir/workload_test.cc.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
