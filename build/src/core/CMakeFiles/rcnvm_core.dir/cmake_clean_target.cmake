file(REMOVE_RECURSE
  "librcnvm_core.a"
)
