# Empty compiler generated dependencies file for rcnvm_core.
# This may be replaced when dependencies are built.
