file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_core.dir/experiment.cc.o"
  "CMakeFiles/rcnvm_core.dir/experiment.cc.o.d"
  "CMakeFiles/rcnvm_core.dir/presets.cc.o"
  "CMakeFiles/rcnvm_core.dir/presets.cc.o.d"
  "CMakeFiles/rcnvm_core.dir/system.cc.o"
  "CMakeFiles/rcnvm_core.dir/system.cc.o.d"
  "librcnvm_core.a"
  "librcnvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
