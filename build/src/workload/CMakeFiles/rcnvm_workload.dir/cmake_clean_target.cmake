file(REMOVE_RECURSE
  "librcnvm_workload.a"
)
