# Empty compiler generated dependencies file for rcnvm_workload.
# This may be replaced when dependencies are built.
