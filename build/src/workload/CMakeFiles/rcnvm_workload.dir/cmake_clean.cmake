file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_workload.dir/micro.cc.o"
  "CMakeFiles/rcnvm_workload.dir/micro.cc.o.d"
  "CMakeFiles/rcnvm_workload.dir/queries.cc.o"
  "CMakeFiles/rcnvm_workload.dir/queries.cc.o.d"
  "CMakeFiles/rcnvm_workload.dir/tables.cc.o"
  "CMakeFiles/rcnvm_workload.dir/tables.cc.o.d"
  "librcnvm_workload.a"
  "librcnvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
