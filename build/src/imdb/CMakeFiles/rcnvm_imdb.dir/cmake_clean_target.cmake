file(REMOVE_RECURSE
  "librcnvm_imdb.a"
)
