
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imdb/bin_packing.cc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/bin_packing.cc.o" "gcc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/bin_packing.cc.o.d"
  "/root/repo/src/imdb/database.cc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/database.cc.o" "gcc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/database.cc.o.d"
  "/root/repo/src/imdb/plan_builder.cc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/plan_builder.cc.o" "gcc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/plan_builder.cc.o.d"
  "/root/repo/src/imdb/schema.cc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/schema.cc.o" "gcc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/schema.cc.o.d"
  "/root/repo/src/imdb/table.cc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/table.cc.o" "gcc" "src/imdb/CMakeFiles/rcnvm_imdb.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcnvm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rcnvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rcnvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rcnvm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcnvm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
