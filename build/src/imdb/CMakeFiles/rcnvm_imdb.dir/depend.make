# Empty dependencies file for rcnvm_imdb.
# This may be replaced when dependencies are built.
