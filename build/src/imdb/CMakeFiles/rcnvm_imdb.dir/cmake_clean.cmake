file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_imdb.dir/bin_packing.cc.o"
  "CMakeFiles/rcnvm_imdb.dir/bin_packing.cc.o.d"
  "CMakeFiles/rcnvm_imdb.dir/database.cc.o"
  "CMakeFiles/rcnvm_imdb.dir/database.cc.o.d"
  "CMakeFiles/rcnvm_imdb.dir/plan_builder.cc.o"
  "CMakeFiles/rcnvm_imdb.dir/plan_builder.cc.o.d"
  "CMakeFiles/rcnvm_imdb.dir/schema.cc.o"
  "CMakeFiles/rcnvm_imdb.dir/schema.cc.o.d"
  "CMakeFiles/rcnvm_imdb.dir/table.cc.o"
  "CMakeFiles/rcnvm_imdb.dir/table.cc.o.d"
  "librcnvm_imdb.a"
  "librcnvm_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
