file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_trace.dir/trace_io.cc.o"
  "CMakeFiles/rcnvm_trace.dir/trace_io.cc.o.d"
  "librcnvm_trace.a"
  "librcnvm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
