# Empty dependencies file for rcnvm_trace.
# This may be replaced when dependencies are built.
