file(REMOVE_RECURSE
  "librcnvm_trace.a"
)
