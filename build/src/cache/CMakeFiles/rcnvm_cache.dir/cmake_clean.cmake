file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_cache.dir/cache.cc.o"
  "CMakeFiles/rcnvm_cache.dir/cache.cc.o.d"
  "CMakeFiles/rcnvm_cache.dir/hierarchy.cc.o"
  "CMakeFiles/rcnvm_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/rcnvm_cache.dir/synonym.cc.o"
  "CMakeFiles/rcnvm_cache.dir/synonym.cc.o.d"
  "librcnvm_cache.a"
  "librcnvm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
