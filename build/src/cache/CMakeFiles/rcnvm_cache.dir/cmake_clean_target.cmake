file(REMOVE_RECURSE
  "librcnvm_cache.a"
)
