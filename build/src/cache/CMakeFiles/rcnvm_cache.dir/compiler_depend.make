# Empty compiler generated dependencies file for rcnvm_cache.
# This may be replaced when dependencies are built.
