file(REMOVE_RECURSE
  "librcnvm_mem.a"
)
