# Empty dependencies file for rcnvm_mem.
# This may be replaced when dependencies are built.
