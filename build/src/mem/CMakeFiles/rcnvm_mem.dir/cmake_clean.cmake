file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_mem.dir/bank.cc.o"
  "CMakeFiles/rcnvm_mem.dir/bank.cc.o.d"
  "CMakeFiles/rcnvm_mem.dir/controller.cc.o"
  "CMakeFiles/rcnvm_mem.dir/controller.cc.o.d"
  "CMakeFiles/rcnvm_mem.dir/geometry.cc.o"
  "CMakeFiles/rcnvm_mem.dir/geometry.cc.o.d"
  "CMakeFiles/rcnvm_mem.dir/memory_system.cc.o"
  "CMakeFiles/rcnvm_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/rcnvm_mem.dir/timing.cc.o"
  "CMakeFiles/rcnvm_mem.dir/timing.cc.o.d"
  "librcnvm_mem.a"
  "librcnvm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
