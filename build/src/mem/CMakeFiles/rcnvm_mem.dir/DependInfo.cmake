
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bank.cc" "src/mem/CMakeFiles/rcnvm_mem.dir/bank.cc.o" "gcc" "src/mem/CMakeFiles/rcnvm_mem.dir/bank.cc.o.d"
  "/root/repo/src/mem/controller.cc" "src/mem/CMakeFiles/rcnvm_mem.dir/controller.cc.o" "gcc" "src/mem/CMakeFiles/rcnvm_mem.dir/controller.cc.o.d"
  "/root/repo/src/mem/geometry.cc" "src/mem/CMakeFiles/rcnvm_mem.dir/geometry.cc.o" "gcc" "src/mem/CMakeFiles/rcnvm_mem.dir/geometry.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/rcnvm_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/rcnvm_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/timing.cc" "src/mem/CMakeFiles/rcnvm_mem.dir/timing.cc.o" "gcc" "src/mem/CMakeFiles/rcnvm_mem.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcnvm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcnvm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
