# Empty dependencies file for rcnvm_cpu.
# This may be replaced when dependencies are built.
