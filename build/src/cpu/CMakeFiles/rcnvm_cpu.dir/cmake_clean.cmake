file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_cpu.dir/core.cc.o"
  "CMakeFiles/rcnvm_cpu.dir/core.cc.o.d"
  "CMakeFiles/rcnvm_cpu.dir/machine.cc.o"
  "CMakeFiles/rcnvm_cpu.dir/machine.cc.o.d"
  "librcnvm_cpu.a"
  "librcnvm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
