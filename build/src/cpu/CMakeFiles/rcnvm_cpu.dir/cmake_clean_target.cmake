file(REMOVE_RECURSE
  "librcnvm_cpu.a"
)
