# Empty dependencies file for rcnvm_circuit.
# This may be replaced when dependencies are built.
