file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_circuit.dir/area_model.cc.o"
  "CMakeFiles/rcnvm_circuit.dir/area_model.cc.o.d"
  "CMakeFiles/rcnvm_circuit.dir/latency_model.cc.o"
  "CMakeFiles/rcnvm_circuit.dir/latency_model.cc.o.d"
  "librcnvm_circuit.a"
  "librcnvm_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
