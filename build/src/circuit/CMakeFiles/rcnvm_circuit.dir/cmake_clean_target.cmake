file(REMOVE_RECURSE
  "librcnvm_circuit.a"
)
