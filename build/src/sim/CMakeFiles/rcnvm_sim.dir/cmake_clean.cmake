file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_sim.dir/event_queue.cc.o"
  "CMakeFiles/rcnvm_sim.dir/event_queue.cc.o.d"
  "librcnvm_sim.a"
  "librcnvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
