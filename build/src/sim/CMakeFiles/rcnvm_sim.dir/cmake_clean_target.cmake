file(REMOVE_RECURSE
  "librcnvm_sim.a"
)
