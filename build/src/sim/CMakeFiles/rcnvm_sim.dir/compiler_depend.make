# Empty compiler generated dependencies file for rcnvm_sim.
# This may be replaced when dependencies are built.
