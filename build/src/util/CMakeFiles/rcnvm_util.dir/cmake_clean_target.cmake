file(REMOVE_RECURSE
  "librcnvm_util.a"
)
