# Empty dependencies file for rcnvm_util.
# This may be replaced when dependencies are built.
