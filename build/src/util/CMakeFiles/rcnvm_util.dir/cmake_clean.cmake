file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_util.dir/logging.cc.o"
  "CMakeFiles/rcnvm_util.dir/logging.cc.o.d"
  "CMakeFiles/rcnvm_util.dir/random.cc.o"
  "CMakeFiles/rcnvm_util.dir/random.cc.o.d"
  "CMakeFiles/rcnvm_util.dir/stats.cc.o"
  "CMakeFiles/rcnvm_util.dir/stats.cc.o.d"
  "CMakeFiles/rcnvm_util.dir/table_printer.cc.o"
  "CMakeFiles/rcnvm_util.dir/table_printer.cc.o.d"
  "librcnvm_util.a"
  "librcnvm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
