# Empty compiler generated dependencies file for rcnvm_trace_tool.
# This may be replaced when dependencies are built.
