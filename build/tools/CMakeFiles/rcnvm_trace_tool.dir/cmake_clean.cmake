file(REMOVE_RECURSE
  "CMakeFiles/rcnvm_trace_tool.dir/rcnvm_trace.cc.o"
  "CMakeFiles/rcnvm_trace_tool.dir/rcnvm_trace.cc.o.d"
  "rcnvm_trace"
  "rcnvm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcnvm_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
