# Empty dependencies file for olxp_trading.
# This may be replaced when dependencies are built.
