
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/olxp_trading.cc" "examples/CMakeFiles/olxp_trading.dir/olxp_trading.cc.o" "gcc" "examples/CMakeFiles/olxp_trading.dir/olxp_trading.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcnvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rcnvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/imdb/CMakeFiles/rcnvm_imdb.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rcnvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rcnvm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rcnvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/rcnvm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcnvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
