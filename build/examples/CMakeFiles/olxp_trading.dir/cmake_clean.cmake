file(REMOVE_RECURSE
  "CMakeFiles/olxp_trading.dir/olxp_trading.cc.o"
  "CMakeFiles/olxp_trading.dir/olxp_trading.cc.o.d"
  "olxp_trading"
  "olxp_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olxp_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
