# Empty compiler generated dependencies file for group_caching_demo.
# This may be replaced when dependencies are built.
