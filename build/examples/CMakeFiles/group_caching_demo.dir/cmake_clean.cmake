file(REMOVE_RECURSE
  "CMakeFiles/group_caching_demo.dir/group_caching_demo.cc.o"
  "CMakeFiles/group_caching_demo.dir/group_caching_demo.cc.o.d"
  "group_caching_demo"
  "group_caching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_caching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
