# Empty compiler generated dependencies file for fig23_group_caching.
# This may be replaced when dependencies are built.
