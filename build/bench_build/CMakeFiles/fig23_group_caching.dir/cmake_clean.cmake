file(REMOVE_RECURSE
  "../bench/fig23_group_caching"
  "../bench/fig23_group_caching.pdb"
  "CMakeFiles/fig23_group_caching.dir/fig23_group_caching.cc.o"
  "CMakeFiles/fig23_group_caching.dir/fig23_group_caching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_group_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
