file(REMOVE_RECURSE
  "../bench/fig22_sensitivity"
  "../bench/fig22_sensitivity.pdb"
  "CMakeFiles/fig22_sensitivity.dir/fig22_sensitivity.cc.o"
  "CMakeFiles/fig22_sensitivity.dir/fig22_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
