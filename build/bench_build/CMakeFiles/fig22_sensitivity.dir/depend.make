# Empty dependencies file for fig22_sensitivity.
# This may be replaced when dependencies are built.
