# Empty dependencies file for fig05_latency_overhead.
# This may be replaced when dependencies are built.
