file(REMOVE_RECURSE
  "../bench/fig05_latency_overhead"
  "../bench/fig05_latency_overhead.pdb"
  "CMakeFiles/fig05_latency_overhead.dir/fig05_latency_overhead.cc.o"
  "CMakeFiles/fig05_latency_overhead.dir/fig05_latency_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_latency_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
