# Empty compiler generated dependencies file for fig17_micro.
# This may be replaced when dependencies are built.
