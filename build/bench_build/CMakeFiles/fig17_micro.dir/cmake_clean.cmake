file(REMOVE_RECURSE
  "../bench/fig17_micro"
  "../bench/fig17_micro.pdb"
  "CMakeFiles/fig17_micro.dir/fig17_micro.cc.o"
  "CMakeFiles/fig17_micro.dir/fig17_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
