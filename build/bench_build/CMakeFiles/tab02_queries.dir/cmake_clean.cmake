file(REMOVE_RECURSE
  "../bench/tab02_queries"
  "../bench/tab02_queries.pdb"
  "CMakeFiles/tab02_queries.dir/tab02_queries.cc.o"
  "CMakeFiles/tab02_queries.dir/tab02_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
