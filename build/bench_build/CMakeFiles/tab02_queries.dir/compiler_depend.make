# Empty compiler generated dependencies file for tab02_queries.
# This may be replaced when dependencies are built.
