file(REMOVE_RECURSE
  "../bench/fig20_buffer_miss"
  "../bench/fig20_buffer_miss.pdb"
  "CMakeFiles/fig20_buffer_miss.dir/fig20_buffer_miss.cc.o"
  "CMakeFiles/fig20_buffer_miss.dir/fig20_buffer_miss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_buffer_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
