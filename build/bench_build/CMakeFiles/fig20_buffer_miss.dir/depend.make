# Empty dependencies file for fig20_buffer_miss.
# This may be replaced when dependencies are built.
