# Empty dependencies file for simulator_throughput.
# This may be replaced when dependencies are built.
