file(REMOVE_RECURSE
  "../bench/simulator_throughput"
  "../bench/simulator_throughput.pdb"
  "CMakeFiles/simulator_throughput.dir/simulator_throughput.cc.o"
  "CMakeFiles/simulator_throughput.dir/simulator_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
