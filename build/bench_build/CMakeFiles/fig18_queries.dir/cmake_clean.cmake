file(REMOVE_RECURSE
  "../bench/fig18_queries"
  "../bench/fig18_queries.pdb"
  "CMakeFiles/fig18_queries.dir/fig18_queries.cc.o"
  "CMakeFiles/fig18_queries.dir/fig18_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
