# Empty compiler generated dependencies file for fig18_queries.
# This may be replaced when dependencies are built.
