# Empty dependencies file for fig21_coherence.
# This may be replaced when dependencies are built.
