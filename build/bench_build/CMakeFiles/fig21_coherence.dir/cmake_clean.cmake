file(REMOVE_RECURSE
  "../bench/fig21_coherence"
  "../bench/fig21_coherence.pdb"
  "CMakeFiles/fig21_coherence.dir/fig21_coherence.cc.o"
  "CMakeFiles/fig21_coherence.dir/fig21_coherence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
