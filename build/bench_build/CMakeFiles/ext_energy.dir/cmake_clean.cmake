file(REMOVE_RECURSE
  "../bench/ext_energy"
  "../bench/ext_energy.pdb"
  "CMakeFiles/ext_energy.dir/ext_energy.cc.o"
  "CMakeFiles/ext_energy.dir/ext_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
