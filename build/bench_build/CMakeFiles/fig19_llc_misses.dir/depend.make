# Empty dependencies file for fig19_llc_misses.
# This may be replaced when dependencies are built.
