file(REMOVE_RECURSE
  "../bench/fig19_llc_misses"
  "../bench/fig19_llc_misses.pdb"
  "CMakeFiles/fig19_llc_misses.dir/fig19_llc_misses.cc.o"
  "CMakeFiles/fig19_llc_misses.dir/fig19_llc_misses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_llc_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
