file(REMOVE_RECURSE
  "../bench/tab01_config"
  "../bench/tab01_config.pdb"
  "CMakeFiles/tab01_config.dir/tab01_config.cc.o"
  "CMakeFiles/tab01_config.dir/tab01_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
