# Empty compiler generated dependencies file for tab01_config.
# This may be replaced when dependencies are built.
