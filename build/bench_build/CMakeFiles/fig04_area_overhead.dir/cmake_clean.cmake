file(REMOVE_RECURSE
  "../bench/fig04_area_overhead"
  "../bench/fig04_area_overhead.pdb"
  "CMakeFiles/fig04_area_overhead.dir/fig04_area_overhead.cc.o"
  "CMakeFiles/fig04_area_overhead.dir/fig04_area_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
