# Empty dependencies file for fig04_area_overhead.
# This may be replaced when dependencies are built.
