file(REMOVE_RECURSE
  "../bench/ext_salp"
  "../bench/ext_salp.pdb"
  "CMakeFiles/ext_salp.dir/ext_salp.cc.o"
  "CMakeFiles/ext_salp.dir/ext_salp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_salp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
