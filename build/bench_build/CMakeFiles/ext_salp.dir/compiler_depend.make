# Empty compiler generated dependencies file for ext_salp.
# This may be replaced when dependencies are built.
