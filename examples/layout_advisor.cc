/**
 * @file
 * Layout advisor: given a table schema and a query mix, measure the
 * row-oriented and column-oriented intra-chunk layouts on RC-NVM
 * (Sec. 4.5.2) and report which one the database should pick,
 * together with the bin-packing placement statistics.
 *
 * This mirrors the paper's observation that the column-oriented
 * layout usually wins for OLXP because most statements combine
 * column scans with narrow row fetches.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"

using namespace rcnvm;

namespace {

/** Fraction of statements that scan columns vs fetch whole rows. */
struct QueryMix {
    const char *name;
    double scanShare; // remainder are tuple fetches
};

double
runMix(const imdb::Table &table, imdb::ChunkLayout layout,
       double scan_share)
{
    const auto kind = mem::DeviceKind::RcNvm;
    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const auto tid = db.addTable(&table, layout);

    const std::uint64_t n = table.tuples();
    const unsigned tw = table.schema().tupleWords();
    const unsigned cores = 4;
    const auto scan_fields = static_cast<unsigned>(
        scan_share * 8.0); // of 8 "statements", how many scan

    std::vector<cpu::AccessPlan> plans;
    for (unsigned c = 0; c < cores; ++c) {
        imdb::PlanBuilder builder(db);
        const std::uint64_t lo = c * n / cores;
        const std::uint64_t hi = (c + 1) * n / cores;
        // Scan statements: one field each.
        for (unsigned s = 0; s < scan_fields; ++s)
            builder.scanFieldWord(tid, s % tw, lo, hi, 1);
        // Point statements: fetch whole tuples scattered over the
        // partition.
        std::vector<std::uint64_t> points;
        for (std::uint64_t t = lo; t < hi;
             t += 64 / (8 - scan_fields + 1))
            points.push_back(t);
        builder.fetchTuples(tid, points, 0, tw, 2);
        plans.push_back(builder.take());
    }
    return core::runPlans(core::table1Machine(kind), plans)
        .megacycles();
}

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const imdb::Table table("inventory",
                            imdb::Schema::uniform(16), 65536, 99);

    const QueryMix mixes[] = {
        {"OLTP-heavy (1/8 scans)", 1.0 / 8.0},
        {"balanced OLXP (4/8 scans)", 4.0 / 8.0},
        {"OLAP-heavy (7/8 scans)", 7.0 / 8.0},
    };

    util::TablePrinter t(
        "Layout advisor: 16-field table on RC-NVM (Mcycles)");
    t.addRow({"query mix", "row layout", "column layout",
              "recommendation"});
    for (const QueryMix &mix : mixes) {
        const double row = runMix(
            table, imdb::ChunkLayout::RowOriented, mix.scanShare);
        const double col =
            runMix(table, imdb::ChunkLayout::ColumnOriented,
                   mix.scanShare);
        t.addRow({mix.name, util::TablePrinter::num(row),
                  util::TablePrinter::num(col),
                  col <= row ? "column-oriented"
                             : "row-oriented"});
    }
    t.print(std::cout);

    // Placement statistics for the recommended layout.
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    imdb::Database packed(mem::DeviceKind::RcNvm, map,
                          imdb::PlacementPolicy::Packed);
    packed.addTable(&table, imdb::ChunkLayout::ColumnOriented);
    std::cout << "\npacked placement: " << packed.binsUsed()
              << " subarrays at "
              << util::TablePrinter::num(
                     100.0 * packed.packingUtilization(), 1)
              << "% utilisation (Fujita-style shelf packing with "
                 "rotation).\n";
    return 0;
}
