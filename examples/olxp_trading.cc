/**
 * @file
 * OLXP trading example: the paper's motivating scenario - a
 * high-frequency trading book that must absorb latency-critical
 * transactional updates (OLTP) while analysts run aggregate scans
 * over the same live data (OLAP), with no second copy.
 *
 * The example builds an `orders` table, compiles a mixed workload
 * with the PlanBuilder API directly (rather than the canned Table-2
 * queries), and compares RC-NVM against DRAM and RRAM:
 *
 *   - trade ingestion:   row-oriented writes of whole orders
 *   - price updates:     scattered single-field writes
 *   - exposure report:   aggregate scan over qty x price columns
 *   - risk sweep:        predicate scan + matched-tuple fetch
 */

#include <iostream>

#include "core/presets.hh"
#include "core/experiment.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

using namespace rcnvm;

namespace {

/** The trading book schema: 8 fixed 8-byte fields per order. */
imdb::Schema
orderSchema()
{
    return imdb::Schema({{"order_id", 8},
                         {"instrument", 8},
                         {"side", 8},
                         {"qty", 8},
                         {"price", 8},
                         {"timestamp", 8},
                         {"trader", 8},
                         {"status", 8}});
}

struct Scenario {
    const char *name;
    double mcycles[3]; // RC-NVM, RRAM, DRAM
};

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    constexpr std::uint64_t orders = 65536;
    constexpr unsigned cores = 4;

    const imdb::Table book("orders", orderSchema(), orders, 2026);
    util::Random rng(7);

    const mem::DeviceKind devices[] = {mem::DeviceKind::RcNvm,
                                       mem::DeviceKind::Rram,
                                       mem::DeviceKind::Dram};

    Scenario scenarios[] = {
        {"trade ingestion (row writes)", {}},
        {"price updates (field writes)", {}},
        {"exposure report (2-col scan)", {}},
        {"risk sweep (scan + fetch)", {}},
    };

    for (int d = 0; d < 3; ++d) {
        const mem::DeviceKind kind = devices[d];
        mem::AddressMap map(mem::geometryFor(kind));
        imdb::Database db(kind, map);
        // OLTP-heavy books still benefit from the column layout on
        // RC-NVM because whole-order reads stay row-oriented there.
        const auto tid = db.addTable(
            &book, db.columnCapable()
                       ? imdb::ChunkLayout::ColumnOriented
                       : imdb::ChunkLayout::RowOriented);

        // Host-side decisions shared across devices.
        util::Random local(7);
        std::vector<std::uint64_t> updated, matched;
        for (std::uint64_t t = 0; t < orders; ++t) {
            if (local.nextBool(0.05))
                updated.push_back(t);
            if (book.value(4, t) > 90000) // price > threshold
                matched.push_back(t);
        }

        // Scenario 0: append a burst of new orders (whole tuples).
        {
            std::vector<cpu::AccessPlan> plans;
            for (unsigned c = 0; c < cores; ++c) {
                imdb::PlanBuilder builder(db);
                std::vector<imdb::LineRef> lines;
                for (std::uint64_t t = c * 2048;
                     t < (c + 1) * 2048; ++t) {
                    db.tupleLines(tid, t, 0, 8, lines);
                }
                builder.emitLines(lines, /*write=*/true, 1);
                plans.push_back(builder.take());
            }
            scenarios[0].mcycles[d] =
                core::runPlans(core::table1Machine(kind), plans)
                    .megacycles();
        }

        // Scenario 1: scattered price updates.
        {
            std::vector<cpu::AccessPlan> plans;
            for (unsigned c = 0; c < cores; ++c) {
                imdb::PlanBuilder builder(db);
                std::vector<std::uint64_t> mine;
                for (const auto t : updated) {
                    if (t % cores == c)
                        mine.push_back(t);
                }
                builder.storeFieldWord(tid, mine, 4); // price
                plans.push_back(builder.take());
            }
            scenarios[1].mcycles[d] =
                core::runPlans(core::table1Machine(kind), plans)
                    .megacycles();
        }

        // Scenario 2: exposure = SUM(qty * price) over all orders.
        {
            std::vector<cpu::AccessPlan> plans;
            for (unsigned c = 0; c < cores; ++c) {
                imdb::PlanBuilder builder(db);
                const std::uint64_t lo = c * orders / cores;
                const std::uint64_t hi = (c + 1) * orders / cores;
                builder.scanFieldWord(tid, 3, lo, hi, 1); // qty
                builder.scanFieldWord(tid, 4, lo, hi, 2); // price
                plans.push_back(builder.take());
            }
            scenarios[2].mcycles[d] =
                core::runPlans(core::table1Machine(kind), plans)
                    .megacycles();
        }

        // Scenario 3: risk sweep - find expensive orders, fetch
        // instrument + trader of the matches.
        {
            std::vector<cpu::AccessPlan> plans;
            for (unsigned c = 0; c < cores; ++c) {
                imdb::PlanBuilder builder(db);
                const std::uint64_t lo = c * orders / cores;
                const std::uint64_t hi = (c + 1) * orders / cores;
                builder.scanFieldWord(tid, 4, lo, hi, 1);
                std::vector<std::uint64_t> mine;
                for (const auto t : matched) {
                    if (t >= lo && t < hi)
                        mine.push_back(t);
                }
                builder.fetchTuples(tid, mine, 1, 2, 2);
                builder.fetchTuples(tid, mine, 6, 7, 2);
                plans.push_back(builder.take());
            }
            scenarios[3].mcycles[d] =
                core::runPlans(core::table1Machine(kind), plans)
                    .megacycles();
        }
    }

    util::TablePrinter t(
        "OLXP trading book: mixed workload (Mcycles)");
    t.addRow({"scenario", "RC-NVM", "RRAM", "DRAM",
              "vs DRAM"});
    for (const Scenario &s : scenarios) {
        t.addRow({s.name, util::TablePrinter::num(s.mcycles[0]),
                  util::TablePrinter::num(s.mcycles[1]),
                  util::TablePrinter::num(s.mcycles[2]),
                  util::TablePrinter::num(s.mcycles[2] /
                                              s.mcycles[0],
                                          2) +
                      "x"});
    }
    t.print(std::cout);
    std::cout << "\nOne copy of the book serves both sides: the "
                 "transactional scenarios stay competitive while "
                 "the analytic scans exploit column access.\n";
    return 0;
}
