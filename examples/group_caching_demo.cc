/**
 * @file
 * Group caching walkthrough (Sec. 5): a wide VARCHAR-like field
 * spans several physical columns, and reading it in strict tuple
 * order ping-pongs the column buffer. The demo shows the three
 * plans side by side:
 *
 *   1. naive ordered reads (column-buffer thrash),
 *   2. group caching: prefetch K lines per column into the pinned
 *      LLC, consume from cache, unpin,
 *   3. the row-oriented fallback plan for comparison.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);

    // A directory table whose email field spans four 8-byte words
    // (the paper's Figure-14 wide-field example).
    const imdb::Table person(
        "person",
        imdb::Schema({{"id", 8}, {"email", 32}, {"dept", 8},
                      {"salary", 8}}),
        65536, 4242);

    const auto kind = mem::DeviceKind::RcNvm;
    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const auto tid =
        db.addTable(&person, imdb::ChunkLayout::ColumnOriented);

    const std::vector<unsigned> email_words = {1, 2, 3, 4};
    const std::uint64_t n = person.tuples();
    const unsigned cores = 4;

    const auto run = [&](unsigned group_lines) {
        std::vector<cpu::AccessPlan> plans;
        for (unsigned c = 0; c < cores; ++c) {
            imdb::PlanBuilder builder(db);
            const std::uint64_t lo =
                util::alignDown(c * n / cores, 8);
            const std::uint64_t hi =
                util::alignDown((c + 1) * n / cores, 8);
            builder.orderedMultiColumnScan(tid, email_words, lo, hi,
                                           group_lines, 2);
            plans.push_back(builder.take());
        }
        return core::runPlans(core::table1Machine(kind), plans);
    };

    util::TablePrinter t(
        "Group caching demo: SELECT email FROM person (in order)");
    t.addRow({"plan", "Mcycles", "column-buffer conflicts",
              "pin operations"});
    for (const unsigned g : {0u, 16u, 64u, 128u}) {
        const auto r = run(g);
        t.addRow({g == 0 ? "naive ordered reads"
                         : "group caching, " + std::to_string(g) +
                               " lines/column",
                  util::TablePrinter::num(r.megacycles()),
                  util::TablePrinter::num(
                      r.stats.get("mem.bufferConflicts"), 0),
                  util::TablePrinter::num(
                      r.stats.get("cache.pinOps"), 0)});
    }
    t.print(std::cout);

    std::cout
        << "\nThe prefetch phase streams each column segment into "
           "the pinned LLC (cprefetch + pin), the consumption "
           "phase reads the wide field in tuple order from cache, "
           "and double buffering overlaps the next batch's "
           "prefetch with the current batch's consumption.\n";
    return 0;
}
