/**
 * @file
 * Quickstart: build the benchmark database on RC-NVM and on DRAM,
 * run an OLAP aggregation (Q6) and an OLTP select (Q2) on both, and
 * print the headline comparison.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/system.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);

    // A smaller database keeps the quickstart snappy.
    core::RcNvmSystem::Options options;
    options.tuples = 16384;

    options.device = mem::DeviceKind::RcNvm;
    core::RcNvmSystem rcnvm_sys(options);

    options.device = mem::DeviceKind::Dram;
    core::RcNvmSystem dram_sys(options);

    std::cout << "RC-NVM placement: " << rcnvm_sys.binsUsed()
              << " subarrays, "
              << util::TablePrinter::num(
                     100.0 * rcnvm_sys.packingUtilization(), 1)
              << "% packing utilisation\n\n";

    util::TablePrinter table("Quickstart: RC-NVM vs DRAM (Mcycles)");
    table.addRow({"query", "RC-NVM", "DRAM", "speedup"});
    for (const auto id : {workload::QueryId::Q2,
                          workload::QueryId::Q6}) {
        const auto &spec = workload::querySpec(id);
        const auto rc = rcnvm_sys.runQuery(id);
        const auto dram = dram_sys.runQuery(id);
        table.addRow({spec.name,
                      util::TablePrinter::num(rc.megacycles()),
                      util::TablePrinter::num(dram.megacycles()),
                      util::TablePrinter::num(dram.megacycles() /
                                              rc.megacycles()) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "\nSQL of Q6: " << workload::querySpec(
                     workload::QueryId::Q6).sql << "\n";
    return 0;
}
