/**
 * @file
 * Tests for the FR-FCFS channel controller and the MemorySystem
 * facade: scheduling order, starvation control, statistics, and
 * per-device capability enforcement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace rcnvm::mem {
namespace {

struct Fixture {
    sim::EventQueue eq;
    AddressMap map{Geometry::rcNvm()};
    TimingParams timing = TimingParams::rcNvm();
};

MemRequest
makeReq(const AddressMap &map, unsigned bank, unsigned subarray,
        unsigned row, unsigned col, Orientation o,
        std::function<void(Tick)> cb)
{
    DecodedAddr d;
    d.bank = bank;
    d.subarray = subarray;
    d.row = row;
    d.col = col;
    MemRequest req;
    req.addr = map.encode(d, o);
    req.orient = o;
    req.onComplete = std::move(cb);
    return req;
}

TEST(Controller, CompletesASingleRequest)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    Tick done = 0;
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done = t; }));
    f.eq.run();
    EXPECT_EQ(done,
              f.timing.cyc(f.timing.tRCD + f.timing.tCAS +
                           f.timing.tBURST));
    EXPECT_EQ(ctrl.stats().reads.value(), 1u);
    EXPECT_EQ(ctrl.stats().bufferMisses.value(), 1u);
}

TEST(Controller, FrFcfsPrefersBufferHit)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    std::vector<int> order;
    // Open row 5 with a first request.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(0); }));
    f.eq.run();
    // The first request issues immediately and occupies the bank;
    // while it is busy an older conflicting request and a younger
    // row hit queue up. FR-FCFS serves the hit first.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                         [&](Tick) { order.push_back(1); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick) { order.push_back(2); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 16, Orientation::Row,
                         [&](Tick) { order.push_back(3); }));
    f.eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 3); // hit bypassed the older conflict
    EXPECT_EQ(order[3], 2);
    EXPECT_GE(ctrl.stats().bufferHits.value(), 2u);
}

TEST(Controller, StarvationCapBoundsBypassing)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    // Open row 5.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    // One starving conflict plus a long stream of row hits that
    // arrive while the bank is busy.
    Tick conflict_done = 0;
    Tick last_hit_done = 0;
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick t) { conflict_done = t; }));
    for (unsigned i = 0; i < 64; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, 5, i * 8,
                             Orientation::Row,
                             [&](Tick t) { last_hit_done = t; }));
    }
    f.eq.run();
    // The conflict must not wait for all 64 hits.
    EXPECT_LT(conflict_done, last_hit_done);
}

TEST(Controller, TracksOrientationSwitches)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 3, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 3, Orientation::Column,
                         [](Tick) {}));
    f.eq.run();
    EXPECT_EQ(ctrl.stats().orientationSwitches.value(), 1u);
    EXPECT_EQ(ctrl.stats().colAccesses.value(), 1u);
    EXPECT_EQ(ctrl.stats().rowAccesses.value(), 1u);
}

TEST(Controller, IndependentBanksOverlapCommands)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    Tick done_a = 0, done_b = 0;
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done_a = t; }));
    ctrl.enqueue(makeReq(f.map, 1, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done_b = t; }));
    f.eq.run();
    // Bank commands overlap; only the bursts serialise on the bus.
    const Tick serial = 2 * f.timing.cyc(f.timing.tRCD +
                                         f.timing.tCAS +
                                         f.timing.tBURST);
    EXPECT_LT(std::max(done_a, done_b), serial);
    EXPECT_EQ(std::max(done_a, done_b) - std::min(done_a, done_b),
              f.timing.cyc(f.timing.tBURST));
}

TEST(Controller, QueueWaitSampled)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    for (unsigned i = 0; i < 4; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, i, 0, Orientation::Row,
                             [](Tick) {}));
    }
    f.eq.run();
    EXPECT_EQ(ctrl.stats().queueWaitTicks.count(), 4u);
    EXPECT_GT(ctrl.stats().queueWaitTicks.max(), 0.0);
}

TEST(Controller, CanAcceptReflectsCapacity)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq, 2);
    EXPECT_TRUE(ctrl.canAccept());
    ctrl.enqueue(makeReq(f.map, 0, 0, 0, 0, Orientation::Row,
                         [](Tick) {}));
    ctrl.enqueue(makeReq(f.map, 0, 0, 1, 0, Orientation::Row,
                         [](Tick) {}));
    // Depending on immediate issue, occupancy may already be lower;
    // after run everything drains.
    f.eq.run();
    EXPECT_TRUE(ctrl.canAccept());
    EXPECT_EQ(ctrl.queued(), 0u);
}

TEST(Controller, ResetClearsStatsAndState)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    ctrl.reset();
    EXPECT_EQ(ctrl.stats().reads.value(), 0u);
    EXPECT_EQ(ctrl.queued(), 0u);
}

TEST(MemorySystemTest, GeometryPresetsPerKind)
{
    EXPECT_EQ(geometryFor(DeviceKind::Dram).colsPerSubarray, 256u);
    EXPECT_EQ(geometryFor(DeviceKind::GsDram).colsPerSubarray, 256u);
    EXPECT_EQ(geometryFor(DeviceKind::Rram).colsPerSubarray, 1024u);
    EXPECT_EQ(geometryFor(DeviceKind::RcNvm).colsPerSubarray, 1024u);
}

TEST(MemorySystemTest, RoutesAndAggregatesStats)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    unsigned completions = 0;
    for (unsigned ch = 0; ch < 2; ++ch) {
        DecodedAddr d;
        d.channel = ch;
        d.row = 7;
        MemRequest req;
        req.addr = mem.map().encode(d, Orientation::Row);
        req.onComplete = [&](Tick) { ++completions; };
        mem.issue(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completions, 2u);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.requests"), 2.0);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.reads"), 2.0);
}

TEST(MemorySystemTest, BufferMissRateComputed)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    DecodedAddr d;
    d.row = 3;
    for (int i = 0; i < 4; ++i) {
        d.col = static_cast<unsigned>(8 * i);
        MemRequest req;
        req.addr = mem.map().encode(d, Orientation::Row);
        mem.issue(std::move(req));
        eq.run();
    }
    // 1 miss + 3 hits -> 25% miss rate.
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.bufferMissRate"), 0.25);
}

TEST(MemorySystemDeathTest, ColumnAccessRejectedOnDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::Dram, eq);
    MemRequest req;
    req.orient = Orientation::Column;
    EXPECT_DEATH(mem.issue(std::move(req)),
                 "no column access support");
}

TEST(MemorySystemDeathTest, GatherRejectedOnPlainDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::Dram, eq);
    MemRequest req;
    req.gathered = true;
    EXPECT_DEATH(mem.issue(std::move(req)), "gathered request");
}

TEST(MemorySystemTest, GatherAcceptedOnGsDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::GsDram, eq);
    MemRequest req;
    req.gathered = true;
    bool done = false;
    req.onComplete = [&](Tick) { done = true; };
    mem.issue(std::move(req));
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.gathered"), 1.0);
}

} // namespace
} // namespace rcnvm::mem
