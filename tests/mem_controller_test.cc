/**
 * @file
 * Tests for the FR-FCFS channel controller and the MemorySystem
 * facade: scheduling order, starvation control, statistics, and
 * per-device capability enforcement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace rcnvm::mem {
namespace {

struct Fixture {
    sim::EventQueue eq;
    AddressMap map{Geometry::rcNvm()};
    TimingParams timing = TimingParams::rcNvm();
};

MemRequest
makeReq(const AddressMap &map, unsigned bank, unsigned subarray,
        unsigned row, unsigned col, Orientation o,
        std::function<void(Tick)> cb)
{
    DecodedAddr d;
    d.bank = bank;
    d.subarray = subarray;
    d.row = row;
    d.col = col;
    MemRequest req;
    req.addr = map.encode(d, o);
    req.orient = o;
    req.onComplete = std::move(cb);
    return req;
}

TEST(Controller, CompletesASingleRequest)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    Tick done{0};
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done = t; }));
    f.eq.run();
    EXPECT_EQ(done,
              f.timing.cyc(f.timing.tRCD + f.timing.tCAS +
                           f.timing.tBURST));
    EXPECT_EQ(ctrl.stats().reads.value(), 1u);
    EXPECT_EQ(ctrl.stats().bufferMisses.value(), 1u);
}

TEST(Controller, FrFcfsPrefersBufferHit)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    std::vector<int> order;
    // Open row 5 with a first request.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(0); }));
    f.eq.run();
    // The first request issues immediately and occupies the bank;
    // while it is busy an older conflicting request and a younger
    // row hit queue up. FR-FCFS serves the hit first.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                         [&](Tick) { order.push_back(1); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick) { order.push_back(2); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 16, Orientation::Row,
                         [&](Tick) { order.push_back(3); }));
    f.eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 3); // hit bypassed the older conflict
    EXPECT_EQ(order[3], 2);
    EXPECT_GE(ctrl.stats().bufferHits.value(), 2u);
}

TEST(Controller, StarvationCapBoundsBypassing)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    // Open row 5.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    // One starving conflict plus a long stream of row hits that
    // arrive while the bank is busy.
    Tick conflict_done{0};
    Tick last_hit_done{0};
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick t) { conflict_done = t; }));
    for (unsigned i = 0; i < 64; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, 5, i * 8,
                             Orientation::Row,
                             [&](Tick t) { last_hit_done = t; }));
    }
    f.eq.run();
    // The conflict must not wait for all 64 hits.
    EXPECT_LT(conflict_done, last_hit_done);
}

TEST(Controller, GatheredTransferOccupiesTwoBusSlots)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    // A plain read holds the bus for one burst slot.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    const Tick slot = f.timing.cyc(f.timing.tBURST);
    EXPECT_EQ(ctrl.stats().busBusyTicks.value(), slot.value());
    // A gathered line's shuffled-column transfer costs two slots.
    MemRequest req = makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                             [](Tick) {});
    req.gathered = true;
    ctrl.enqueue(std::move(req));
    f.eq.run();
    EXPECT_EQ(ctrl.stats().busBusyTicks.value(), (slot * 3u).value());
    EXPECT_EQ(ctrl.stats().gathered.value(), 1u);
}

TEST(Controller, StarvationCountsNonHitBypasses)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    std::vector<int> order;
    // Bank 0 starts serving row 5 at t=0; the head below arrives
    // while the bank is busy and is not ready for a while.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(-2); }));
    // The head: a bank-0 conflict, globally oldest from here on.
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick) { order.push_back(-1); }));
    // Younger misses in idle banks become bus-ready while the head
    // still waits for its bank; each issue bypasses the head and
    // must count toward the starvation cap exactly like buffer-hit
    // bypasses do.
    for (unsigned i = 0; i < 2; ++i) {
        ctrl.enqueue(makeReq(f.map, 2 + i, 0, 11 + i, 0,
                             Orientation::Row,
                             [&, i](Tick) {
                                 order.push_back(static_cast<int>(i));
                             }));
    }
    // A long stream of row-5 buffer hits in the head's own bank:
    // FR-FCFS prefers them over the conflicting head on every tied
    // slot, so only the cap ends the bypassing.
    for (unsigned i = 0; i < 64; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8 * (1 + i),
                             Orientation::Row,
                             [&, i](Tick) {
                                 order.push_back(100 +
                                                 static_cast<int>(i));
                             }));
    }
    f.eq.run();
    ASSERT_EQ(order.size(), 68u);
    const auto it = std::find(order.begin(), order.end(), -1);
    ASSERT_NE(it, order.end());
    const auto idx = it - order.begin();
    // The head may be bypassed at most starvationCap (16) times in
    // total -- misses and hits combined -- so it completes no later
    // than position 17 (the row-5 access plus 16 bypasses). If the
    // two inter-bank misses were not counted, sixteen hits would
    // bypass on top of them and push the head past that bound.
    EXPECT_GE(idx, 10);
    EXPECT_LE(idx, 17);
}

TEST(Controller, WakeupsAreCoalesced)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    // A burst of conflicting same-bank requests: none after the
    // first is ready at enqueue time, so each needs a future wakeup,
    // but re-arming an identical-or-later wakeup must be elided and
    // superseded wakeups must not fire.
    unsigned completions = 0;
    for (unsigned i = 0; i < 8; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, i, 0, Orientation::Row,
                             [&](Tick) { ++completions; }));
    }
    f.eq.run();
    EXPECT_EQ(completions, 8u);
    // Each request needs at most one wakeup; coalescing must not
    // let stale generations run on top of that. The exact count is
    // deterministic: seven (the first request issues at enqueue).
    EXPECT_LE(ctrl.stats().wakeups.value(), 8u);
    EXPECT_EQ(ctrl.stats().wakeups.value(), 7u);
}

TEST(Controller, DeterministicTraceRegression)
{
    // Drives a fixed pseudo-random mix through one controller and
    // pins the exact completion ticks via a checksum. Guards the
    // scheduler rewrite: any change to per-request timing outcomes
    // (issue order, bus slots, buffer management) changes the hash.
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
    std::uint64_t hash = 1469598103934665603ull; // FNV-1a offset
    unsigned completions = 0;
    auto fold = [&hash](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            hash ^= (v >> (8 * b)) & 0xff;
            hash *= 1099511628211ull; // FNV-1a prime
        }
    };
    for (unsigned i = 0; i < 96; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t r = lcg >> 33;
        const unsigned bank = r % 8;
        const unsigned row = (r >> 3) % 16;
        const unsigned col = ((r >> 7) % 32) * 8;
        const Orientation o = (r >> 12) % 4 == 0
                                  ? Orientation::Column
                                  : Orientation::Row;
        MemRequest req = makeReq(
            f.map, bank, 0, row, col, o, [&, i](Tick t) {
                ++completions;
                fold((std::uint64_t{i} << 48) ^
                     t.value());
            });
        req.isWrite = (r >> 14) % 4 == 0;
        req.gathered = (r >> 16) % 8 == 0;
        ctrl.enqueue(std::move(req));
        // Interleave arrival with service so queues stay partially
        // full and the scheduler reorders across banks.
        if (i % 6 == 5)
            f.eq.runUntil(f.eq.now() + f.timing.cyc(f.timing.tBURST));
    }
    f.eq.run();
    EXPECT_EQ(completions, 96u);
    // Golden values recorded from the post-bugfix scheduler. A
    // mismatch means per-request timing outcomes changed.
    EXPECT_EQ(hash, 4240260166787096171ull);
    EXPECT_EQ(f.eq.now(), Tick{1402500});
    EXPECT_EQ(ctrl.stats().bufferHits.value(), 3u);
}

TEST(Controller, FcfsPolicyServesArrivalOrder)
{
    // The same hit-bypass scenario FrFcfsPrefersBufferHit pins, on
    // a first-come-first-served controller: the younger row hit must
    // NOT bypass the older conflict, proving the pluggable policy
    // actually changes the schedule.
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq, 32, false, 0,
                           SchedPolicyKind::Fcfs);
    EXPECT_STREQ(ctrl.policy().name(), "fcfs");
    std::vector<int> order;
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(0); }));
    f.eq.run();
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                         [&](Tick) { order.push_back(1); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                         [&](Tick) { order.push_back(2); }));
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 16, Orientation::Row,
                         [&](Tick) { order.push_back(3); }));
    f.eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Controller, ReadPriorityServesOltpReadsFirst)
{
    // The FrFcfsPrefersBufferHit scenario with one twist: the older
    // conflicting request carries the OLTP-class priority flag.
    // Plain FR-FCFS lets the younger open-row hits bypass it; the
    // read-priority policy serves the flagged read the moment the
    // bank frees, ahead of every unflagged hit.
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq, 32, false, 0,
                           SchedPolicyKind::ReadPriority);
    EXPECT_STREQ(ctrl.policy().name(), "readpri");
    std::vector<int> order;
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(0); }));
    f.eq.run();
    // This hit issues immediately and occupies the bank; the flagged
    // conflict and a younger plain hit queue up behind it.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                         [&](Tick) { order.push_back(1); }));
    MemRequest pri = makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                             [&](Tick) { order.push_back(2); });
    pri.priority = true;
    ctrl.enqueue(std::move(pri));
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 16, Orientation::Row,
                         [&](Tick) { order.push_back(3); }));
    f.eq.run();
    ASSERT_EQ(order.size(), 4u);
    // FR-FCFS would serve the younger hit (3) before the conflict
    // (2); the flagged read goes first.
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 3);
}

TEST(Controller, ReadPriorityDoesNotPromoteWrites)
{
    // Only latency-class *reads* ride the upper tier: a write
    // carrying the flag (which real issuers never produce, but the
    // policy must not depend on that) competes in the lower tier,
    // where a younger open-row read hit still bypasses it.
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq, 32, false, 0,
                           SchedPolicyKind::ReadPriority);
    std::vector<int> order;
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick) { order.push_back(0); }));
    f.eq.run();
    // Occupy the bank with a hit, then queue the flagged write and a
    // younger plain hit: the hit must still bypass the write.
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 8, Orientation::Row,
                         [&](Tick) { order.push_back(1); }));
    MemRequest w = makeReq(f.map, 0, 0, 9, 0, Orientation::Row,
                           [&](Tick) { order.push_back(2); });
    w.isWrite = true;
    w.priority = true;
    ctrl.enqueue(std::move(w));
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 16, Orientation::Row,
                         [&](Tick) { order.push_back(3); }));
    f.eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[2], 3); // the hit bypassed the flagged write
    EXPECT_EQ(order[3], 2);
}

TEST(Controller, SchedPolicyParsesNames)
{
    SchedPolicyKind kind;
    EXPECT_TRUE(parseSchedPolicy("frfcfs", kind));
    EXPECT_EQ(kind, SchedPolicyKind::FrFcfs);
    EXPECT_TRUE(parseSchedPolicy("fr-fcfs", kind));
    EXPECT_EQ(kind, SchedPolicyKind::FrFcfs);
    EXPECT_TRUE(parseSchedPolicy("fcfs", kind));
    EXPECT_EQ(kind, SchedPolicyKind::Fcfs);
    EXPECT_TRUE(parseSchedPolicy("readpri", kind));
    EXPECT_EQ(kind, SchedPolicyKind::ReadPriority);
    EXPECT_TRUE(parseSchedPolicy("read-priority", kind));
    EXPECT_EQ(kind, SchedPolicyKind::ReadPriority);
    EXPECT_FALSE(parseSchedPolicy("lifo", kind));
    EXPECT_STREQ(toString(SchedPolicyKind::FrFcfs), "frfcfs");
    EXPECT_STREQ(toString(SchedPolicyKind::Fcfs), "fcfs");
    EXPECT_STREQ(toString(SchedPolicyKind::ReadPriority), "readpri");
}

TEST(Controller, TracksOrientationSwitches)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 3, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 3, Orientation::Column,
                         [](Tick) {}));
    f.eq.run();
    EXPECT_EQ(ctrl.stats().orientationSwitches.value(), 1u);
    EXPECT_EQ(ctrl.stats().colAccesses.value(), 1u);
    EXPECT_EQ(ctrl.stats().rowAccesses.value(), 1u);
}

TEST(Controller, IndependentBanksOverlapCommands)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    Tick done_a{0}, done_b{0};
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done_a = t; }));
    ctrl.enqueue(makeReq(f.map, 1, 0, 5, 0, Orientation::Row,
                         [&](Tick t) { done_b = t; }));
    f.eq.run();
    // Bank commands overlap; only the bursts serialise on the bus.
    const Tick serial = 2 * f.timing.cyc(f.timing.tRCD +
                                         f.timing.tCAS +
                                         f.timing.tBURST);
    EXPECT_LT(std::max(done_a, done_b), serial);
    EXPECT_EQ(std::max(done_a, done_b) - std::min(done_a, done_b),
              f.timing.cyc(f.timing.tBURST));
}

TEST(Controller, QueueWaitSampled)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    for (unsigned i = 0; i < 4; ++i) {
        ctrl.enqueue(makeReq(f.map, 0, 0, i, 0, Orientation::Row,
                             [](Tick) {}));
    }
    f.eq.run();
    EXPECT_EQ(ctrl.stats().queueWaitTicks.count(), 4u);
    EXPECT_GT(ctrl.stats().queueWaitTicks.max(), 0.0);
}

TEST(Controller, CanAcceptReflectsCapacity)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq, 2);
    EXPECT_TRUE(ctrl.canAccept());
    ctrl.enqueue(makeReq(f.map, 0, 0, 0, 0, Orientation::Row,
                         [](Tick) {}));
    ctrl.enqueue(makeReq(f.map, 0, 0, 1, 0, Orientation::Row,
                         [](Tick) {}));
    // Depending on immediate issue, occupancy may already be lower;
    // after run everything drains.
    f.eq.run();
    EXPECT_TRUE(ctrl.canAccept());
    EXPECT_EQ(ctrl.queued(), 0u);
}

TEST(Controller, ResetClearsStatsAndState)
{
    Fixture f;
    ChannelController ctrl(f.map, f.timing, f.eq);
    ctrl.enqueue(makeReq(f.map, 0, 0, 5, 0, Orientation::Row,
                         [](Tick) {}));
    f.eq.run();
    ctrl.reset();
    EXPECT_EQ(ctrl.stats().reads.value(), 0u);
    EXPECT_EQ(ctrl.queued(), 0u);
}

TEST(MemorySystemTest, GeometryPresetsPerKind)
{
    EXPECT_EQ(geometryFor(DeviceKind::Dram).colsPerSubarray, 256u);
    EXPECT_EQ(geometryFor(DeviceKind::GsDram).colsPerSubarray, 256u);
    EXPECT_EQ(geometryFor(DeviceKind::Rram).colsPerSubarray, 1024u);
    EXPECT_EQ(geometryFor(DeviceKind::RcNvm).colsPerSubarray, 1024u);
}

TEST(MemorySystemTest, RoutesAndAggregatesStats)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    unsigned completions = 0;
    for (unsigned ch = 0; ch < 2; ++ch) {
        DecodedAddr d;
        d.channel = ch;
        d.row = 7;
        MemRequest req;
        req.addr = mem.map().encode(d, Orientation::Row);
        req.onComplete = [&](Tick) { ++completions; };
        mem.issue(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completions, 2u);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.requests"), 2.0);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.reads"), 2.0);
}

TEST(MemorySystemTest, BusUtilizationExported)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    const TimingParams t = TimingParams::rcNvm();
    DecodedAddr d;
    d.row = 7;
    MemRequest req;
    req.addr = mem.map().encode(d, Orientation::Row);
    Tick done{0};
    req.onComplete = [&](Tick t) { done = t; };
    mem.issue(std::move(req));
    eq.run();
    ASSERT_GT(done, Tick{0});
    // One read holds channel 0's bus for one burst slot; the stats
    // window spans eq.now() on each of the two channels.
    const double busy = static_cast<double>(t.cyc(t.tBURST).value());
    const double elapsed = 2.0 * static_cast<double>(eq.now().value());
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.busBusyTicks"), busy);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.busUtilization"),
                     busy / elapsed);
    EXPECT_GT(mem.stats().get("mem.busUtilization"), 0.0);
}

TEST(MemorySystemTest, BufferMissRateComputed)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    DecodedAddr d;
    d.row = 3;
    for (int i = 0; i < 4; ++i) {
        d.col = static_cast<unsigned>(8 * i);
        MemRequest req;
        req.addr = mem.map().encode(d, Orientation::Row);
        mem.issue(std::move(req));
        eq.run();
    }
    // 1 miss + 3 hits -> 25% miss rate.
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.bufferMissRate"), 0.25);
}

TEST(MemorySystemDeathTest, ColumnAccessRejectedOnDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::Dram, eq);
    MemRequest req;
    req.orient = Orientation::Column;
    EXPECT_DEATH(mem.issue(std::move(req)),
                 "no column access support");
}

TEST(MemorySystemDeathTest, GatherRejectedOnPlainDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::Dram, eq);
    MemRequest req;
    req.gathered = true;
    EXPECT_DEATH(mem.issue(std::move(req)), "gathered request");
}

TEST(MemorySystemTest, GatherAcceptedOnGsDram)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::GsDram, eq);
    MemRequest req;
    req.gathered = true;
    bool done = false;
    req.onComplete = [&](Tick) { done = true; };
    mem.issue(std::move(req));
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.gathered"), 1.0);
}

} // namespace
} // namespace rcnvm::mem
