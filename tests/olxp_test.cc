/**
 * @file
 * Tests for the OLXP service layer: generators, scheduling onto
 * freed cores, admission control, per-class latency accounting, and
 * end-to-end determinism of a service run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "olxp/service.hh"
#include "util/stats_io.hh"
#include "workload/tables.hh"

namespace rcnvm::olxp {
namespace {

constexpr std::uint64_t kTuples = 4096;
constexpr std::uint64_t kSeed = 99;

/** One placed database shared by every test (placement is pure).
 *  The AddressMaps are static too: the placed Database keeps a
 *  pointer to its map for address encoding at plan-build time. */
const workload::PlacedDatabase &
placedDb(mem::DeviceKind kind = mem::DeviceKind::RcNvm)
{
    static const workload::TableSet tables =
        workload::TableSet::standard(kTuples, 256, kSeed);
    static const workload::QueryWorkload workload(tables);
    static const mem::AddressMap rcnvm_map(
        mem::geometryFor(mem::DeviceKind::RcNvm));
    static const mem::AddressMap dram_map(
        mem::geometryFor(mem::DeviceKind::Dram));
    static const workload::PlacedDatabase pd =
        workload.place(mem::DeviceKind::RcNvm, rcnvm_map);
    static const workload::PlacedDatabase pd_dram =
        workload.place(mem::DeviceKind::Dram, dram_map);
    return kind == mem::DeviceKind::Dram ? pd_dram : pd;
}

cpu::MachineConfig
serviceMachine(mem::DeviceKind kind = mem::DeviceKind::RcNvm)
{
    cpu::MachineConfig config;
    config.device = kind;
    config.seed = kSeed;
    return config;
}

ServiceConfig
smallService()
{
    ServiceConfig cfg;
    cfg.oltpInterArrival = Tick{20000};
    cfg.oltpUpdateFraction = 0.25;
    cfg.olapStreams = 1;
    cfg.olapTuplesPerScan = 256;
    cfg.olapFields = 2;
    cfg.horizon = Tick{2000000};
    cfg.runQueueCapacity = 16;
    return cfg;
}

TEST(GeneratorTest, OltpGapsAreExponentialAndPositive)
{
    OltpGenerator gen(placedDb(), Tick{1000}, 0.5, kSeed);
    double sum = 0;
    for (unsigned i = 0; i < 4096; ++i) {
        const Tick gap = gen.nextGap();
        EXPECT_GE(gap, Tick{1});
        sum += static_cast<double>(gap.value());
    }
    // The empirical mean of 4k draws sits near the configured mean.
    EXPECT_NEAR(sum / 4096.0, 1000.0, 100.0);
}

TEST(GeneratorTest, OltpRequestsTargetExistingTuples)
{
    OltpGenerator gen(placedDb(), Tick{1000}, 0.5, kSeed);
    for (unsigned i = 0; i < 32; ++i) {
        const Request r = gen.make(Tick{i});
        EXPECT_EQ(r.cls, RequestClass::Oltp);
        EXPECT_EQ(r.arrival, Tick{i});
        EXPECT_FALSE(r.plan.empty());
    }
}

TEST(GeneratorTest, OlapScansWalkTheTableRoundRobin)
{
    OlapGenerator gen(placedDb(), 256, 1, kSeed);
    // 4096 tuples / 256 per scan = 16 scans per pass; the 17th wraps
    // to the start and must still compile a non-empty plan.
    for (unsigned i = 0; i < 17; ++i) {
        const Request r = gen.make(Tick{0});
        EXPECT_EQ(r.cls, RequestClass::Olap);
        EXPECT_FALSE(r.plan.empty());
    }
}

TEST(GeneratorTest, SameSeedSameRequestSequence)
{
    OltpGenerator a(placedDb(), Tick{1000}, 0.5, kSeed);
    OltpGenerator b(placedDb(), Tick{1000}, 0.5, kSeed);
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(a.nextGap(), b.nextGap());
        const Request ra = a.make(Tick{0});
        const Request rb = b.make(Tick{0});
        ASSERT_EQ(ra.plan.size(), rb.plan.size());
    }
}

TEST(SchedulerTest, SubmitDispatchesOntoIdleCoresThenQueues)
{
    cpu::Machine machine(serviceMachine());
    ServiceConfig cfg = smallService();
    cfg.runQueueCapacity = 2;
    QueryScheduler sched(machine, placedDb(), cfg);
    OltpGenerator gen(placedDb(), Tick{1000}, 0.0, kSeed);

    // First four requests land directly on the four idle cores.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(sched.submit(gen.make(Tick{0})));
    EXPECT_EQ(sched.inFlight(), 4u);
    EXPECT_EQ(sched.queueDepth(), 0u);

    // The next two park in the bounded run queue.
    EXPECT_TRUE(sched.submit(gen.make(Tick{0})));
    EXPECT_TRUE(sched.submit(gen.make(Tick{0})));
    EXPECT_EQ(sched.queueDepth(), 2u);

    // The queue is full: admission control rejects and counts.
    EXPECT_FALSE(sched.submit(gen.make(Tick{0})));
    EXPECT_FALSE(sched.submit(gen.make(Tick{0})));
    EXPECT_EQ(sched.rejected(), 2u);
    EXPECT_EQ(sched.queueDepth(), 2u);
}

TEST(SchedulerTest, QueuedRequestsRunWhenCoresFree)
{
    cpu::Machine machine(serviceMachine());
    ServiceConfig cfg = smallService();
    QueryScheduler sched(machine, placedDb(), cfg);
    OltpGenerator gen(placedDb(), Tick{1000}, 0.0, kSeed);

    for (unsigned i = 0; i < 6; ++i)
        EXPECT_TRUE(sched.submit(gen.make(Tick{0})));
    EXPECT_EQ(sched.inFlight(), 4u);
    EXPECT_EQ(sched.queueDepth(), 2u);

    // Draining the event queue completes the in-flight requests,
    // and each completion pulls the next queued request in.
    machine.serve();
    EXPECT_EQ(sched.inFlight(), 0u);
    EXPECT_EQ(sched.queueDepth(), 0u);
    EXPECT_EQ(sched.completed(RequestClass::Oltp), 6u);
    EXPECT_EQ(sched.queuePeak(), 2u);
}

TEST(SchedulerTest, LatencyHistogramCountsMatchCompletions)
{
    cpu::Machine machine(serviceMachine());
    QueryScheduler sched(machine, placedDb(), smallService());
    const ServiceResult r = sched.run();

    EXPECT_GT(r.oltpCompleted, 0u);
    EXPECT_GT(r.olapCompleted, 0u);
    EXPECT_EQ(sched.latencyHistogram(RequestClass::Oltp).count(),
              r.oltpCompleted);
    EXPECT_EQ(sched.latencyHistogram(RequestClass::Olap).count(),
              r.olapCompleted);
    // Every generated request either completed or was rejected.
    EXPECT_EQ(r.oltpGenerated, r.oltpCompleted + r.oltpRejected);
    EXPECT_EQ(r.olapGenerated, r.olapCompleted);
    EXPECT_EQ(r.olapRejected, 0u);
    // Percentiles are monotone and non-zero once samples exist.
    EXPECT_GT(r.oltpP50, 0.0);
    EXPECT_LE(r.oltpP50, r.oltpP95);
    EXPECT_LE(r.oltpP95, r.oltpP99);
}

TEST(SchedulerTest, ServiceStatsLandInTheMachineSnapshot)
{
    cpu::Machine machine(serviceMachine());
    QueryScheduler sched(machine, placedDb(), smallService());
    const ServiceResult r = sched.run();

    const util::StatsMap &s = r.run.stats;
    EXPECT_EQ(s.get("olxp.oltpCompleted"),
              static_cast<double>(r.oltpCompleted));
    EXPECT_EQ(s.get("olxp.olapCompleted"),
              static_cast<double>(r.olapCompleted));
    EXPECT_EQ(s.get("olxp.oltpRejected"),
              static_cast<double>(r.oltpRejected));
    EXPECT_EQ(s.get("olxp.oltpLatencyP99"), r.oltpP99);
    EXPECT_EQ(s.get("olxp.olapLatencyP99"), r.olapP99);
    EXPECT_GE(s.get("olxp.queuePeak"), 0.0);
    // The histogram flattens into bucket entries with a total.
    EXPECT_EQ(s.get("olxp.oltpLatency.samples"),
              static_cast<double>(r.oltpCompleted));
}

TEST(SchedulerTest, OverloadRejectsButNeverDropsOlap)
{
    cpu::Machine machine(serviceMachine());
    ServiceConfig cfg = smallService();
    cfg.oltpInterArrival = Tick{200}; // ~100x over capacity
    cfg.runQueueCapacity = 4;
    QueryScheduler sched(machine, placedDb(), cfg);
    const ServiceResult r = sched.run();

    EXPECT_GT(r.oltpRejected, 0u);
    EXPECT_EQ(r.olapRejected, 0u);
    EXPECT_EQ(r.olapGenerated, r.olapCompleted);
    // The run queue bound held outright: closed-loop resubmissions
    // go through admission and park when the queue is full, they do
    // not bypass the bound.
    EXPECT_LE(sched.queuePeak(), cfg.runQueueCapacity);
    // Under this overload the bound actually bit: some resubmissions
    // were denied admission (parked, retried later) — and every one
    // of them still completed, per the olapGenerated check above.
    EXPECT_GT(r.olapResubmitDenied, 0u);
    EXPECT_EQ(sched.resubmitDenied(), r.olapResubmitDenied);
}

TEST(SchedulerTest, HorizonStopsTheOpenLoop)
{
    cpu::Machine machine(serviceMachine());
    ServiceConfig cfg = smallService();
    QueryScheduler sched(machine, placedDb(), cfg);
    const ServiceResult r = sched.run();

    // The offered load stops at the horizon, so the generated count
    // stays near horizon / interArrival (Poisson, not unbounded).
    const double expected = static_cast<double>(cfg.horizon.value()) /
                            static_cast<double>(cfg.oltpInterArrival.value());
    EXPECT_GT(static_cast<double>(r.oltpGenerated), expected * 0.5);
    EXPECT_LT(static_cast<double>(r.oltpGenerated), expected * 1.5);
    // And the machine drained past the horizon.
    EXPECT_GE(r.run.ticks, Tick{0});
    EXPECT_EQ(sched.inFlight(), 0u);
}

TEST(SchedulerTest, SameSeedServiceRunsAreByteIdentical)
{
    const auto runOnce = [] {
        cpu::Machine machine(serviceMachine());
        QueryScheduler sched(machine, placedDb(), smallService());
        const ServiceResult r = sched.run();
        std::ostringstream os;
        util::writeStatsJson(os, r.run.stats, "svc", r.run.ticks);
        return os.str();
    };
    const std::string a = runOnce();
    const std::string b = runOnce();
    EXPECT_EQ(a, b);
}

TEST(SchedulerTest, DifferentSeedsProduceDifferentTraffic)
{
    const auto runWithSeed = [](std::uint64_t seed) {
        cpu::Machine machine(serviceMachine());
        ServiceConfig cfg = smallService();
        cfg.seed = seed;
        QueryScheduler sched(machine, placedDb(), cfg);
        return sched.run();
    };
    const ServiceResult a = runWithSeed(1);
    const ServiceResult b = runWithSeed(2);
    // Arrival processes differ, so the run lengths practically
    // cannot coincide tick for tick.
    EXPECT_NE(a.run.ticks, b.run.ticks);
}

TEST(SchedulerTest, DevicesShareTheTrafficShape)
{
    // The same service config must run on a row-only device: OLTP
    // plans are row-oriented everywhere, and scan plans compile to
    // the device's supported orientation.
    cpu::Machine machine(
        serviceMachine(mem::DeviceKind::Dram));
    QueryScheduler sched(machine,
                         placedDb(mem::DeviceKind::Dram),
                         smallService());
    const ServiceResult r = sched.run();
    EXPECT_GT(r.oltpCompleted, 0u);
    EXPECT_GT(r.olapCompleted, 0u);
}

TEST(SchedulerDeathTest, StartOnBusyCoreIsFatal)
{
    cpu::Machine machine(serviceMachine());
    OltpGenerator gen(placedDb(), Tick{1000}, 0.0, kSeed);
    const Request a = gen.make(Tick{0});
    const Request b = gen.make(Tick{0});
    machine.startOnCore(0, a.plan, [](Tick) {});
    EXPECT_EXIT(machine.startOnCore(0, b.plan, [](Tick) {}),
                ::testing::ExitedWithCode(1), "busy");
}

} // namespace
} // namespace rcnvm::olxp
