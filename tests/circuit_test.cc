/**
 * @file
 * Tests for the circuit-level area and latency models, including the
 * calibration anchors the paper states for Figures 4 and 5.
 */

#include <gtest/gtest.h>

#include "circuit/area_model.hh"
#include "circuit/latency_model.hh"

namespace rcnvm::circuit {
namespace {

class AreaSweep : public ::testing::TestWithParam<unsigned>
{
  protected:
    AreaModel model_;
};

TEST_P(AreaSweep, RcDramOverheadAlwaysAboveTwoHundredPercent)
{
    // Sec. 2.2: modification to the DRAM mat leads to overhead
    // "larger than 200% bit-per-area" at every array size.
    EXPECT_GT(model_.rcDramOverhead(GetParam()), 2.0);
}

TEST_P(AreaSweep, RcNvmOverheadAlwaysBelowRcDram)
{
    EXPECT_LT(model_.rcNvmOverhead(GetParam()),
              model_.rcDramOverhead(GetParam()));
}

TEST_P(AreaSweep, AreasArePositive)
{
    const unsigned n = GetParam();
    EXPECT_GT(model_.dramArea(n), 0.0);
    EXPECT_GT(model_.rcDramArea(n), model_.dramArea(n));
    EXPECT_GT(model_.nvmArea(n), 0.0);
    EXPECT_GT(model_.rcNvmArea(n), model_.nvmArea(n));
}

INSTANTIATE_TEST_SUITE_P(Figure4Sizes, AreaSweep,
                         ::testing::Values(16, 32, 64, 128, 256, 512,
                                           1024));

TEST(AreaModel, RcDramOverheadGrowsWithArraySize)
{
    AreaModel m;
    // "The area overhead is proportional to the number of WLs and
    // BLs in an array."
    double prev = m.rcDramOverhead(16);
    for (unsigned n = 32; n <= 1024; n *= 2) {
        EXPECT_GT(m.rcDramOverhead(n), prev);
        prev = m.rcDramOverhead(n);
    }
}

TEST(AreaModel, RcNvmOverheadShrinksWithArraySize)
{
    AreaModel m;
    double prev = m.rcNvmOverhead(16);
    for (unsigned n = 32; n <= 1024; n *= 2) {
        EXPECT_LT(m.rcNvmOverhead(n), prev);
        prev = m.rcNvmOverhead(n);
    }
}

TEST(AreaModel, RcNvmBelowTwentyPercentAt512)
{
    // Sec. 3: "the overhead drops to less than 20% when the numbers
    // of WL and BLs are 512."
    AreaModel m;
    EXPECT_LT(m.rcNvmOverhead(512), 0.20);
    EXPECT_GT(m.rcNvmOverhead(512), 0.05);
}

TEST(AreaModel, RcNvmAroundFifteenPercentAtDeployedMatSize)
{
    // Abstract: "only 15% area overhead". Table 1 deploys
    // "4 512*512 mats in a subarray", so the design point is the
    // 512-line mat.
    AreaModel m;
    EXPECT_NEAR(m.rcNvmOverhead(512), 0.15, 0.05);
}

TEST(AreaModel, CellArrayUnchangedForRcNvm)
{
    // The crossbar cell array itself is identical; only periphery
    // differs, so the absolute extra area is linear in n.
    AreaModel m;
    const double extra512 = m.rcNvmArea(512) - m.nvmArea(512);
    const double extra1024 = m.rcNvmArea(1024) - m.nvmArea(1024);
    EXPECT_GT(extra1024, extra512);
    EXPECT_LT(extra1024, 2.5 * extra512);
}

class LatencySweep : public ::testing::TestWithParam<unsigned>
{
  protected:
    LatencyModel model_;
};

TEST_P(LatencySweep, OverheadIsPositiveAndModerate)
{
    const double o = model_.rcNvmOverhead(GetParam());
    EXPECT_GT(o, 0.0);
    EXPECT_LT(o, 1.0); // Figure 5 axis tops out at 100%
}

TEST_P(LatencySweep, RcLatencyExceedsBaseline)
{
    const unsigned n = GetParam();
    EXPECT_GT(model_.rcNvmReadNs(n), model_.baselineReadNs(n));
}

INSTANTIATE_TEST_SUITE_P(Figure5Sizes, LatencySweep,
                         ::testing::Values(16, 64, 128, 256, 512,
                                           1024, 1200));

TEST(LatencyModel, OverheadGrowsWithArraySize)
{
    LatencyModel m;
    double prev = m.rcNvmOverhead(16);
    for (unsigned n = 32; n <= 1200; n += 64) {
        EXPECT_GE(m.rcNvmOverhead(n), prev);
        prev = m.rcNvmOverhead(n);
    }
}

TEST(LatencyModel, FifteenPercentAt512)
{
    // Sec. 3: "when the numbers of WL and BLs are 512, the timing
    // overhead is just about 15%."
    LatencyModel m;
    EXPECT_NEAR(m.rcNvmOverhead(512), 0.15, 0.03);
}

TEST(LatencyModel, BaselineMatchesRramReadTime)
{
    // The deployed RRAM has a 25 ns read access time (Table 1).
    LatencyModel m;
    EXPECT_NEAR(m.baselineReadNs(512), 25.0, 5.0);
}

TEST(LatencyModel, RcNvmMatchesTable1ReadTime)
{
    // RC-NVM read access time is 29 ns (Table 1).
    LatencyModel m;
    EXPECT_NEAR(m.rcNvmReadNs(512), 29.0, 5.0);
}

} // namespace
} // namespace rcnvm::circuit
