/**
 * @file
 * Unit tests for the simulation kernel: event ordering, time
 * advancement, and clock-domain conversions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

namespace rcnvm::sim {
namespace {

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TieBreaksByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.schedule(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, EmptyRunIsNoop)
{
    EventQueue eq;
    eq.run();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueueDeathTest, PanicsOnPastEvent)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        eq.schedule(5, [] {}); // in the past
    });
    EXPECT_DEATH(eq.run(), "scheduled in the past");
}

TEST(ClockDomain, CycleTickConversions)
{
    ClockDomain clk(2500);
    EXPECT_EQ(clk.period(), 2500u);
    EXPECT_EQ(clk.cyclesToTicks(4), 10000u);
    EXPECT_EQ(clk.ticksToCycles(10000), 4u);
    EXPECT_EQ(clk.ticksToCycles(10001), 5u); // rounds up
}

TEST(ClockDomain, NextEdge)
{
    ClockDomain clk(750);
    EXPECT_EQ(clk.nextEdgeAt(0), 0u);
    EXPECT_EQ(clk.nextEdgeAt(1), 750u);
    EXPECT_EQ(clk.nextEdgeAt(750), 750u);
    EXPECT_EQ(clk.nextEdgeAt(751), 1500u);
}

TEST(ClockDomain, CpuClockIs2GHz)
{
    EXPECT_EQ(cpuClock().period(), 500u);
}

} // namespace
} // namespace rcnvm::sim
