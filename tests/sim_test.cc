/**
 * @file
 * Unit tests for the simulation kernel: event ordering, time
 * advancement, and clock-domain conversions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

namespace rcnvm::sim {
namespace {

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(Tick{30}, [&] { order.push_back(3); });
    eq.schedule(Tick{10}, [&] { order.push_back(1); });
    eq.schedule(Tick{20}, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Tick{30});
}

TEST(EventQueue, TieBreaksByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(Tick{5}, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(Tick{1}, [&] {
        ++fired;
        eq.schedule(Tick{2}, [&] {
            ++fired;
            eq.schedule(Tick{3}, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), Tick{3});
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen;
    eq.schedule(Tick{100}, [&] {
        eq.scheduleAfter(Tick{50}, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, Tick{150});
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(Tick{10}, [&] { ++fired; });
    eq.schedule(Tick{20}, [&] { ++fired; });
    eq.runUntil(Tick{15});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), Tick{15});
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(Tick{static_cast<std::uint64_t>(i)}, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, EmptyRunIsNoop)
{
    EventQueue eq;
    eq.run();
    EXPECT_EQ(eq.now(), Tick{0});
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueueDeathTest, PanicsOnPastEvent)
{
    EventQueue eq;
    eq.schedule(Tick{10}, [&] {
        eq.schedule(Tick{5}, [] {}); // in the past
    });
    EXPECT_DEATH(eq.run(), "scheduled in the past");
}

TEST(ClockDomain, CycleTickConversions)
{
    ClockDomain<MemClk> clk(Tick{2500});
    EXPECT_EQ(clk.period(), Tick{2500});
    EXPECT_EQ(clk.cyclesToTicks(MemCycles{4}), Tick{10000});
    EXPECT_EQ(clk.ticksToCycles(Tick{10000}), MemCycles{4});
    EXPECT_EQ(clk.ticksToCycles(Tick{10001}), MemCycles{5}); // rounds up
}

TEST(ClockDomain, NextEdge)
{
    ClockDomain<MemClk> clk(Tick{750});
    EXPECT_EQ(clk.nextEdgeAt(Tick{0}), Tick{0});
    EXPECT_EQ(clk.nextEdgeAt(Tick{1}), Tick{750});
    EXPECT_EQ(clk.nextEdgeAt(Tick{750}), Tick{750});
    EXPECT_EQ(clk.nextEdgeAt(Tick{751}), Tick{1500});
}

TEST(ClockDomain, CpuClockIs2GHz)
{
    EXPECT_EQ(cpuClock().period(), Tick{500});
}

} // namespace
} // namespace rcnvm::sim
