/**
 * @file
 * Property tests for the strong-type conversion points: the typed
 * AddressMap convert must be an involution that preserves every
 * decoded field, and each ClockDomain must round-trip cycles at the
 * awkward tick positions (zero, exact edges, one short of an edge).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mem/geometry.hh"
#include "sim/clock_domain.hh"
#include "util/types.hh"

namespace rcnvm {
namespace {

using mem::AddressMap;
using mem::DecodedAddr;
using mem::Geometry;

/** Geometry sweep: the three Table-1 devices plus corner shapes. */
std::vector<Geometry>
geometrySweep()
{
    std::vector<Geometry> gs = {Geometry::rcNvm(), Geometry::rram(),
                                Geometry::dram(), Geometry{}};
    Geometry tiny;
    tiny.channels = 1;
    tiny.ranksPerChannel = 1;
    tiny.banksPerRank = 2;
    tiny.subarraysPerBank = 2;
    tiny.rowsPerSubarray = 16;
    tiny.colsPerSubarray = 16;
    gs.push_back(tiny);
    Geometry tall; // asymmetric: rows != cols, swap must still hold
    tall.rowsPerSubarray = 4096;
    tall.colsPerSubarray = 64;
    gs.push_back(tall);
    return gs;
}

/** Deterministic xorshift so the sweep needs no fixed tables. */
std::uint64_t
next(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

TEST(TypedAddressProperty, ConvertIsAnInvolution)
{
    for (const Geometry &g : geometrySweep()) {
        const AddressMap map(g);
        std::uint64_t rng = 0x9e3779b97f4a7c15ull;
        const Addr mask = (Addr{1} << map.addressBits()) - 1;
        for (unsigned i = 0; i < 256; ++i) {
            const RowAddr a{next(rng) & mask};
            EXPECT_EQ(map.convert(map.convert(a)), a);
            const ColAddr c{next(rng) & mask};
            EXPECT_EQ(map.convert(map.convert(c)), c);
        }
    }
}

TEST(TypedAddressProperty, ConvertPreservesDecodedFields)
{
    // The dual address names the same cell: every decoded field must
    // survive the orientation change (row/col swap included — decode
    // reports them in physical terms, not field order).
    for (const Geometry &g : geometrySweep()) {
        const AddressMap map(g);
        std::uint64_t rng = 0x2545f4914f6cdd1dull;
        const Addr mask = (Addr{1} << map.addressBits()) - 1;
        for (unsigned i = 0; i < 256; ++i) {
            const RowAddr a{next(rng) & mask};
            const DecodedAddr viaRow = map.decode(a);
            const DecodedAddr viaCol = map.decode(map.convert(a));
            EXPECT_EQ(viaRow, viaCol);
        }
    }
}

TEST(TypedAddressProperty, EncodeDecodeRoundTrips)
{
    for (const Geometry &g : geometrySweep()) {
        const AddressMap map(g);
        std::uint64_t rng = 0xda942042e4dd58b5ull;
        for (unsigned i = 0; i < 256; ++i) {
            DecodedAddr d;
            d.channel = next(rng) % g.channels;
            d.rank = next(rng) % g.ranksPerChannel;
            d.bank = next(rng) % g.banksPerRank;
            d.subarray = next(rng) % g.subarraysPerBank;
            d.row = next(rng) % g.rowsPerSubarray;
            d.col = next(rng) % g.colsPerSubarray;
            d.offset = next(rng) % g.wordBytes;
            EXPECT_EQ(map.decode(map.encodeRow(d)), d);
            EXPECT_EQ(map.decode(map.encodeCol(d)), d);
        }
    }
}

/** The three paper clocks: 2 GHz CPU, DDR3-1333, LPDDR3-800. */
template <typename Dom>
void
expectEdgeBehaviour(sim::ClockDomain<Dom> clk)
{
    const Tick p = clk.period();

    // t = 0 is on an edge and costs zero cycles.
    EXPECT_EQ(clk.ticksToCycles(Tick{0}), Cycles<Dom>{0});
    EXPECT_EQ(clk.nextEdgeAt(Tick{0}), Tick{0});

    for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
        const Tick edge = p * n;
        // An exact edge needs exactly n cycles and is its own edge.
        EXPECT_EQ(clk.ticksToCycles(edge), Cycles<Dom>{n});
        EXPECT_EQ(clk.nextEdgeAt(edge), edge);
        // One tick short still rounds up to the same edge.
        const Tick shy = edge - Tick{1};
        EXPECT_EQ(clk.ticksToCycles(shy), Cycles<Dom>{n});
        EXPECT_EQ(clk.nextEdgeAt(shy), edge);
        // One tick past commits to the next edge.
        const Tick past = edge + Tick{1};
        EXPECT_EQ(clk.ticksToCycles(past), Cycles<Dom>{n + 1});
        EXPECT_EQ(clk.nextEdgeAt(past), edge + p);
        // Cycles -> ticks -> cycles is exact (edges are lossless).
        EXPECT_EQ(clk.ticksToCycles(clk.cyclesToTicks(Cycles<Dom>{n})),
                  Cycles<Dom>{n});
    }
}

TEST(ClockDomainProperty, CpuClockEdges)
{
    expectEdgeBehaviour(sim::cpuClock()); // 500 ps
    EXPECT_EQ(sim::cpuClock().period(), Tick{500});
}

TEST(ClockDomainProperty, Ddr3BusClockEdges)
{
    expectEdgeBehaviour(sim::memClock(Tick{750}));
}

TEST(ClockDomainProperty, Lpddr3BusClockEdges)
{
    expectEdgeBehaviour(sim::memClock(Tick{2500}));
}

TEST(ClockDomainProperty, DomainsAgreeOnTicksNotCycles)
{
    // The same duration is a different cycle count per domain; the
    // tick value is the shared currency.
    const auto cpu = sim::cpuClock();
    const auto ddr = sim::memClock(Tick{750});
    const Tick t = cpu.cyclesToTicks(CpuCycles{3}); // 1500 ps
    EXPECT_EQ(ddr.ticksToCycles(t), MemCycles{2});  // ceil(1500/750)
    EXPECT_EQ(cpu.ticksToCycles(t), CpuCycles{3});
}

} // namespace
} // namespace rcnvm
