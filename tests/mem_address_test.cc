/**
 * @file
 * Tests for the Figure-7 dual addressing scheme: geometry
 * capacities, encode/decode round trips, row/column conversion, and
 * the adjacency properties the paper relies on.
 */

#include <gtest/gtest.h>

#include "mem/geometry.hh"
#include "util/random.hh"

namespace rcnvm::mem {
namespace {

TEST(Geometry, RcNvmMatchesTable1)
{
    const Geometry g = Geometry::rcNvm();
    EXPECT_EQ(g.channels, 2u);
    EXPECT_EQ(g.ranksPerChannel, 4u);
    EXPECT_EQ(g.banksPerRank, 8u);
    EXPECT_EQ(g.subarraysPerBank, 8u);
    EXPECT_EQ(g.rowsPerSubarray, 1024u);
    EXPECT_EQ(g.colsPerSubarray, 1024u);
    // 4 GB total, 8 MB subarrays, 8 KB rows (Sec. 4.5.1).
    EXPECT_EQ(g.capacityBytes(), 4ull << 30);
    EXPECT_EQ(g.subarrayBytes(), 8ull << 20);
    EXPECT_EQ(g.rowBytes(), 8192u);
    EXPECT_EQ(g.columnBytes(), 8192u);
}

TEST(Geometry, DramMatchesTable1)
{
    const Geometry g = Geometry::dram();
    EXPECT_EQ(g.channels, 2u);
    EXPECT_EQ(g.ranksPerChannel, 2u);
    EXPECT_EQ(g.banksPerRank, 8u);
    EXPECT_EQ(g.rowsPerSubarray, 65536u);
    EXPECT_EQ(g.colsPerSubarray, 256u);
    EXPECT_EQ(g.capacityBytes(), 4ull << 30);
    EXPECT_EQ(g.rowBytes(), 2048u); // 2 KB row buffer
}

TEST(Geometry, RramSharesRcNvmOrganisation)
{
    EXPECT_EQ(Geometry::rram().capacityBytes(), 4ull << 30);
    EXPECT_EQ(Geometry::rram().rowBytes(), 8192u);
}

TEST(AddressMap, UsesExactly32Bits)
{
    // Figure 7 shows a 32-bit physical address.
    EXPECT_EQ(AddressMap(Geometry::rcNvm()).addressBits(), 32u);
    EXPECT_EQ(AddressMap(Geometry::dram()).addressBits(), 32u);
}

TEST(AddressMap, EncodeDecodeRoundTripRow)
{
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.channel = 1;
    d.rank = 3;
    d.bank = 5;
    d.subarray = 2;
    d.row = 437;
    d.col = 182;
    d.offset = 4;
    const Addr a = map.encode(d, Orientation::Row);
    EXPECT_EQ(map.decode(a, Orientation::Row), d);
}

TEST(AddressMap, EncodeDecodeRoundTripColumn)
{
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.channel = 0;
    d.rank = 1;
    d.bank = 7;
    d.subarray = 6;
    d.row = 1023;
    d.col = 1;
    const Addr a = map.encode(d, Orientation::Column);
    EXPECT_EQ(map.decode(a, Orientation::Column), d);
}

TEST(AddressMap, ConversionPreservesLocation)
{
    // Sec. 4.2.1: the same cell has two addresses differing only in
    // the order of row and column bits.
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.channel = 1;
    d.rank = 2;
    d.bank = 3;
    d.subarray = 4;
    d.row = 100;
    d.col = 200;
    const Addr row_addr = map.encode(d, Orientation::Row);
    const Addr col_addr =
        map.convert(row_addr, Orientation::Row, Orientation::Column);
    EXPECT_EQ(map.decode(col_addr, Orientation::Column), d);
}

TEST(AddressMap, ConversionIsInvolution)
{
    AddressMap map(Geometry::rcNvm());
    util::Random rng(99);
    for (int i = 0; i < 200; ++i) {
        const Addr a = rng.next() & 0xffffffffull & ~7ull;
        const Addr there =
            map.convert(a, Orientation::Row, Orientation::Column);
        const Addr back = map.convert(there, Orientation::Column,
                                      Orientation::Row);
        EXPECT_EQ(back, a);
    }
}

TEST(AddressMap, SameOrientationConversionIsIdentity)
{
    AddressMap map(Geometry::rcNvm());
    EXPECT_EQ(map.convert(0x1234560, Orientation::Row,
                          Orientation::Row),
              0x1234560u);
}

TEST(AddressMap, RowAddressIncrementWalksAlongRow)
{
    // "When the row-oriented address is increased, the column bit
    // is increased. It represents the case of scanning on a
    // physical row."
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.row = 10;
    d.col = 20;
    const Addr a = map.encode(d, Orientation::Row);
    const DecodedAddr next = map.decode(a + 8, Orientation::Row);
    EXPECT_EQ(next.row, d.row);
    EXPECT_EQ(next.col, d.col + 1);
}

TEST(AddressMap, ColumnAddressIncrementWalksDownColumn)
{
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.row = 10;
    d.col = 20;
    const Addr a = map.encode(d, Orientation::Column);
    const DecodedAddr next = map.decode(a + 8, Orientation::Column);
    EXPECT_EQ(next.col, d.col);
    EXPECT_EQ(next.row, d.row + 1);
}

TEST(AddressMap, HighFieldsIdenticalAcrossOrientations)
{
    // Channel/rank/bank/subarray bits sit above the swapped fields,
    // so both addresses of one cell route identically.
    AddressMap map(Geometry::rcNvm());
    util::Random rng(123);
    for (int i = 0; i < 100; ++i) {
        const Addr a = rng.next() & 0xffffffffull;
        const DecodedAddr dr = map.decode(a, Orientation::Row);
        const DecodedAddr dc = map.decode(a, Orientation::Column);
        EXPECT_EQ(dr.channel, dc.channel);
        EXPECT_EQ(dr.rank, dc.rank);
        EXPECT_EQ(dr.bank, dc.bank);
        EXPECT_EQ(dr.subarray, dc.subarray);
    }
}

TEST(AddressMap, PaperExampleCrossPoint)
{
    // Figure 8 example: the same 8 bytes at (row 437, col 182) have
    // a row-oriented and a column-oriented address that convert to
    // each other.
    AddressMap map(Geometry::rcNvm());
    DecodedAddr d;
    d.row = 437;
    d.col = 182;
    const Addr ra = map.encode(d, Orientation::Row);
    const Addr ca = map.encode(d, Orientation::Column);
    EXPECT_EQ(map.convert(ra, Orientation::Row, Orientation::Column),
              ca);
    EXPECT_NE(ra, ca);
}

TEST(AddressMap, LineAddrAligns)
{
    AddressMap map(Geometry::rcNvm());
    EXPECT_EQ(map.lineAddr(0x1237), 0x1200u);
    EXPECT_EQ(map.lineAddr(0x1240), 0x1240u);
}

/** Round-trip property over random decoded addresses. */
class AddressRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressRoundTrip, RandomizedRoundTripsBothOrientations)
{
    AddressMap map(Geometry::rcNvm());
    util::Random rng(GetParam());
    const Geometry &g = map.geometry();
    for (int i = 0; i < 200; ++i) {
        DecodedAddr d;
        d.channel = static_cast<unsigned>(
            rng.nextBounded(g.channels));
        d.rank = static_cast<unsigned>(
            rng.nextBounded(g.ranksPerChannel));
        d.bank = static_cast<unsigned>(
            rng.nextBounded(g.banksPerRank));
        d.subarray = static_cast<unsigned>(
            rng.nextBounded(g.subarraysPerBank));
        d.row = static_cast<unsigned>(
            rng.nextBounded(g.rowsPerSubarray));
        d.col = static_cast<unsigned>(
            rng.nextBounded(g.colsPerSubarray));
        d.offset =
            static_cast<unsigned>(rng.nextBounded(g.wordBytes));
        for (const auto o :
             {Orientation::Row, Orientation::Column}) {
            EXPECT_EQ(map.decode(map.encode(d, o), o), d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AddressMapDeathTest, RejectsNonPowerOfTwoGeometry)
{
    Geometry g = Geometry::rcNvm();
    g.rowsPerSubarray = 1000;
    EXPECT_EXIT(AddressMap{g}, ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
} // namespace rcnvm::mem
