/**
 * @file
 * Tests for the IMDB layer: schemas, synthetic tables, and the 2-D
 * online bin packer with rotation.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "imdb/bin_packing.hh"
#include "imdb/schema.hh"
#include "imdb/table.hh"

namespace rcnvm::imdb {
namespace {

TEST(SchemaTest, UniformSchemaOffsets)
{
    const Schema s = Schema::uniform(16);
    EXPECT_EQ(s.fieldCount(), 16u);
    EXPECT_EQ(s.tupleWords(), 16u);
    EXPECT_EQ(s.tupleBytes(), 128u);
    EXPECT_EQ(s.wordOffset(0), 0u);
    EXPECT_EQ(s.wordOffset(9), 9u); // f10 is word 9
    EXPECT_EQ(s.field(9).name, "f10");
}

TEST(SchemaTest, WideFieldsShiftOffsets)
{
    // table-c: f1, f2_wide (32 B), f3, f4, f5.
    const Schema s({Field{"f1", 8}, Field{"f2_wide", 32},
                    Field{"f3", 8}, Field{"f4", 8}, Field{"f5", 8}});
    EXPECT_EQ(s.fieldCount(), 5u);
    EXPECT_EQ(s.tupleWords(), 8u);
    EXPECT_EQ(s.wordOffset(1), 1u);
    EXPECT_EQ(s.fieldWords(1), 4u);
    EXPECT_EQ(s.wordOffset(2), 5u); // f3 after the wide field
}

TEST(SchemaTest, FieldIndexByName)
{
    const Schema s = Schema::uniform(20);
    EXPECT_EQ(s.fieldIndex("f1"), 0u);
    EXPECT_EQ(s.fieldIndex("f20"), 19u);
}

TEST(SchemaDeathTest, RejectsNonWordWidths)
{
    EXPECT_EXIT(Schema({Field{"bad", 7}}),
                ::testing::ExitedWithCode(1), "multiple of 8");
}

TEST(TableTest, DeterministicContents)
{
    const Table a("t", Schema::uniform(4), 128, 7);
    const Table b("t", Schema::uniform(4), 128, 7);
    for (unsigned f = 0; f < 4; ++f) {
        for (std::uint64_t t = 0; t < 128; ++t)
            EXPECT_EQ(a.value(f, t), b.value(f, t));
    }
}

TEST(TableTest, ValuesInDomain)
{
    const Table t("t", Schema::uniform(2), 1000, 3);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_GE(t.value(0, i), 0);
        EXPECT_LT(t.value(0, i), Table::valueRange);
    }
}

TEST(TableTest, SelectivityThresholds)
{
    const Table t("t", Schema::uniform(2), 20000, 11);
    for (const double sel : {0.1, 0.5, 0.9}) {
        const auto matches =
            t.matchGreater(0, t.thresholdForGreater(sel));
        std::uint64_t count = 0;
        for (const bool m : matches)
            count += m ? 1 : 0;
        EXPECT_NEAR(static_cast<double>(count) / 20000.0, sel, 0.03);
    }
}

TEST(TableTest, ThresholdEdgeCases)
{
    const Table t("t", Schema::uniform(1), 100, 1);
    EXPECT_EQ(t.thresholdForGreater(0.0), Table::valueRange);
    EXPECT_EQ(t.thresholdForGreater(1.0), -1);
}

TEST(TableTest, MatchPredicatesConsistent)
{
    const Table t("t", Schema::uniform(2), 500, 13);
    const auto gt = t.matchGreater(1, 50000);
    const auto lt = t.matchLess(1, 50000);
    const auto eq = t.matchEqual(1, 50000);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const int total = (gt[i] ? 1 : 0) + (lt[i] ? 1 : 0) +
                          (eq[i] ? 1 : 0);
        EXPECT_EQ(total, 1); // trichotomy
    }
}

TEST(TableDeathTest, WideFieldHasNoValues)
{
    const Table t("t",
                  Schema({Field{"f1", 8}, Field{"wide", 16}}), 10,
                  1);
    EXPECT_EQ(t.value(0, 0) >= 0, true);
    EXPECT_EXIT((void)t.value(1, 0), ::testing::ExitedWithCode(1),
                "no numeric values");
}

// ---------------------------------------------------------------
// Bin packing.
// ---------------------------------------------------------------

TEST(BinPackerTest, SingleItemAtOrigin)
{
    BinPacker p(1024);
    const PackSlot s = p.insert(16, 1024);
    EXPECT_EQ(s.bin, 0u);
    EXPECT_EQ(p.binsUsed(), 1u);
}

TEST(BinPackerTest, ItemsPackSideBySide)
{
    BinPacker p(1024, /*allow_rotation=*/false);
    const PackSlot a = p.insert(100, 200);
    const PackSlot b = p.insert(100, 200);
    EXPECT_EQ(a.bin, b.bin);
    EXPECT_EQ(a.y, b.y);
    EXPECT_NE(a.x, b.x);
}

TEST(BinPackerTest, TallItemsRotateToLieFlat)
{
    BinPacker p(1024, /*allow_rotation=*/true);
    const PackSlot s = p.insert(16, 1024); // tall chunk
    EXPECT_TRUE(s.rotated);
}

TEST(BinPackerTest, RotationDisabledKeepsOrientation)
{
    BinPacker p(1024, /*allow_rotation=*/false);
    const PackSlot s = p.insert(16, 1024);
    EXPECT_FALSE(s.rotated);
}

TEST(BinPackerTest, RotationPacksTighter)
{
    // 64 tall 16x1024 chunks: rotated they stack as 64 shelves of
    // height 16 in one bin; unrotated they fill one bin side by
    // side as well -- but a mix of 512-tall items shows the gain.
    BinPacker with(1024, true);
    BinPacker without(1024, false);
    for (int i = 0; i < 48; ++i) {
        with.insert(40, 512);
        without.insert(40, 512);
    }
    EXPECT_LE(with.binsUsed(), without.binsUsed());
}

TEST(BinPackerTest, OpensNewBinWhenFull)
{
    BinPacker p(1024, false);
    for (int i = 0; i < 2; ++i)
        p.insert(1024, 1024);
    EXPECT_EQ(p.binsUsed(), 2u);
}

TEST(BinPackerTest, UtilizationFullBins)
{
    BinPacker p(1024, false);
    p.insert(1024, 1024);
    EXPECT_DOUBLE_EQ(p.utilization(), 1.0);
    p.insert(1024, 512);
    EXPECT_DOUBLE_EQ(p.utilization(), 0.75);
}

TEST(BinPackerTest, EmptyUtilizationIsZero)
{
    BinPacker p(1024);
    EXPECT_DOUBLE_EQ(p.utilization(), 0.0);
}

TEST(BinPackerTest, InsertAtTargetsRequestedBin)
{
    BinPacker p(1024, true);
    for (unsigned b = 0; b < 8; ++b) {
        const auto slot = p.insertAt(b, 16, 1024);
        ASSERT_TRUE(slot.has_value());
        EXPECT_EQ(slot->bin, b);
    }
    EXPECT_EQ(p.binsUsed(), 8u);
}

TEST(BinPackerTest, InsertAtStacksWithinOneBin)
{
    BinPacker p(1024, true);
    std::set<unsigned> ys;
    for (int i = 0; i < 4; ++i) {
        const auto slot = p.insertAt(3, 16, 1024);
        ASSERT_TRUE(slot.has_value());
        EXPECT_EQ(slot->bin, 3u);
        ys.insert(slot->y);
    }
    EXPECT_EQ(ys.size(), 4u); // four shelves, no overlap
}

TEST(BinPackerTest, InsertAtRefusesWhenBinFull)
{
    BinPacker p(1024, false);
    ASSERT_TRUE(p.insertAt(0, 1024, 1024).has_value());
    EXPECT_FALSE(p.insertAt(0, 1, 1).has_value());
}

TEST(BinPackerTest, ItemsNeverOverlap)
{
    // Property: no two placed rectangles in the same bin intersect.
    BinPacker p(1024, true);
    struct Rect {
        unsigned bin, x, y, w, h;
    };
    std::vector<Rect> rects;
    const unsigned sizes[][2] = {{16, 1024}, {20, 1024}, {100, 30},
                                 {1024, 8},  {512, 512}, {7, 7},
                                 {300, 200}, {1, 1024},  {1024, 1}};
    for (int round = 0; round < 10; ++round) {
        for (const auto &wh : sizes) {
            const PackSlot s = p.insert(wh[0], wh[1]);
            const unsigned w = s.rotated ? wh[1] : wh[0];
            const unsigned h = s.rotated ? wh[0] : wh[1];
            EXPECT_LE(s.x + w, 1024u);
            EXPECT_LE(s.y + h, 1024u);
            rects.push_back(Rect{s.bin, s.x, s.y, w, h});
        }
    }
    for (std::size_t i = 0; i < rects.size(); ++i) {
        for (std::size_t j = i + 1; j < rects.size(); ++j) {
            const Rect &a = rects[i];
            const Rect &b = rects[j];
            if (a.bin != b.bin)
                continue;
            const bool disjoint = a.x + a.w <= b.x ||
                                  b.x + b.w <= a.x ||
                                  a.y + a.h <= b.y ||
                                  b.y + b.h <= a.y;
            EXPECT_TRUE(disjoint)
                << "rects " << i << " and " << j << " overlap";
        }
    }
}

TEST(BinPackerDeathTest, OversizedItemIsFatal)
{
    BinPacker p(1024);
    EXPECT_EXIT(p.insert(1025, 10), ::testing::ExitedWithCode(1),
                "does not fit");
    EXPECT_EXIT(p.insert(0, 10), ::testing::ExitedWithCode(1),
                "does not fit");
}

} // namespace
} // namespace rcnvm::imdb
