/**
 * @file
 * End-to-end integration tests: whole queries on whole machines,
 * checking the paper's qualitative results at a reduced scale plus
 * cross-cutting invariants (determinism, stat consistency).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/system.hh"
#include "util/logging.hh"

namespace rcnvm::core {
namespace {

using workload::MicroBench;
using workload::QueryId;

class Quiet : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        util::setLogLevel(util::LogLevel::Quiet);
    }
};

class IntegrationTest : public Quiet
{
  protected:
    workload::TableSet tables_ =
        workload::TableSet::standard(8192, 4096, 11);
    workload::QueryWorkload workload_{tables_};
};

TEST_F(IntegrationTest, ColumnScanQueryFasterOnRcNvm)
{
    const auto rc =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q6);
    const auto rram =
        runQuery(mem::DeviceKind::Rram, workload_, QueryId::Q6);
    const auto dram =
        runQuery(mem::DeviceKind::Dram, workload_, QueryId::Q6);
    EXPECT_LT(rc.ticks, rram.ticks);
    EXPECT_LT(rc.ticks, dram.ticks);
    // The paper reports a large factor on Q6; at this reduced scale
    // we still expect at least 2x against both baselines.
    EXPECT_GT(static_cast<double>(rram.ticks.value()) /
                  static_cast<double>(rc.ticks.value()),
              2.0);
}

TEST_F(IntegrationTest, LlcMissesDropOnRcNvm)
{
    const auto rc =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q6);
    const auto dram =
        runQuery(mem::DeviceKind::Dram, workload_, QueryId::Q6);
    // Figure 19: RC-NVM needs far fewer memory accesses.
    EXPECT_LT(rc.llcMisses() * 2.0, dram.llcMisses());
}

TEST_F(IntegrationTest, SequentialScanQueryFavoursDram)
{
    // Q3 translates into sequential row scans: the paper's one
    // exception where DRAM wins.
    const auto rc =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q3);
    const auto dram =
        runQuery(mem::DeviceKind::Dram, workload_, QueryId::Q3);
    EXPECT_LT(dram.ticks, rc.ticks);
    // ... but RC-NVM stays within ~2.5x of DRAM (at full scale the
    // gap narrows to the bus-frequency ratio; see EXPERIMENTS.md).
    EXPECT_LT(static_cast<double>(rc.ticks.value()),
              2.5 * static_cast<double>(dram.ticks.value()));
}

TEST_F(IntegrationTest, GsDramHelpsOnlyGatherableQueries)
{
    // Q6 (table-a, power-of-two stride) benefits from GS-DRAM;
    // Q5 (table-b) cannot gather and matches plain DRAM.
    const auto gs6 =
        runQuery(mem::DeviceKind::GsDram, workload_, QueryId::Q6);
    const auto dram6 =
        runQuery(mem::DeviceKind::Dram, workload_, QueryId::Q6);
    EXPECT_LT(gs6.ticks, dram6.ticks);

    const auto gs5 =
        runQuery(mem::DeviceKind::GsDram, workload_, QueryId::Q5);
    const auto dram5 =
        runQuery(mem::DeviceKind::Dram, workload_, QueryId::Q5);
    EXPECT_EQ(gs5.ticks, dram5.ticks);
}

TEST_F(IntegrationTest, CoherenceOverheadWithinPaperRange)
{
    // Figure 21: 0.2% - 3.4% across the query set. Allow headroom.
    for (const QueryId id :
         {QueryId::Q1, QueryId::Q8, QueryId::Q12}) {
        const auto r =
            runQuery(mem::DeviceKind::RcNvm, workload_, id);
        EXPECT_GE(r.coherenceOverheadRatio(), 0.0);
        EXPECT_LE(r.coherenceOverheadRatio(), 0.05)
            << workload::querySpec(id).name;
    }
}

TEST_F(IntegrationTest, UpdatesRunOnAllDevices)
{
    for (const auto kind :
         {mem::DeviceKind::RcNvm, mem::DeviceKind::Rram,
          mem::DeviceKind::Dram}) {
        const auto r = runQuery(kind, workload_, QueryId::Q12);
        EXPECT_GT(r.ticks, Tick{0});
        EXPECT_GT(r.stats.get("cpu.memOps"), 0.0);
    }
}

TEST_F(IntegrationTest, JoinsCompleteAndTouchHashRegion)
{
    const auto r =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q9);
    EXPECT_GT(r.ticks, Tick{0});
    // The hash region is touched by build stores and probe loads
    // (write-backs only reach memory once dirty lines spill, which
    // needs a larger-than-LLC footprint).
    EXPECT_GT(r.stats.get("cache.accesses"),
              2.0 * static_cast<double>(
                        tables_.a->tuples() / 8)); // both scans
}

TEST_F(IntegrationTest, GroupCachingImprovesOrderedScans)
{
    // Figure 23: group caching helps once the workload exerts real
    // column-buffer pressure, so this test runs at a larger scale
    // than the rest of the fixture.
    const workload::TableSet big =
        workload::TableSet::standard(65536, 4096, 11);
    const workload::QueryWorkload wl(big);
    const auto g0 =
        runQuery(mem::DeviceKind::RcNvm, wl, QueryId::Q14, 0);
    const auto g32 =
        runQuery(mem::DeviceKind::RcNvm, wl, QueryId::Q14, 32);
    const auto g128 =
        runQuery(mem::DeviceKind::RcNvm, wl, QueryId::Q14, 128);
    EXPECT_LT(g32.ticks, g0.ticks);
    // Larger groups also beat the no-prefetch baseline; past the
    // saturation point the exact ordering between sizes depends on
    // cache capacity (as Sec. 5 notes), so only the headline claim
    // is asserted.
    EXPECT_LT(g128.ticks, g0.ticks);
    EXPECT_EQ(g0.stats.get("cache.pinnedEvictions"), 0.0);
}

TEST_F(IntegrationTest, GroupCachingCutsBufferConflicts)
{
    const auto g0 = runQuery(mem::DeviceKind::RcNvm, workload_,
                             QueryId::Q15, 0);
    const auto g64 = runQuery(mem::DeviceKind::RcNvm, workload_,
                              QueryId::Q15, 64);
    EXPECT_LT(g64.stats.get("mem.bufferConflicts") * 4.0,
              g0.stats.get("mem.bufferConflicts"));
}

TEST_F(IntegrationTest, DeterministicAcrossRuns)
{
    const auto a =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q4);
    const auto b =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q4);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.llcMisses(), b.llcMisses());
}

TEST_F(IntegrationTest, StatsAreInternallyConsistent)
{
    const auto r =
        runQuery(mem::DeviceKind::RcNvm, workload_, QueryId::Q1);
    EXPECT_LE(r.stats.get("cache.llcMisses"),
              r.stats.get("cache.accesses"));
    // Every demand miss reaches memory unless it coalesced into an
    // in-flight MSHR or was served out of the write-back buffer.
    EXPECT_GE(r.stats.get("mem.requests"),
              r.stats.get("cache.llcMisses") -
                  r.stats.get("cache.mshrCoalesced") -
                  r.stats.get("cache.wbForwards"));
    EXPECT_LE(r.bufferMissRate(), 1.0);
    EXPECT_GE(r.bufferMissRate(), 0.0);
}

TEST_F(IntegrationTest, MicroColumnScansFavourRcNvm)
{
    const auto rc = runMicro(mem::DeviceKind::RcNvm, tables_,
                             MicroBench::ColRead,
                             imdb::ChunkLayout::ColumnOriented);
    const auto dram = runMicro(mem::DeviceKind::Dram, tables_,
                               MicroBench::ColRead,
                               imdb::ChunkLayout::ColumnOriented);
    // Figure 17 reports ~76% execution-time reduction on column
    // scans. At this scale the gap is smaller since MSHR coalescing
    // was introduced: the four cores race on the same lines, and
    // DRAM no longer pays for the duplicate in-flight fetches that
    // the pre-MSHR model issued (one per racing core).
    EXPECT_LT(static_cast<double>(rc.ticks.value()),
              0.65 * static_cast<double>(dram.ticks.value()));
    EXPECT_GT(rc.mshrCoalesced() + dram.mshrCoalesced(), 0.0);
}

TEST_F(IntegrationTest, MicroRowScansComparableAcrossDevices)
{
    const auto rc = runMicro(mem::DeviceKind::RcNvm, tables_,
                             MicroBench::RowRead,
                             imdb::ChunkLayout::RowOriented);
    const auto rram = runMicro(mem::DeviceKind::Rram, tables_,
                               MicroBench::RowRead,
                               imdb::ChunkLayout::RowOriented);
    // RC-NVM pays only a small penalty over RRAM on row scans
    // (paper: ~4%); allow up to 25% at this scale.
    EXPECT_LT(static_cast<double>(rc.ticks.value()),
              1.25 * static_cast<double>(rram.ticks.value()));
}

TEST_F(IntegrationTest, SensitivitySlowerCellsSlowRcNvm)
{
    // Figure 22: scaling the cell read/write latency scales
    // execution time monotonically.
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    const auto pd = workload_.place(mem::DeviceKind::RcNvm, map);
    const auto q = workload_.compile(QueryId::Q4, pd, 4);
    Tick prev{0};
    for (const double read_ns : {12.5, 25.0, 50.0, 100.0, 200.0}) {
        const auto cfg = table1MachineWithCell(
            mem::DeviceKind::RcNvm, read_ns, read_ns * 0.4);
        const auto r = runCompiled(cfg, q);
        EXPECT_GT(r.ticks, prev);
        prev = r.ticks;
    }
}

TEST_F(IntegrationTest, RcNvmSystemFacadeWorks)
{
    RcNvmSystem::Options opt;
    opt.tuples = 4096;
    opt.microTuples = 2048;
    RcNvmSystem sys(opt);
    EXPECT_GT(sys.binsUsed(), 0u);
    EXPECT_GT(sys.packingUtilization(), 0.0);
    const auto r = sys.runQuery(QueryId::Q1);
    EXPECT_GT(r.ticks, Tick{0});
    const auto m = sys.runMicro(MicroBench::RowRead);
    EXPECT_GT(m.ticks, Tick{0});
    const auto p = sys.runPlans(
        {cpu::AccessPlan{cpu::MemOp::load(0x1000)}});
    EXPECT_GT(p.ticks, Tick{0});
}

TEST_F(IntegrationTest, Table1PresetMatchesPaper)
{
    const auto cfg = table1Machine(mem::DeviceKind::RcNvm);
    EXPECT_EQ(cfg.hierarchy.cores, 4u);
    EXPECT_EQ(cfg.hierarchy.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.hierarchy.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.hierarchy.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.hierarchy.l1.ways, 8u);
    EXPECT_EQ(cfg.hierarchy.l1.lineBytes, 64u);
}

} // namespace
} // namespace rcnvm::core
