/**
 * @file
 * Tests for the hybrid DRAM + RC-NVM memory tier: remap-table
 * involution, the shadow-row-buffer locality tracker, migration
 * routing and policies on a directly-driven HybridMemory, and
 * whole-machine determinism of hybrid runs (same seed byte-identical
 * JSON, RCNVM_THREADS=1 vs 4 equivalence).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "mem/hybrid_tier.hh"
#include "olxp/service.hh"
#include "util/stats_io.hh"
#include "workload/tables.hh"

namespace rcnvm::mem {
namespace {

Geometry
nearGeometry(const Geometry &far)
{
    // The same derivation cpu::Machine uses: inherit the far channel
    // count and row shape, shrink capacity to a handful of frames.
    Geometry g = far;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.subarraysPerBank = 1;
    g.rowsPerSubarray = 16;
    return g;
}

// --- RemapTable --------------------------------------------------

TEST(RemapTable, StartsFullyUnmapped)
{
    const Geometry far = Geometry::rcNvm();
    RemapTable rt(far, nearGeometry(far));
    EXPECT_EQ(rt.mappedRows(), 0u);
    EXPECT_EQ(rt.frames(),
              far.channels * rt.framesPerChannel());
    for (std::uint32_t f = 0; f < rt.frames(); ++f)
        EXPECT_EQ(rt.rowOfFrame(f), -1);
    EXPECT_EQ(rt.frameOf(0), -1);
}

TEST(RemapTable, MapUnmapIsAnInvolution)
{
    const Geometry far = Geometry::rcNvm();
    RemapTable rt(far, nearGeometry(far));

    // Any even number of migrations (map/unmap pairs, with the row
    // landing in a different frame each round) must return every row
    // to identity translation.
    const std::uint64_t rows[] = {0, 7, 42,
                                  rt.rows() / far.channels - 1};
    for (unsigned round = 0; round < 4; ++round) {
        unsigned slot = 0;
        for (const std::uint64_t row : rows) {
            // Distinct frame per row and round (all four rows may
            // share a channel, so offsets must not collide).
            const std::uint32_t frame =
                rt.rowChannel(row) * rt.framesPerChannel() +
                round * 4 + slot++;
            rt.map(row, frame);
            EXPECT_EQ(rt.frameOf(row),
                      static_cast<std::int64_t>(frame));
            EXPECT_EQ(rt.rowOfFrame(frame),
                      static_cast<std::int64_t>(row));
        }
        EXPECT_EQ(rt.mappedRows(), 4u);
        for (const std::uint64_t row : rows)
            rt.unmap(row);
        EXPECT_EQ(rt.mappedRows(), 0u);
        for (const std::uint64_t row : rows)
            EXPECT_EQ(rt.frameOf(row), -1);
        for (std::uint32_t f = 0; f < rt.frames(); ++f)
            EXPECT_EQ(rt.rowOfFrame(f), -1);
    }
}

TEST(RemapTable, ToNearCarriesColumnAndChannel)
{
    const Geometry far = Geometry::rcNvm();
    RemapTable rt(far, nearGeometry(far));

    DecodedAddr d;
    d.channel = 1;
    d.bank = 3;
    d.row = 9;
    d.col = 48;
    const std::uint64_t row = rt.rowId(d);
    EXPECT_EQ(rt.rowChannel(row), 1u);

    const std::uint32_t frame = 1 * rt.framesPerChannel() + 5;
    rt.map(row, frame);
    const DecodedAddr n = rt.toNear(d);
    EXPECT_EQ(n.channel, 1u); // migrations are channel-local
    EXPECT_EQ(n.col, 48u);    // column offset carries over
    rt.unmap(row);
}

TEST(RemapTable, FrameLocationRoundRobinsNearBanks)
{
    const Geometry far = Geometry::rcNvm();
    const Geometry near = nearGeometry(far);
    RemapTable rt(far, near);
    // Consecutive frames spread across the near banks before any
    // bank reuses its next row.
    std::set<unsigned> banks;
    for (std::uint32_t f = 0; f < near.banksPerRank; ++f) {
        const DecodedAddr d = rt.frameLocation(f);
        banks.insert(d.bank);
        EXPECT_EQ(d.row, 0u);
    }
    EXPECT_EQ(banks.size(), near.banksPerRank);
    EXPECT_EQ(rt.frameLocation(near.banksPerRank).row, 1u);
}

// --- RowLocalityTracker ------------------------------------------

TEST(LocalityTracker, ShadowBufferPredictsHitsAndConflicts)
{
    RowLocalityTracker t(Geometry::rcNvm(), 0.5, Tick{0});
    EXPECT_FALSE(t.recordRow(5, Tick{0}));  // cold bank: miss
    EXPECT_TRUE(t.recordRow(5, Tick{10}));  // same open row: hit
    EXPECT_FALSE(t.recordRow(6, Tick{20})); // same-bank conflict
    EXPECT_FALSE(t.recordRow(5, Tick{30})); // row 6 displaced row 5
}

TEST(LocalityTracker, ColumnAccessFlipsTheShadowBuffer)
{
    RowLocalityTracker t(Geometry::rcNvm(), 0.5, Tick{0});
    EXPECT_FALSE(t.recordRow(5, Tick{0}));
    EXPECT_TRUE(t.recordRow(5, Tick{1}));
    t.recordColumn(5, Tick{2}); // the bank now holds column data
    EXPECT_FALSE(t.recordRow(5, Tick{3}));
    EXPECT_EQ(t.sample(5, Tick{3}).colTouches, 1.0f);
}

TEST(LocalityTracker, EwmaTracksMissRatio)
{
    RowLocalityTracker t(Geometry::rcNvm(), 0.25, Tick{0});
    for (unsigned i = 0; i < 32; ++i)
        t.recordRow(5, Tick{i});
    // One cold miss followed by 31 hits: the EWMA decays toward 0.
    EXPECT_LT(t.sample(5, Tick{32}).ewmaMiss, 0.01f);

    // Ping-pong between two same-bank rows: every access misses.
    for (unsigned i = 0; i < 16; ++i) {
        t.recordRow(8, Tick{100 + 2 * i});
        t.recordRow(9, Tick{101 + 2 * i});
    }
    EXPECT_GT(t.sample(8, Tick{200}).ewmaMiss, 0.9f);
}

TEST(LocalityTracker, TouchCountsHalveOncePerDecayPeriod)
{
    RowLocalityTracker t(Geometry::rcNvm(), 0.25, Tick{1000});
    for (unsigned i = 0; i < 8; ++i)
        t.recordRow(5, Tick{i});
    EXPECT_EQ(t.sample(5, Tick{10}).rowTouches, 8.0f);
    EXPECT_EQ(t.sample(5, Tick{1010}).rowTouches, 4.0f);
    EXPECT_EQ(t.sample(5, Tick{3010}).rowTouches, 1.0f);
    // sample() is non-mutating: asking again at an earlier time
    // still sees the undecayed state.
    EXPECT_EQ(t.sample(5, Tick{10}).rowTouches, 8.0f);
}

// --- HybridMemory, directly driven -------------------------------

struct TierFixture {
    explicit TierFixture(HybridTierConfig config)
        : cfg(finish(config)),
          far(DeviceKind::RcNvm, eq, TimingParams::rcNvm(), false, 32,
              Geometry::rcNvm(), {}),
          near(DeviceKind::Dram, eq, TimingParams::ddr3_1333(), false,
               32, nearGeometry(Geometry::rcNvm()), {}),
          tier(far, near, cfg, eq)
    {
        tier.registerStats(registry);
    }

    static HybridTierConfig
    finish(HybridTierConfig c)
    {
        c.enabled = true;
        c.decayPeriod = Tick{0}; // no decay: deterministic counts
        c.migrationLatency = Tick{1000};
        return c;
    }

    /** Issue one row access through the tier and drain. */
    void
    row(unsigned row_id, unsigned col, bool write = false)
    {
        DecodedAddr d;
        d.row = row_id;
        d.col = col;
        MemPacket p;
        p.addr = far.map().encode(d, Orientation::Row);
        p.orient = Orientation::Row;
        p.isWrite = write;
        ASSERT_TRUE(tier.tryIssue(p));
        eq.run();
    }

    /** Issue one column access (line spanning rows 0-7 at @p col). */
    void
    column(unsigned col)
    {
        DecodedAddr d;
        d.col = col;
        MemPacket p;
        p.addr = far.map().encode(d, Orientation::Column);
        p.orient = Orientation::Column;
        ASSERT_TRUE(tier.tryIssue(p));
        eq.run();
    }

    double stat(const std::string &name)
    {
        return registry.snapshot().get(name);
    }

    sim::EventQueue eq;
    HybridTierConfig cfg;
    MemorySystem far;
    MemorySystem near;
    HybridMemory tier;
    util::StatRegistry registry;
};

HybridTierConfig
policyConfig(MigrationPolicyKind kind, double hot_threshold = 3.0)
{
    HybridTierConfig c;
    c.policy = kind;
    c.hotThreshold = hot_threshold;
    return c;
}

TEST(HybridMemory, HotPagePromotesAfterThresholdTouches)
{
    TierFixture f(policyConfig(MigrationPolicyKind::HotPage));

    f.row(5, 0);
    f.row(5, 8);
    EXPECT_EQ(f.tier.remap().mappedRows(), 0u);
    f.row(5, 16); // third touch reaches the threshold
    EXPECT_EQ(f.tier.remap().mappedRows(), 1u);
    EXPECT_EQ(f.stat("tier.promotions"), 1.0);
    EXPECT_EQ(f.stat("tier.nearHits"), 0.0);

    // The promoted row now routes to the near tier.
    f.row(5, 24);
    EXPECT_EQ(f.stat("tier.nearHits"), 1.0);
    EXPECT_GE(f.stat("tier.near.reads"), 1.0);
    EXPECT_EQ(f.stat("tier.remapOccupancy"), 1.0);
}

TEST(HybridMemory, ColumnOverDirtyMappedRowForcesWriteback)
{
    TierFixture f(policyConfig(MigrationPolicyKind::HotPage));

    f.row(5, 0);
    f.row(5, 8);
    f.row(5, 16);
    ASSERT_EQ(f.tier.remap().mappedRows(), 1u);

    f.row(5, 24, /*write=*/true); // dirty the near copy
    f.column(0); // the column line crosses rows 0-7, row 5 included
    EXPECT_GE(f.stat("tier.colNearOverlaps"), 1.0);
    EXPECT_EQ(f.stat("tier.colDirtyForces"), 1.0);
    // A second column pass sees a clean frame: no second force.
    f.column(8);
    EXPECT_EQ(f.stat("tier.colDirtyForces"), 1.0);
    // HotPage never demotes on column pressure.
    EXPECT_EQ(f.tier.remap().mappedRows(), 1u);
}

TEST(HybridMemory, OrientationPolicyDemotesColumnScannedRows)
{
    TierFixture f(policyConfig(MigrationPolicyKind::Orientation));

    f.row(5, 0);
    f.row(5, 8);
    f.row(5, 16);
    ASSERT_EQ(f.tier.remap().mappedRows(), 1u);

    // Column touches past the veto ratio (colTouches > rowTouches)
    // demote the row back to RC-NVM.
    for (unsigned i = 0; i < 6; ++i)
        f.column(8 * i);
    EXPECT_EQ(f.tier.remap().mappedRows(), 0u);
    EXPECT_EQ(f.stat("tier.demotions"), 1.0);
    // An even number of migrations: the row translates at identity
    // again and far accesses are far once more.
    const double nearBefore = f.stat("tier.nearHits");
    f.row(5, 32);
    EXPECT_EQ(f.stat("tier.nearHits"), nearBefore);
}

TEST(HybridMemory, ResetRestoresPristineState)
{
    TierFixture f(policyConfig(MigrationPolicyKind::HotPage));
    f.row(5, 0);
    f.row(5, 8);
    f.row(5, 16);
    ASSERT_EQ(f.tier.remap().mappedRows(), 1u);
    f.tier.reset();
    EXPECT_EQ(f.tier.remap().mappedRows(), 0u);
    EXPECT_EQ(f.stat("tier.promotions"), 0.0);
    EXPECT_EQ(f.stat("tier.rowAccesses"), 0.0);
    // The tier works again after the wipe.
    f.row(5, 0);
    EXPECT_EQ(f.stat("tier.rowAccesses"), 1.0);
}

// --- Whole-machine determinism -----------------------------------

cpu::MachineConfig
hybridShardedConfig(unsigned threads)
{
    cpu::MachineConfig config;
    config.device = DeviceKind::RcNvm;
    Geometry g = geometryFor(DeviceKind::RcNvm);
    g.channels = 4;
    config.geometry = g;
    config.threads = threads;
    config.hierarchy.l3 =
        cache::CacheConfig{"L3", 64 * 1024, 64, 8};
    config.seed = 42;
    config.tier.enabled = true;
    config.tier.policy = MigrationPolicyKind::Orientation;
    config.tier.hotThreshold = 2.0;
    config.tier.migrationLatency = Tick{5000};
    return config;
}

/** Mixed row/column plans concentrated on a few hot rows so the
 *  tier promotes (and the orientation policy demotes) mid-run. */
std::vector<cpu::AccessPlan>
hotRowPlans(const cpu::Machine &machine, unsigned ops_per_core)
{
    const AddressMap &map = machine.map();
    const Geometry &g = map.geometry();
    std::vector<cpu::AccessPlan> plans(4);
    for (unsigned core = 0; core < 4; ++core) {
        for (unsigned i = 0; i < ops_per_core; ++i) {
            DecodedAddr d;
            d.channel = (core + i) % g.channels;
            d.bank = (i / 5) % g.banksPerRank;
            d.row = (core + i) % 4; // a handful of hot rows per bank
            d.col = ((i * 13) % (g.colsPerSubarray / 8)) * 8;
            const Addr row_a = map.encode(d, Orientation::Row);
            if (i % 11 == 10) {
                plans[core].push_back(cpu::MemOp::cload(
                    map.encode(d, Orientation::Column)));
            } else if (i % 5 == 0) {
                plans[core].push_back(cpu::MemOp::store(row_a));
            } else {
                plans[core].push_back(cpu::MemOp::load(row_a));
            }
        }
    }
    return plans;
}

std::string
hybridRunJson(unsigned threads, double *promotions = nullptr)
{
    cpu::Machine machine(hybridShardedConfig(threads));
    const std::vector<cpu::AccessPlan> plans =
        hotRowPlans(machine, 400);
    const cpu::RunResult r = machine.run(plans);
    if (promotions != nullptr)
        *promotions = r.stats.get("tier.promotions");
    std::ostringstream os;
    util::writeStatsJson(os, r.stats, "hybrid", r.ticks);
    return os.str();
}

TEST(HybridDeterminism, FourWorkersMatchSingleThreadByteForByte)
{
    double promotions = 0;
    const std::string single = hybridRunJson(1, &promotions);
    const std::string sharded = hybridRunJson(4);
    EXPECT_EQ(single, sharded);
    // The equivalence must be exercised by real tier activity.
    EXPECT_GT(promotions, 0.0);
}

TEST(HybridDeterminism, ShardedHybridRunIsRepeatStable)
{
    EXPECT_EQ(hybridRunJson(4), hybridRunJson(4));
}

TEST(HybridDeterminism, SameSeedHybridServiceRunsAreByteIdentical)
{
    const workload::TableSet tables =
        workload::TableSet::standard(4096, 256, 99);
    const workload::QueryWorkload workload(tables);
    const AddressMap map(geometryFor(DeviceKind::RcNvm));
    const workload::PlacedDatabase pd =
        workload.place(DeviceKind::RcNvm, map);

    const auto runOnce = [&pd] {
        cpu::MachineConfig config;
        config.device = DeviceKind::RcNvm;
        config.seed = 99;
        config.tier.enabled = true;
        config.tier.policy = MigrationPolicyKind::HotPage;
        config.tier.hotThreshold = 2.0;
        cpu::Machine machine(config);

        olxp::ServiceConfig cfg;
        cfg.oltpInterArrival = Tick{20000};
        cfg.oltpHotTupleFraction = 0.125;
        cfg.oltpHotProbability = 0.8;
        cfg.olapStreams = 1;
        cfg.olapTuplesPerScan = 256;
        cfg.horizon = Tick{2000000};
        olxp::QueryScheduler sched(machine, pd, cfg);
        const olxp::ServiceResult r = sched.run();
        std::ostringstream os;
        util::writeStatsJson(os, r.run.stats, "svc", r.run.ticks);
        return os.str();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

// --- OLTP hot-set knob -------------------------------------------

TEST(HotSetKnob, SkewShrinksTheTupleFootprint)
{
    const workload::TableSet tables =
        workload::TableSet::standard(4096, 256, 99);
    const workload::QueryWorkload workload(tables);
    const AddressMap map(geometryFor(DeviceKind::RcNvm));
    const workload::PlacedDatabase pd =
        workload.place(DeviceKind::RcNvm, map);

    const auto footprint = [&pd](double hot_frac, double hot_prob) {
        olxp::OltpGenerator gen(pd, Tick{1000}, 0.0, 7, hot_frac,
                                hot_prob);
        std::set<Addr> first;
        for (unsigned i = 0; i < 512; ++i) {
            const olxp::Request r = gen.make(Tick{0});
            first.insert(r.plan.front().addr);
        }
        return first.size();
    };
    const std::size_t uniform = footprint(0.0, 0.0);
    const std::size_t skewed = footprint(1.0 / 64.0, 1.0);
    // P(hot)=1 over a 64-tuple hot set: at most 64 distinct targets
    // versus hundreds under the uniform draw.
    EXPECT_LE(skewed, 64u);
    EXPECT_GT(uniform, 4u * skewed);
}

} // namespace
} // namespace rcnvm::mem
