/**
 * @file
 * Must NOT compile: comparing addresses across orientations.
 *
 * A row address and a column address name different cells even when
 * the raw bits agree; equality across the two spaces is only
 * meaningful after AddressMap::convert.
 */

#include "util/types.hh"

using namespace rcnvm;

bool
shouldNotCompile()
{
    RowAddr row{0x40};
    ColAddr col{0x40};
    return row == col; // ERROR: no cross-orientation comparison
}
