/**
 * @file
 * Must NOT compile: multiplying two ticks.
 *
 * tick * tick would be ps^2; the strong type only permits scaling
 * by a raw count, which is how "N cycles of period P" is spelled.
 */

#include "util/types.hh"

using namespace rcnvm;

Tick
shouldNotCompile()
{
    Tick a{500};
    Tick b{3};
    return a * b; // ERROR: Tick * Tick has no unit
}
