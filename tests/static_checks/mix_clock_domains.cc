/**
 * @file
 * Must NOT compile: adding CPU cycles to memory-bus cycles.
 *
 * The two clock domains tick at different rates (500 ps vs 750 or
 * 2500 ps); a sum of their cycle counts is dimensionally
 * meaningless. The only legal meeting point is Tick, via each
 * domain's ClockDomain::cyclesToTicks.
 */

#include "util/types.hh"

using namespace rcnvm;

CpuCycles
shouldNotCompile()
{
    CpuCycles cpu{4};
    MemCycles mem{6};
    return cpu + mem; // ERROR: cross-domain cycle arithmetic
}
