/**
 * @file
 * Must NOT compile: a column address where a row address is due.
 *
 * The whole point of OrientedAddr is that the synonym problem
 * (Sec. 4.2) cannot be reintroduced by handing the dual address to
 * a primitive that expects the original orientation.
 */

#include "util/types.hh"

using namespace rcnvm;

static Tick
rowOnly(RowAddr a)
{
    return Tick{a.value()};
}

Tick
shouldNotCompile()
{
    ColAddr col{0x1000};
    return rowOnly(col); // ERROR: ColAddr is not a RowAddr
}
