/**
 * @file
 * Positive control: everything the strong types are supposed to
 * allow, in one translation unit. If this file stops compiling, the
 * negative checks beside it prove nothing.
 */

#include "mem/geometry.hh"
#include "sim/clock_domain.hh"
#include "util/types.hh"

using namespace rcnvm;

Tick
legalUses()
{
    // Same-tag arithmetic and comparison.
    Tick t{500};
    t += Tick{250};
    t = t - Tick{250} + Tick{125};
    const bool later = t > Tick{0};

    // Scalar scaling and same-tag ratio.
    const Tick scaled = t * 4u;
    const std::uint64_t ratio = scaled / t;

    // Domain crossings through the named conversion points.
    const sim::ClockDomain<CpuClk> cpu = sim::cpuClock();
    const sim::ClockDomain<MemClk> mem = sim::memClock(Tick{750});
    const Tick a = cpu.cyclesToTicks(CpuCycles{4});
    const Tick b = mem.cyclesToTicks(mem.ticksToCycles(a));

    // Orientation crossings through the address map.
    const mem::Geometry g;
    const mem::AddressMap map(g);
    const RowAddr row{0x1000};
    const ColAddr col = map.convert(row);
    const RowAddr back = map.convert(col);

    return later ? a + b + Tick{ratio} + Tick{back.value()}
                 : Tick{row.value()};
}
