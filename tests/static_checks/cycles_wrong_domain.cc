/**
 * @file
 * Must NOT compile: converting memory-bus cycles through the CPU
 * clock. ClockDomain<Dom> only accepts Cycles<Dom>, so a cycle
 * count can never be scaled by the wrong period.
 */

#include "sim/clock_domain.hh"
#include "util/types.hh"

using namespace rcnvm;

Tick
shouldNotCompile()
{
    MemCycles burst{8};
    return sim::cpuClock().cyclesToTicks(
        burst); // ERROR: MemCycles through a CpuClk domain
}
