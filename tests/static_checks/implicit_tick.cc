/**
 * @file
 * Must NOT compile: a bare integer where a Tick is due.
 *
 * Construction is explicit so every literal that enters the time
 * base is visibly stamped with its unit at the call site.
 */

#include "util/types.hh"

using namespace rcnvm;

Tick
shouldNotCompile()
{
    Tick t = 2500; // ERROR: explicit construction required
    return t;
}
