/**
 * @file
 * Tests for the plan-building primitives: scan/fetch/store op
 * generation, gather usage, hash access, and the group-caching
 * transform structure.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "imdb/plan_builder.hh"

namespace rcnvm::imdb {
namespace {

using cpu::MemOp;
using cpu::OpKind;

unsigned
countKind(const cpu::AccessPlan &plan, OpKind kind)
{
    return static_cast<unsigned>(
        std::count_if(plan.begin(), plan.end(),
                      [kind](const MemOp &op) {
                          return op.kind == kind;
                      }));
}

struct RcFixture {
    mem::AddressMap map{mem::Geometry::rcNvm()};
    Table table{"t", Schema::uniform(16), 2048, 31};
    Database db{mem::DeviceKind::RcNvm, map};
    Database::TableId tid =
        db.addTable(&table, ChunkLayout::ColumnOriented);
};

struct GsFixture {
    mem::AddressMap map{mem::Geometry::dram()};
    Table table{"t", Schema::uniform(16), 2048, 31};
    Database db{mem::DeviceKind::GsDram, map};
    Database::TableId tid =
        db.addTable(&table, ChunkLayout::RowOriented);
};

TEST(PlanBuilderTest, TakeResetsThePlan)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.compute(5);
    EXPECT_EQ(b.take().size(), 1u);
    EXPECT_TRUE(b.take().empty());
}

TEST(PlanBuilderTest, ComputeSplitsHugeCounts)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.compute(0x100000001ull);
    const auto plan = b.take();
    EXPECT_EQ(plan.size(), 2u);
    std::uint64_t total = 0;
    for (const MemOp &op : plan)
        total += op.computeCycles;
    EXPECT_EQ(total, 0x100000001ull);
}

TEST(PlanBuilderTest, ScanEmitsColumnLoadsOnRcNvm)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.scanFieldWord(f.tid, 9, 0, 1024, 1);
    const auto plan = b.take();
    // Rotated chunks scan via row loads, unrotated via cloads; in
    // either case 128 memory ops plus one compute each.
    const unsigned memops =
        countKind(plan, OpKind::CLoad) + countKind(plan, OpKind::Load);
    EXPECT_EQ(memops, 128u);
    EXPECT_EQ(countKind(plan, OpKind::Compute), 128u);
}

TEST(PlanBuilderTest, ScanComputeScalesWithValuesPerLine)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.scanFieldWord(f.tid, 9, 0, 1024, 2);
    const auto plan = b.take();
    for (const MemOp &op : plan) {
        if (op.kind == OpKind::Compute) {
            EXPECT_EQ(op.computeCycles, 16u); // 8 values x 2 cycles
        }
    }
}

TEST(PlanBuilderTest, GatherScanUsesGLoads)
{
    GsFixture f;
    PlanBuilder b(f.db);
    b.scanFieldWord(f.tid, 9, 0, 1024, 1);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::GLoad), 128u); // 1024 / 8
    EXPECT_EQ(countKind(plan, OpKind::Load), 0u);
}

TEST(PlanBuilderTest, GatherHandlesUnalignedTail)
{
    GsFixture f;
    PlanBuilder b(f.db);
    b.scanFieldWord(f.tid, 9, 0, 1021, 0);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::GLoad), 127u);
    EXPECT_EQ(countKind(plan, OpKind::Load), 5u); // 1016..1020
}

TEST(PlanBuilderTest, FetchTuplesDeduplicatesSharedLines)
{
    RcFixture f;
    PlanBuilder b(f.db);
    // Adjacent tuples in a column-oriented chunk share row lines
    // only when they map to the same 64-byte span; fetching the
    // same tuple twice must certainly dedupe.
    b.fetchTuples(f.tid, {5, 5}, 2, 4, 0);
    const auto once = b.take();
    b.fetchTuples(f.tid, {5}, 2, 4, 0);
    const auto single = b.take();
    EXPECT_EQ(once.size(), single.size());
}

TEST(PlanBuilderTest, FetchAttachesComputePerTuple)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.fetchTuples(f.tid, {1, 100, 1000}, 0, 2, 7);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::Compute), 3u);
}

TEST(PlanBuilderTest, StoreFieldUsesColumnSpaceOnColumnLayout)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.storeFieldWord(f.tid, {0, 1, 2}, 8);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::CStore), 3u);
    EXPECT_EQ(countKind(plan, OpKind::Store), 0u);
    for (const MemOp &op : plan)
        EXPECT_EQ(op.bytes, 8u);
}

TEST(PlanBuilderTest, StoreFieldUsesRowSpaceOnDram)
{
    GsFixture f;
    PlanBuilder b(f.db);
    b.storeFieldWord(f.tid, {0, 1, 2}, 8);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::Store), 3u);
}

TEST(PlanBuilderTest, HashAccessEmitsWordOps)
{
    RcFixture f;
    Table hash{"h", Schema::uniform(2), 4096, 3};
    const auto hid = f.db.addTable(&hash, ChunkLayout::RowOriented);
    PlanBuilder b(f.db);
    b.hashAccess(hid, {7, 99, 1000}, true, 6);
    const auto plan = b.take();
    EXPECT_EQ(countKind(plan, OpKind::Store), 3u);
    EXPECT_EQ(countKind(plan, OpKind::Compute), 3u);
    b.hashAccess(hid, {7}, false, 0);
    EXPECT_EQ(countKind(b.take(), OpKind::Load), 1u);
}

TEST(PlanBuilderTest, OrderedScanWithoutGroupingInterleaves)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.orderedMultiColumnScan(f.tid, {2, 5, 9}, 0, 64, 0, 1);
    const auto plan = b.take();
    // 8 groups x 3 columns of line reads; no pins, no fences.
    const unsigned memops =
        countKind(plan, OpKind::CLoad) + countKind(plan, OpKind::Load);
    EXPECT_EQ(memops, 24u);
    EXPECT_EQ(countKind(plan, OpKind::Pin), 0u);
    EXPECT_EQ(countKind(plan, OpKind::Fence), 0u);
    EXPECT_EQ(countKind(plan, OpKind::Compute), 8u);
}

TEST(PlanBuilderTest, GroupCachingAddsPrefetchPinUnpin)
{
    RcFixture f;
    PlanBuilder b(f.db);
    b.orderedMultiColumnScan(f.tid, {2, 5, 9}, 0, 1024, 32, 1);
    const auto plan = b.take();
    // 4 batches of 256 tuples: each has 3x32 prefetch lines, one
    // fence, 3 pins, 96 consumption reads, 3 unpins.
    EXPECT_EQ(countKind(plan, OpKind::Fence), 4u);
    EXPECT_EQ(countKind(plan, OpKind::Pin), 12u);
    EXPECT_EQ(countKind(plan, OpKind::Unpin), 12u);
    EXPECT_EQ(countKind(plan, OpKind::CPrefetch), 4u * 96u);
    const unsigned consumed =
        countKind(plan, OpKind::CLoad) + countKind(plan, OpKind::Load);
    EXPECT_EQ(consumed, 4u * 96u);
}

TEST(PlanBuilderTest, OrderedScanFallsBackOnRowLayout)
{
    mem::AddressMap map(mem::Geometry::rcNvm());
    Table t{"t", Schema::uniform(16), 512, 3};
    Database db(mem::DeviceKind::RcNvm, map);
    const auto tid = db.addTable(&t, ChunkLayout::RowOriented);
    PlanBuilder b(db);
    b.orderedMultiColumnScan(tid, {2, 5, 9}, 0, 512, 64, 1);
    const auto plan = b.take();
    // Fallback: per-tuple row fetches, no pins.
    EXPECT_EQ(countKind(plan, OpKind::Pin), 0u);
    EXPECT_GT(countKind(plan, OpKind::Load) +
                  countKind(plan, OpKind::CLoad),
              0u);
}

TEST(PlanBuilderTest, EmitLinesRespectsOrientationAndWrites)
{
    RcFixture f;
    PlanBuilder b(f.db);
    const std::vector<LineRef> lines = {
        {0x0, Orientation::Row},
        {0x40, Orientation::Column},
    };
    b.emitLines(lines, true, 0);
    const auto plan = b.take();
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].kind, OpKind::Store);
    EXPECT_EQ(plan[1].kind, OpKind::CStore);
    EXPECT_EQ(plan[0].bytes, 64u);
}

} // namespace
} // namespace rcnvm::imdb
