/**
 * @file
 * Tests for the Table-2 workload: query specs, compilation on every
 * device, phase structure, and the micro-benchmark generator.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "workload/micro.hh"
#include "workload/queries.hh"

namespace rcnvm::workload {
namespace {

struct Fixture {
    TableSet tables = TableSet::standard(4096, 2048, 7);
    QueryWorkload workload{tables};
};

const std::vector<QueryId> &
allIds()
{
    static const std::vector<QueryId> ids = {
        QueryId::Q1,  QueryId::Q2,  QueryId::Q3,  QueryId::Q4,
        QueryId::Q5,  QueryId::Q6,  QueryId::Q7,  QueryId::Q8,
        QueryId::Q9,  QueryId::Q10, QueryId::Q11, QueryId::Q12,
        QueryId::Q13, QueryId::Q14, QueryId::Q15,
    };
    return ids;
}

TEST(QuerySpecs, FifteenQueriesInTable2)
{
    EXPECT_EQ(allQueries().size(), 15u);
    EXPECT_STREQ(querySpec(QueryId::Q1).name, "Q1");
    EXPECT_STREQ(querySpec(QueryId::Q15).name, "Q15");
    for (const QuerySpec &spec : allQueries()) {
        EXPECT_NE(spec.sql, nullptr);
        EXPECT_GT(std::string(spec.sql).size(), 10u);
    }
}

TEST(QuerySpecs, SuiteSizeConstantsMatchTable2)
{
    // The engine compiles all of Table 2; the timed suite is the
    // prefix that excludes the Q14/Q15 group-caching studies.
    EXPECT_EQ(allQueries().size(), kQueryCount);
    EXPECT_LT(kTimedQueryCount, kQueryCount);
    for (unsigned i = 0; i < kTimedQueryCount; ++i) {
        EXPECT_STRNE(allQueries()[i].category, "group-caching")
            << allQueries()[i].name;
    }
    EXPECT_STREQ(allQueries()[kTimedQueryCount].category,
                 "group-caching");
    EXPECT_STREQ(allQueries()[kQueryCount - 1].category,
                 "group-caching");
}

TEST(TableSetTest, StandardTablesMatchSection62)
{
    Fixture f;
    EXPECT_EQ(f.tables.a->schema().fieldCount(), 16u);
    EXPECT_EQ(f.tables.b->schema().fieldCount(), 20u);
    EXPECT_EQ(f.tables.c->schema().fieldCount(), 5u);
    // table-c has the wide field spanning several words.
    EXPECT_GT(f.tables.c->schema().fieldWords(1), 1u);
    EXPECT_EQ(f.tables.a->tuples(), 4096u);
    EXPECT_EQ(f.tables.micro->tuples(), 2048u);
}

class CompileOnDevice
    : public ::testing::TestWithParam<mem::DeviceKind>
{
  protected:
    Fixture f_;
};

TEST_P(CompileOnDevice, AllQueriesCompileNonEmpty)
{
    const mem::DeviceKind kind = GetParam();
    mem::AddressMap map(mem::geometryFor(kind));
    const PlacedDatabase pd = f_.workload.place(kind, map);
    for (const QueryId id : allIds()) {
        const CompiledQuery q = f_.workload.compile(id, pd, 4);
        EXPECT_FALSE(q.phases.empty())
            << querySpec(id).name << " on " << mem::toString(kind);
        EXPECT_GT(q.totalOps(), 0u) << querySpec(id).name;
        for (const auto &phase : q.phases)
            EXPECT_EQ(phase.size(), 4u); // one plan per core
    }
}

TEST_P(CompileOnDevice, JoinsHaveThreePhases)
{
    const mem::DeviceKind kind = GetParam();
    mem::AddressMap map(mem::geometryFor(kind));
    const PlacedDatabase pd = f_.workload.place(kind, map);
    EXPECT_EQ(f_.workload.compile(QueryId::Q8, pd).phases.size(), 3u);
    EXPECT_EQ(f_.workload.compile(QueryId::Q9, pd).phases.size(), 3u);
    EXPECT_EQ(f_.workload.compile(QueryId::Q1, pd).phases.size(), 1u);
}

TEST_P(CompileOnDevice, ColumnOpsOnlyOnRcNvm)
{
    const mem::DeviceKind kind = GetParam();
    mem::AddressMap map(mem::geometryFor(kind));
    const PlacedDatabase pd = f_.workload.place(kind, map);
    for (const QueryId id : allIds()) {
        const CompiledQuery q = f_.workload.compile(id, pd, 2);
        for (const auto &phase : q.phases) {
            for (const auto &plan : phase) {
                for (const auto &op : plan) {
                    if (op.kind == cpu::OpKind::CLoad ||
                        op.kind == cpu::OpKind::CStore) {
                        EXPECT_EQ(kind, mem::DeviceKind::RcNvm);
                    }
                    if (op.kind == cpu::OpKind::GLoad) {
                        EXPECT_EQ(kind, mem::DeviceKind::GsDram);
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Devices, CompileOnDevice,
    ::testing::Values(mem::DeviceKind::RcNvm, mem::DeviceKind::Rram,
                      mem::DeviceKind::Dram,
                      mem::DeviceKind::GsDram),
    [](const auto &info) {
        return std::string(mem::toString(info.param)) == "RC-NVM"
                   ? "RcNvm"
                   : std::string(mem::toString(info.param)) == "RRAM"
                         ? "Rram"
                         : std::string(mem::toString(
                               info.param)) == "DRAM"
                               ? "Dram"
                               : "GsDram";
    });

TEST(WorkloadTest, GroupLinesParameterChangesPlan)
{
    Fixture f;
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    const PlacedDatabase pd =
        f.workload.place(mem::DeviceKind::RcNvm, map);
    const auto without = f.workload.compile(QueryId::Q14, pd, 4, 0);
    const auto with = f.workload.compile(QueryId::Q14, pd, 4, 32);
    EXPECT_GT(with.totalOps(), without.totalOps());
}

TEST(WorkloadTest, GsDramUsesGathersOnTableA)
{
    Fixture f;
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::GsDram));
    const PlacedDatabase pd =
        f.workload.place(mem::DeviceKind::GsDram, map);
    const auto q6 = f.workload.compile(QueryId::Q6, pd, 1);
    unsigned gathers = 0;
    for (const auto &op : q6.phases[0][0])
        gathers += op.kind == cpu::OpKind::GLoad ? 1 : 0;
    EXPECT_GT(gathers, 0u);
    // Q7 runs on table-b (20 fields, not a power of two): no
    // gathers possible.
    const auto q7 = f.workload.compile(QueryId::Q7, pd, 1);
    for (const auto &op : q7.phases[0][0])
        EXPECT_NE(op.kind, cpu::OpKind::GLoad);
}

TEST(WorkloadTest, MicroBenchNames)
{
    EXPECT_STREQ(toString(MicroBench::RowRead), "row-read");
    EXPECT_STREQ(toString(MicroBench::ColWrite), "col-write");
}

TEST(WorkloadTest, MicroPlansCoverTable)
{
    Fixture f;
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    imdb::Database db(mem::DeviceKind::RcNvm, map);
    const auto tid = db.addTable(f.tables.micro.get(),
                                 imdb::ChunkLayout::ColumnOriented);
    for (const auto mb :
         {MicroBench::RowRead, MicroBench::ColRead,
          MicroBench::RowWrite, MicroBench::ColWrite}) {
        const auto plans = compileMicro(db, tid, mb, 4);
        EXPECT_EQ(plans.size(), 4u);
        std::uint64_t memops = 0;
        for (const auto &plan : plans) {
            for (const auto &op : plan)
                memops += op.isMemory() ? 1 : 0;
        }
        // 2048 tuples x 128 B / 64 B = 4096 lines in total.
        EXPECT_EQ(memops, 4096u) << toString(mb);
    }
}

TEST(WorkloadTest, MicroWritesEmitStores)
{
    Fixture f;
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::Dram));
    imdb::Database db(mem::DeviceKind::Dram, map);
    const auto tid = db.addTable(f.tables.micro.get(),
                                 imdb::ChunkLayout::RowOriented);
    const auto plans =
        compileMicro(db, tid, MicroBench::RowWrite, 2);
    bool any_store = false;
    for (const auto &plan : plans) {
        for (const auto &op : plan)
            any_store |= op.kind == cpu::OpKind::Store;
    }
    EXPECT_TRUE(any_store);
}

TEST(WorkloadTest, PartitionsAreBalanced)
{
    Fixture f;
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    const PlacedDatabase pd =
        f.workload.place(mem::DeviceKind::RcNvm, map);
    const auto q = f.workload.compile(QueryId::Q6, pd, 4);
    std::vector<std::uint64_t> per_core;
    for (const auto &plan : q.phases[0])
        per_core.push_back(plan.size());
    const auto [lo, hi] =
        std::minmax_element(per_core.begin(), per_core.end());
    EXPECT_LT(static_cast<double>(*hi - *lo),
              0.6 * static_cast<double>(*hi));
}

} // namespace
} // namespace rcnvm::workload
