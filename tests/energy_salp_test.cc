/**
 * @file
 * Tests for the two evaluation extensions: per-command energy
 * accounting and SALP-style per-subarray buffers.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace rcnvm::mem {
namespace {

MemRequest
req(const AddressMap &map, unsigned subarray, unsigned row,
    unsigned col, Orientation o = Orientation::Row,
    bool write = false)
{
    DecodedAddr d;
    d.subarray = subarray;
    d.row = row;
    d.col = col;
    MemRequest r;
    r.addr = map.encode(d, o);
    r.orient = o;
    r.isWrite = write;
    return r;
}

TEST(EnergyTest, ReadAccountsActivationAndBurst)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    const TimingParams t = timingFor(DeviceKind::RcNvm);
    mem.issue(req(mem.map(), 0, 5, 0));
    eq.run();
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.energyPJ"),
                     t.eActivate + t.eReadBurst);
}

TEST(EnergyTest, BufferHitSkipsActivationEnergy)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    const TimingParams t = timingFor(DeviceKind::RcNvm);
    mem.issue(req(mem.map(), 0, 5, 0));
    eq.run();
    mem.issue(req(mem.map(), 0, 5, 8));
    eq.run();
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.energyPJ"),
                     t.eActivate + 2 * t.eReadBurst);
}

TEST(EnergyTest, DirtyFlushPaysWritePulse)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::RcNvm, eq);
    const TimingParams t = timingFor(DeviceKind::RcNvm);
    mem.issue(req(mem.map(), 0, 5, 0, Orientation::Row, true));
    eq.run();
    // Conflict evicts the dirty buffer -> write pulse energy.
    mem.issue(req(mem.map(), 0, 9, 0));
    eq.run();
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.energyPJ"),
                     2 * t.eActivate + t.eWriteBurst +
                         t.eReadBurst + t.eWritePulse);
}

TEST(EnergyTest, GatheredLineCostsTwoBursts)
{
    sim::EventQueue eq;
    MemorySystem mem(DeviceKind::GsDram, eq);
    const TimingParams t = timingFor(DeviceKind::GsDram);
    MemRequest r = req(mem.map(), 0, 5, 0);
    r.gathered = true;
    mem.issue(std::move(r));
    eq.run();
    EXPECT_DOUBLE_EQ(mem.stats().get("mem.energyPJ"),
                     t.eActivate + 2 * t.eReadBurst);
}

TEST(EnergyTest, PresetsFavourNvmReadsDramWrites)
{
    const TimingParams dram = timingFor(DeviceKind::Dram);
    const TimingParams rram = timingFor(DeviceKind::Rram);
    const TimingParams rc = timingFor(DeviceKind::RcNvm);
    // Crossbar reads avoid the destructive-read restore; writes pay
    // the cell pulse. RC-NVM carries a mux premium over RRAM.
    EXPECT_LT(rram.eActivate, dram.eActivate);
    EXPECT_GT(rram.eWritePulse, dram.eWritePulse);
    EXPECT_GT(rc.eActivate, rram.eActivate);
    EXPECT_GT(rc.eWritePulse, rram.eWritePulse);
}

TEST(SalpTest, PerSubarrayBuffersRemoveCrossSubarrayConflicts)
{
    const AddressMap map(Geometry::rcNvm());
    const TimingParams t = timingFor(DeviceKind::RcNvm);

    Bank plain(0);
    Bank salp(map.geometry().subarraysPerBank);

    // Alternate between two subarrays of the same bank.
    unsigned plain_conflicts = 0, salp_conflicts = 0;
    for (int i = 0; i < 10; ++i) {
        const unsigned sub = i % 2;
        if (plain.access(plain.nextReady(), Orientation::Row, sub, 7,
                         false, t)
                .outcome == AccessOutcome::BufferConflict) {
            ++plain_conflicts;
        }
        if (salp.access(salp.nextReady(), Orientation::Row, sub, 7,
                        false, t)
                .outcome == AccessOutcome::BufferConflict) {
            ++salp_conflicts;
        }
    }
    EXPECT_EQ(plain_conflicts, 9u); // every access after the first
    EXPECT_EQ(salp_conflicts, 0u);
}

TEST(SalpTest, SameSubarrayStillConflicts)
{
    const TimingParams t = timingFor(DeviceKind::RcNvm);
    Bank salp(8);
    salp.access(Tick{0}, Orientation::Row, 3, 5, false, t);
    const auto s = salp.access(salp.nextReady(), Orientation::Row, 3,
                               9, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferConflict);
}

TEST(SalpTest, OrientationSwitchStillEnforcedPerSubarray)
{
    // The paper's row/column exclusivity holds within a subarray
    // even under SALP.
    const TimingParams t = timingFor(DeviceKind::RcNvm);
    Bank salp(8);
    salp.access(Tick{0}, Orientation::Row, 3, 5, false, t);
    const auto s = salp.access(salp.nextReady(), Orientation::Column,
                               3, 5, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::OrientationSwitch);
}

TEST(SalpTest, MachineLevelSalpReducesConflicts)
{
    const AddressMap map(Geometry::rcNvm());
    // Alternate loads between two subarrays of bank 0.
    cpu::AccessPlan plan;
    for (int i = 0; i < 64; ++i) {
        DecodedAddr d;
        d.subarray = static_cast<unsigned>(i % 2);
        d.row = 11;
        d.col = static_cast<unsigned>(8 * i);
        plan.push_back(cpu::MemOp::load(
            map.encode(d, Orientation::Row)));
    }
    cpu::MachineConfig base;
    base.device = DeviceKind::RcNvm;
    cpu::MachineConfig with = base;
    with.salp = true;
    cpu::Machine a(base), b(with);
    const auto ra = a.run(plan);
    const auto rb = b.run(plan);
    EXPECT_GT(ra.stats.get("mem.bufferConflicts"),
              rb.stats.get("mem.bufferConflicts"));
    EXPECT_LE(rb.ticks, ra.ticks);
}

} // namespace
} // namespace rcnvm::mem
