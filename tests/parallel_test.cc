/**
 * @file
 * Tests for the channel-sharded parallel simulation engine: the
 * event-queue splice/drain primitives it builds on, statistics
 * equivalence between RCNVM_THREADS=1 and a 4-worker run, repeat
 * stability, and the single-thread trace golden executed through
 * the sharded path.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "sim/shard.hh"
#include "util/stats_io.hh"

namespace rcnvm::cpu {
namespace {

// --- EventQueue primitives the engine relies on ------------------

TEST(EventQueueShard, InjectOrdersByScheduleTick)
{
    sim::EventQueue q;
    std::vector<int> order;
    // Local schedule at now=0 -> schedule tick 0, first in.
    q.schedule(Tick{100}, [&order] { order.push_back(0); });
    // Injected messages at the same tick sort by their source
    // schedule tick, then arrival: (100, 50) runs after both
    // (100, 0) entries regardless of insertion order.
    q.inject(Tick{100}, Tick{50}, Tick{0},
             [&order] { order.push_back(2); });
    q.inject(Tick{100}, Tick{0}, Tick{0},
             [&order] { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueShard, InjectBreaksScheduleTickTiesByProducerTick)
{
    sim::EventQueue q;
    std::vector<int> order;
    // A local event at tick 40 (producer schedule tick 0) schedules
    // an entry for tick 100: stamps (100, 40, 0).
    q.schedule(Tick{40}, [&q, &order] {
        q.schedule(Tick{100}, [&order] { order.push_back(0); });
    });
    // An injected completion with the same (when, schedTick) whose
    // producer was scheduled later sorts after it; one whose
    // producer was scheduled earlier would sort before. This is the
    // depth-2 lineage a shared queue encodes in seq order.
    q.inject(Tick{100}, Tick{40}, Tick{10},
             [&order] { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueShard, DrainThroughLeavesClockAtLastEvent)
{
    sim::EventQueue q;
    q.schedule(Tick{5}, [] {});
    q.schedule(Tick{20}, [] {});
    q.drainThrough(Tick{10});
    EXPECT_EQ(q.now(), Tick{5}); // not advanced to the limit
    EXPECT_EQ(q.pending(), 1u);
    q.advanceTo(Tick{15});
    EXPECT_EQ(q.now(), Tick{15});
    q.advanceTo(Tick{10}); // never moves backward
    EXPECT_EQ(q.now(), Tick{15});
    q.drainThrough(Tick{50});
    EXPECT_EQ(q.now(), Tick{20});
    EXPECT_EQ(q.pending(), 0u);
}

// --- Whole-machine equivalence -----------------------------------

mem::Geometry
fourChannels()
{
    mem::Geometry g = mem::geometryFor(mem::DeviceKind::RcNvm);
    g.channels = 4;
    return g;
}

MachineConfig
shardedConfig(unsigned threads)
{
    MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    config.geometry = fourChannels();
    config.threads = threads;
    // A small LLC forces misses AND capacity write-backs, so the
    // zero-latency eviction drain path crosses the shard boundary.
    config.hierarchy.l3 = cache::CacheConfig{"L3", 64 * 1024, 64, 8};
    config.seed = 42; // immune to an ambient RCNVM_SEED
    return config;
}

/** One mixed load/store plan per core, spread over all channels. */
std::vector<AccessPlan>
crossChannelPlans(const Machine &machine, unsigned ops_per_core)
{
    const mem::AddressMap &map = machine.map();
    const mem::Geometry &g = map.geometry();
    std::vector<AccessPlan> plans(4);
    for (unsigned core = 0; core < 4; ++core) {
        for (unsigned i = 0; i < ops_per_core; ++i) {
            mem::DecodedAddr d;
            d.channel = (core + i) % g.channels;
            d.rank = i % g.ranksPerChannel;
            d.bank = (i / 3) % g.banksPerRank;
            d.subarray = (i / 7) % g.subarraysPerBank;
            d.row = (core * 31 + i * 7) % g.rowsPerSubarray;
            d.col = ((i * 13) % (g.colsPerSubarray / 8)) * 8;
            const Addr a = map.encode(d, Orientation::Row);
            plans[core].push_back(i % 3 == 0 ? MemOp::store(a)
                                             : MemOp::load(a));
        }
    }
    return plans;
}

/** Run the cross-channel workload at @p threads and serialise the
 *  full statistics snapshot. */
std::string
statsJsonAt(unsigned threads)
{
    Machine machine(shardedConfig(threads));
    const std::vector<AccessPlan> plans =
        crossChannelPlans(machine, 400);
    const RunResult r = machine.run(plans);
    std::ostringstream os;
    util::writeStatsJson(os, r.stats, "parallel", r.ticks);
    return os.str();
}

TEST(ParallelEngine, FourWorkersMatchSingleThreadByteForByte)
{
    const std::string single = statsJsonAt(1);
    const std::string sharded = statsJsonAt(4);
    EXPECT_EQ(single, sharded);
}

TEST(ParallelEngine, ShardedRunIsRepeatStable)
{
    EXPECT_EQ(statsJsonAt(4), statsJsonAt(4));
}

TEST(ParallelEngine, WorkerCountClampsToChannels)
{
    Machine machine(shardedConfig(8)); // 4 channels -> 4 workers
    ASSERT_NE(machine.engine(), nullptr);
    EXPECT_EQ(machine.engine()->workers(), 4u);
    EXPECT_GT(machine.engine()->window(), Tick{0});

    Machine plain(shardedConfig(1)); // single-queue path
    EXPECT_EQ(plain.engine(), nullptr);
}

TEST(ParallelEngine, PipelineActuallyOverlapsRounds)
{
    Machine machine(shardedConfig(4));
    const std::vector<AccessPlan> plans =
        crossChannelPlans(machine, 400);
    machine.run(plans);
    ASSERT_NE(machine.engine(), nullptr);
    // A memory-bound run must spend most rounds in the overlapped
    // (core || channels) state, not in serial flushes.
    EXPECT_GT(machine.engine()->overlappedRounds(), 0u);
}

TEST(ParallelEngine, TraceGoldenHoldsAtFourThreads)
{
    // The exact single-thread golden of MachineTest
    // .SequentialLoadTraceGolden, executed through the sharded
    // engine (workers clamp to the stock 2-channel geometry).
    MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    config.threads = 4;
    AccessPlan plan;
    for (unsigned i = 0; i < 4096; ++i)
        plan.push_back(MemOp::load((Addr{i} * 64) & 0xffffffff));
    Machine machine(config);
    const RunResult r = machine.run(plan);
    EXPECT_EQ(r.ticks, Tick{42041500});
    EXPECT_EQ(r.stats.get("mem.requests"), 4096.0);
    EXPECT_EQ(r.stats.get("mem.wakeups"), 4095.0);
}

TEST(ParallelEngine, ServeAndResetWorkSharded)
{
    // serve() + reset() + a second run through the same engine: the
    // channel queues keep their clocks, mirrors restart at zero.
    Machine machine(shardedConfig(4));
    const std::vector<AccessPlan> plans =
        crossChannelPlans(machine, 64);
    const RunResult first = machine.run(plans);
    EXPECT_GT(first.ticks, Tick{0});
    machine.reset();
    const RunResult second = machine.run(plans);
    EXPECT_EQ(first.ticks, second.ticks);
}

} // namespace
} // namespace rcnvm::cpu
