/**
 * @file
 * Tests for the cache hierarchy: level latencies, MESI coherence
 * actions, the synonym engine (crossing bits, write propagation,
 * eviction clean-up), pinning, and gather bypass.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace rcnvm::cache {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::MemorySystem memory{mem::DeviceKind::RcNvm, eq};
    HierarchyConfig config;
    Hierarchy hierarchy{config, eq, memory};

    /** Blocking access helper: returns the completion tick. */
    Tick
    access(unsigned core, Addr addr, Orientation o, bool write,
           unsigned bytes = 64)
    {
        Tick done{0};
        CacheAccess a;
        a.addr = addr;
        a.orient = o;
        a.isWrite = write;
        a.bytes = bytes;
        const Tick start = eq.now();
        EXPECT_TRUE(hierarchy.access(core, a,
                                     [&](Tick t) { done = t - start; }));
        eq.run();
        return done;
    }

    Addr
    rowAddr(unsigned row, unsigned col, unsigned bank = 0)
    {
        mem::DecodedAddr d;
        d.bank = bank;
        d.row = row;
        d.col = col;
        return memory.map().encode(d, Orientation::Row);
    }

    Addr
    colAddr(unsigned row, unsigned col, unsigned bank = 0)
    {
        mem::DecodedAddr d;
        d.bank = bank;
        d.row = row;
        d.col = col;
        return memory.map().encode(d, Orientation::Column);
    }
};

TEST(HierarchyTest, MissThenL1Hit)
{
    Fixture f;
    const Tick miss = f.access(0, f.rowAddr(5, 0), Orientation::Row,
                               false);
    const Tick hit = f.access(0, f.rowAddr(5, 0), Orientation::Row,
                              false);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, f.config.cyc(f.config.l1Latency));
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.llcMisses"), 1.0);
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.l1Hits"), 1.0);
}

TEST(HierarchyTest, SameLineDifferentWordHitsL1)
{
    Fixture f;
    f.access(0, f.rowAddr(5, 0), Orientation::Row, false);
    const Tick hit = f.access(0, f.rowAddr(5, 3), Orientation::Row,
                              false, 8);
    EXPECT_EQ(hit, f.config.cyc(f.config.l1Latency));
}

TEST(HierarchyTest, MissLatencyIncludesMemory)
{
    Fixture f;
    const Tick miss = f.access(0, f.rowAddr(5, 0), Orientation::Row,
                               false);
    const Tick path =
        f.config.cyc(f.config.l1Latency + f.config.l2Latency +
         f.config.l3Latency);
    EXPECT_GT(miss, path);
}

TEST(HierarchyTest, CrossCoreReadHitsL3)
{
    Fixture f;
    f.access(0, f.rowAddr(5, 0), Orientation::Row, false);
    const Tick other = f.access(1, f.rowAddr(5, 0), Orientation::Row,
                                false);
    const Tick l3 = f.config.cyc(f.config.l1Latency + f.config.l2Latency +
                     f.config.l3Latency);
    EXPECT_EQ(other, l3);
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.llcMisses"), 1.0);
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.l3Hits"), 1.0);
}

TEST(HierarchyTest, RemoteDirtyFetchPaysPenalty)
{
    Fixture f;
    f.access(0, f.rowAddr(5, 0), Orientation::Row, true); // dirty@0
    const Tick other = f.access(1, f.rowAddr(5, 0), Orientation::Row,
                                false);
    const Tick l3 = f.config.cyc(f.config.l1Latency + f.config.l2Latency +
                     f.config.l3Latency);
    EXPECT_EQ(other,
              l3 + f.config.cyc(f.config.remoteFetchPenalty));
    EXPECT_DOUBLE_EQ(
        f.hierarchy.stats().get("cache.cohRemoteFetches"), 1.0);
}

TEST(HierarchyTest, WriteInvalidatesOtherCores)
{
    Fixture f;
    f.access(0, f.rowAddr(5, 0), Orientation::Row, false);
    f.access(1, f.rowAddr(5, 0), Orientation::Row, false);
    // Core 1 writes: core 0's copy must be invalidated.
    f.access(1, f.rowAddr(5, 0), Orientation::Row, true, 8);
    EXPECT_GE(f.hierarchy.stats().get("cache.cohInvalidations"), 1.0);
    // Core 0 reads again: not an L1 hit (copy was invalidated), and
    // it must pay the remote-dirty penalty.
    const Tick again = f.access(0, f.rowAddr(5, 0), Orientation::Row,
                                false);
    EXPECT_GT(again, f.config.cyc(f.config.l1Latency));
}

TEST(HierarchyTest, SynonymCrossingBitsSetOnFill)
{
    Fixture f;
    // Load a column line, then a crossing row line: the fill must
    // detect the crossing.
    f.access(0, f.colAddr(437, 182), Orientation::Column, false);
    f.access(0, f.rowAddr(437, 176), Orientation::Row, false);
    EXPECT_GE(f.hierarchy.stats().get("cache.crossingsFound"), 1.0);
    EXPECT_GT(f.hierarchy.stats().get("cache.synonymProbes"), 0.0);
}

TEST(HierarchyTest, NoCrossingProbesWhenSingleOrientation)
{
    Fixture f;
    for (unsigned r = 0; r < 16; ++r)
        f.access(0, f.rowAddr(r, 0), Orientation::Row, false);
    // Only row lines cached: the orientation filter skips probes.
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.synonymProbes"),
                     0.0);
}

TEST(HierarchyTest, WriteToCrossedWordPropagates)
{
    Fixture f;
    f.access(0, f.colAddr(437, 182), Orientation::Column, false);
    f.access(0, f.rowAddr(437, 176), Orientation::Row, false);
    // Word 6 of the row line (col 176+6 = 182) crosses the cached
    // column line; writing it must update the partner.
    f.access(0, f.rowAddr(437, 182), Orientation::Row, true, 8);
    EXPECT_GE(f.hierarchy.stats().get("cache.synonymUpdates"), 1.0);
    EXPECT_GT(f.hierarchy.stats().get("cache.synonymTicks"), 0.0);
}

TEST(HierarchyTest, WriteToUncrossedWordDoesNotPropagate)
{
    Fixture f;
    f.access(0, f.colAddr(437, 182), Orientation::Column, false);
    f.access(0, f.rowAddr(437, 176), Orientation::Row, false);
    // Word 0 (col 176) does not cross the cached column line 182.
    f.access(0, f.rowAddr(437, 176), Orientation::Row, true, 8);
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.synonymUpdates"),
                     0.0);
}

TEST(HierarchyTest, SynonymDisabledOnRowOnlyDevices)
{
    sim::EventQueue eq;
    mem::MemorySystem memory(mem::DeviceKind::Dram, eq);
    HierarchyConfig config;
    Hierarchy hierarchy(config, eq, memory);
    CacheAccess a;
    a.addr = 0x1000;
    EXPECT_TRUE(hierarchy.access(0, a, [](Tick) {}));
    eq.run();
    EXPECT_DOUBLE_EQ(hierarchy.stats().get("cache.synonymProbes"),
                     0.0);
}

TEST(HierarchyTest, PinRangeProtectsLinesInL3)
{
    Fixture f;
    const Addr base = f.colAddr(0, 7);
    f.access(0, base, Orientation::Column, false);
    EXPECT_EQ(f.hierarchy.pinRange(base, Orientation::Column, 64,
                                   true),
              1u);
    EXPECT_EQ(f.hierarchy.pinRange(base, Orientation::Column, 64,
                                   false),
              1u);
    // Pinning a range that is not cached changes nothing.
    EXPECT_EQ(f.hierarchy.pinRange(f.colAddr(512, 99),
                                   Orientation::Column, 128, true),
              0u);
}

TEST(HierarchyTest, GatherBypassSkipsCaches)
{
    sim::EventQueue eq;
    mem::MemorySystem memory(mem::DeviceKind::GsDram, eq);
    HierarchyConfig config;
    Hierarchy hierarchy(config, eq, memory);
    CacheAccess a;
    a.addr = 0x2000;
    a.bypass = true;
    Tick done{0};
    EXPECT_TRUE(hierarchy.access(0, a, [&](Tick t) { done = t; }));
    eq.run();
    EXPECT_GT(done, Tick{0});
    EXPECT_DOUBLE_EQ(hierarchy.stats().get("cache.bypasses"), 1.0);
    EXPECT_DOUBLE_EQ(hierarchy.stats().get("cache.llcMisses"), 1.0);
    // A second identical gather still goes to memory.
    EXPECT_TRUE(hierarchy.access(0, a, [&](Tick t) { done = t; }));
    eq.run();
    EXPECT_DOUBLE_EQ(hierarchy.stats().get("cache.llcMisses"), 2.0);
}

TEST(HierarchyTest, DirtyEvictionWritesBack)
{
    Fixture f;
    // Dirty many distinct L3 sets is hard at 8 MB; instead shrink
    // the hierarchy so eviction happens quickly.
    HierarchyConfig small;
    small.l1 = CacheConfig{"L1", 512, 64, 2};
    small.l2 = CacheConfig{"L2", 1024, 64, 2};
    small.l3 = CacheConfig{"L3", 2048, 64, 2};
    sim::EventQueue eq;
    mem::MemorySystem memory(mem::DeviceKind::RcNvm, eq);
    Hierarchy hierarchy(small, eq, memory);
    // Write lines mapping to one L3 set until it spills.
    for (unsigned i = 0; i < 8; ++i) {
        mem::DecodedAddr d;
        d.row = i;
        CacheAccess a;
        a.addr = memory.map().encode(d, Orientation::Row);
        a.isWrite = true;
        a.bytes = 8;
        EXPECT_TRUE(hierarchy.access(0, a, [](Tick) {}));
        eq.run();
    }
    EXPECT_GT(hierarchy.stats().get("cache.writebacks"), 0.0);
    EXPECT_GT(memory.stats().get("mem.writes"), 0.0);
}

TEST(HierarchyTest, StatsResetClearsEverything)
{
    Fixture f;
    f.access(0, f.rowAddr(1, 0), Orientation::Row, true);
    f.hierarchy.reset();
    const auto stats = f.hierarchy.stats();
    EXPECT_DOUBLE_EQ(stats.get("cache.accesses"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("cache.llcMisses"), 0.0);
    // And the data is gone: the next access misses again.
    const Tick miss = f.access(0, f.rowAddr(1, 0), Orientation::Row,
                               false);
    EXPECT_GT(miss, f.config.cyc(f.config.l1Latency));
}

} // namespace
} // namespace rcnvm::cache
