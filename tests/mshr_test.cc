/**
 * @file
 * Tests for the non-blocking miss path: MSHR coalescing, retry and
 * wakeup ordering when the MSHR file is exhausted, channel-queue
 * backpressure, and the core/hierarchy clock unification.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "cpu/machine.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace rcnvm::cache {
namespace {

struct Fixture {
    explicit Fixture(HierarchyConfig cfg = HierarchyConfig{})
        : config(cfg), hierarchy(config, eq, memory)
    {
    }

    sim::EventQueue eq;
    mem::MemorySystem memory{mem::DeviceKind::RcNvm, eq};
    HierarchyConfig config;
    Hierarchy hierarchy;

    Addr
    rowAddr(unsigned row, unsigned col, unsigned bank = 0)
    {
        mem::DecodedAddr d;
        d.bank = bank;
        d.row = row;
        d.col = col;
        return memory.map().encode(d, Orientation::Row);
    }

    CacheAccess
    read(Addr addr)
    {
        CacheAccess a;
        a.addr = addr;
        return a;
    }
};

TEST(MshrFileTest, AllocateFindFreeRoundTrip)
{
    MshrFile file(2);
    const LineKey a{0x1000, Orientation::Row};
    const LineKey b{0x2000, Orientation::Row};
    EXPECT_EQ(file.find(a), nullptr);

    MshrEntry *ea = file.allocate(a);
    ASSERT_NE(ea, nullptr);
    EXPECT_EQ(file.find(a), ea);
    EXPECT_FALSE(file.full());

    MshrEntry *eb = file.allocate(b);
    ASSERT_NE(eb, nullptr);
    EXPECT_TRUE(file.full());
    EXPECT_EQ(file.allocate(LineKey{0x3000, Orientation::Row}),
              nullptr);

    file.free(*ea);
    EXPECT_FALSE(file.full());
    EXPECT_EQ(file.find(a), nullptr);
    EXPECT_EQ(file.inUse(), 1u);
    EXPECT_DOUBLE_EQ(file.occupancy().max(), 2.0);
}

TEST(MshrTest, ConcurrentSameLineMissesCoalesce)
{
    Fixture f;
    const Addr addr = f.rowAddr(7, 0);
    unsigned done = 0;
    Tick t0{0}, t1{0};

    // Two cores miss on the same line in the same cycle: one memory
    // request, two completions.
    ASSERT_TRUE(f.hierarchy.access(0, f.read(addr),
                                   [&](Tick t) { ++done; t0 = t; }));
    ASSERT_TRUE(f.hierarchy.access(1, f.read(addr),
                                   [&](Tick t) { ++done; t1 = t; }));
    f.eq.run();

    EXPECT_EQ(done, 2u);
    EXPECT_GT(t0, Tick{0});
    EXPECT_GT(t1, Tick{0});
    const auto cs = f.hierarchy.stats();
    EXPECT_DOUBLE_EQ(cs.get("cache.llcMisses"), 2.0);
    EXPECT_DOUBLE_EQ(cs.get("cache.mshrCoalesced"), 1.0);
    EXPECT_DOUBLE_EQ(f.memory.stats().get("mem.reads"), 1.0);

    // Both cores got a copy: their next accesses hit in L1.
    Tick hit0{0}, hit1{0};
    const Tick start = f.eq.now();
    ASSERT_TRUE(f.hierarchy.access(
        0, f.read(addr), [&](Tick t) { hit0 = t - start; }));
    ASSERT_TRUE(f.hierarchy.access(
        1, f.read(addr), [&](Tick t) { hit1 = t - start; }));
    f.eq.run();
    EXPECT_EQ(hit0, f.config.cyc(f.config.l1Latency));
    EXPECT_EQ(hit1, f.config.cyc(f.config.l1Latency));
}

TEST(MshrTest, CoalescedWriteLeavesLineModified)
{
    Fixture f;
    const Addr addr = f.rowAddr(9, 0);
    unsigned done = 0;
    ASSERT_TRUE(f.hierarchy.access(0, f.read(addr),
                                   [&](Tick) { ++done; }));
    CacheAccess w = f.read(addr);
    w.isWrite = true;
    w.bytes = 8;
    ASSERT_TRUE(f.hierarchy.access(1, w, [&](Tick) { ++done; }));
    f.eq.run();
    EXPECT_EQ(done, 2u);
    EXPECT_DOUBLE_EQ(f.memory.stats().get("mem.reads"), 1.0);

    // Core 1 wrote the line: a third core's read must pay the
    // remote-dirty fetch penalty, proving the write survived the
    // coalesced fill.
    Tick t2{0};
    const Tick start = f.eq.now();
    ASSERT_TRUE(f.hierarchy.access(2, f.read(addr),
                                   [&](Tick t) { t2 = t - start; }));
    f.eq.run();
    const Tick l3 = f.config.cyc(f.config.l1Latency + f.config.l2Latency +
                     f.config.l3Latency);
    EXPECT_EQ(t2, l3 + f.config.cyc(f.config.remoteFetchPenalty));
}

TEST(MshrTest, MshrFullRefusesThenWakes)
{
    HierarchyConfig cfg;
    cfg.mshrs = 1;
    Fixture f(cfg);

    Tick first_done{0};
    Tick woken_at{0};
    ASSERT_TRUE(f.hierarchy.access(
        0, f.read(f.rowAddr(1, 0)),
        [&](Tick t) { first_done = t; }));

    // The only MSHR is taken: a different-line miss must be refused
    // and counted, without invoking its continuation.
    f.hierarchy.setRetryHandler(
        1, [&] { woken_at = f.eq.now(); });
    bool second_done = false;
    EXPECT_FALSE(f.hierarchy.access(1, f.read(f.rowAddr(2, 0)),
                                    [&](Tick) { second_done = true; }));
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.retries"), 1.0);

    f.eq.run();
    EXPECT_GT(first_done, Tick{0});
    EXPECT_FALSE(second_done);
    // Wakeup ordering: the retry notification fires when the fill
    // frees the MSHR, which is before the first access's private
    // fill latency elapses.
    EXPECT_GT(woken_at, Tick{0});
    EXPECT_LE(woken_at, first_done);

    // Re-presenting after the wakeup succeeds.
    EXPECT_TRUE(f.hierarchy.access(1, f.read(f.rowAddr(2, 0)),
                                   [&](Tick) { second_done = true; }));
    f.eq.run();
    EXPECT_TRUE(second_done);
}

TEST(MshrTest, PrefetchCoalescesIntoDemandMiss)
{
    Fixture f;
    const Addr addr = f.rowAddr(3, 0);
    unsigned done = 0;
    ASSERT_TRUE(f.hierarchy.access(0, f.read(addr),
                                   [&](Tick) { ++done; }));
    CacheAccess p = f.read(addr);
    p.prefetchL3 = true;
    p.orient = Orientation::Row;
    ASSERT_TRUE(f.hierarchy.access(1, p, [&](Tick) { ++done; }));
    f.eq.run();
    EXPECT_EQ(done, 2u);
    EXPECT_DOUBLE_EQ(f.memory.stats().get("mem.reads"), 1.0);
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.mshrCoalesced"),
                     1.0);
}

TEST(MshrTest, OccupancyStatIsExported)
{
    Fixture f;
    ASSERT_TRUE(
        f.hierarchy.access(0, f.read(f.rowAddr(1, 0)), [](Tick) {}));
    ASSERT_TRUE(
        f.hierarchy.access(0, f.read(f.rowAddr(2, 0)), [](Tick) {}));
    f.eq.run();
    const auto s = f.hierarchy.stats();
    EXPECT_DOUBLE_EQ(s.get("cache.maxMshrOccupancy"), 2.0);
    EXPECT_GT(s.get("cache.mshrOccupancy"), 0.0);
}

TEST(MshrTest, ResetClearsMissPathState)
{
    HierarchyConfig cfg;
    cfg.mshrs = 1;
    Fixture f(cfg);
    ASSERT_TRUE(
        f.hierarchy.access(0, f.read(f.rowAddr(1, 0)), [](Tick) {}));
    EXPECT_FALSE(
        f.hierarchy.access(1, f.read(f.rowAddr(2, 0)), [](Tick) {}));
    f.eq.run(); // drain: reset is only defined between runs
    f.hierarchy.reset();
    f.memory.reset();
    const auto s = f.hierarchy.stats();
    EXPECT_DOUBLE_EQ(s.get("cache.retries"), 0.0);
    EXPECT_DOUBLE_EQ(s.get("cache.maxMshrOccupancy"), 0.0);
    // The miss path is empty again: a fresh miss is accepted and the
    // occupancy statistic restarts from zero.
    EXPECT_TRUE(
        f.hierarchy.access(1, f.read(f.rowAddr(2, 0)), [](Tick) {}));
    f.eq.run();
    EXPECT_DOUBLE_EQ(f.hierarchy.stats().get("cache.maxMshrOccupancy"),
                     1.0);
}

} // namespace
} // namespace rcnvm::cache

namespace rcnvm::cpu {
namespace {

TEST(BackpressureTest, TinyQueuesCompleteWithoutDeadlock)
{
    // Four cores hammer distinct lines through per-channel queues of
    // depth 2: far more outstanding work than the memory system will
    // accept at once. The run must complete (Machine::run panics on
    // deadlock) with the queues never overshooting their capacity.
    MachineConfig cfg;
    cfg.device = mem::DeviceKind::RcNvm;
    cfg.memQueueCapacity = 2;
    cfg.hierarchy.mshrs = 8;

    Machine machine(cfg);
    std::vector<AccessPlan> plans(4);
    for (unsigned c = 0; c < 4; ++c) {
        for (unsigned i = 0; i < 128; ++i) {
            const Addr a = Addr{c} * (1u << 20) + Addr{i} * 64;
            plans[c].push_back(i % 4 == 3 ? MemOp::store(a)
                                          : MemOp::load(a));
        }
    }
    const RunResult r = machine.run(plans);

    EXPECT_GT(r.ticks, Tick{0});
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.memOps"), 4.0 * 128.0);
    EXPECT_LE(r.stats.get("mem.maxQueueOccupancy"), 2.0);
    // The path is saturated: refusals and queue rejections happened
    // and every one of them was retried to completion.
    EXPECT_GT(r.stats.get("mem.rejectedIssues"), 0.0);
    EXPECT_EQ(r.stats.get("cache.retries"), r.stats.get("cpu.retries"));
    EXPECT_GE(r.stats.get("cpu.retryStallTicks"), 0.0);
}

TEST(BackpressureTest, SharedLinesCoalesceUnderStress)
{
    MachineConfig cfg;
    cfg.device = mem::DeviceKind::RcNvm;
    cfg.memQueueCapacity = 4;
    Machine machine(cfg);

    // All four cores walk the same lines concurrently.
    std::vector<AccessPlan> plans(4);
    for (unsigned c = 0; c < 4; ++c)
        for (unsigned i = 0; i < 64; ++i)
            plans[c].push_back(MemOp::load(Addr{i} * 64));
    const RunResult r = machine.run(plans);

    EXPECT_GT(r.stats.get("cache.mshrCoalesced"), 0.0);
    EXPECT_LE(r.stats.get("mem.maxQueueOccupancy"), 4.0);
    EXPECT_LT(r.stats.get("mem.requests"),
              r.stats.get("cache.llcMisses"));
}

TEST(ClockUnificationTest, CoreClockFollowsHierarchyConfig)
{
    // Halving the clock (doubling the period) must double the time a
    // pure-compute plan takes: the core has no clock of its own.
    MachineConfig fast;
    MachineConfig slow;
    slow.hierarchy.cpuPeriod = 2 * fast.hierarchy.cpuPeriod;

    const AccessPlan plan{MemOp::compute(1000)};
    const RunResult rf = Machine(fast).run(plan);
    const RunResult rs = Machine(slow).run(plan);
    EXPECT_EQ(rf.ticks, fast.hierarchy.cpuPeriod * 1000u);
    EXPECT_EQ(rs.ticks, 2 * rf.ticks);
}

} // namespace
} // namespace rcnvm::cpu
