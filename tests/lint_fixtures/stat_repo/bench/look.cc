// RL005 fixture mini-repo, consumer side. The first four lookups
// resolve (literal, sampled fan-out, prefix family, base+suffix);
// the last two are unknown. A file-local registration may be
// consumed in the same file without a src/ counterpart.
struct StatsMap;

void
report(const StatsMap &m)
{
    print(m.at("mem.reads"));
    print(m.at("mem.queueDepth.max"));
    print(m.at("cpu.core0.stalls"));
    print(m.at("serve.oltpLatencyP99"));
    print(m.at("mem.writes"));  // unknown
    print(m.get("serve.oops")); // unknown
}

void
localRegistryMechanics(Registry &g)
{
    g.addCounter("loc.hits", 0);
    print(g.at("loc.hits")); // file-local: exempt
}
