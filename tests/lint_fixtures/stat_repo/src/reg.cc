// RL005 fixture mini-repo, registration side. Exercises every
// registration shape the check must understand: plain literals,
// dynamic families with a literal prefix, dynamic bases with a
// literal suffix, sampled fan-out, and a formula body consuming an
// unknown input (the one src-side finding).
struct Registry;

void
wire(Registry &g)
{
    g.addCounter("mem.reads", 0);
    g.add("mem.busUtilization", 0.5);
    g.addSampled("mem.queueDepth", 0);
    g.addCounter("cpu.core" + std::to_string(3) + ".stalls", 0);
    g.addCounter("serve.oltp", 0);
    g.addHistogram(className + "LatencyP99", 0);
    g.addFormula("mem.missRate", [&g] {
        return g.counter("mem.misses"); // unknown: src-side lookup
    });
}
