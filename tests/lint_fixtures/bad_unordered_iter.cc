// lint-as: src/sim/bad_unordered_iter.cc
//
// RL001 known-bad: iteration over unordered (and pointer-keyed)
// containers whose bodies reach order-sensitive sinks. Fixtures are
// linted, never compiled, so declarations are minimal sketches.
#include <map>
#include <unordered_map>
#include <vector>

struct Registry {
    void add(const char *name, double v);
    void set(const char *name, double v);
};

struct EventQueue {
    template <typename F> void schedule(unsigned long when, F cb);
};

void
statsFromUnordered(std::unordered_map<int, int> &m, Registry &r)
{
    for (const auto &kv : m) { // expect[RL001]
        r.add("sim.value", static_cast<double>(kv.second));
    }
}

using BankIndex = std::unordered_map<void *, int>;

void
scheduleFromAlias(BankIndex &banks, EventQueue &eq)
{
    for (auto &kv : banks) // expect[RL001]
        eq.schedule(10, [v = kv.second] { (void)v; });
}

void
insertFromPointerKeyedMap(std::map<int *, int> &pm,
                          std::vector<int> &out)
{
    for (auto &kv : pm) // expect[RL001]
        out.push_back(kv.second);
}

void
iteratorStyleLoop(std::unordered_map<int, int> &m, Registry &r)
{
    for (auto it = m.begin(); it != m.end(); ++it) // expect[RL001]
        r.set("sim.other", static_cast<double>(it->second));
}
