// lint-as: bench/bad_raw_parse.cc
//
// RL004 known-bad: direct raw-parse calls outside src/util. The
// repo's one strict parser is util::parseUint64 (PR 8); everything
// else silently accepts garbage ("12abc", overflow, empty).
#include <cstdio>
#include <cstdlib>
#include <string>

int
parseArgs(const char *arg, const std::string &env)
{
    int threads = atoi(arg); // expect[RL004]
    int seed = std::stoi(env); // expect[RL004]
    unsigned hex = 0;
    sscanf(arg, "%x", &hex); // expect[RL004]
    char *end = nullptr;
    // rcnvm-lint: parse-ok (demonstrates the escape hatch)
    auto raw = strtoull(arg, &end, 10);
    return threads + seed + static_cast<int>(hex + raw);
}
