// lint-as: src/sim/good_iteration.cc
//
// RL001 known-good: order-independent bodies, ordered containers,
// and the `ordered-ok` escape hatch must all stay clean.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

struct Registry {
    void add(const char *name, double v);
};

void
orderIndependentBody(std::unordered_map<int, int> &m)
{
    for (auto &kv : m)
        ++kv.second; // no order-sensitive sink
}

void
collectThenSort(std::unordered_map<int, int> &m, Registry &r)
{
    std::vector<int> keys;
    // rcnvm-lint: ordered-ok (keys are sorted before use below)
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (int k : keys)
        r.add("sim.sorted", static_cast<double>(k));
}

void
orderedMapIsFine(std::map<int, int> &ordered, Registry &r)
{
    // Value-keyed ordered map: iteration order is the key order.
    // (Named distinctly from the unordered params above: the check
    // resolves names per file, not per scope, so reusing a name
    // that is unordered elsewhere in the file would flag here too.)
    for (const auto &kv : ordered)
        r.add("sim.ordered", static_cast<double>(kv.second));
}

void
vectorIsFine(std::vector<int> &v, std::vector<int> &out)
{
    for (int x : v)
        out.push_back(x);
}
