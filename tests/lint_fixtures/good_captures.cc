// lint-as: src/olxp/good_captures.cc
//
// RL003 known-good: this/value/move captures into scheduled
// lambdas, by-reference lambdas handed to non-scheduling calls
// (executed synchronously, no lifetime hazard), and the
// `capture-ok` escape hatch.
#include <algorithm>
#include <utility>
#include <vector>

struct EventQueue {
    template <typename F> void schedule(unsigned long when, F cb);
};

struct Service {
    EventQueue &eq;
    std::vector<int> pending;

    void
    dispatch(std::vector<int> batch)
    {
        eq.schedule(10, [this] { drain(); });
        eq.schedule(20, [this, b = std::move(batch)] { use(b); });
        int total = 0;
        std::for_each(pending.begin(), pending.end(),
                      [&total](int x) { total += x; });
        // rcnvm-lint: capture-ok (total outlives the drain below)
        eq.schedule(30, [&total] { ++total; });
        drainNow();
    }

    void drain();
    void drainNow();
    void use(const std::vector<int> &b);
};
