#!/usr/bin/env python3
"""Fixture suite for rcnvm-lint (ctest -L static_checks).

Three layers, mirroring how the tool is used:

1. Per-file fixtures: every ``*.cc`` in this directory is linted
   under the virtual path from its ``// lint-as:`` header, and the
   emitted diagnostics must match the ``expect[RLxxx]`` markers
   exactly — same line, same check ID, nothing extra, nothing
   missing. ``bad_*`` fixtures must exit 1, ``good_*`` must exit 0,
   which also proves every suppression pragma works.

2. Stat mini-repo: ``stat_repo/`` is linted with ``--root`` and must
   report exactly the known-unknown statistic names (registration
   shapes, fan-out/prefix/suffix resolution, DESIGN.md table
   parsing, file-local exemption).

3. Baseline mechanics: ``--update-baseline`` over a known-bad
   fixture followed by ``--baseline`` must suppress every finding
   and flip the exit code to 0.

Usage: run_lint_fixtures.py <rcnvm_lint-binary> <fixtures-dir>
"""

import pathlib
import re
import subprocess
import sys
import tempfile

DIAG = re.compile(r"^(.*):(\d+):(\d+): (RL\d{3}): ")
EXPECT = re.compile(r"expect\[(RL\d{3})\]")
LINT_AS = re.compile(r"^//\s*lint-as:\s*(\S+)")

STAT_REPO_UNKNOWNS = {
    "mem.misses",   # src formula body lookup
    "mem.writes",   # bench lookup
    "serve.oops",   # bench lookup, get() accessor
    "mem.bogus2",   # DESIGN.md 4c table, brace-expanded
}

failures = []


def run(binary, args):
    proc = subprocess.run(
        [binary] + args, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True
    )
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG.match(line)
        if m:
            diags.append((int(m.group(2)), m.group(4)))
    return proc.returncode, diags, proc.stdout


def check(cond, what, detail=""):
    if cond:
        print("PASS %s" % what)
    else:
        failures.append(what)
        print("FAIL %s\n%s" % (what, detail))


def fixture_expectations(path):
    expected = []
    for lineno, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        for m in EXPECT.finditer(line):
            expected.append((lineno, m.group(1)))
    return sorted(expected)


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    binary = sys.argv[1]
    fixtures = pathlib.Path(sys.argv[2])

    for path in sorted(fixtures.glob("*.cc")):
        first = path.read_text().splitlines()[0]
        m = LINT_AS.match(first)
        virtual = m.group(1) if m else "src/" + path.name
        code, diags, out = run(
            binary, ["--as", virtual, str(path)]
        )
        expected = fixture_expectations(path)
        check(
            sorted(diags) == expected,
            "%s diagnostics" % path.name,
            "expected %r\n     got %r\noutput:\n%s"
            % (expected, sorted(diags), out),
        )
        check(
            code == (1 if expected else 0),
            "%s exit code" % path.name,
            "expected %d, got %d" % (1 if expected else 0, code),
        )

    # Stat-name mini-repo: exact unknown set, all RL005.
    code, diags, out = run(
        binary, ["--root", str(fixtures / "stat_repo")]
    )
    names = set(re.findall(r"unknown stat '([^']+)'", out))
    check(
        names == STAT_REPO_UNKNOWNS
        and all(d[1] == "RL005" for d in diags)
        and len(diags) == len(STAT_REPO_UNKNOWNS),
        "stat_repo unknown set",
        "expected %r\n     got %r\noutput:\n%s"
        % (STAT_REPO_UNKNOWNS, names, out),
    )
    check(code == 1, "stat_repo exit code",
          "expected 1, got %d" % code)

    # Baseline mechanics on a known-bad fixture.
    bad = fixtures / "bad_raw_parse.cc"
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".baseline", delete=False
    ) as tmp:
        baseline = tmp.name
    code, _, out = run(
        binary,
        ["--as", "bench/bad_raw_parse.cc", "--update-baseline",
         baseline, str(bad)],
    )
    check(code == 0, "baseline update exit code",
          "expected 0, got %d\n%s" % (code, out))
    code, diags, out = run(
        binary,
        ["--as", "bench/bad_raw_parse.cc", "--baseline", baseline,
         str(bad)],
    )
    check(
        code == 0 and not diags,
        "baselined run is clean",
        "exit %d, diags %r\noutput:\n%s" % (code, diags, out),
    )
    # A baselined run must still fail on a NEW finding: lint the
    # same file under a different path so every key misses.
    code, diags, _ = run(
        binary,
        ["--as", "bench/other.cc", "--baseline", baseline,
         str(bad)],
    )
    check(
        code == 1 and diags,
        "new findings escape the baseline",
        "exit %d, diags %r" % (code, diags),
    )
    pathlib.Path(baseline).unlink()

    if failures:
        print("\n%d fixture check(s) failed" % len(failures))
        return 1
    print("\nall lint fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
