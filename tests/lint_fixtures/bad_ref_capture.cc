// lint-as: src/olxp/bad_ref_capture.cc
//
// RL003 known-bad: lambdas scheduled on the event queue (or posted
// to a shard mailbox) capturing locals by reference. The slab queue
// outlives any enclosing scope, so these dangle.
struct EventQueue {
    template <typename F> void schedule(unsigned long when, F cb);
    template <typename F> void scheduleAfter(unsigned long d, F cb);
};

struct ShardMailbox {
    template <typename F>
    void post(unsigned long when, unsigned long st,
              unsigned long st2, F cb);
};

void
scheduleWithDanglingCaptures(EventQueue &eq, ShardMailbox &mb)
{
    int local = 0;
    eq.schedule(100, [&] { ++local; }); // expect[RL003]
    eq.scheduleAfter(5, [&local] { ++local; }); // expect[RL003]
    mb.post(100, 90, 80, [&local] { ++local; }); // expect[RL003]
}
