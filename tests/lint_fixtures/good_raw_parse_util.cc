// lint-as: src/util/good_raw_parse_util.cc
//
// RL004 known-good: src/util is where the strict parser wraps the
// raw primitives, so raw-parse calls are legal here.
#include <cstdlib>

namespace rcnvm::util {

unsigned long long
parseBody(const char *text, char **end)
{
    return strtoull(text, end, 10); // inside src/util: clean
}

} // namespace rcnvm::util
