// lint-as: src/mem/bad_raw_clock_param.hh
//
// RL002 known-bad: new signatures in src/{mem,sim,cpu} must not
// take raw wide integers where the name says tick/cycle/row/col —
// the typed vocabulary (Tick, CpuCycles, MemCycles, RowAddr,
// ColAddr) cannot be opted out of.
#include <cstdint>

namespace rcnvm::mem {

void issueAt(std::uint64_t tick); // expect[RL002]

// Both parameters below are raw and must each be flagged.
void convert(std::uint64_t row, // expect[RL002]
             unsigned long long col_addr); // expect[RL002]

struct Controller {
    void setRefreshPeriod(std::uint64_t cycles) const; // expect[RL002]
    std::uint64_t busyUntilTick; // member, not a parameter: clean
};

} // namespace rcnvm::mem
