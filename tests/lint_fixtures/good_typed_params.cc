// lint-as: src/mem/good_typed_params.cc
//
// RL002 known-good: typed parameters, identifier families the check
// must exempt (row_id is a remap-table identity, not an address),
// call sites, and the `raw-ok` escape hatch.
#include <cstdint>

namespace rcnvm::mem {

struct Tick {
    std::uint64_t v;
};

void issueAt(Tick when);                  // typed: clean
void touchNear(std::uint64_t row_id);     // identity, not address
void resize(std::uint64_t count);         // no clock/orient name
// rcnvm-lint: raw-ok (mirrors an external trace-format field)
void legacyEntry(std::uint64_t tick);

void
caller()
{
    issueAt(Tick{std::uint64_t{7}}); // call site, not a declarator
    touchNear(std::uint64_t{3});
}

} // namespace rcnvm::mem
