/**
 * @file
 * Cross-cutting property tests, parameterised over devices,
 * layouts, and timing presets:
 *
 *  - placement coverage: every (tuple, word) is addressable, all
 *    addresses are unique, and field scans cover every tuple, for
 *    every device x layout combination;
 *  - bank timing monotonicity and outcome soundness over random
 *    request sequences on every preset;
 *  - end-to-end replay determinism for every device;
 *  - dual-address involution over the whole placement.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cpu/machine.hh"
#include "imdb/database.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"
#include "util/random.hh"

namespace rcnvm {
namespace {

using imdb::ChunkLayout;
using imdb::Database;
using imdb::LineRef;
using imdb::Schema;
using imdb::Table;

// ----------------------------------------------------------------
// Placement properties over device x layout x tuple-width.
// ----------------------------------------------------------------

using PlacementParam =
    std::tuple<mem::DeviceKind, ChunkLayout, unsigned /*fields*/>;

class PlacementProperty
    : public ::testing::TestWithParam<PlacementParam>
{
  protected:
    void
    SetUp() override
    {
        const auto [kind, layout, fields] = GetParam();
        kind_ = kind;
        layout_ = layout;
        table_ = std::make_unique<Table>(
            "t", Schema::uniform(fields), 2500, 77);
        map_ = std::make_unique<mem::AddressMap>(
            mem::geometryFor(kind));
        db_ = std::make_unique<Database>(kind, *map_);
        tid_ = db_->addTable(table_.get(), layout);
    }

    mem::DeviceKind kind_;
    ChunkLayout layout_;
    std::unique_ptr<Table> table_;
    std::unique_ptr<mem::AddressMap> map_;
    std::unique_ptr<Database> db_;
    Database::TableId tid_ = 0;
};

TEST_P(PlacementProperty, AddressesAreUniqueAndAligned)
{
    std::set<Addr> seen;
    const unsigned tw = table_->schema().tupleWords();
    for (std::uint64_t t = 0; t < table_->tuples(); t += 3) {
        for (unsigned w = 0; w < tw; ++w) {
            const Addr a =
                db_->wordAddr(tid_, t, w, Orientation::Row);
            EXPECT_EQ(a % 8, 0u);
            EXPECT_TRUE(seen.insert(a).second);
        }
    }
}

TEST_P(PlacementProperty, DualAddressInvolution)
{
    if (!db_->columnCapable())
        GTEST_SKIP() << "row-only device";
    const unsigned tw = table_->schema().tupleWords();
    for (std::uint64_t t = 0; t < table_->tuples(); t += 61) {
        for (unsigned w = 0; w < tw; w += 3) {
            const Addr row =
                db_->wordAddr(tid_, t, w, Orientation::Row);
            const Addr col =
                db_->wordAddr(tid_, t, w, Orientation::Column);
            EXPECT_EQ(map_->convert(row, Orientation::Row,
                                    Orientation::Column),
                      col);
            EXPECT_EQ(map_->convert(col, Orientation::Column,
                                    Orientation::Row),
                      row);
        }
    }
}

TEST_P(PlacementProperty, FieldScanCoversAllTuples)
{
    const unsigned tw = table_->schema().tupleWords();
    const unsigned w = tw / 2;
    std::vector<LineRef> lines;
    db_->fieldScanLines(tid_, w, 0, table_->tuples(), lines);
    std::set<std::pair<Addr, Orientation>> have;
    for (const LineRef &l : lines)
        have.insert({l.addr, l.orient});
    for (std::uint64_t t = 0; t < table_->tuples(); ++t) {
        bool covered =
            have.count({db_->wordAddr(tid_, t, w, Orientation::Row) &
                            ~63ull,
                        Orientation::Row}) > 0;
        if (!covered && db_->columnCapable()) {
            covered = have.count(
                          {db_->wordAddr(tid_, t, w,
                                         Orientation::Column) &
                               ~63ull,
                           Orientation::Column}) > 0;
        }
        EXPECT_TRUE(covered) << "tuple " << t;
        if (!covered)
            break; // avoid thousands of failures
    }
}

TEST_P(PlacementProperty, TupleLinesContainEveryWord)
{
    const unsigned tw = table_->schema().tupleWords();
    for (std::uint64_t t = 0; t < table_->tuples(); t += 499) {
        std::vector<LineRef> lines;
        db_->tupleLines(tid_, t, 0, tw, lines);
        for (unsigned w = 0; w < tw; ++w) {
            bool found = false;
            for (const LineRef &l : lines) {
                const Addr a =
                    db_->wordAddr(tid_, t, w, l.orient) & ~63ull;
                found |= a == l.addr;
            }
            EXPECT_TRUE(found) << "tuple " << t << " word " << w;
        }
    }
}

TEST_P(PlacementProperty, PhysicalScanTouchesEveryWordOnce)
{
    std::vector<LineRef> lines;
    db_->physicalScanLines(tid_, lines);
    std::set<Addr> unique;
    for (const LineRef &l : lines)
        EXPECT_TRUE(unique.insert(l.addr).second);
    // Lines cover at least the table's words; unaligned chunk
    // edges may over-fetch up to 7 words per physical row touched.
    const std::uint64_t words =
        table_->tuples() * table_->schema().tupleWords();
    EXPECT_GE(lines.size() * 8, words);
    EXPECT_LE(lines.size() * 8,
              words + words / 16 + 1024); // <= ~6% edge slack
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlacementProperty,
    ::testing::Combine(
        ::testing::Values(mem::DeviceKind::RcNvm,
                          mem::DeviceKind::Rram,
                          mem::DeviceKind::Dram,
                          mem::DeviceKind::GsDram),
        ::testing::Values(ChunkLayout::RowOriented,
                          ChunkLayout::ColumnOriented),
        ::testing::Values(8u, 16u, 20u)),
    [](const ::testing::TestParamInfo<PlacementParam> &info) {
        // Note: no structured bindings here - their brackets do not
        // shield commas from the macro's argument splitting.
        std::string name = toString(std::get<0>(info.param));
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        name += std::get<1>(info.param) == ChunkLayout::RowOriented
                    ? "_Row"
                    : "_Col";
        name += "_" + std::to_string(std::get<2>(info.param)) + "f";
        return name;
    });

// ----------------------------------------------------------------
// Bank timing properties over every preset.
// ----------------------------------------------------------------

class BankProperty
    : public ::testing::TestWithParam<mem::DeviceKind>
{
};

TEST_P(BankProperty, RandomSequenceKeepsTimeMonotone)
{
    const mem::TimingParams t = mem::timingFor(GetParam());
    mem::Bank bank;
    util::Random rng(5);
    Tick prev_finish{0};
    Tick bus_free{0};
    for (int i = 0; i < 500; ++i) {
        const auto o = rng.nextBool(0.5) ? Orientation::Row
                                         : Orientation::Column;
        if (o == Orientation::Column &&
            GetParam() != mem::DeviceKind::RcNvm) {
            continue;
        }
        const auto s = bank.access(
            bank.nextReady(), o,
            static_cast<unsigned>(rng.nextBounded(8)),
            static_cast<unsigned>(rng.nextBounded(64)),
            rng.nextBool(0.3), t, bus_free);
        EXPECT_LE(s.start, s.dataStart);
        EXPECT_LT(s.dataStart, s.finish);
        EXPECT_GE(s.finish, prev_finish); // bus order preserved
        EXPECT_GE(s.dataStart, bus_free);
        bus_free = s.finish;
        prev_finish = s.finish;
    }
}

TEST_P(BankProperty, HitIsNeverSlowerThanMiss)
{
    const mem::TimingParams t = mem::timingFor(GetParam());
    mem::Bank a, b;
    const auto miss =
        a.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    b.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto hit =
        b.access(b.nextReady(), Orientation::Row, 0, 5, false, t);
    EXPECT_LT(hit.finish - hit.start, miss.finish - miss.start);
}

INSTANTIATE_TEST_SUITE_P(Presets, BankProperty,
                         ::testing::Values(mem::DeviceKind::Dram,
                                           mem::DeviceKind::Rram,
                                           mem::DeviceKind::RcNvm),
                         [](const auto &info) {
                             std::string n = toString(info.param);
                             n.erase(std::remove(n.begin(), n.end(),
                                                 '-'),
                                     n.end());
                             return n;
                         });

// ----------------------------------------------------------------
// End-to-end determinism per device.
// ----------------------------------------------------------------

class DeterminismProperty
    : public ::testing::TestWithParam<mem::DeviceKind>
{
};

TEST_P(DeterminismProperty, RandomPlanReplaysIdentically)
{
    const mem::AddressMap map(mem::geometryFor(GetParam()));
    util::Random rng(31);
    cpu::AccessPlan plan;
    for (int i = 0; i < 400; ++i) {
        mem::DecodedAddr d;
        d.channel = static_cast<unsigned>(rng.nextBounded(2));
        d.bank = static_cast<unsigned>(rng.nextBounded(8));
        d.row = static_cast<unsigned>(rng.nextBounded(64));
        d.col = static_cast<unsigned>(rng.nextBounded(32)) * 8;
        const Addr a = map.encode(d, Orientation::Row);
        if (rng.nextBool(0.25))
            plan.push_back(cpu::MemOp::store(a, 8));
        else
            plan.push_back(cpu::MemOp::load(a));
        if (rng.nextBool(0.2))
            plan.push_back(cpu::MemOp::compute(
                static_cast<std::uint32_t>(rng.nextBounded(20))));
    }
    cpu::MachineConfig config;
    config.device = GetParam();
    cpu::Machine m1(config), m2(config);
    const auto r1 = m1.run(plan);
    const auto r2 = m2.run(plan);
    EXPECT_EQ(r1.ticks, r2.ticks);
    EXPECT_EQ(r1.stats.get("mem.requests"),
              r2.stats.get("mem.requests"));
    EXPECT_EQ(r1.stats.get("mem.energyPJ"),
              r2.stats.get("mem.energyPJ"));
}

INSTANTIATE_TEST_SUITE_P(Devices, DeterminismProperty,
                         ::testing::Values(mem::DeviceKind::Dram,
                                           mem::DeviceKind::Rram,
                                           mem::DeviceKind::RcNvm,
                                           mem::DeviceKind::GsDram),
                         [](const auto &info) {
                             std::string n = toString(info.param);
                             n.erase(std::remove(n.begin(), n.end(),
                                                 '-'),
                                     n.end());
                             return n;
                         });

} // namespace
} // namespace rcnvm
