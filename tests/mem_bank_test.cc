/**
 * @file
 * Tests for the bank state machine: buffer hit/miss/conflict and
 * orientation-switch classification, Table-1 timing arithmetic,
 * tRAS enforcement, dirty-buffer flush, and CAS pipelining.
 */

#include <gtest/gtest.h>

#include "mem/bank.hh"

namespace rcnvm::mem {
namespace {

TimingParams
rc()
{
    return TimingParams::rcNvm();
}

TEST(Bank, StartsClosed)
{
    Bank bank;
    EXPECT_EQ(bank.bufState(), Bank::BufState::Closed);
    EXPECT_EQ(bank.nextReady(), Tick{0});
    EXPECT_FALSE(bank.bufferDirty());
}

TEST(Bank, FirstAccessIsBufferMiss)
{
    Bank bank;
    const auto s = bank.access(Tick{0}, Orientation::Row, 0, 5, false, rc());
    EXPECT_EQ(s.outcome, AccessOutcome::BufferMiss);
    // Activate then read: tRCD + tCAS, then the burst.
    const TimingParams t = rc();
    EXPECT_EQ(s.dataStart, t.cyc(t.tRCD + t.tCAS));
    EXPECT_EQ(s.finish, t.cyc(t.tRCD + t.tCAS + t.tBURST));
    EXPECT_EQ(bank.bufState(), Bank::BufState::RowOpen);
    EXPECT_EQ(bank.openIndex(), 5u);
}

TEST(Bank, SecondAccessSameRowHits)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto s = bank.access(bank.nextReady(), Orientation::Row, 0,
                               5, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferHit);
    EXPECT_EQ(s.dataStart - s.start, t.cyc(t.tCAS));
}

TEST(Bank, DifferentRowSameOrientationConflicts)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto s = bank.access(bank.nextReady(), Orientation::Row, 0,
                               9, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferConflict);
    // Precharge + activate + CAS (clean buffer: no write pulse).
    EXPECT_EQ(s.dataStart - s.start, t.cyc(t.tRP + t.tRCD + t.tCAS));
    EXPECT_EQ(bank.openIndex(), 9u);
}

TEST(Bank, DifferentSubarraySameIndexConflicts)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto s = bank.access(bank.nextReady(), Orientation::Row, 3,
                               5, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferConflict);
    EXPECT_EQ(bank.openSubarray(), 3u);
}

TEST(Bank, OrientationSwitchClosesAndReopens)
{
    // Sec. 3: "the row and column buffer cannot be active at the
    // same time... RC-NVM will close the active buffer and flush
    // the data back, before it activates the new buffer."
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto s = bank.access(bank.nextReady(), Orientation::Column,
                               0, 5, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::OrientationSwitch);
    EXPECT_EQ(bank.bufState(), Bank::BufState::ColOpen);
}

TEST(Bank, DirtyBufferFlushAddsWritePulse)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, true, t); // write: dirty
    EXPECT_TRUE(bank.bufferDirty());
    const Tick start = bank.nextReady();
    const auto s =
        bank.access(start, Orientation::Row, 0, 9, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferConflict);
    EXPECT_EQ(s.dataStart - s.start,
              t.cyc(t.tWR + t.tRP + t.tRCD + t.tCAS));
    EXPECT_FALSE(bank.bufferDirty());
}

TEST(Bank, CleanConflictSkipsWritePulse)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const auto s = bank.access(bank.nextReady(), Orientation::Row, 0,
                               9, false, t);
    EXPECT_EQ(s.dataStart - s.start, t.cyc(t.tRP + t.tRCD + t.tCAS));
}

TEST(Bank, TRasDelaysEarlyPrecharge)
{
    Bank bank;
    TimingParams t = TimingParams::ddr3_1333();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    // Request a conflicting row immediately: precharge must wait
    // until tRAS after the activate.
    const Tick activate = t.cyc(t.tRCD);
    const auto s = bank.access(bank.nextReady(), Orientation::Row, 0,
                               9, false, t);
    EXPECT_GE(s.dataStart,
              activate + t.cyc(t.tRAS + t.tRP + t.tRCD + t.tCAS));
}

TEST(Bank, HitsPipelineAtCcd)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    const Tick r1 = bank.nextReady();
    const auto s1 =
        bank.access(r1, Orientation::Row, 0, 5, false, t);
    EXPECT_EQ(bank.nextReady() - s1.start, t.cyc(t.tCCD));
}

TEST(Bank, BusContentionDelaysBurstOnly)
{
    Bank bank;
    const TimingParams t = rc();
    const Tick bus_free{1000000}; // bus busy for a long time
    const auto s = bank.access(Tick{0}, Orientation::Row, 0, 5, false, t,
                               bus_free);
    EXPECT_EQ(s.dataStart, bus_free);
    EXPECT_EQ(s.finish, bus_free + t.cyc(t.tBURST));
}

TEST(Bank, HitsQueryMatchesState)
{
    Bank bank;
    const TimingParams t = rc();
    EXPECT_FALSE(bank.hits(Orientation::Row, 0, 5));
    bank.access(Tick{0}, Orientation::Row, 0, 5, false, t);
    EXPECT_TRUE(bank.hits(Orientation::Row, 0, 5));
    EXPECT_FALSE(bank.hits(Orientation::Row, 0, 6));
    EXPECT_FALSE(bank.hits(Orientation::Column, 0, 5));
    EXPECT_FALSE(bank.hits(Orientation::Row, 1, 5));
}

TEST(Bank, ColumnBufferHitAfterSwitch)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Column, 2, 7, false, t);
    EXPECT_EQ(bank.bufState(), Bank::BufState::ColOpen);
    const auto s = bank.access(bank.nextReady(), Orientation::Column,
                               2, 7, false, t);
    EXPECT_EQ(s.outcome, AccessOutcome::BufferHit);
}

TEST(Bank, LateRequestStartsAtNow)
{
    Bank bank;
    const TimingParams t = rc();
    const auto s =
        bank.access(Tick{77777}, Orientation::Row, 0, 0, false, t);
    EXPECT_EQ(s.start, Tick{77777});
}

TEST(Bank, BusyBankDefersStart)
{
    Bank bank;
    const TimingParams t = rc();
    bank.access(Tick{0}, Orientation::Row, 0, 0, false, t);
    const auto s = bank.access(Tick{1}, Orientation::Row, 0, 0, false, t);
    EXPECT_EQ(s.start, t.cyc(t.tRCD + t.tCCD));
}

TEST(Bank, ResetRestoresPristineState)
{
    Bank bank;
    bank.access(Tick{0}, Orientation::Column, 1, 2, true, rc());
    bank.reset();
    EXPECT_EQ(bank.bufState(), Bank::BufState::Closed);
    EXPECT_EQ(bank.nextReady(), Tick{0});
    EXPECT_FALSE(bank.bufferDirty());
}

TEST(TimingParamsTest, Table1Presets)
{
    const TimingParams dram = TimingParams::ddr3_1333();
    EXPECT_EQ(dram.tCAS, MemCycles{10});
    EXPECT_EQ(dram.tRCD, MemCycles{9});
    EXPECT_EQ(dram.tRP, MemCycles{9});
    EXPECT_EQ(dram.tRAS, MemCycles{24});
    // Paper: DRAM access time 14 ns = (tRCD + tCAS) cycles.
    EXPECT_NEAR(static_cast<double>(
                    dram.cyc(dram.tRCD + dram.tCAS).value()) /
                    static_cast<double>(ticksPerNs.value()),
                14.0, 0.5);

    const TimingParams rram = TimingParams::rram();
    EXPECT_EQ(rram.tRP, MemCycles{1});
    EXPECT_EQ(rram.tRAS, MemCycles{0});
    // 25 ns read access, 10 ns write pulse.
    EXPECT_EQ(rram.cyc(rram.tRCD), nsToTicks(25.0));
    EXPECT_EQ(rram.cyc(rram.tWR), nsToTicks(10.0));

    const TimingParams rcnvm = TimingParams::rcNvm();
    EXPECT_EQ(rcnvm.tRCD, MemCycles{12}); // 30 ns ~ paper's 29 ns
    EXPECT_EQ(rcnvm.cyc(rcnvm.tWR), nsToTicks(15.0));
}

TEST(TimingParamsTest, CellLatencyOverride)
{
    // Figure-22 sensitivity scaling.
    const TimingParams t =
        TimingParams::rram().withCellLatency(50.0, 20.0);
    EXPECT_EQ(t.cyc(t.tRCD), nsToTicks(50.0));
    EXPECT_EQ(t.cyc(t.tWR), nsToTicks(20.0));
    const TimingParams tiny =
        TimingParams::rram().withCellLatency(0.1, 0.1);
    EXPECT_GE(tiny.tRCD, MemCycles{1});
    EXPECT_GE(tiny.tWR, MemCycles{1});
}

TEST(TimingParamsTest, DeviceKindHelpers)
{
    EXPECT_TRUE(capsFor(DeviceKind::RcNvm).columnAccess);
    EXPECT_FALSE(capsFor(DeviceKind::RcNvm).gather);
    EXPECT_TRUE(capsFor(DeviceKind::GsDram).gather);
    EXPECT_FALSE(capsFor(DeviceKind::Dram).columnAccess);
    EXPECT_FALSE(capsFor(DeviceKind::Rram).columnAccess);
    EXPECT_STREQ(toString(DeviceKind::RcNvm), "RC-NVM");
    EXPECT_STREQ(toString(DeviceKind::GsDram), "GS-DRAM");
}

} // namespace
} // namespace rcnvm::mem
