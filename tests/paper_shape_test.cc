/**
 * @file
 * Golden "paper shape" regression tests: one run of the key
 * evaluation comparisons at a fixed reduced scale, asserting the
 * qualitative relationships the paper reports. If a future change
 * breaks any headline conclusion of the reproduction, these fail.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "util/logging.hh"

namespace rcnvm::core {
namespace {

using workload::QueryId;

class PaperShape : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        util::setLogLevel(util::LogLevel::Quiet);
        tables_ = new workload::TableSet(
            workload::TableSet::standard(32768, 8192, 42));
        workload_ = new workload::QueryWorkload(*tables_);
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete tables_;
        workload_ = nullptr;
        tables_ = nullptr;
    }

    static ExperimentResult
    run(mem::DeviceKind kind, QueryId id)
    {
        return runQuery(kind, *workload_, id);
    }

    static workload::TableSet *tables_;
    static workload::QueryWorkload *workload_;
};

workload::TableSet *PaperShape::tables_ = nullptr;
workload::QueryWorkload *PaperShape::workload_ = nullptr;

TEST_F(PaperShape, RcNvmBeatsRramOnTwelveOfThirteenQueries)
{
    const QueryId wins[] = {
        QueryId::Q1,  QueryId::Q2,  QueryId::Q4, QueryId::Q5,
        QueryId::Q6,  QueryId::Q7,  QueryId::Q8, QueryId::Q9,
        QueryId::Q10, QueryId::Q11, QueryId::Q12, QueryId::Q13,
    };
    for (const QueryId id : wins) {
        EXPECT_LT(run(mem::DeviceKind::RcNvm, id).ticks,
                  run(mem::DeviceKind::Rram, id).ticks)
            << workload::querySpec(id).name;
    }
}

TEST_F(PaperShape, DramWinsOnlyTheSequentialScanQuery)
{
    // Q3 is the paper's single DRAM win...
    EXPECT_LT(run(mem::DeviceKind::Dram, QueryId::Q3).ticks,
              run(mem::DeviceKind::RcNvm, QueryId::Q3).ticks);
    // ... and the OLAP aggregates go decisively to RC-NVM.
    for (const QueryId id : {QueryId::Q4, QueryId::Q6}) {
        const auto rc = run(mem::DeviceKind::RcNvm, id);
        const auto dram = run(mem::DeviceKind::Dram, id);
        EXPECT_GT(static_cast<double>(dram.ticks.value()),
                  1.5 * static_cast<double>(rc.ticks.value()))
            << workload::querySpec(id).name;
    }
}

TEST_F(PaperShape, AggregateSpeedupVsRramIsLarge)
{
    // Paper: up to 14.5x (Q6). Our stronger baselines compress this
    // to ~4x at full scale; guard a conservative 2.5x here.
    const auto rc = run(mem::DeviceKind::RcNvm, QueryId::Q6);
    const auto rram = run(mem::DeviceKind::Rram, QueryId::Q6);
    EXPECT_GT(static_cast<double>(rram.ticks.value()),
              2.5 * static_cast<double>(rc.ticks.value()));
}

TEST_F(PaperShape, GsDramSitsBetweenDramAndRcNvmOnGatherables)
{
    // Fig 18/19: gathers help Q4/Q6; RC-NVM still wins them.
    for (const QueryId id : {QueryId::Q4, QueryId::Q6}) {
        const auto rc = run(mem::DeviceKind::RcNvm, id);
        const auto gs = run(mem::DeviceKind::GsDram, id);
        const auto dram = run(mem::DeviceKind::Dram, id);
        EXPECT_LT(gs.ticks, dram.ticks)
            << workload::querySpec(id).name;
        EXPECT_LT(rc.ticks, gs.ticks)
            << workload::querySpec(id).name;
    }
}

TEST_F(PaperShape, GsDramMatchesDramOnNonGatherables)
{
    for (const QueryId id : {QueryId::Q2, QueryId::Q5, QueryId::Q7,
                             QueryId::Q12}) {
        EXPECT_EQ(run(mem::DeviceKind::GsDram, id).ticks,
                  run(mem::DeviceKind::Dram, id).ticks)
            << workload::querySpec(id).name;
    }
}

TEST_F(PaperShape, LlcMissesBelowHalfOfDramOnScans)
{
    for (const QueryId id : {QueryId::Q1, QueryId::Q4, QueryId::Q6,
                             QueryId::Q10}) {
        const auto rc = run(mem::DeviceKind::RcNvm, id);
        const auto dram = run(mem::DeviceKind::Dram, id);
        EXPECT_LT(rc.llcMisses() * 2.0, dram.llcMisses())
            << workload::querySpec(id).name;
    }
}

TEST_F(PaperShape, SynonymOverheadWithinPaperBand)
{
    for (const QueryId id : {QueryId::Q1, QueryId::Q2, QueryId::Q8,
                             QueryId::Q12}) {
        const auto r = run(mem::DeviceKind::RcNvm, id);
        EXPECT_LE(r.coherenceOverheadRatio(), 0.034)
            << workload::querySpec(id).name; // paper max 3.4%
    }
}

TEST_F(PaperShape, RcNvmUsesLessMemoryEnergyOnScans)
{
    for (const QueryId id : {QueryId::Q4, QueryId::Q6}) {
        const auto rc = run(mem::DeviceKind::RcNvm, id);
        const auto dram = run(mem::DeviceKind::Dram, id);
        EXPECT_LT(rc.stats.get("mem.energyPJ"),
                  dram.stats.get("mem.energyPJ"))
            << workload::querySpec(id).name;
    }
}

} // namespace
} // namespace rcnvm::core
