/**
 * @file
 * Tests for the set-associative cache: orientation-aware tag match,
 * LRU replacement, pinning, crossing-bit storage, and the synonym
 * crossing geometry of Figure 8.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cache/synonym.hh"
#include "mem/geometry.hh"

namespace rcnvm::cache {
namespace {

CacheConfig
tinyConfig()
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sizeBytes = 2 * 1024; // 4 sets x 8 ways x 64 B
    cfg.ways = 8;
    return cfg;
}

TEST(CacheTest, MissThenHit)
{
    Cache cache(tinyConfig());
    const LineKey key{0x1000, Orientation::Row};
    EXPECT_EQ(cache.find(key), nullptr);
    cache.insert(key, MesiState::Exclusive);
    ASSERT_NE(cache.find(key), nullptr);
    EXPECT_EQ(cache.find(key)->state, MesiState::Exclusive);
}

TEST(CacheTest, OrientationDistinguishesLines)
{
    // The orientation bit is part of the line identity (Sec. 4.3.1).
    Cache cache(tinyConfig());
    cache.insert(LineKey{0x1000, Orientation::Row},
                 MesiState::Modified);
    EXPECT_EQ(cache.find(LineKey{0x1000, Orientation::Column}),
              nullptr);
    cache.insert(LineKey{0x1000, Orientation::Column},
                 MesiState::Shared);
    EXPECT_EQ(cache.find(LineKey{0x1000, Orientation::Row})->state,
              MesiState::Modified);
    EXPECT_EQ(
        cache.find(LineKey{0x1000, Orientation::Column})->state,
        MesiState::Shared);
    EXPECT_EQ(cache.rowLines(), 1u);
    EXPECT_EQ(cache.columnLines(), 1u);
}

TEST(CacheTest, ReinsertUpdatesStateWithoutVictim)
{
    Cache cache(tinyConfig());
    const LineKey key{0x40, Orientation::Row};
    cache.insert(key, MesiState::Shared);
    const auto victim = cache.insert(key, MesiState::Modified);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(cache.find(key)->state, MesiState::Modified);
    EXPECT_EQ(cache.rowLines(), 1u);
}

TEST(CacheTest, LruEvictionPicksOldest)
{
    Cache cache(tinyConfig()); // 4 sets, 8 ways
    // Fill one set (set 0: addresses multiple of 4*64=256).
    for (unsigned i = 0; i < 8; ++i) {
        cache.insert(LineKey{Addr{i} * 256, Orientation::Row},
                     MesiState::Shared);
    }
    // Touch line 0 so line 1 becomes LRU.
    cache.find(LineKey{0, Orientation::Row});
    const auto victim = cache.insert(LineKey{8 * 256,
                                             Orientation::Row},
                                     MesiState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key.addr, 256u);
}

TEST(CacheTest, EvictionReportsStateAndCrossing)
{
    Cache cache(tinyConfig());
    for (unsigned i = 0; i < 8; ++i) {
        cache.insert(LineKey{Addr{i} * 256, Orientation::Row},
                     MesiState::Shared);
    }
    CacheLine *line = cache.find(LineKey{0, Orientation::Row});
    line->state = MesiState::Modified;
    line->crossing = 0xa5;
    // Evict everything else first so line 0 stays, then force a
    // conflict eviction of the oldest line (line 1 after touch).
    for (unsigned i = 1; i < 8; ++i)
        cache.find(LineKey{Addr{i} * 256, Orientation::Row});
    const auto victim = cache.insert(LineKey{8 * 256,
                                             Orientation::Row},
                                     MesiState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key.addr, 0u);
    EXPECT_EQ(victim->state, MesiState::Modified);
    EXPECT_EQ(victim->crossing, 0xa5);
}

TEST(CacheTest, PinnedLinesSurviveEviction)
{
    Cache cache(tinyConfig());
    cache.insert(LineKey{0, Orientation::Row}, MesiState::Shared);
    EXPECT_TRUE(cache.setPinned(LineKey{0, Orientation::Row}, true));
    for (unsigned i = 1; i <= 16; ++i) {
        cache.insert(LineKey{Addr{i} * 256, Orientation::Row},
                     MesiState::Shared);
    }
    EXPECT_NE(cache.find(LineKey{0, Orientation::Row}), nullptr);
    EXPECT_EQ(cache.pinnedEvictions(), 0u);
}

TEST(CacheTest, FullyPinnedSetFallsBackAndCounts)
{
    Cache cache(tinyConfig());
    for (unsigned i = 0; i < 8; ++i) {
        const LineKey key{Addr{i} * 256, Orientation::Row};
        cache.insert(key, MesiState::Shared);
        cache.setPinned(key, true);
    }
    const auto victim = cache.insert(LineKey{8 * 256,
                                             Orientation::Row},
                                     MesiState::Shared);
    EXPECT_TRUE(victim.has_value());
    EXPECT_EQ(cache.pinnedEvictions(), 1u);
}

TEST(CacheTest, UnpinAllowsEviction)
{
    Cache cache(tinyConfig());
    const LineKey key{0, Orientation::Row};
    cache.insert(key, MesiState::Shared);
    cache.setPinned(key, true);
    cache.setPinned(key, false);
    for (unsigned i = 1; i <= 8; ++i) {
        cache.insert(LineKey{Addr{i} * 256, Orientation::Row},
                     MesiState::Shared);
    }
    EXPECT_EQ(cache.find(key), nullptr);
}

TEST(CacheTest, SetPinnedOnMissingLineFails)
{
    Cache cache(tinyConfig());
    EXPECT_FALSE(
        cache.setPinned(LineKey{0x40, Orientation::Row}, true));
}

TEST(CacheTest, InvalidateRemovesAndReports)
{
    Cache cache(tinyConfig());
    const LineKey key{0x80, Orientation::Column};
    cache.insert(key, MesiState::Modified);
    const auto victim = cache.invalidate(key);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->state, MesiState::Modified);
    EXPECT_EQ(cache.find(key), nullptr);
    EXPECT_EQ(cache.columnLines(), 0u);
    EXPECT_FALSE(cache.invalidate(key).has_value());
}

TEST(CacheTest, ProbeDoesNotTouchLru)
{
    Cache cache(tinyConfig());
    for (unsigned i = 0; i < 8; ++i) {
        cache.insert(LineKey{Addr{i} * 256, Orientation::Row},
                     MesiState::Shared);
    }
    // Probing line 0 must NOT protect it from LRU eviction.
    EXPECT_NE(cache.probe(LineKey{0, Orientation::Row}), nullptr);
    const auto victim = cache.insert(LineKey{8 * 256,
                                             Orientation::Row},
                                     MesiState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key.addr, 0u);
}

TEST(CacheTest, ResetDropsEverything)
{
    Cache cache(tinyConfig());
    cache.insert(LineKey{0x40, Orientation::Row}, MesiState::Shared);
    cache.insert(LineKey{0x80, Orientation::Column},
                 MesiState::Shared);
    cache.reset();
    EXPECT_EQ(cache.find(LineKey{0x40, Orientation::Row}), nullptr);
    EXPECT_EQ(cache.rowLines(), 0u);
    EXPECT_EQ(cache.columnLines(), 0u);
}

TEST(CacheConfigTest, SetCountArithmetic)
{
    CacheConfig l1{"L1", 32 * 1024, 64, 8};
    EXPECT_EQ(l1.numSets(), 64u);
    CacheConfig l3{"L3", 8 * 1024 * 1024, 64, 8};
    EXPECT_EQ(l3.numSets(), 16384u);
}

// ---------------------------------------------------------------
// Synonym crossing geometry.
// ---------------------------------------------------------------

class SynonymFixture : public ::testing::Test
{
  protected:
    mem::AddressMap map_{mem::Geometry::rcNvm()};
    SynonymMapper synonym_{map_};
};

TEST_F(SynonymFixture, RowLineHasEightColumnPartners)
{
    mem::DecodedAddr d;
    d.row = 437;
    d.col = 176; // line-aligned (176 % 8 == 0)
    const LineKey key{map_.encode(d, Orientation::Row),
                      Orientation::Row};
    const auto crossings = synonym_.crossings(key);
    std::set<Addr> partners;
    for (const Crossing &c : crossings) {
        EXPECT_EQ(c.partner.orient, Orientation::Column);
        partners.insert(c.partner.addr);
        // The partner word index is the row within the partner's
        // 8-row span.
        EXPECT_EQ(c.partnerWord, 437u % 8);
    }
    EXPECT_EQ(partners.size(), 8u); // all distinct columns
}

TEST_F(SynonymFixture, CrossingIsSymmetric)
{
    mem::DecodedAddr d;
    d.row = 100;
    d.col = 40;
    const LineKey row_line{map_.encode(d, Orientation::Row) & ~63ull,
                           Orientation::Row};
    for (unsigned w = 0; w < 8; ++w) {
        const Crossing c = synonym_.crossingOfWord(row_line, w);
        // Crossing back from the partner at partnerWord must return
        // the original line and word.
        const Crossing back =
            synonym_.crossingOfWord(c.partner, c.partnerWord);
        EXPECT_EQ(back.partner, row_line);
        EXPECT_EQ(back.partnerWord, w);
    }
}

TEST_F(SynonymFixture, PartnersShareBankAndSubarray)
{
    mem::DecodedAddr d;
    d.channel = 1;
    d.rank = 2;
    d.bank = 4;
    d.subarray = 3;
    d.row = 99;
    d.col = 8;
    const LineKey key{map_.encode(d, Orientation::Row),
                      Orientation::Row};
    for (const Crossing &c : synonym_.crossings(key)) {
        const mem::DecodedAddr p =
            map_.decode(c.partner.addr, Orientation::Column);
        EXPECT_EQ(p.channel, d.channel);
        EXPECT_EQ(p.rank, d.rank);
        EXPECT_EQ(p.bank, d.bank);
        EXPECT_EQ(p.subarray, d.subarray);
    }
}

TEST_F(SynonymFixture, ColumnLinePartnersAreRowLines)
{
    mem::DecodedAddr d;
    d.row = 24; // aligned
    d.col = 7;
    const LineKey key{map_.encode(d, Orientation::Column),
                      Orientation::Column};
    const auto crossings = synonym_.crossings(key);
    for (unsigned w = 0; w < 8; ++w) {
        EXPECT_EQ(crossings[w].partner.orient, Orientation::Row);
        EXPECT_EQ(crossings[w].selfWord, w);
        // Partner word = our column within the row line's span.
        EXPECT_EQ(crossings[w].partnerWord, 7u % 8);
    }
}

TEST_F(SynonymFixture, PartnerAddressesAreLineAligned)
{
    mem::DecodedAddr d;
    d.row = 1023;
    d.col = 1016;
    const LineKey key{map_.encode(d, Orientation::Row),
                      Orientation::Row};
    for (const Crossing &c : synonym_.crossings(key))
        EXPECT_EQ(c.partner.addr % 64, 0u);
}

} // namespace
} // namespace rcnvm::cache
