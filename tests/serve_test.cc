/**
 * @file
 * Tests for the serving subsystem (DESIGN.md 4i): plan-optimizer
 * correctness — pruned and unpruned plans must produce identical
 * query results on Table-2-shaped and randomized predicates, and the
 * optimizer-off path must be byte-identical to a direct PlanBuilder
 * compilation (the pre-optimizer golden) — plus tenant admission,
 * shared-scan accounting, the SLO control loop, and end-to-end
 * determinism of a serving run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "imdb/plan_builder.hh"
#include "olxp/serve/serve_scheduler.hh"
#include "util/random.hh"
#include "util/stats_io.hh"
#include "workload/tables.hh"

namespace rcnvm::olxp::serve {
namespace {

constexpr std::uint64_t kTuples = 8192; // 8 summary chunks
constexpr std::uint64_t kSeed = 99;

/** One placed database shared by every test (placement is pure; the
 *  placed Database keeps a pointer to its static map). */
const workload::PlacedDatabase &
placedDb()
{
    static const workload::TableSet tables =
        workload::TableSet::standard(kTuples, 256, kSeed);
    static const workload::QueryWorkload workload(tables);
    static const mem::AddressMap map(
        mem::geometryFor(mem::DeviceKind::RcNvm));
    static const workload::PlacedDatabase pd =
        workload.place(mem::DeviceKind::RcNvm, map);
    return pd;
}

cpu::MachineConfig
serveMachine()
{
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    config.seed = kSeed;
    return config;
}

/** Byte-level plan equality (MemOp has no operator==). */
bool
samePlan(const cpu::AccessPlan &a, const cpu::AccessPlan &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
            a[i].bytes != b[i].bytes ||
            a[i].computeCycles != b[i].computeCycles ||
            a[i].pinOrient != b[i].pinOrient)
            return false;
    }
    return true;
}

/** A threshold hitting roughly @p sel of the uniform value domain
 *  for the given operator. */
std::int64_t
thresholdFor(PredOp op, double sel)
{
    const double range = static_cast<double>(imdb::Table::valueRange);
    return op == PredOp::Greater
               ? static_cast<std::int64_t>(range * (1.0 - sel))
               : static_cast<std::int64_t>(range * sel);
}

/**
 * The Table-2 suite reduced to the serving layer's scan form: one
 * aggregate scan per query at that query's predicate selectivity
 * (QueryWorkload::Params defaults), over the fields the query
 * touches. Joins/updates/group-caching queries contribute their scan
 * phase's shape — the optimizer only ever sees scans.
 */
std::vector<ScanQuery>
tableTwoShapedQueries()
{
    const workload::PlacedDatabase &pd = placedDb();
    const std::uint64_t n = pd.db->table(pd.a).tuples();
    struct Shape {
        unsigned pred, agg;
        PredOp op;
        double sel;
        std::vector<unsigned> touched;
    };
    const std::vector<Shape> shapes = {
        {0, 1, PredOp::Greater, 0.10, {0, 1}},          // Q1
        {10, 1, PredOp::Greater, 0.05, {10, 1}},        // Q2
        {10, 1, PredOp::Greater, 0.90, {10, 1}},        // Q3
        {2, 3, PredOp::Less, 0.50, {2, 3}},             // Q4
        {0, 4, PredOp::Greater, 0.50, {0, 1, 2, 3, 4}}, // Q5
        {1, 5, PredOp::Less, 0.50, {1, 5, 6}},          // Q6
        {3, 7, PredOp::Greater, 0.50, {3, 7}},          // Q7
        {0, 0, PredOp::Greater, 0.50, {0}},             // Q8 (join build)
        {1, 0, PredOp::Less, 0.50, {0, 1}},             // Q9 (join probe)
        {4, 5, PredOp::Greater, 0.30, {4, 5}},          // Q10
        {6, 7, PredOp::Less, 0.30, {6, 7}},             // Q11
        {8, 9, PredOp::Greater, 0.01, {8, 9}},          // Q12
        {9, 8, PredOp::Less, 0.05, {8, 9}},             // Q13
        {0, 2, PredOp::Greater, 0.25, {0, 1, 2, 3}},    // Q14 (ordered)
        {1, 3, PredOp::Less, 0.25, {0, 1, 2, 3}},       // Q15 (ordered)
    };
    std::vector<ScanQuery> out;
    for (const Shape &s : shapes) {
        ScanQuery q;
        q.table = pd.a;
        q.predField = s.pred;
        q.aggField = s.agg;
        q.op = s.op;
        q.threshold = thresholdFor(s.op, s.sel);
        q.t0 = 0;
        q.t1 = n;
        q.touchedFields = s.touched;
        out.push_back(q);
    }
    return out;
}

/** Reference evaluation straight off the table, no optimizer. */
ScanResult
referenceScan(const ScanQuery &q)
{
    const imdb::Table &t = placedDb().db->table(q.table);
    ScanResult r;
    for (std::uint64_t i = q.t0; i < q.t1; ++i) {
        const std::int64_t v = t.value(q.predField, i);
        const bool hit = q.op == PredOp::Greater ? v > q.threshold
                                                 : v < q.threshold;
        if (hit) {
            ++r.matches;
            r.sum += t.value(q.aggField, i);
        }
    }
    return r;
}

TEST(OptimizerTest, TableTwoShapesPrunedEqualsUnpruned)
{
    PlanOptimizer on(placedDb(), true);
    PlanOptimizer off(placedDb(), false);
    for (const ScanQuery &q : tableTwoShapedQueries()) {
        const ScanResult a = on.evaluate(q);
        const ScanResult b = off.evaluate(q);
        EXPECT_EQ(a, b) << "pred f" << q.predField << " thr "
                        << q.threshold;
        EXPECT_EQ(b, referenceScan(q));
        // Compile both ways too: build() drives the pruning
        // counters and must accept every suite shape.
        on.build(q);
        off.build(q);
    }
    // Chunk accounting closes: every chunk the on-path skipped was
    // scanned by the off-path, never silently lost.
    EXPECT_EQ(on.chunksScanned().value() + on.chunksPruned().value(),
              off.chunksScanned().value());
}

TEST(OptimizerTest, RandomizedPredicatesPrunedEqualsUnpruned)
{
    PlanOptimizer on(placedDb(), true);
    PlanOptimizer off(placedDb(), false);
    const imdb::Table &t = placedDb().db->table(placedDb().a);
    const unsigned pool = t.schema().tupleWords();
    util::Random rng(kSeed);
    for (unsigned i = 0; i < 256; ++i) {
        ScanQuery q;
        q.table = placedDb().a;
        q.predField = static_cast<unsigned>(rng.nextBounded(pool));
        q.aggField = static_cast<unsigned>(rng.nextBounded(pool));
        q.op = rng.nextBool(0.5) ? PredOp::Greater : PredOp::Less;
        q.threshold = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(
                imdb::Table::valueRange)));
        // Random sub-ranges exercise partially covered edge chunks.
        q.t0 = rng.nextBounded(kTuples - 1);
        q.t1 = q.t0 + 1 + rng.nextBounded(kTuples - q.t0 - 1);
        const ScanResult a = on.evaluate(q);
        EXPECT_EQ(a, off.evaluate(q));
        EXPECT_EQ(a, referenceScan(q));
        on.build(q);
        off.build(q);
    }
    // Uniform thresholds rarely prune (a 1024-tuple chunk's min/max
    // spans nearly the whole domain), so add an edge-band batch —
    // the serving mix's selective outlier lookups — to make sure the
    // equality above is exercised on plans that really prune.
    for (unsigned i = 0; i < 64; ++i) {
        ScanQuery q;
        q.table = placedDb().a;
        q.predField = static_cast<unsigned>(rng.nextBounded(pool));
        q.aggField = static_cast<unsigned>(rng.nextBounded(pool));
        const std::int64_t off_edge =
            static_cast<std::int64_t>(rng.nextBounded(64));
        if (rng.nextBool(0.5)) {
            q.op = PredOp::Greater;
            q.threshold = imdb::Table::valueRange - 1 - off_edge;
        } else {
            q.op = PredOp::Less;
            q.threshold = off_edge + 1;
        }
        q.t0 = rng.nextBounded(kTuples - 1);
        q.t1 = q.t0 + 1 + rng.nextBounded(kTuples - q.t0 - 1);
        const ScanResult a = on.evaluate(q);
        EXPECT_EQ(a, off.evaluate(q));
        EXPECT_EQ(a, referenceScan(q));
        on.build(q);
        off.build(q);
    }
    EXPECT_EQ(on.chunksScanned().value() + on.chunksPruned().value(),
              off.chunksScanned().value());
    EXPECT_GT(on.chunksPruned().value(), 0u);
}

TEST(OptimizerTest, OffPathIsByteIdenticalToDirectPlanBuilder)
{
    // The pre-optimizer golden: with the optimizer off, build()
    // must emit exactly the plan a direct PlanBuilder client (the
    // PR-1/PR-2 code path) would compile for the same scan.
    PlanOptimizer off(placedDb(), false);
    for (const ScanQuery &q : tableTwoShapedQueries()) {
        imdb::PlanBuilder b(*placedDb().db);
        bool first = true;
        for (const unsigned f : q.touchedFields) {
            const unsigned cost = first ? b.costs().compare
                                        : b.costs().aggregate;
            b.scanFieldWord(q.table, f, q.t0, q.t1, cost);
            first = false;
        }
        EXPECT_TRUE(samePlan(off.build(q), b.take()));
    }
    EXPECT_EQ(off.chunksPruned().value(), 0u);
    EXPECT_EQ(off.colsPruned().value(), 0u);
}

TEST(OptimizerTest, DeadColumnsArePruned)
{
    PlanOptimizer on(placedDb(), true);
    ScanQuery q;
    q.table = placedDb().a;
    q.predField = 0;
    q.aggField = 1;
    q.op = PredOp::Greater;
    q.threshold = 0; // nothing prunable: isolate column pruning
    q.t0 = 0;
    q.t1 = imdb::Table::chunkTuples;
    q.touchedFields = {0, 1, 2, 3};
    const cpu::AccessPlan pruned = on.build(q);
    EXPECT_EQ(on.colsPruned().value(), 2u); // f2, f3 dead

    PlanOptimizer off(placedDb(), false);
    const cpu::AccessPlan full = off.build(q);
    EXPECT_LT(pruned.size(), full.size());
}

// ---------------------------------------------------------------
// Scheduler-level behaviour.
// ---------------------------------------------------------------

TenantConfig
smallOlap(unsigned streams)
{
    TenantConfig tc;
    tc.name = "olap";
    tc.cls = TenantClass::OlapThroughput;
    tc.streams = streams;
    tc.segmentTuples = 512;
    tc.segmentParallelism = 2;
    return tc;
}

ServeConfig
cappedConfig(std::uint64_t segments)
{
    ServeConfig cfg;
    cfg.slo = false;
    cfg.horizon = Tick{1000000000000};
    cfg.maxSegmentsPerGroup = segments;
    cfg.seed = kSeed;
    return cfg;
}

TEST(ServeSchedulerTest, OptimizerOnAndOffRunsAreResultIdentical)
{
    // The bench's identity pair at test scale: a capped cursor
    // executes the same segment sequence whatever the timing, so the
    // optimizer-on and -off runs must agree checksum for checksum
    // while the on-run actually prunes.
    const auto runOnce = [](bool optimizer) {
        cpu::Machine machine(serveMachine());
        ServeConfig cfg = cappedConfig(8);
        cfg.optimizer = optimizer;
        cfg.tenants = {smallOlap(16)};
        ServeScheduler sched(machine, placedDb(), cfg);
        return sched.run();
    };
    const ServeResult on = runOnce(true);
    const ServeResult off = runOnce(false);
    EXPECT_EQ(on.scanChecksum, off.scanChecksum);
    EXPECT_EQ(on.segmentsCompleted, off.segmentsCompleted);
    EXPECT_EQ(on.segmentsCompleted, 8u);
    EXPECT_GT(on.chunksPruned, 0u);
    EXPECT_EQ(off.chunksPruned, 0u);
    // Pruning buys work: the pruned run retires fewer memory ops.
    EXPECT_LT(on.run.ticks, off.run.ticks);
}

TEST(ServeSchedulerTest, SharedCursorCreditsEveryStream)
{
    cpu::Machine machine(serveMachine());
    ServeConfig cfg = cappedConfig(6);
    cfg.tenants = {smallOlap(100)};
    ServeScheduler sched(machine, placedDb(), cfg);
    const ServeResult r = sched.run();
    // 100 streams share one cursor: each completed segment credits
    // all of them, at one scan's worth of actual traffic.
    EXPECT_EQ(r.segmentsCompleted, 6u);
    EXPECT_EQ(r.streamScans, 600u);
}

TEST(ServeSchedulerTest, MeteredBackfillParksButNeverDrops)
{
    cpu::Machine machine(serveMachine());
    ServeConfig cfg = cappedConfig(8);
    TenantConfig maint = smallOlap(4);
    maint.name = "maint";
    maint.cls = TenantClass::Background;
    // A bucket far below the segment rate: admission must deny and
    // park most segments, then retry them deterministically.
    maint.tokensPerMTick = 0.5;
    maint.tokenBurst = 1.0;
    cfg.tenants = {maint};
    ServeScheduler sched(machine, placedDb(), cfg);
    const ServeResult r = sched.run();
    EXPECT_GT(r.backfillDenied, 0u);
    EXPECT_EQ(r.segmentsCompleted, 8u); // deferred, never dropped
    EXPECT_EQ(sched.parkedCount(), 0u);
}

TEST(ServeSchedulerTest, SloLoopShedsBackfillUnderBreach)
{
    cpu::Machine machine(serveMachine());
    ServeConfig cfg;
    cfg.seed = kSeed;
    cfg.horizon = Tick{4000000};
    cfg.slo = true;
    cfg.sloTarget = Tick{1}; // unmeetable: every window breaches
    cfg.sloPeriod = Tick{100000};
    TenantConfig oltp;
    oltp.name = "oltp";
    oltp.cls = TenantClass::OltpLatency;
    oltp.oltpInterArrival = Tick{20000};
    cfg.tenants = {oltp, smallOlap(8)};
    ServeScheduler sched(machine, placedDb(), cfg);
    const ServeResult r = sched.run();
    EXPECT_GT(r.sloBreaches, 0u);
    // The loop shed backfill down to the floor and, with every
    // window breaching, never grew it back.
    EXPECT_EQ(sched.backfillSlots(), cfg.backfillFloor);
}

TEST(ServeSchedulerTest, SloOffLetsBackfillKeepItsSlots)
{
    cpu::Machine machine(serveMachine());
    ServeConfig cfg;
    cfg.seed = kSeed;
    cfg.horizon = Tick{4000000};
    cfg.slo = false;
    TenantConfig oltp;
    oltp.name = "oltp";
    oltp.cls = TenantClass::OltpLatency;
    oltp.oltpInterArrival = Tick{20000};
    cfg.tenants = {oltp, smallOlap(8)};
    ServeScheduler sched(machine, placedDb(), cfg);
    const ServeResult r = sched.run();
    EXPECT_EQ(r.sloBreaches, 0u);
    // Unprotected: backfill may fill every core.
    EXPECT_EQ(sched.backfillSlots(), machine.coreCount());
}

TEST(ServeSchedulerTest, ServeStatsLandInTheMachineSnapshot)
{
    cpu::Machine machine(serveMachine());
    ServeConfig cfg = cappedConfig(4);
    cfg.tenants = {smallOlap(10)};
    ServeScheduler sched(machine, placedDb(), cfg);
    const ServeResult r = sched.run();
    const util::StatsMap &s = r.run.stats;
    EXPECT_EQ(s.get("serve.segmentsCompleted"),
              static_cast<double>(r.segmentsCompleted));
    EXPECT_EQ(s.get("serve.streamScans"),
              static_cast<double>(r.streamScans));
    EXPECT_EQ(s.get("serve.chunksPruned"),
              static_cast<double>(r.chunksPruned));
    EXPECT_EQ(s.get("serve.scanMatches"),
              static_cast<double>(r.scanChecksum.matches));
    // Per-tenant counters are registered under dynamic names built
    // from the tenant's configured name; assemble it the same way.
    const std::string tenantCompleted =
        "serve." + cfg.tenants[0].name + ".completed";
    EXPECT_EQ(s.get(tenantCompleted),
              static_cast<double>(r.segmentsCompleted));
}

TEST(ServeSchedulerTest, SameSeedServeRunsAreByteIdentical)
{
    const auto runOnce = [] {
        cpu::Machine machine(serveMachine());
        ServeConfig cfg = cappedConfig(8);
        cfg.tenants = {smallOlap(32)};
        TenantConfig oltp;
        oltp.name = "oltp";
        oltp.cls = TenantClass::OltpLatency;
        oltp.oltpInterArrival = Tick{50000};
        cfg.horizon = Tick{2000000};
        cfg.maxSegmentsPerGroup = 0;
        cfg.tenants.push_back(oltp);
        ServeScheduler sched(machine, placedDb(), cfg);
        const ServeResult r = sched.run();
        std::ostringstream os;
        util::writeStatsJson(os, r.run.stats, "serve", r.run.ticks);
        return os.str();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace rcnvm::olxp::serve
