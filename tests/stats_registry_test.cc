/**
 * @file
 * Unit tests for the observability subsystem: the typed statistics
 * registry, epoch sampling, JSON/CSV export round-trips, and the
 * chrome-trace tracer's output format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/epoch_sampler.hh"
#include "sim/event_queue.hh"
#include "util/chrome_trace.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/stats_io.hh"

namespace rcnvm::util {
namespace {

TEST(StatRegistry, MultiSourceCountersSum)
{
    Counter a, b;
    a.inc(3);
    b.inc(4);
    StatRegistry r;
    r.addCounter("mem.reads", a); // e.g. channel 0
    r.addCounter("mem.reads", b); // e.g. channel 1
    EXPECT_DOUBLE_EQ(r.counter("mem.reads"), 7.0);

    const StatsMap snap = r.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("mem.reads"), 7.0);
    EXPECT_EQ(snap.kindOf("mem.reads"), StatKind::Additive);
}

TEST(StatRegistry, SampledSourcesMomentMerge)
{
    Sampled s0, s1;
    s0.sample(1.0);
    s0.sample(3.0);
    s1.sample(5.0);
    StatRegistry r;
    r.addSampled("wait", s0);
    r.addSampled("wait", s1);
    const Sampled merged = r.sampled("wait");
    EXPECT_EQ(merged.count(), 3u);
    EXPECT_DOUBLE_EQ(merged.mean(), 3.0);
    EXPECT_DOUBLE_EQ(merged.max(), 5.0);

    const StatsMap snap = r.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("wait.count"), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("wait.mean"), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("wait.min"), 1.0);
    EXPECT_DOUBLE_EQ(snap.at("wait.max"), 5.0);
    EXPECT_EQ(snap.kindOf("wait.mean"), StatKind::Scalar);
}

TEST(StatRegistry, HistogramSourcesBucketMerge)
{
    Log2Histogram h0, h1;
    h0.sample(1);
    h1.sample(1);
    h1.sample(8);
    StatRegistry r;
    r.addHistogram("hist", h0);
    r.addHistogram("hist", h1);
    const Log2Histogram merged = r.histogram("hist");
    EXPECT_EQ(merged.count(), 3u);
    EXPECT_EQ(merged.bucket(1), 2u);

    const StatsMap snap = r.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("hist.samples"), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("hist.b1"), 2.0);
    EXPECT_DOUBLE_EQ(snap.at("hist.b4"), 1.0);
    EXPECT_EQ(snap.kindOf("hist.samples"), StatKind::Additive);
}

TEST(StatRegistry, FormulasEvaluateOverAggregatedInputs)
{
    Counter hits, total0, total1;
    hits.inc(3);
    total0.inc(5);
    total1.inc(5);
    StatRegistry r;
    r.addCounter("hits", hits);
    r.addCounter("total", total0);
    r.addCounter("total", total1);
    r.addFormula("hitRate", [](const StatRegistry &g) {
        return g.counter("hits") / g.counter("total");
    });
    EXPECT_DOUBLE_EQ(r.value("hitRate"), 0.3);

    const StatsMap snap = r.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("hitRate"), 0.3);
    // The derived value must be Scalar so a downstream merge cannot
    // double it — the original StatsMap::merge bug.
    EXPECT_EQ(snap.kindOf("hitRate"), StatKind::Scalar);
    StatsMap twice = snap;
    twice.merge(snap);
    EXPECT_DOUBLE_EQ(twice.at("hitRate"), 0.3);
    EXPECT_DOUBLE_EQ(twice.at("total"), 20.0); // raw counts do sum
}

TEST(StatRegistry, CounterFnAndValueSourcesAreAdditive)
{
    double energy0 = 1.5, energy1 = 2.5;
    StatRegistry r;
    r.addValue("energy", energy0);
    r.addValue("energy", energy1);
    r.addCounterFn("derivedCount", [] { return 4.0; });
    EXPECT_DOUBLE_EQ(r.counter("energy"), 4.0);
    energy1 = 3.5; // live pointer: reads see the current value
    EXPECT_DOUBLE_EQ(r.counter("energy"), 5.0);
    const StatsMap snap = r.snapshot();
    EXPECT_EQ(snap.kindOf("energy"), StatKind::Additive);
    EXPECT_EQ(snap.kindOf("derivedCount"), StatKind::Additive);
    EXPECT_DOUBLE_EQ(snap.at("derivedCount"), 4.0);
}

TEST(StatRegistry, GaugeIsScalar)
{
    StatRegistry r;
    r.addGauge("occupancy", [] { return 0.5; });
    const StatsMap snap = r.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("occupancy"), 0.5);
    EXPECT_EQ(snap.kindOf("occupancy"), StatKind::Scalar);
}

TEST(EpochSamplerTest, SamplesRowsAndTerminates)
{
    sim::EventQueue eq;
    int work = 0;
    // Background work spanning 10 epochs of 100 ticks.
    for (Tick t{50}; t <= Tick{1000}; t += Tick{50})
        eq.schedule(t, [&work] { ++work; });

    sim::EpochSampler sampler(eq);
    double gauge = 0;
    sampler.addGauge("g", [&gauge] { return gauge++; });
    sampler.start(Tick{100});
    EXPECT_TRUE(sampler.running());

    eq.run(); // must terminate: the sampler may not self-sustain

    EXPECT_FALSE(sampler.running());
    EXPECT_EQ(work, 20);
    const sim::EpochSeries &s = sampler.series();
    ASSERT_EQ(s.names.size(), 1u);
    EXPECT_EQ(s.names[0], "g");
    // One sample per epoch while work was pending; at least the
    // 100..1000 epochs are covered.
    ASSERT_GE(s.ticks.size(), 10u);
    EXPECT_EQ(s.ticks[0], Tick{100});
    EXPECT_EQ(s.ticks[1], Tick{200});
    ASSERT_EQ(s.rows.size(), s.ticks.size());
    EXPECT_DOUBLE_EQ(s.rows[0][0], 0.0); // gauge read in tick order
    EXPECT_DOUBLE_EQ(s.rows[1][0], 1.0);
}

TEST(EpochSamplerTest, SeriesWritersProduceParsableOutput)
{
    sim::EpochSeries s;
    s.names = {"a", "b"};
    s.ticks = {Tick{100}, Tick{200}};
    s.rows = {{1.0, 2.0}, {3.0, 4.0}};

    std::ostringstream csv;
    s.writeCsv(csv);
    EXPECT_NE(csv.str().find("tick,a,b"), std::string::npos);
    EXPECT_NE(csv.str().find("200,3,4"), std::string::npos);

    std::ostringstream json;
    s.writeJson(json);
    const JsonValue doc = parseJson(json.str());
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    const JsonValue *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->array.size(), 2u);
    EXPECT_DOUBLE_EQ(rows->array[1].array[0].number, 3.0);
}

TEST(StatsIo, JsonRoundTripPreservesValuesAndKinds)
{
    StatsMap m;
    m.add("mem.reads", 12345.0);
    m.add("mem.writes", 67.0);
    m.set("mem.busUtilization", 0.4375);
    m.set("mem.avgQueueWaitTicks", 1234.5678901234567);

    std::ostringstream os;
    writeStatsJson(os, m, "testrun", Tick{9876543210});

    const JsonValue doc = parseJson(os.str());
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    const JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "rcnvm-stats-v1");
    const JsonValue *label = doc.find("label");
    ASSERT_NE(label, nullptr);
    EXPECT_EQ(label->string, "testrun");
    const JsonValue *ticks = doc.find("ticks");
    ASSERT_NE(ticks, nullptr);
    EXPECT_DOUBLE_EQ(ticks->number, 9876543210.0);

    const StatsMap back = statsFromJson(doc);
    EXPECT_DOUBLE_EQ(back.at("mem.reads"), 12345.0);
    EXPECT_DOUBLE_EQ(back.at("mem.writes"), 67.0);
    EXPECT_DOUBLE_EQ(back.at("mem.busUtilization"), 0.4375);
    EXPECT_DOUBLE_EQ(back.at("mem.avgQueueWaitTicks"),
                     1234.5678901234567);
    EXPECT_EQ(back.kindOf("mem.reads"), StatKind::Additive);
    EXPECT_EQ(back.kindOf("mem.busUtilization"), StatKind::Scalar);

    // Kinds surviving the round trip means merges behave the same on
    // a re-imported map as on the original.
    StatsMap merged = back;
    merged.merge(back);
    EXPECT_DOUBLE_EQ(merged.at("mem.reads"), 24690.0);
    EXPECT_DOUBLE_EQ(merged.at("mem.busUtilization"), 0.4375);
}

TEST(StatsIo, CsvWriterEmitsLabeledRows)
{
    StatsMap m;
    m.add("x", 2.0);
    m.set("y", 0.5);
    std::ostringstream os;
    writeStatsCsv(os, m, "lab");
    EXPECT_NE(os.str().find("\"lab\",x,2"), std::string::npos);
    EXPECT_NE(os.str().find("\"lab\",y,0.5"), std::string::npos);
}

TEST(StatsIo, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2"), std::runtime_error);
    EXPECT_THROW(parseJson(""), std::runtime_error);
}

#if RCNVM_PACKET_TRACE
TEST(ChromeTrace, WritesParsableTraceFile)
{
    const std::string path =
        testing::TempDir() + "chrome_trace_test.json";
    ChromeTracer::enable(path);
    ASSERT_NE(ChromeTracer::active(), nullptr);
    ChromeTracer::active()->complete("service",
                                     ChromeTracer::kPidMemBase, 3,
                                     Tick{2'000'000}, Tick{500'000}, 0x1000);
    ChromeTracer::active()->instant(
        "mshr.alloc", ChromeTracer::kPidCache, 1, Tick{1'000'000}, 0x1000);
    EXPECT_EQ(ChromeTracer::active()->eventCount(), 2u);
    ChromeTracer::disable();
    EXPECT_EQ(ChromeTracer::active(), nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const JsonValue doc = parseJson(in);
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::Array);

    // Metadata (process_name) events plus the two recorded ones.
    const JsonValue *complete = nullptr;
    const JsonValue *instant = nullptr;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "X")
            complete = &ev;
        else if (ph->string == "i")
            instant = &ev;
    }
    ASSERT_NE(complete, nullptr);
    ASSERT_NE(instant, nullptr);

    // Ticks are picoseconds; chrome timestamps are microseconds.
    EXPECT_DOUBLE_EQ(complete->find("ts")->number, 2.0);
    EXPECT_DOUBLE_EQ(complete->find("dur")->number, 0.5);
    EXPECT_DOUBLE_EQ(complete->find("tid")->number, 3.0);
    EXPECT_EQ(complete->find("name")->string, "service");
    EXPECT_DOUBLE_EQ(instant->find("ts")->number, 1.0);
    EXPECT_EQ(instant->find("name")->string, "mshr.alloc");

    std::remove(path.c_str());
}
#endif // RCNVM_PACKET_TRACE

} // namespace
} // namespace rcnvm::util
