/**
 * @file
 * Unit tests for the util module: bit manipulation, RNG,
 * statistics containers, logging levels, and table printing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"
#include "util/types.hh"

namespace rcnvm::util {
namespace {

TEST(Bitfield, BitsExtractsLowField)
{
    EXPECT_EQ(bits(0xffu, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xf0u, 4, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeefull, 0, 32), 0xdeadbeefull);
}

TEST(Bitfield, BitsHandlesFullWidth)
{
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(~0ull, 1, 64), ~0ull >> 1);
}

TEST(Bitfield, BitsOfZeroIsZero)
{
    for (unsigned first = 0; first < 64; ++first)
        EXPECT_EQ(bits(0, first, 8), 0u);
}

TEST(Bitfield, InsertBitsRoundTripsWithBits)
{
    const std::uint64_t base = 0x123456789abcdef0ull;
    for (unsigned first = 0; first < 56; first += 7) {
        const std::uint64_t v = insertBits(base, first, 5, 0x15);
        EXPECT_EQ(bits(v, first, 5), 0x15u);
    }
}

TEST(Bitfield, InsertBitsPreservesOtherBits)
{
    const std::uint64_t v = insertBits(0xffffffffull, 8, 8, 0);
    EXPECT_EQ(v, 0xffff00ffull);
}

TEST(Bitfield, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(1023));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
}

TEST(Bitfield, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(1024), 10u);
    EXPECT_EQ(log2i(1ull << 40), 40u);
}

TEST(Bitfield, AlignDownUp)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(Bitfield, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(nsToTicks(25.0), 25000u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
}

TEST(Types, OrientationHelpers)
{
    EXPECT_EQ(flip(Orientation::Row), Orientation::Column);
    EXPECT_EQ(flip(Orientation::Column), Orientation::Row);
    EXPECT_STREQ(toString(Orientation::Row), "row");
    EXPECT_STREQ(toString(Orientation::Column), "column");
}

TEST(Random, DeterministicForSeed)
{
    Random a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Random, BoundedStaysInRange)
{
    Random rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, BoundedCoversRange)
{
    Random rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 300); // roughly uniform
}

TEST(Random, RangeInclusive)
{
    Random rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval)
{
    Random rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BernoulliFrequency)
{
    Random rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, CounterAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SampledTracksMoments)
{
    Sampled s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Stats, SampledEmptyIsZero)
{
    Sampled s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Stats, MapSetAddGet)
{
    StatsMap m;
    EXPECT_DOUBLE_EQ(m.get("missing"), 0.0);
    EXPECT_DOUBLE_EQ(m.get("missing", 7.0), 7.0);
    m.set("a", 1.0);
    m.add("a", 2.0);
    EXPECT_DOUBLE_EQ(m.get("a"), 3.0);
    EXPECT_TRUE(m.contains("a"));
    EXPECT_FALSE(m.contains("b"));
}

TEST(Stats, MapMergeSumsSharedNames)
{
    StatsMap a, b;
    a.set("x", 1.0);
    a.set("y", 2.0);
    b.set("y", 3.0);
    b.set("z", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
}

TEST(TablePrinterTest, FormatsAlignedColumns)
{
    TablePrinter t("demo");
    t.addRow({"name", "value"});
    t.addRow({"long-name-here", "1"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-name-here"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

} // namespace
} // namespace rcnvm::util
