/**
 * @file
 * Unit tests for the util module: bit manipulation, RNG,
 * statistics containers, logging levels, and table printing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"
#include "util/types.hh"

namespace rcnvm::util {
namespace {

TEST(Bitfield, BitsExtractsLowField)
{
    EXPECT_EQ(bits(0xffu, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xf0u, 4, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeefull, 0, 32), 0xdeadbeefull);
}

TEST(Bitfield, BitsHandlesFullWidth)
{
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(~0ull, 1, 64), ~0ull >> 1);
}

TEST(Bitfield, BitsOfZeroIsZero)
{
    for (unsigned first = 0; first < 64; ++first)
        EXPECT_EQ(bits(0, first, 8), 0u);
}

TEST(Bitfield, InsertBitsRoundTripsWithBits)
{
    const std::uint64_t base = 0x123456789abcdef0ull;
    for (unsigned first = 0; first < 56; first += 7) {
        const std::uint64_t v = insertBits(base, first, 5, 0x15);
        EXPECT_EQ(bits(v, first, 5), 0x15u);
    }
}

TEST(Bitfield, InsertBitsPreservesOtherBits)
{
    const std::uint64_t v = insertBits(0xffffffffull, 8, 8, 0);
    EXPECT_EQ(v, 0xffff00ffull);
}

TEST(Bitfield, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(1023));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
}

TEST(Bitfield, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(1024), 10u);
    EXPECT_EQ(log2i(1ull << 40), 40u);
}

TEST(Bitfield, AlignDownUp)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(Bitfield, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(nsToTicks(1.0), Tick{1000});
    EXPECT_EQ(nsToTicks(25.0), Tick{25000});
    EXPECT_DOUBLE_EQ(ticksToNs(Tick{2500}), 2.5);
}

TEST(Types, OrientationHelpers)
{
    EXPECT_EQ(flip(Orientation::Row), Orientation::Column);
    EXPECT_EQ(flip(Orientation::Column), Orientation::Row);
    EXPECT_STREQ(toString(Orientation::Row), "row");
    EXPECT_STREQ(toString(Orientation::Column), "column");
}

TEST(Random, DeterministicForSeed)
{
    Random a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Random, BoundedStaysInRange)
{
    Random rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, BoundedCoversRange)
{
    Random rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 300); // roughly uniform
}

TEST(Random, RangeInclusive)
{
    Random rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval)
{
    Random rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BernoulliFrequency)
{
    Random rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, CounterAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SampledTracksMoments)
{
    Sampled s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Stats, SampledEmptyIsZero)
{
    Sampled s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Stats, MapSetAddGet)
{
    StatsMap m;
    EXPECT_DOUBLE_EQ(m.get("missing"), 0.0);
    EXPECT_DOUBLE_EQ(m.get("missing", 7.0), 7.0);
    m.set("a", 1.0);
    m.add("a", 2.0);
    EXPECT_DOUBLE_EQ(m.get("a"), 3.0);
    EXPECT_TRUE(m.contains("a"));
    EXPECT_FALSE(m.contains("b"));
}

TEST(Stats, MapMergeSumsSharedNames)
{
    // Raw counts (add) are additive: shared names sum on merge.
    StatsMap a, b;
    a.add("x", 1.0);
    a.add("y", 2.0);
    b.add("y", 3.0);
    b.add("z", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
    EXPECT_EQ(a.kindOf("y"), StatKind::Additive);
}

// Regression for the original merge bug: merge() summed EVERY shared
// name, so non-additive derived values (rates, means, utilisations)
// were silently doubled when two snapshots met. Scalar entries must
// survive a merge with last-writer-wins semantics instead.
TEST(Stats, MergeDoesNotSumScalars)
{
    StatsMap a, b;
    a.set("mem.busUtilization", 0.75);
    a.set("mem.bufferMissRate", 0.5);
    b.set("mem.busUtilization", 0.75);
    b.set("mem.bufferMissRate", 0.5);
    a.merge(b);
    // The buggy merge produced 1.5 and 1.0 here.
    EXPECT_DOUBLE_EQ(a.get("mem.busUtilization"), 0.75);
    EXPECT_DOUBLE_EQ(a.get("mem.bufferMissRate"), 0.5);
    EXPECT_EQ(a.kindOf("mem.busUtilization"), StatKind::Scalar);
}

TEST(Stats, MergeScalarTakesIncomingValue)
{
    StatsMap a, b;
    a.set("rate", 0.25);
    b.set("rate", 0.75);
    a.merge(b); // the incoming map is the newer snapshot
    EXPECT_DOUBLE_EQ(a.get("rate"), 0.75);
}

TEST(Stats, MergeMixedKindsKeepsIncoming)
{
    // A name that changes kind across snapshots (e.g. a stat that
    // was a raw count in one producer and a derived value in
    // another) must not be summed; the incoming entry wins whole.
    StatsMap a, b;
    a.add("n", 2.0);
    b.set("n", 0.5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("n"), 0.5);
    EXPECT_EQ(a.kindOf("n"), StatKind::Scalar);

    StatsMap c, d;
    c.set("m", 0.5);
    d.add("m", 2.0);
    c.merge(d);
    EXPECT_DOUBLE_EQ(c.get("m"), 2.0);
    EXPECT_EQ(c.kindOf("m"), StatKind::Additive);
}

TEST(Stats, StrictLookupThrowsOnUnknownName)
{
    StatsMap m;
    m.set("known", 1.0);
    EXPECT_DOUBLE_EQ(m.at("known"), 1.0);
    EXPECT_THROW(m.at("unknown"), std::out_of_range);
    EXPECT_THROW(m.at("knowm"), std::out_of_range); // typo guard
}

TEST(Stats, SampledMergeEmptyEdgeCases)
{
    Sampled empty1, empty2;
    empty1.merge(empty2);
    EXPECT_EQ(empty1.count(), 0u);
    EXPECT_DOUBLE_EQ(empty1.mean(), 0.0);

    // empty ⊕ non-empty takes the non-empty moments whole.
    Sampled a, b;
    b.sample(2.0);
    b.sample(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);

    // non-empty ⊕ empty is unchanged.
    Sampled c, d;
    c.sample(-5.0);
    c.merge(d);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.mean(), -5.0);
    EXPECT_DOUBLE_EQ(c.min(), -5.0);
    EXPECT_DOUBLE_EQ(c.max(), -5.0);
}

TEST(Stats, SampledMergeNegativeValues)
{
    // min/max must come from real samples, not a zero-initialised
    // default that an all-negative population would never beat.
    Sampled a, b;
    a.sample(-1.0);
    a.sample(-3.0);
    b.sample(-2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -1.0);
    EXPECT_DOUBLE_EQ(a.mean(), -2.0);
}

TEST(Stats, HistogramBucketBoundaries)
{
    Log2Histogram h;
    h.sample(0); // bucket 0 holds exactly the zeros
    h.sample(1); // [1,2) -> bucket 1
    h.sample(2); // [2,4) -> bucket 2
    h.sample(3);
    h.sample(4); // [4,8) -> bucket 3
    h.sample(7);
    h.sample(8); // [8,16) -> bucket 4
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketLow(3), 4u);
    EXPECT_EQ(Log2Histogram::bucketLow(4), 8u);
}

TEST(Stats, HistogramPercentileReturnsBucketRightEdge)
{
    Log2Histogram h;
    for (std::uint64_t v = 1; v <= 8; ++v)
        h.sample(v); // buckets: 1:[1] 2:[2,3] 3:[4..7] 4:[8..15]
    // rank = ceil(p * 8): p50 -> 4th smallest (value 4, bucket 3,
    // right edge 7); p95/p99 -> 8th smallest (value 8, edge 15).
    // The right edge never understates the true percentile; the old
    // left edge could halve it.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 15.0);
    // p at or below the first sample's bucket share returns its edge.
    EXPECT_DOUBLE_EQ(h.percentile(0.125), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
    // Out-of-range p clamps instead of reading past the buckets.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 15.0);
}

TEST(Stats, HistogramPercentileNeverUnderstates)
{
    // The reported percentile must upper-bound the exact one for
    // every sampled value and every p (the bug this guards against
    // reported the bucket floor, up to 2x low).
    Log2Histogram h;
    const std::uint64_t values[] = {1, 3, 7, 12, 100, 1000, 4096};
    for (std::uint64_t v : values)
        h.sample(v);
    const std::size_t n = std::size(values);
    for (std::size_t rank = 1; rank <= n; ++rank) {
        const double p =
            static_cast<double>(rank) / static_cast<double>(n);
        EXPECT_GE(h.percentile(p),
                  static_cast<double>(values[rank - 1]))
            << "p=" << p;
    }
    // Monotone in p.
    for (double p = 0.05; p < 1.0; p += 0.05)
        EXPECT_LE(h.percentile(p), h.percentile(p + 0.05)) << p;
}

TEST(Stats, HistogramPercentileEdgeCases)
{
    Log2Histogram empty;
    EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);

    Log2Histogram zeros;
    zeros.sample(0);
    zeros.sample(0);
    EXPECT_DOUBLE_EQ(zeros.percentile(0.99), 0.0); // bucket 0 = zero

    Log2Histogram one;
    one.sample(1000); // [512, 1024) -> right edge 1023
    EXPECT_DOUBLE_EQ(one.percentile(0.50), 1023.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.99), 1023.0);

    // Exact powers of two sit at their bucket's left edge; the
    // reported right edge still bounds them.
    Log2Histogram pow2;
    pow2.sample(8); // [8,16) -> 15
    EXPECT_DOUBLE_EQ(pow2.percentile(1.0), 15.0);
}

TEST(Stats, HistogramMergeAddsBuckets)
{
    Log2Histogram a, b;
    a.sample(1);
    a.sample(100);
    b.sample(1);
    b.sample(0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.bucket(Log2Histogram::bucketOf(100)), 1u);
    EXPECT_GE(a.usedBuckets(), 3u);
}

class EnvSeedTest : public ::testing::Test
{
  protected:
    void TearDown() override { unsetenv("RCNVM_SEED"); }
};

TEST_F(EnvSeedTest, UnsetReturnsFallback)
{
    unsetenv("RCNVM_SEED");
    EXPECT_EQ(envSeed(42), 42u);
    EXPECT_EQ(envUint64("RCNVM_SEED", 7), 7u);
}

TEST_F(EnvSeedTest, ParsesDecimalAndHex)
{
    setenv("RCNVM_SEED", "12345", 1);
    EXPECT_EQ(envSeed(42), 12345u);
    setenv("RCNVM_SEED", "0", 1);
    EXPECT_EQ(envSeed(42), 0u);
    setenv("RCNVM_SEED", "0xDEADbeef", 1);
    EXPECT_EQ(envSeed(42), 0xdeadbeefull);
    setenv("RCNVM_SEED", "18446744073709551615", 1); // UINT64_MAX
    EXPECT_EQ(envSeed(42), ~std::uint64_t{0});
}

using EnvSeedDeathTest = EnvSeedTest;

TEST_F(EnvSeedDeathTest, RejectsMalformedValues)
{
    // Each of these used to silently seed 0 (or a truncated prefix),
    // turning a typo into a different experiment.
    const char *bad[] = {"garbage", "123abc", "",     " 5",
                         "5 ",      "-1",     "+7",   "0x",
                         "0xfg",    "1e3",    "12.5"};
    for (const char *v : bad) {
        setenv("RCNVM_SEED", v, 1);
        EXPECT_EXIT(envSeed(42), ::testing::ExitedWithCode(1),
                    "RCNVM_SEED")
            << "value: \"" << v << '"';
    }
}

TEST_F(EnvSeedDeathTest, RejectsOverflow)
{
    setenv("RCNVM_SEED", "18446744073709551616", 1); // 2^64
    EXPECT_EXIT(envSeed(42), ::testing::ExitedWithCode(1),
                "overflows");
}

TEST(ParseUint64Test, AcceptsDecimalAndHex)
{
    std::uint64_t v = 0;
    EXPECT_EQ(parseUint64("0", v), ParseUint::Ok);
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(parseUint64("12345", v), ParseUint::Ok);
    EXPECT_EQ(v, 12345u);
    EXPECT_EQ(parseUint64("0xDEADbeef", v), ParseUint::Ok);
    EXPECT_EQ(v, 0xdeadbeefull);
    EXPECT_EQ(parseUint64("18446744073709551615", v),
              ParseUint::Ok);
    EXPECT_EQ(v, ~std::uint64_t{0});
}

TEST(ParseUint64Test, ClassifiesMalformedAndOverflow)
{
    std::uint64_t v = 0;
    const char *malformed[] = {"",    " 5",  "5 ",  "-1",  "+7",
                               "0x",  "0xfg", "1e3", "12.5",
                               "123abc", "garbage"};
    for (const char *text : malformed) {
        EXPECT_EQ(parseUint64(text, v), ParseUint::Malformed)
            << "text: \"" << text << '"';
    }
    EXPECT_EQ(parseUint64("18446744073709551616", v),
              ParseUint::Overflow);
    EXPECT_EQ(parseUint64("0x10000000000000000", v),
              ParseUint::Overflow);
}

TEST(TablePrinterTest, FormatsAlignedColumns)
{
    TablePrinter t("demo");
    t.addRow({"name", "value"});
    t.addRow({"long-name-here", "1"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-name-here"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

} // namespace
} // namespace rcnvm::util
