/**
 * @file
 * Tests for the binary trace frontend: record/plan round trips,
 * text<->binary property equivalence, malformed-file rejection, the
 * mmap window residency bound, per-core demultiplexing, and the
 * headline guarantee that streaming replay produces byte-identical
 * statistics to fixed-plan replay at any thread count. Also the
 * regression death tests for the strict environment parsing at the
 * RCNVM_EPOCH_TICKS / RCNVM_TUPLES call sites.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "cpu/machine.hh"
#include "trace/trace_binary.hh"
#include "trace/trace_demux.hh"
#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "util/stats_io.hh"

namespace rcnvm::trace {
namespace {

using cpu::AccessPlan;
using cpu::MemOp;
using cpu::OpKind;

bool
sameOp(const MemOp &a, const MemOp &b)
{
    return a.kind == b.kind && a.addr == b.addr &&
           a.bytes == b.bytes && a.computeCycles == b.computeCycles &&
           a.orientation() == b.orientation();
}

void
expectSamePlans(const std::vector<AccessPlan> &got,
                const std::vector<AccessPlan> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c].size(), want[c].size()) << "core " << c;
        for (std::size_t i = 0; i < want[c].size(); ++i) {
            EXPECT_TRUE(sameOp(got[c][i], want[c][i]))
                << "core " << c << " op " << i;
        }
    }
}

/** Fresh path under the gtest temp dir (removed on rewrite). */
std::string
tempTrace(const char *name)
{
    return ::testing::TempDir() + "rcnvm_" + name + ".rtb";
}

std::vector<AccessPlan>
everyKindPlans()
{
    std::vector<AccessPlan> plans(3);
    plans[0] = {
        MemOp::load(0x1000),
        MemOp::store(0x2008, 8),
        MemOp::cload(0x3000),
        MemOp::cstore(0x4010, 8),
        MemOp::cprefetch(0x5000, Orientation::Column),
        MemOp::cprefetch(0x5040, Orientation::Row),
        MemOp::gload(0x6000),
        MemOp::compute(1234),
        MemOp::pin(0x7000, 2048, Orientation::Column),
        MemOp::unpin(0x7000, 2048, Orientation::Column),
        MemOp::fence(),
    };
    plans[1] = {}; // idle core in the middle stays represented
    plans[2] = {MemOp::load(0xdeadbec0),
                MemOp::pin(0x100, 64, Orientation::Row),
                MemOp::unpin(0x100, 64, Orientation::Row)};
    return plans;
}

TEST(TraceBinary, RoundTripsEveryOpKind)
{
    const std::string path = tempTrace("roundtrip");
    const auto plans = everyKindPlans();
    writeBinaryTrace(path, plans);
    expectSamePlans(readBinaryTrace(path), plans);
}

TEST(TraceBinary, HeaderCountsMatchPlans)
{
    const std::string path = tempTrace("counts");
    writeBinaryTrace(path, everyKindPlans());

    MmapTraceReader reader(path);
    EXPECT_EQ(reader.header().version, kTraceVersion);
    EXPECT_EQ(reader.header().coreCount, 3u);
    EXPECT_EQ(reader.header().recordCount, 14u);
    ASSERT_EQ(reader.coreRecordCounts().size(), 3u);
    EXPECT_EQ(reader.coreRecordCounts()[0], 11u);
    EXPECT_EQ(reader.coreRecordCounts()[1], 0u);
    EXPECT_EQ(reader.coreRecordCounts()[2], 3u);
}

TEST(TraceBinary, TextAndBinaryFormatsAgreeOnRandomPlans)
{
    // Property test: a random plan set must survive
    // text -> plans -> binary -> plans unchanged. Seeded, so a
    // failure reproduces.
    std::mt19937_64 rng(20260809);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<AccessPlan> plans(1 + rng() % 4);
        for (auto &plan : plans) {
            const std::size_t ops = rng() % 40;
            for (std::size_t i = 0; i < ops; ++i) {
                const Addr a = (rng() % 0x100000) * 8;
                const auto orient = (rng() % 2) != 0
                                        ? Orientation::Column
                                        : Orientation::Row;
                switch (rng() % 10) {
                  case 0: plan.push_back(MemOp::load(a)); break;
                  case 1:
                    plan.push_back(
                        MemOp::store(a, 8 << (rng() % 4)));
                    break;
                  case 2: plan.push_back(MemOp::cload(a)); break;
                  case 3:
                    plan.push_back(
                        MemOp::cstore(a, 8 << (rng() % 4)));
                    break;
                  case 4:
                    plan.push_back(MemOp::cprefetch(a, orient));
                    break;
                  case 5: plan.push_back(MemOp::gload(a)); break;
                  case 6:
                    plan.push_back(
                        MemOp::compute(1 + rng() % 5000));
                    break;
                  case 7:
                    plan.push_back(MemOp::pin(a, 1024, orient));
                    break;
                  case 8:
                    plan.push_back(MemOp::unpin(a, 1024, orient));
                    break;
                  default: plan.push_back(MemOp::fence()); break;
                }
            }
        }

        const auto viaText = fromString(toString(plans));
        const std::string path = tempTrace("property");
        writeBinaryTrace(path, viaText);
        expectSamePlans(readBinaryTrace(path), viaText);
    }
}

// --- Malformed-file rejection ------------------------------------

/** Write @p bytes verbatim as a pretend trace file. */
std::string
rawFile(const char *name, const std::string &bytes)
{
    const std::string path = tempTrace(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    return path;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(TraceBinaryDeathTest, TruncatedHeaderIsFatal)
{
    const std::string path =
        rawFile("truncated", std::string(10, 'x'));
    EXPECT_EXIT(MmapTraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated header");
}

TEST(TraceBinaryDeathTest, BadMagicIsFatal)
{
    const std::string path = tempTrace("badmagic");
    writeBinaryTrace(path, everyKindPlans());
    std::string bytes = fileBytes(path);
    bytes[0] = 'X';
    const std::string bad = rawFile("badmagic2", bytes);
    EXPECT_EXIT(MmapTraceReader reader(bad),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceBinaryDeathTest, WrongVersionIsFatal)
{
    const std::string path = tempTrace("badversion");
    writeBinaryTrace(path, everyKindPlans());
    std::string bytes = fileBytes(path);
    bytes[8] = 99; // version field follows the 8-byte magic
    const std::string bad = rawFile("badversion2", bytes);
    EXPECT_EXIT(MmapTraceReader reader(bad),
                ::testing::ExitedWithCode(1),
                "version 99 is not the supported version");
}

TEST(TraceBinaryDeathTest, ShortFinalRecordIsFatal)
{
    const std::string path = tempTrace("shortrec");
    writeBinaryTrace(path, everyKindPlans());
    std::string bytes = fileBytes(path);
    bytes.resize(bytes.size() - 7); // tear the last record
    const std::string bad = rawFile("shortrec2", bytes);
    EXPECT_EXIT(MmapTraceReader reader(bad),
                ::testing::ExitedWithCode(1), "short final record");
}

TEST(TraceBinaryDeathTest, RecordCountMismatchIsFatal)
{
    const std::string path = tempTrace("extrarec");
    writeBinaryTrace(path, everyKindPlans());
    std::string bytes = fileBytes(path);
    bytes.append(16, '\0'); // one whole record too many
    const std::string bad = rawFile("extrarec2", bytes);
    EXPECT_EXIT(MmapTraceReader reader(bad),
                ::testing::ExitedWithCode(1),
                "header declares 14 record");
}

TEST(TraceBinaryDeathTest, PerCoreCountMismatchIsFatal)
{
    const std::string path = tempTrace("badcounts");
    writeBinaryTrace(path, everyKindPlans());
    std::string bytes = fileBytes(path);
    bytes[sizeof(TraceFileHeader)] += 1; // core 0's count, +1
    const std::string bad = rawFile("badcounts2", bytes);
    EXPECT_EXIT(MmapTraceReader reader(bad),
                ::testing::ExitedWithCode(1),
                "per-core counts sum");
}

TEST(TraceBinaryDeathTest, RecordNamingUnknownCoreIsFatal)
{
    // Valid header block, but a record claims a core outside the
    // declared range (the count table was patched to keep the sums
    // consistent, so only the record check can catch it).
    const std::string path = tempTrace("badcore");
    writeBinaryTrace(path, {{MemOp::load(0x40)}});
    std::string bytes = fileBytes(path);
    bytes[tracePayloadOffset(1) + 1] = 5; // record 0's core field
    const std::string bad = rawFile("badcore2", bytes);
    MmapTraceReader reader(bad);
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec),
                ::testing::ExitedWithCode(1),
                "names core 5 but the header declares 1 core");
}

TEST(TraceBinaryDeathTest, WriterRejectsOutOfRangeCore)
{
    const std::string path = tempTrace("writercore");
    BinaryTraceWriter writer(path, 2);
    EXPECT_EXIT(writer.append(2, MemOp::load(0x40)),
                ::testing::ExitedWithCode(1),
                "2 core\\(s\\) but a record names core 2");
}

// --- mmap windowing ----------------------------------------------

TEST(TraceReader, WindowedReadStaysResidencyBounded)
{
    // A trace several times larger than the (minimum, one-page)
    // window: every record must still stream through correctly
    // while the mapping never exceeds a single window.
    const std::string path = tempTrace("window");
    std::vector<AccessPlan> plans(1);
    for (unsigned i = 0; i < 2500; ++i)
        plans[0].push_back(MemOp::load(Addr{i} * 64, 64));
    writeBinaryTrace(path, plans);

    MmapTraceReader reader(path, 1); // rounds up to one page
    ASSERT_LT(reader.windowBytes(),
              2500 * sizeof(TraceRecord)); // file >> window
    TraceRecord rec;
    std::uint64_t i = 0;
    while (reader.next(rec)) {
        EXPECT_EQ(rec.addr, i * 64) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, 2500u);
    EXPECT_LE(reader.maxMappedBytes(), reader.windowBytes());
    EXPECT_GT(reader.remaps(), 1u);
}

TEST(TraceReader, RewindReplaysFromTheFirstRecord)
{
    const std::string path = tempTrace("rewind");
    writeBinaryTrace(path, {{MemOp::load(0x40), MemOp::load(0x80)}});
    MmapTraceReader reader(path);
    TraceRecord rec;
    while (reader.next(rec)) {
    }
    reader.rewind();
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.addr, 0x40u);
}

// --- demultiplexing ----------------------------------------------

TEST(TraceDemuxTest, DeliversPerCoreStreamsInOrder)
{
    const std::string path = tempTrace("demux");
    const auto plans = everyKindPlans();
    writeBinaryTrace(path, plans);

    MmapTraceReader reader(path);
    TraceDemux demux(reader);
    ASSERT_EQ(demux.coreCount(), 3u);

    // Pull core 2 first: its records sit behind all of core 0's in
    // file order, so the demux must park core 0's records.
    for (const MemOp &want : plans[2]) {
        const MemOp *got = demux.source(2).peek();
        ASSERT_NE(got, nullptr);
        EXPECT_TRUE(sameOp(*got, want));
        demux.source(2).advance();
    }
    EXPECT_EQ(demux.source(2).peek(), nullptr);

    for (const MemOp &want : plans[0]) {
        const MemOp *got = demux.source(0).peek();
        ASSERT_NE(got, nullptr);
        EXPECT_TRUE(sameOp(*got, want));
        demux.source(0).advance();
    }
    EXPECT_EQ(demux.source(0).peek(), nullptr);
    EXPECT_LE(demux.maxQueued(), plans[0].size());
}

TEST(TraceDemuxTest, EmptyCoreReportsEndWithoutScanning)
{
    const std::string path = tempTrace("sparse");
    writeBinaryTrace(
        path, {{MemOp::load(0x40)}, {}, {MemOp::load(0x80)}});
    MmapTraceReader reader(path);
    TraceDemux demux(reader);
    // The per-core count table answers this without reading any
    // record from the file.
    EXPECT_EQ(demux.source(1).peek(), nullptr);
    EXPECT_EQ(reader.consumed(), 0u);
}

TEST(TraceDemuxTest, RepeatedPeekIsStable)
{
    const std::string path = tempTrace("peek");
    writeBinaryTrace(path, {{MemOp::load(0x40)}});
    MmapTraceReader reader(path);
    TraceDemux demux(reader);
    const MemOp *first = demux.source(0).peek();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(demux.source(0).peek(), first);
}

TEST(TraceDemuxDeathTest, SkewBeyondQueueCapacityIsFatal)
{
    // All of core 0's records precede core 1's; pulling core 1
    // first forces the demux to park more core-0 records than the
    // configured bound.
    const std::string path = tempTrace("skew");
    std::vector<AccessPlan> plans(2);
    for (unsigned i = 0; i < 64; ++i)
        plans[0].push_back(MemOp::load(Addr{i} * 64));
    plans[1] = {MemOp::load(0x0)};
    writeBinaryTrace(path, plans);

    MmapTraceReader reader(path);
    TraceDemux::Config config;
    config.queueCapacity = 8;
    TraceDemux demux(reader, config);
    EXPECT_EXIT((void)demux.source(1).peek(),
                ::testing::ExitedWithCode(1),
                "trace interleaving too skewed");
}

// --- replay equivalence ------------------------------------------

/** RC-NVM-compatible plans (no gathered loads) that exercise loads,
 *  stores, both orientations, prefetch, pinning, compute, fences. */
std::vector<AccessPlan>
replayPlans()
{
    std::vector<AccessPlan> plans(4);
    for (unsigned core = 0; core < 4; ++core) {
        AccessPlan &plan = plans[core];
        plan.push_back(MemOp::pin(Addr{core} << 20, 4096,
                                  core % 2 != 0
                                      ? Orientation::Column
                                      : Orientation::Row));
        for (unsigned i = 0; i < 200; ++i) {
            const Addr a = (Addr{core} << 20) + Addr{i} * 64;
            switch ((core + i) % 5) {
              case 0: plan.push_back(MemOp::load(a)); break;
              case 1: plan.push_back(MemOp::store(a, 8)); break;
              case 2: plan.push_back(MemOp::cload(a)); break;
              case 3: plan.push_back(MemOp::cstore(a, 8)); break;
              default:
                plan.push_back(
                    MemOp::cprefetch(a, Orientation::Column));
                break;
            }
            if (i % 64 == 63)
                plan.push_back(MemOp::fence());
            if (i % 32 == 31)
                plan.push_back(MemOp::compute(100));
        }
        plan.push_back(MemOp::unpin(Addr{core} << 20, 4096,
                                    core % 2 != 0
                                        ? Orientation::Column
                                        : Orientation::Row));
    }
    return plans;
}

cpu::MachineConfig
replayConfig(unsigned threads)
{
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    config.threads = threads;
    config.seed = 42; // immune to an ambient RCNVM_SEED
    return config;
}

std::string
statsJson(const cpu::RunResult &r)
{
    std::ostringstream os;
    util::writeStatsJson(os, r.stats, "replay", r.ticks);
    return os.str();
}

TEST(TraceReplay, StreamingMatchesFixedPlanByteForByte)
{
    const std::string path = tempTrace("replay1");
    writeBinaryTrace(path, replayPlans());

    cpu::Machine fixed(replayConfig(1));
    const std::string fixedJson =
        statsJson(fixed.run(readBinaryTrace(path)));

    MmapTraceReader reader(path);
    TraceDemux demux(reader);
    cpu::Machine streamed(replayConfig(1));
    const std::string streamJson =
        statsJson(streamed.runSources(demux.sources()));

    EXPECT_EQ(fixedJson, streamJson);
}

TEST(TraceReplay, FourThreadStreamingReproducesSingleThread)
{
    const std::string path = tempTrace("replay4");
    writeBinaryTrace(path, replayPlans());

    std::string json[2];
    for (unsigned t = 0; t < 2; ++t) {
        MmapTraceReader reader(path);
        TraceDemux demux(reader);
        cpu::Machine machine(replayConfig(t == 0 ? 1 : 4));
        json[t] = statsJson(machine.runSources(demux.sources()));
    }
    EXPECT_EQ(json[0], json[1]);
}

TEST(TraceReplay, SmallWindowDoesNotChangeReplayStatistics)
{
    // Streaming through a one-page window (dozens of remaps) is
    // invisible to the simulation.
    const std::string path = tempTrace("replaywin");
    writeBinaryTrace(path, replayPlans());

    MmapTraceReader big(path);
    TraceDemux demuxBig(big);
    cpu::Machine a(replayConfig(1));
    const std::string bigJson =
        statsJson(a.runSources(demuxBig.sources()));

    MmapTraceReader small(path, 1);
    TraceDemux demuxSmall(small);
    cpu::Machine b(replayConfig(1));
    const std::string smallJson =
        statsJson(b.runSources(demuxSmall.sources()));

    EXPECT_GT(small.remaps(), 1u);
    EXPECT_EQ(bigJson, smallJson);
}

// --- strict environment parsing at the fixed call sites ----------

class EnvConfigDeathTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("RCNVM_EPOCH_TICKS");
        unsetenv("RCNVM_TUPLES");
    }
};

TEST_F(EnvConfigDeathTest, MalformedEpochTicksIsFatal)
{
    // Used to be a raw strtoull: "garbage" silently became 0 (no
    // epoch sampling) instead of failing the experiment loudly.
    setenv("RCNVM_EPOCH_TICKS", "every-1000", 1);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    EXPECT_EXIT(
        (void)core::runPlans(config, {{MemOp::load(0x40)}}),
        ::testing::ExitedWithCode(1), "RCNVM_EPOCH_TICKS");
}

TEST_F(EnvConfigDeathTest, EpochTicksOverflowIsFatal)
{
    setenv("RCNVM_EPOCH_TICKS", "18446744073709551616", 1);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    EXPECT_EXIT(
        (void)core::runPlans(config, {{MemOp::load(0x40)}}),
        ::testing::ExitedWithCode(1), "overflows");
}

TEST_F(EnvConfigDeathTest, MalformedTuplesIsFatal)
{
    // Used to be a raw strtoull in bench_common: "64k" silently
    // truncated to 64 tuples.
    setenv("RCNVM_TUPLES", "64k", 1);
    EXPECT_EXIT((void)bench::benchTuples(),
                ::testing::ExitedWithCode(1), "RCNVM_TUPLES");
}

TEST_F(EnvConfigDeathTest, WellFormedValuesStillParse)
{
    setenv("RCNVM_TUPLES", "0x400", 1);
    EXPECT_EQ(bench::benchTuples(), 1024u);
    unsetenv("RCNVM_TUPLES");
    EXPECT_EQ(bench::benchTuples(123), 123u);
}

} // namespace
} // namespace rcnvm::trace
