/**
 * @file
 * Tests for the access-trace serialisation: round trips for every
 * op kind, format details, error handling, and replay equivalence
 * (a replayed trace must time exactly like the original plan).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/machine.hh"
#include "mem/memory_system.hh"
#include "trace/trace_io.hh"
#include "workload/queries.hh"

namespace rcnvm::trace {
namespace {

using cpu::AccessPlan;
using cpu::MemOp;
using cpu::OpKind;

bool
sameOp(const MemOp &a, const MemOp &b)
{
    return a.kind == b.kind && a.addr == b.addr &&
           a.bytes == b.bytes && a.computeCycles == b.computeCycles &&
           a.orientation() == b.orientation();
}

TEST(TraceIo, RoundTripsEveryOpKind)
{
    std::vector<AccessPlan> plans(2);
    plans[0] = {
        MemOp::load(0x1000),
        MemOp::store(0x2008, 8),
        MemOp::cload(0x3000),
        MemOp::cstore(0x4010, 8),
        MemOp::cprefetch(0x5000, Orientation::Column),
        MemOp::cprefetch(0x5040, Orientation::Row),
        MemOp::gload(0x6000),
        MemOp::compute(1234),
        MemOp::pin(0x7000, 2048, Orientation::Column),
        MemOp::unpin(0x7000, 2048, Orientation::Column),
        MemOp::fence(),
    };
    plans[1] = {MemOp::load(0xdeadbec0)};

    const auto parsed = fromString(toString(plans));
    ASSERT_EQ(parsed.size(), plans.size());
    for (std::size_t c = 0; c < plans.size(); ++c) {
        ASSERT_EQ(parsed[c].size(), plans[c].size()) << "core " << c;
        for (std::size_t i = 0; i < plans[c].size(); ++i) {
            EXPECT_TRUE(sameOp(parsed[c][i], plans[c][i]))
                << "core " << c << " op " << i;
        }
    }
}

TEST(TraceIo, EmptyPlansRoundTrip)
{
    std::vector<AccessPlan> plans(3); // three idle cores
    const auto parsed = fromString(toString(plans));
    EXPECT_EQ(parsed.size(), 3u);
    for (const auto &plan : parsed)
        EXPECT_TRUE(plan.empty());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    const auto plans = fromString(
        "# a comment\n\n@core 0\n# another\nL 0x40\n\nF\n");
    ASSERT_EQ(plans.size(), 1u);
    ASSERT_EQ(plans[0].size(), 2u);
    EXPECT_EQ(plans[0][0].kind, OpKind::Load);
    EXPECT_EQ(plans[0][1].kind, OpKind::Fence);
}

TEST(TraceIo, SparseCoreSectionsKeepIndices)
{
    const auto plans = fromString("@core 2\nL 0x40\n");
    ASSERT_EQ(plans.size(), 3u);
    EXPECT_TRUE(plans[0].empty());
    EXPECT_TRUE(plans[1].empty());
    EXPECT_EQ(plans[2].size(), 1u);
}

TEST(TraceIo, HexAndDecimalAddressesAccepted)
{
    const auto plans = fromString("@core 0\nL 0x40\nL 128\n");
    EXPECT_EQ(plans[0][0].addr, 0x40u);
    EXPECT_EQ(plans[0][1].addr, 128u);
}

TEST(TraceIoDeathTest, UnknownTagIsFatal)
{
    EXPECT_EXIT((void)fromString("@core 0\nXYZ 0x40\n"),
                ::testing::ExitedWithCode(1), "unknown tag");
}

TEST(TraceIoDeathTest, MissingOperandIsFatal)
{
    EXPECT_EXIT((void)fromString("@core 0\nS 0x40\n"),
                ::testing::ExitedWithCode(1), "missing bytes");
    EXPECT_EXIT((void)fromString("@core 0\nL\n"),
                ::testing::ExitedWithCode(1), "missing address");
    EXPECT_EXIT((void)fromString("@core 0\nCP 0x40 Q\n"),
                ::testing::ExitedWithCode(1), "orientation");
}

TEST(TraceIoDeathTest, MalformedNumbersAreFatal)
{
    // Regression: these used to reach std::stoull raw — garbage
    // escaped as an uncaught exception, negatives wrapped to huge
    // addresses, and trailing junk was silently dropped.
    EXPECT_EXIT((void)fromString("@core 0\nL 0xzz\n"),
                ::testing::ExitedWithCode(1),
                "trace line 2: address '0xzz'");
    EXPECT_EXIT((void)fromString("@core 0\nL -1\n"),
                ::testing::ExitedWithCode(1),
                "not a valid decimal or 0x-hex");
    EXPECT_EXIT((void)fromString("@core 0\nL 64k\n"),
                ::testing::ExitedWithCode(1),
                "not a valid decimal or 0x-hex");
    EXPECT_EXIT(
        (void)fromString("@core 0\nL 18446744073709551616\n"),
        ::testing::ExitedWithCode(1), "overflows 64 bits");
}

TEST(TraceIoDeathTest, OversizedU32OperandIsFatal)
{
    // Regression: need_u32 truncated 64-bit values to their low 32
    // bits instead of rejecting them.
    EXPECT_EXIT((void)fromString("@core 0\nS 0x0 5000000000\n"),
                ::testing::ExitedWithCode(1),
                "bytes 5000000000 does not fit in 32 bits");
    EXPECT_EXIT((void)fromString("@core 4294967296\nL 0x0\n"),
                ::testing::ExitedWithCode(1),
                "does not fit in 32 bits");
}

TEST(TraceIo, ReplayMatchesOriginalTiming)
{
    // Compile a real query, round-trip it through the trace format,
    // and verify the replay is tick-identical.
    const workload::TableSet tables =
        workload::TableSet::standard(2048, 1024, 5);
    const workload::QueryWorkload wl(tables);
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    const auto pd = wl.place(mem::DeviceKind::RcNvm, map);
    const auto q = wl.compile(workload::QueryId::Q1, pd, 4);

    const auto replayed = fromString(toString(q.phases[0]));

    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    cpu::Machine original(config), replay(config);
    EXPECT_EQ(original.run(q.phases[0]).ticks,
              replay.run(replayed).ticks);
}

} // namespace
} // namespace rcnvm::trace
