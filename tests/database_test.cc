/**
 * @file
 * Tests for data placement: word addressing in both orientations,
 * field-scan and tuple-fetch line generation, physical scans,
 * gather eligibility, and the row/column duality invariants that
 * the whole RC-NVM design rests on.
 */

#include <gtest/gtest.h>

#include <set>

#include "imdb/database.hh"
#include "imdb/plan_builder.hh"

namespace rcnvm::imdb {
namespace {

struct RcFixture {
    mem::AddressMap map{mem::Geometry::rcNvm()};
    Table table{"t", Schema::uniform(16), 4096, 21};
    Database db{mem::DeviceKind::RcNvm, map};
    Database::TableId tid = db.addTable(&table,
                                        ChunkLayout::ColumnOriented);
};

struct DramFixture {
    mem::AddressMap map{mem::Geometry::dram()};
    Table table{"t", Schema::uniform(16), 4096, 21};
    Database db{mem::DeviceKind::Dram, map};
    Database::TableId tid = db.addTable(&table,
                                        ChunkLayout::RowOriented);
};

TEST(DatabaseTest, CapabilitiesFollowDevice)
{
    RcFixture rc;
    DramFixture dram;
    EXPECT_TRUE(rc.db.columnCapable());
    EXPECT_FALSE(dram.db.columnCapable());
    EXPECT_EQ(rc.db.deviceKind(), mem::DeviceKind::RcNvm);
}

TEST(DatabaseTest, DualAddressesNameTheSameCell)
{
    // The fundamental invariant: a word's row-oriented and
    // column-oriented addresses convert into each other through
    // the Figure-7 field swap.
    RcFixture f;
    for (std::uint64_t t = 0; t < 4096; t += 97) {
        for (unsigned w = 0; w < 16; w += 3) {
            const Addr row =
                f.db.wordAddr(f.tid, t, w, Orientation::Row);
            const Addr col =
                f.db.wordAddr(f.tid, t, w, Orientation::Column);
            EXPECT_EQ(f.map.convert(row, Orientation::Row,
                                    Orientation::Column),
                      col);
        }
    }
}

TEST(DatabaseTest, DistinctWordsGetDistinctAddresses)
{
    RcFixture f;
    std::set<Addr> seen;
    for (std::uint64_t t = 0; t < 1024; ++t) {
        for (unsigned w = 0; w < 16; ++w) {
            const Addr a =
                f.db.wordAddr(f.tid, t, w, Orientation::Row);
            EXPECT_TRUE(seen.insert(a).second)
                << "duplicate address for tuple " << t << " word "
                << w;
        }
    }
}

TEST(DatabaseTest, RowStoreLayoutIsContiguousOnDram)
{
    // RowOriented chunks linearise to the classical row-store:
    // consecutive words of a tuple are 8 bytes apart in the block.
    DramFixture f;
    const mem::Geometry &g = f.map.geometry();
    for (std::uint64_t t = 0; t < 64; ++t) {
        for (unsigned w = 0; w + 1 < 16; ++w) {
            const Addr a =
                f.db.wordAddr(f.tid, t, w, Orientation::Row);
            const Addr b =
                f.db.wordAddr(f.tid, t, w + 1, Orientation::Row);
            const mem::DecodedAddr da =
                f.map.decode(a, Orientation::Row);
            const mem::DecodedAddr dbd =
                f.map.decode(b, Orientation::Row);
            // Same DRAM row unless we crossed a block boundary.
            if (da.col + 1 < g.colsPerSubarray) {
                EXPECT_EQ(dbd.col, da.col + 1);
                EXPECT_EQ(dbd.row, da.row);
            }
        }
    }
}

TEST(DatabaseTest, ColumnLayoutPutsFieldInOneColumnRun)
{
    // In the column-oriented layout one field of consecutive tuples
    // advances down a single physical direction, so its
    // column-oriented addresses are 8 bytes apart.
    RcFixture f;
    std::uint64_t stride_hits = 0;
    for (std::uint64_t t = 0; t + 1 < 4096; ++t) {
        // Unrotated chunks advance by 8 bytes in the column space;
        // rotated chunks advance by 8 bytes in the row space.
        const bool col_run =
            f.db.wordAddr(f.tid, t + 1, 9, Orientation::Column) ==
            f.db.wordAddr(f.tid, t, 9, Orientation::Column) + 8;
        const bool row_run =
            f.db.wordAddr(f.tid, t + 1, 9, Orientation::Row) ==
            f.db.wordAddr(f.tid, t, 9, Orientation::Row) + 8;
        if (col_run || row_run)
            ++stride_hits;
    }
    // Only chunk boundaries (3 of 4095 transitions) may break runs.
    EXPECT_GE(stride_hits, 4092u);
}

TEST(DatabaseTest, FieldScanCoversEveryTupleExactlyOnce)
{
    RcFixture f;
    std::vector<LineRef> lines;
    f.db.fieldScanLines(f.tid, 9, 0, 4096, lines);
    // Collect the lines each tuple's word should be in and verify
    // coverage.
    std::set<std::pair<Addr, Orientation>> have;
    for (const LineRef &l : lines)
        have.insert({l.addr, l.orient});
    for (std::uint64_t t = 0; t < 4096; ++t) {
        const Addr row =
            f.db.wordAddr(f.tid, t, 9, Orientation::Row) & ~63ull;
        const Addr col =
            f.db.wordAddr(f.tid, t, 9, Orientation::Column) &
            ~63ull;
        const bool covered =
            have.count({row, Orientation::Row}) ||
            have.count({col, Orientation::Column});
        EXPECT_TRUE(covered) << "tuple " << t << " not covered";
    }
}

TEST(DatabaseTest, FieldScanUsesColumnAccessOnRcNvm)
{
    RcFixture f;
    std::vector<LineRef> lines;
    f.db.fieldScanLines(f.tid, 0, 0, 1024, lines);
    // 1024 tuples x 8 B / 64 B = 128 lines for one chunk, all
    // oriented along the tuple axis.
    EXPECT_EQ(lines.size(), 128u);
}

TEST(DatabaseTest, FieldScanIsStridedOnDram)
{
    DramFixture f;
    std::vector<LineRef> lines;
    f.db.fieldScanLines(f.tid, 9, 0, 1024, lines);
    // Row-store DRAM: one 64-byte line per tuple (128 B stride).
    EXPECT_EQ(lines.size(), 1024u);
    for (const LineRef &l : lines)
        EXPECT_EQ(l.orient, Orientation::Row);
}

TEST(DatabaseTest, FieldScanRangeRespected)
{
    RcFixture f;
    std::vector<LineRef> lines;
    f.db.fieldScanLines(f.tid, 3, 512, 1536, lines);
    EXPECT_EQ(lines.size(), 128u); // 1024 tuples / 8 per line
}

TEST(DatabaseTest, EmptyScanEmitsNothing)
{
    RcFixture f;
    std::vector<LineRef> lines;
    f.db.fieldScanLines(f.tid, 3, 100, 100, lines);
    EXPECT_TRUE(lines.empty());
}

TEST(DatabaseTest, TupleLinesCoverWordSpan)
{
    RcFixture f;
    for (std::uint64_t t : {0ull, 17ull, 1023ull, 4095ull}) {
        std::vector<LineRef> lines;
        f.db.tupleLines(f.tid, t, 2, 4, lines); // f3, f4
        ASSERT_FALSE(lines.empty());
        // Both words must fall inside the emitted lines (same
        // orientation space).
        for (unsigned w = 2; w < 4; ++w) {
            const Orientation o = lines[0].orient;
            const Addr addr =
                f.db.wordAddr(f.tid, t, w, o) & ~63ull;
            bool found = false;
            for (const LineRef &l : lines)
                found |= l.addr == addr;
            EXPECT_TRUE(found);
        }
    }
}

TEST(DatabaseTest, TupleFetchIsOneLineForNarrowSpans)
{
    // A 2-word fetch never needs more than 2 lines.
    RcFixture f;
    for (std::uint64_t t = 0; t < 200; t += 7) {
        std::vector<LineRef> lines;
        f.db.tupleLines(f.tid, t, 2, 4, lines);
        EXPECT_LE(lines.size(), 2u);
        EXPECT_GE(lines.size(), 1u);
    }
}

TEST(DatabaseTest, PhysicalScanCoversWholeTable)
{
    RcFixture f;
    std::vector<LineRef> lines;
    f.db.physicalScanLines(f.tid, lines);
    // 4096 tuples x 128 B / 64 B = 8192 lines, all row-oriented,
    // no duplicates.
    EXPECT_EQ(lines.size(), 8192u);
    std::set<Addr> unique;
    for (const LineRef &l : lines) {
        EXPECT_EQ(l.orient, Orientation::Row);
        EXPECT_TRUE(unique.insert(l.addr).second);
    }
}

TEST(DatabaseTest, PhysicalScanMatchesOnDramToo)
{
    DramFixture f;
    std::vector<LineRef> lines;
    f.db.physicalScanLines(f.tid, lines);
    EXPECT_EQ(lines.size(), 8192u);
}

TEST(DatabaseTest, GatherableOnlyOnGsDramPowerOfTwo)
{
    mem::AddressMap map(mem::Geometry::dram());
    Table a16{"a", Schema::uniform(16), 1024, 1};
    Table b20{"b", Schema::uniform(20), 1024, 2};
    Database gs(mem::DeviceKind::GsDram, map);
    const auto ta = gs.addTable(&a16, ChunkLayout::RowOriented);
    const auto tb = gs.addTable(&b20, ChunkLayout::RowOriented);
    EXPECT_TRUE(gs.gatherable(ta, 9));
    EXPECT_FALSE(gs.gatherable(tb, 9)); // 20 words: not power of 2

    Database dram(mem::DeviceKind::Dram, map);
    const auto td = dram.addTable(&a16, ChunkLayout::RowOriented);
    EXPECT_FALSE(dram.gatherable(td, 9));
}

TEST(DatabaseTest, FieldLineCoversTupleGroup)
{
    RcFixture f;
    for (std::uint64_t g = 0; g < 4096; g += 8) {
        LineRef line;
        ASSERT_TRUE(f.db.fieldLine(f.tid, g, 9, line));
        // Every tuple in the group maps into this line.
        for (unsigned i = 0; i < 8; ++i) {
            const Addr a =
                f.db.wordAddr(f.tid, g + i, 9, line.orient);
            EXPECT_EQ(a & ~63ull, line.addr);
        }
    }
}

TEST(DatabaseTest, FieldLineUnavailableOnRowLayout)
{
    mem::AddressMap map(mem::Geometry::rcNvm());
    Table t{"t", Schema::uniform(16), 1024, 5};
    Database db(mem::DeviceKind::RcNvm, map);
    const auto tid = db.addTable(&t, ChunkLayout::RowOriented);
    LineRef line;
    EXPECT_FALSE(db.fieldLine(tid, 0, 0, line));
}

TEST(DatabaseTest, PackedPolicyMinimisesBins)
{
    mem::AddressMap map(mem::Geometry::rcNvm());
    Table t{"t", Schema::uniform(16), 65536, 5};
    Database packed(mem::DeviceKind::RcNvm, map,
                    PlacementPolicy::Packed);
    Database spread(mem::DeviceKind::RcNvm, map,
                    PlacementPolicy::Spread);
    packed.addTable(&t, ChunkLayout::ColumnOriented);
    spread.addTable(&t, ChunkLayout::ColumnOriented);
    // 64 chunks x 16 columns = exactly one 1024-wide subarray when
    // packed; one bin per bank when spread.
    EXPECT_EQ(packed.binsUsed(), 1u);
    EXPECT_EQ(spread.binsUsed(), 64u);
    EXPECT_GT(packed.packingUtilization(),
              spread.packingUtilization());
}

TEST(DatabaseTest, MultipleTablesShareBins)
{
    mem::AddressMap map(mem::Geometry::rcNvm());
    Table a{"a", Schema::uniform(16), 1024, 5};
    Table b{"b", Schema::uniform(20), 1024, 6};
    Database db(mem::DeviceKind::RcNvm, map,
                PlacementPolicy::Packed);
    const auto ta = db.addTable(&a, ChunkLayout::ColumnOriented);
    const auto tb = db.addTable(&b, ChunkLayout::ColumnOriented);
    EXPECT_EQ(db.binsUsed(), 1u);
    // Addresses must not collide.
    std::set<Addr> seen;
    for (std::uint64_t t = 0; t < 1024; ++t) {
        for (unsigned w = 0; w < 16; ++w) {
            EXPECT_TRUE(
                seen.insert(db.wordAddr(ta, t, w, Orientation::Row))
                    .second);
        }
        for (unsigned w = 0; w < 20; ++w) {
            EXPECT_TRUE(
                seen.insert(db.wordAddr(tb, t, w, Orientation::Row))
                    .second);
        }
    }
}

TEST(DatabaseDeathTest, ColumnAddressOnDramPanics)
{
    DramFixture f;
    EXPECT_DEATH(
        (void)f.db.wordAddr(f.tid, 0, 0, Orientation::Column),
        "row-only device");
}

TEST(DatabaseDeathTest, OverflowingDeviceIsFatal)
{
    // 4 GB of 8 MB bins = 512 bins; a 600-bin demand must die.
    mem::AddressMap map(mem::Geometry::rcNvm());
    Database db(mem::DeviceKind::RcNvm, map,
                PlacementPolicy::Packed);
    // One 8 KB payload per tuple: each 1024-tuple chunk fills a
    // whole bin, so 513 chunks exceed the 512 subarrays of the
    // 4 GB device.
    Table big{"big", Schema({Field{"payload", 8192}}),
              513ull * 1024, 1};
    EXPECT_EXIT(
        {
            const auto tid =
                db.addTable(&big, ChunkLayout::ColumnOriented);
            // Touch the last chunk to force address materialisation.
            (void)db.wordAddr(tid, big.tuples() - 1, 0,
                              Orientation::Row);
            std::exit(0);
        },
        ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace rcnvm::imdb
