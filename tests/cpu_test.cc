/**
 * @file
 * Tests for the trace-replay core and the machine assembly:
 * issue/window semantics, compute timing, fences, pin ops, and
 * multi-core runs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/machine.hh"

namespace rcnvm::cpu {
namespace {

MachineConfig
smallMachine(mem::DeviceKind kind = mem::DeviceKind::RcNvm,
             unsigned window = 8)
{
    MachineConfig config;
    config.device = kind;
    config.window = window;
    return config;
}

TEST(MemOpTest, OrientationAndKindHelpers)
{
    EXPECT_EQ(MemOp::load(0).orientation(), Orientation::Row);
    EXPECT_EQ(MemOp::cload(0).orientation(), Orientation::Column);
    EXPECT_EQ(MemOp::cstore(0).orientation(), Orientation::Column);
    EXPECT_TRUE(MemOp::store(0).isWrite());
    EXPECT_TRUE(MemOp::cstore(0).isWrite());
    EXPECT_FALSE(MemOp::cload(0).isWrite());
    EXPECT_TRUE(MemOp::gload(0).isMemory());
    EXPECT_FALSE(MemOp::compute(5).isMemory());
    EXPECT_FALSE(MemOp::fence().isMemory());
    EXPECT_EQ(MemOp::pin(0, 64, Orientation::Row).orientation(),
              Orientation::Row);
}

TEST(MachineTest, EmptyPlanFinishesInstantly)
{
    Machine machine(smallMachine());
    const RunResult r = machine.run(AccessPlan{});
    EXPECT_EQ(r.ticks, Tick{0});
}

TEST(MachineTest, ComputeOnlyPlanTakesExactCycles)
{
    Machine machine(smallMachine());
    AccessPlan plan;
    plan.push_back(MemOp::compute(100));
    plan.push_back(MemOp::compute(23));
    const RunResult r = machine.run(plan);
    EXPECT_EQ(r.ticks, Tick{123u * 500u});
}

TEST(MachineTest, SingleLoadCompletes)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::load(0x1000)};
    const RunResult r = machine.run(plan);
    EXPECT_GT(r.ticks, Tick{0});
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.memOps"), 1.0);
    EXPECT_DOUBLE_EQ(r.stats.get("cache.llcMisses"), 1.0);
    EXPECT_DOUBLE_EQ(r.stats.get("mem.reads"), 1.0);
}

TEST(MachineTest, CacheHitsAreFastOnRerun)
{
    Machine machine(smallMachine());
    AccessPlan plan;
    for (unsigned i = 0; i < 16; ++i)
        plan.push_back(MemOp::load(Addr{i} * 64));
    const RunResult cold = machine.run(plan);
    const RunResult warm = machine.run(plan);
    EXPECT_LT(warm.ticks, cold.ticks);
}

TEST(MachineTest, WindowLimitsOverlap)
{
    // With window 1 the loads serialise; with window 8 they overlap
    // across independent banks.
    AccessPlan plan;
    for (unsigned i = 0; i < 32; ++i)
        plan.push_back(MemOp::load(Addr{i} << 26)); // distinct banks
    Machine serial(smallMachine(mem::DeviceKind::RcNvm, 1));
    Machine overlapped(smallMachine(mem::DeviceKind::RcNvm, 8));
    const Tick t_serial = serial.run(plan).ticks;
    const Tick t_overlap = overlapped.run(plan).ticks;
    EXPECT_LT(t_overlap, t_serial);
    EXPECT_LT(t_overlap * 2, t_serial); // substantial overlap
}

TEST(MachineTest, FenceDrainsBeforeCompute)
{
    // load(miss) ; fence ; compute -- total must exceed the miss
    // latency plus the compute, not overlap them.
    Machine no_fence(smallMachine());
    Machine with_fence(smallMachine());
    AccessPlan a{MemOp::load(0x4000), MemOp::compute(400)};
    AccessPlan b{MemOp::load(0x4000), MemOp::fence(),
                 MemOp::compute(400)};
    const Tick ta = no_fence.run(a).ticks;
    const Tick tb = with_fence.run(b).ticks;
    EXPECT_GT(tb, ta); // fence forbids overlapping the compute
    EXPECT_GE(tb, Tick{400u * 500u});
}

TEST(MachineTest, StoresAreCountedAsWritesOnWriteback)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::store(0x100, 8)};
    const RunResult r = machine.run(plan);
    // Write-allocate: the store triggers a read fill.
    EXPECT_DOUBLE_EQ(r.stats.get("mem.reads"), 1.0);
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.memOps"), 1.0);
}

TEST(MachineTest, MultiCorePlansRunConcurrently)
{
    Machine machine(smallMachine());
    AccessPlan per_core;
    for (unsigned i = 0; i < 64; ++i)
        per_core.push_back(MemOp::compute(1000));
    // One core alone vs four cores with the same per-core work:
    // wall clock should be similar (compute is fully parallel).
    Machine solo(smallMachine());
    const Tick t1 = solo.run(per_core).ticks;
    const Tick t4 =
        machine.run(std::vector<AccessPlan>{per_core, per_core,
                                            per_core, per_core})
            .ticks;
    EXPECT_NEAR(static_cast<double>(t4.value()),
                static_cast<double>(t1.value()),
                static_cast<double>(t1.value()) * 0.01);
}

TEST(MachineTest, CLoadUsesColumnPath)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::cload(0x0)};
    const RunResult r = machine.run(plan);
    EXPECT_DOUBLE_EQ(r.stats.get("mem.colAccesses"), 1.0);
}

TEST(MachineTest, PinUnpinOpsExecute)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::cload(0x0), MemOp::fence(),
                    MemOp::pin(0x0, 64), MemOp::unpin(0x0, 64)};
    const RunResult r = machine.run(plan);
    EXPECT_DOUBLE_EQ(r.stats.get("cache.pinOps"), 2.0);
}

TEST(MachineTest, GatherPlanOnGsDram)
{
    Machine machine(smallMachine(mem::DeviceKind::GsDram));
    AccessPlan plan{MemOp::gload(0x0), MemOp::gload(0x40)};
    const RunResult r = machine.run(plan);
    EXPECT_DOUBLE_EQ(r.stats.get("mem.gathered"), 2.0);
    EXPECT_DOUBLE_EQ(r.stats.get("cache.bypasses"), 2.0);
}

TEST(MachineTest, DeterministicAcrossIdenticalRuns)
{
    AccessPlan plan;
    for (unsigned i = 0; i < 100; ++i) {
        plan.push_back(MemOp::load(Addr{i % 7} * 4096));
        plan.push_back(MemOp::compute(3));
    }
    Machine a(smallMachine()), b(smallMachine());
    EXPECT_EQ(a.run(plan).ticks, b.run(plan).ticks);
}

TEST(MachineTest, ResetRestoresColdCaches)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::load(0x1000)};
    const Tick cold = machine.run(plan).ticks;
    const Tick warm = machine.run(plan).ticks;
    machine.reset();
    const Tick cold_again = machine.run(plan).ticks;
    EXPECT_LT(warm, cold);
    EXPECT_EQ(cold_again, cold);
}

TEST(MachineTest, SequentialLoadTraceGolden)
{
    // End-to-end deterministic-trace regression: the exact finish
    // tick of a 4096-load streaming plan on the RC-NVM machine,
    // recorded from the post-bugfix scheduler. Any change to cache,
    // controller, or bus timing outcomes moves this number.
    MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    AccessPlan plan;
    for (unsigned i = 0; i < 4096; ++i)
        plan.push_back(MemOp::load((Addr{i} * 64) & 0xffffffff));
    Machine machine(config);
    const RunResult r = machine.run(plan);
    EXPECT_EQ(r.ticks, Tick{42041500});
    EXPECT_EQ(r.stats.get("mem.requests"), 4096.0);
    // The derived bus-utilization stat is exported and meaningful:
    // a bus-saturated stream keeps the loaded channel mostly busy.
    EXPECT_GT(r.stats.get("mem.busUtilization"), 0.0);
    EXPECT_LE(r.stats.get("mem.busUtilization"), 1.0);
    // One scheduler wakeup per bus slot, none duplicated.
    EXPECT_EQ(r.stats.get("mem.wakeups"), 4095.0);
}

TEST(MachineTest, ZeroPlansRunsToCompletion)
{
    Machine machine(smallMachine());
    const RunResult r =
        machine.run(std::vector<AccessPlan>{});
    EXPECT_EQ(r.ticks, Tick{0});
}

TEST(MachineTest, FewerPlansThanCoresLeavesTheRestIdle)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::compute(100)};
    // Two plans on a four-core machine: idle cores contribute no
    // time and no operations.
    const RunResult r =
        machine.run(std::vector<AccessPlan>{plan, plan});
    EXPECT_EQ(r.ticks, Tick{100u * 500u});
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.memOps"), 0.0);
}

TEST(MachineTest, BackToBackRunsNeedNoReset)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::load(0x4000), MemOp::compute(10)};
    const RunResult first = machine.run(plan);
    // A second run on the same machine starts immediately; its
    // counters continue accumulating (no implicit reset).
    const RunResult second = machine.run(plan);
    EXPECT_GT(first.ticks, Tick{0});
    EXPECT_GT(second.ticks, Tick{0});
    EXPECT_DOUBLE_EQ(second.stats.get("cpu.memOps"), 2.0);
    // Warm caches make the replay no slower than the cold run.
    EXPECT_LE(second.ticks, first.ticks);
}

TEST(MachineTest, ServeWithNoTrafficReturnsImmediately)
{
    Machine machine(smallMachine());
    const RunResult r = machine.serve();
    EXPECT_EQ(r.ticks, Tick{0});
}

TEST(MachineTest, StartOnCoreRunsUnderServe)
{
    Machine machine(smallMachine());
    AccessPlan plan{MemOp::compute(100)};
    Tick finished{0};
    machine.startOnCore(2, plan,
                        [&finished](Tick t) { finished = t; });
    EXPECT_FALSE(machine.coreIdle(2));
    EXPECT_TRUE(machine.coreIdle(0));
    const RunResult r = machine.serve();
    EXPECT_EQ(finished, Tick{100u * 500u});
    EXPECT_EQ(r.ticks, Tick{100u * 500u});
    EXPECT_TRUE(machine.coreIdle(2));
}

TEST(MachineTest, QueueWaitTailIsExported)
{
    Machine machine(smallMachine());
    AccessPlan plan;
    for (unsigned i = 0; i < 64; ++i)
        plan.push_back(MemOp::load(Addr{i} * 64));
    const RunResult r = machine.run(plan);
    // The p99 controller queue-wait formula rides in the snapshot:
    // an inclusive log2-bucket right edge, so zero or one below a
    // power of two.
    ASSERT_TRUE(r.stats.contains("mem.queueWaitP99"));
    const double p99 = r.stats.get("mem.queueWaitP99");
    EXPECT_GE(p99, 0.0);
    if (p99 > 0.0) {
        const double l = std::log2(p99 + 1.0);
        EXPECT_DOUBLE_EQ(l, std::floor(l));
    }
}

TEST(MachineDeathTest, TooManyPlansIsFatal)
{
    Machine machine(smallMachine());
    const std::vector<AccessPlan> plans(
        5, AccessPlan{MemOp::compute(1)});
    EXPECT_EXIT(machine.run(plans), ::testing::ExitedWithCode(1),
                "more plans");
}

} // namespace
} // namespace rcnvm::cpu
