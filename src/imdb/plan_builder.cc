#include "imdb/plan_builder.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::imdb {

using cpu::MemOp;
using cpu::OpKind;

cpu::AccessPlan
PlanBuilder::take()
{
    cpu::AccessPlan out;
    out.swap(plan_);
    return out;
}

void
PlanBuilder::compute(std::uint64_t cycles)
{
    while (cycles > 0) {
        const std::uint32_t step = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(cycles, 0xffffffffull));
        plan_.push_back(MemOp::compute(step));
        cycles -= step;
    }
}

void
PlanBuilder::fence()
{
    plan_.push_back(MemOp::fence());
}

void
PlanBuilder::emitLine(const LineRef &line, bool write)
{
    if (line.orient == Orientation::Column) {
        plan_.push_back(write ? MemOp::cstore(line.addr, 64)
                              : MemOp::cload(line.addr, 64));
    } else {
        plan_.push_back(write ? MemOp{OpKind::Store, line.addr, 64, 0}
                              : MemOp::load(line.addr, 64));
    }
}

void
PlanBuilder::emitLines(const std::vector<LineRef> &lines, bool write,
                       unsigned compute_per_line)
{
    for (const LineRef &line : lines) {
        emitLine(line, write);
        if (compute_per_line > 0)
            plan_.push_back(MemOp::compute(compute_per_line));
    }
}

void
PlanBuilder::scanFieldWord(Database::TableId id, unsigned w,
                           std::uint64_t t0, std::uint64_t t1,
                           unsigned compute_per_value)
{
    if (t0 >= t1)
        return;

    if (db_->gatherable(id, w)) {
        // GS-DRAM: one gathered access per 8 tuples.
        std::uint64_t t = t0;
        for (; t + 8 <= t1; t += 8) {
            plan_.push_back(MemOp::gload(
                db_->wordAddr(id, t, w, Orientation::Row)));
            if (compute_per_value > 0)
                plan_.push_back(
                    MemOp::compute(8 * compute_per_value));
        }
        for (; t < t1; ++t) {
            plan_.push_back(MemOp::load(
                db_->wordAddr(id, t, w, Orientation::Row), 64));
            if (compute_per_value > 0)
                plan_.push_back(MemOp::compute(compute_per_value));
        }
        return;
    }

    std::vector<LineRef> lines;
    db_->fieldScanLines(id, w, t0, t1, lines);
    if (lines.empty())
        return;
    const std::uint64_t values = t1 - t0;
    const unsigned per_line = static_cast<unsigned>(std::max<std::uint64_t>(
        1, values / lines.size()));
    emitLines(lines, false, per_line * compute_per_value);
}

void
PlanBuilder::fetchTuples(Database::TableId id,
                         const std::vector<std::uint64_t> &tuples,
                         unsigned w0, unsigned w1,
                         unsigned compute_per_tuple)
{
    std::vector<LineRef> lines;
    LineRef last{~Addr{0}, Orientation::Row};
    for (const std::uint64_t t : tuples) {
        lines.clear();
        db_->tupleLines(id, t, w0, w1, lines);
        for (const LineRef &line : lines) {
            if (line == last)
                continue; // adjacent tuples sharing a line
            emitLine(line, false);
            last = line;
        }
        if (compute_per_tuple > 0)
            plan_.push_back(MemOp::compute(compute_per_tuple));
    }
}

void
PlanBuilder::fetchTuplesBest(Database::TableId id,
                             const std::vector<std::uint64_t> &tuples,
                             unsigned w0, unsigned w1,
                             unsigned compute_per_tuple)
{
    if (tuples.empty())
        return;

    // Columnar fetch needs the tuple-axis line primitive. GS-DRAM
    // cannot help here: its gather patterns describe uniform strides
    // configured ahead of a scan, not the irregular tuple groups a
    // predicate selects (the paper's flexibility criticism).
    LineRef probe;
    const bool columnar =
        db_->fieldLine(id, tuples.front() & ~std::uint64_t{7}, w0,
                       probe);
    if (!columnar) {
        fetchTuples(id, tuples, w0, w1, compute_per_tuple);
        return;
    }

    // Count the distinct 8-tuple groups the matches cover.
    std::uint64_t groups = 0;
    std::uint64_t last_group = ~std::uint64_t{0};
    for (const std::uint64_t t : tuples) {
        const std::uint64_t g = t / 8;
        if (g != last_group) {
            ++groups;
            last_group = g;
        }
    }

    // Row fetches pay buffer conflicts on scattered rows; column
    // reads stream within open column buffers. Weight row lines
    // accordingly (conflict ~1.3x a pipelined buffer hit); sparse
    // matches therefore keep the paper's Figure-12 row-access plan
    // while dense outputs (joins, high selectivity) go columnar.
    const unsigned words = w1 - w0;
    const std::uint64_t row_cost =
        13 * tuples.size() *
        util::divCeil(std::uint64_t{words} * 8 + 8, 64) / 10;
    const std::uint64_t col_cost = groups * words;
    if (row_cost < col_cost) {
        fetchTuples(id, tuples, w0, w1, compute_per_tuple);
        return;
    }

    last_group = ~std::uint64_t{0};
    for (const std::uint64_t t : tuples) {
        const std::uint64_t g = t / 8;
        if (g != last_group) {
            for (unsigned w = w0; w < w1; ++w) {
                LineRef line;
                db_->fieldLine(id, g * 8, w, line);
                emitLine(line, false);
            }
            last_group = g;
        }
        if (compute_per_tuple > 0)
            plan_.push_back(MemOp::compute(compute_per_tuple));
    }
}

void
PlanBuilder::storeFieldWord(Database::TableId id,
                            const std::vector<std::uint64_t> &tuples,
                            unsigned w)
{
    const bool column_space =
        db_->columnCapable() &&
        db_->layout(id) == ChunkLayout::ColumnOriented;
    for (const std::uint64_t t : tuples) {
        if (column_space) {
            plan_.push_back(MemOp::cstore(
                db_->wordAddr(id, t, w, Orientation::Column), 8));
        } else {
            plan_.push_back(MemOp::store(
                db_->wordAddr(id, t, w, Orientation::Row), 8));
        }
    }
}

void
PlanBuilder::hashAccess(Database::TableId hash_id,
                        const std::vector<std::uint64_t> &slots,
                        bool write, unsigned compute_each)
{
    for (const std::uint64_t slot : slots) {
        const Addr a = db_->wordAddr(hash_id, slot, 0,
                                     Orientation::Row);
        plan_.push_back(write ? MemOp::store(a, 8)
                              : MemOp::load(a, 8));
        if (compute_each > 0)
            plan_.push_back(MemOp::compute(compute_each));
    }
}

void
PlanBuilder::orderedMultiColumnScan(
    Database::TableId id, const std::vector<unsigned> &words,
    std::uint64_t t0, std::uint64_t t1, unsigned group_lines,
    unsigned compute_per_tuple)
{
    if (t0 >= t1 || words.empty())
        return;

    // The group-caching transform needs each (8-tuple group, field
    // word) pair to map to a single cache line along the tuple
    // axis, which holds exactly for column-oriented chunks.
    LineRef probe;
    const bool columnar = db_->fieldLine(id, t0 & ~std::uint64_t{7},
                                         words.front(), probe);
    if (!columnar) {
        // Ordered access without column support degenerates to
        // per-tuple row fetches over the word span.
        const unsigned lo = *std::min_element(words.begin(),
                                              words.end());
        const unsigned hi = *std::max_element(words.begin(),
                                              words.end());
        std::vector<std::uint64_t> all;
        all.reserve(static_cast<std::size_t>(t1 - t0));
        for (std::uint64_t t = t0; t < t1; ++t)
            all.push_back(t);
        fetchTuples(id, all, lo, hi + 1, compute_per_tuple);
        return;
    }

    // Column-oriented layout: each field word is one physical
    // column; strict tuple order makes naive accesses ping-pong
    // between column buffers. Group caching prefetches K lines per
    // column into the pinned LLC and consumes from cache; batches
    // are double-buffered so batch k+1's prefetch overlaps batch
    // k's consumption and the memory bus never idles.
    struct Batch {
        std::uint64_t b, e;
    };
    std::vector<Batch> batches;
    const std::uint64_t chunk = Database::chunkTuples;
    for (std::uint64_t base = t0; base < t1;) {
        const std::uint64_t chunk_end =
            std::min(t1, (base / chunk + 1) * chunk);
        const std::uint64_t batch_tuples =
            group_lines > 0 ? std::uint64_t{group_lines} * 8
                            : chunk_end - base;
        for (std::uint64_t b = base; b < chunk_end;
             b += batch_tuples) {
            batches.push_back(
                Batch{b, std::min(chunk_end, b + batch_tuples)});
        }
        base = chunk_end;
    }

    const auto prefetch_ops = [&](const Batch &batch,
                                  cpu::AccessPlan &out) {
        for (const unsigned w : words) {
            for (std::uint64_t g = batch.b; g < batch.e; g += 8) {
                LineRef line;
                db_->fieldLine(id, g, w, line);
                out.push_back(
                    MemOp::cprefetch(line.addr, line.orient));
            }
        }
    };

    const auto pin_ops = [&](const Batch &batch, bool pin) {
        for (const unsigned w : words) {
            LineRef line;
            db_->fieldLine(id, batch.b, w, line);
            const auto bytes = static_cast<std::uint32_t>(
                (batch.e - batch.b) * 8);
            plan_.push_back(
                pin ? MemOp::pin(line.addr, bytes, line.orient)
                    : MemOp::unpin(line.addr, bytes, line.orient));
        }
    };

    const auto consume_ops = [&](const Batch &batch,
                                 cpu::AccessPlan &out) {
        for (std::uint64_t g = batch.b; g < batch.e; g += 8) {
            for (const unsigned w : words) {
                LineRef line;
                db_->fieldLine(id, g, w, line);
                out.push_back(line.orient == Orientation::Column
                                  ? MemOp::cload(line.addr, 64)
                                  : MemOp::load(line.addr, 64));
            }
            const std::uint64_t n =
                std::min<std::uint64_t>(8, batch.e - g);
            if (compute_per_tuple > 0)
                out.push_back(MemOp::compute(
                    static_cast<std::uint32_t>(
                        n * compute_per_tuple)));
        }
    };

    if (group_lines == 0) {
        // Baseline: strict-order consumption straight from memory.
        for (const Batch &batch : batches)
            consume_ops(batch, plan_);
        return;
    }

    for (std::size_t k = 0; k < batches.size(); ++k) {
        if (k == 0) {
            // Startup: prefetch the first batch unpipelined.
            prefetch_ops(batches[0], plan_);
            fence();
            pin_ops(batches[0], true);
        }
        cpu::AccessPlan consume, next_prefetch;
        consume_ops(batches[k], consume);
        if (k + 1 < batches.size())
            prefetch_ops(batches[k + 1], next_prefetch);

        // Interleave: cached reads stream while the next batch's
        // prefetches keep the memory bus busy.
        std::size_t ci = 0, pi = 0;
        while (ci < consume.size() || pi < next_prefetch.size()) {
            if (ci < consume.size())
                plan_.push_back(consume[ci++]);
            if (pi < next_prefetch.size())
                plan_.push_back(next_prefetch[pi++]);
        }

        pin_ops(batches[k], false); // unpin the consumed batch
        if (k + 1 < batches.size()) {
            fence(); // the next batch's prefetch must have landed
            pin_ops(batches[k + 1], true);
        }
    }
}

std::vector<LineRef>
physicalScanLines(const Database &db, Database::TableId id)
{
    std::vector<LineRef> out;
    db.physicalScanLines(id, out);
    return out;
}

} // namespace rcnvm::imdb
