/**
 * @file
 * Relational schema metadata: fields, widths, and word offsets.
 *
 * RC-NVM's access granularity is one 8-byte word (Sec. 4.1), so all
 * field widths are multiples of 8 bytes. Fields wider than one word
 * ("wide fields", Sec. 5) span several adjacent words/columns.
 */

#ifndef RCNVM_IMDB_SCHEMA_HH_
#define RCNVM_IMDB_SCHEMA_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace rcnvm::imdb {

/** One field (attribute) of a table. */
struct Field {
    std::string name;
    unsigned bytes = 8; //!< multiple of 8

    unsigned words() const { return bytes / 8; }
};

/**
 * An ordered list of fields plus derived word offsets.
 */
class Schema
{
  public:
    Schema() = default;

    /** Build from a field list; widths must be multiples of 8. */
    explicit Schema(std::vector<Field> fields);

    /**
     * Convenience: @p n homogeneous 8-byte fields named f1..fn
     * (the paper's table-a has 16, table-b has 20).
     */
    static Schema uniform(unsigned n);

    /** Number of fields. */
    unsigned fieldCount() const
    {
        return static_cast<unsigned>(fields_.size());
    }

    /** Field metadata by index. */
    const Field &field(unsigned i) const { return fields_[i]; }

    /** Index of the field named @p name; fatal when absent. */
    unsigned fieldIndex(const std::string &name) const;

    /** First word of field @p i within a tuple. */
    unsigned wordOffset(unsigned i) const { return offsets_[i]; }

    /** Words occupied by field @p i. */
    unsigned fieldWords(unsigned i) const
    {
        return fields_[i].words();
    }

    /** Total words per tuple. */
    unsigned tupleWords() const { return tupleWords_; }

    /** Total bytes per tuple. */
    unsigned tupleBytes() const { return tupleWords_ * 8; }

  private:
    std::vector<Field> fields_;
    std::vector<unsigned> offsets_;
    unsigned tupleWords_ = 0;
};

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_SCHEMA_HH_
