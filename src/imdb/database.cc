#include "imdb/database.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::imdb {

using util::divCeil;

Database::Database(mem::DeviceKind kind, const mem::AddressMap &map,
                   PlacementPolicy policy, bool allow_rotation)
    : kind_(kind),
      map_(map),
      colCapable_(mem::capsFor(kind).columnAccess),
      // Rotation swaps the role of rows and columns inside a chunk,
      // which is only meaningful on a dual-addressable device.
      // Spreading maps consecutive chunks to distinct banks; linear
      // devices already interleave at row-buffer granularity, so
      // the policy only applies to dual-addressable placements.
      spread_(policy == PlacementPolicy::Spread && colCapable_),
      packer_(binSide, allow_rotation && colCapable_)
{
}

Database::TableId
Database::addTable(const Table *table, ChunkLayout layout)
{
    PlacedTable pt;
    pt.table = table;
    pt.layout = layout;

    const unsigned tw = table->schema().tupleWords();
    std::uint64_t remaining = table->tuples();
    std::uint64_t first = 0;
    while (remaining > 0) {
        const unsigned cnt = static_cast<unsigned>(
            std::min<std::uint64_t>(remaining, chunkTuples));

        ChunkPlace cp;
        cp.firstTuple = first;
        cp.tupleCount = cnt;
        if (layout == ChunkLayout::ColumnOriented) {
            cp.rectW = tw;
            cp.rectH = cnt;
        } else {
            const std::uint64_t words = std::uint64_t{cnt} * tw;
            cp.rectW = static_cast<unsigned>(
                std::min<std::uint64_t>(words, binSide));
            cp.rectH = static_cast<unsigned>(
                divCeil(words, cp.rectW));
        }
        pt.chunks.push_back(cp);

        first += cnt;
        remaining -= cnt;
    }

    if (!spread_) {
        for (ChunkPlace &cp : pt.chunks)
            cp.slot = packer_.insert(cp.rectW, cp.rectH);
    } else {
        // Spread placement: chunk i of this table goes to bin
        // base + i / chunksPerBin, so a contiguous chunk range (one
        // core's partition) owns a contiguous - and therefore
        // disjoint - set of banks. Each table opens its own group
        // of one bin per bank; bins of successive groups revisit
        // the same banks in deeper subarrays.
        const mem::Geometry &g = map_.geometry();
        const unsigned banks = g.channels * g.ranksPerChannel *
                               g.banksPerRank;
        const unsigned base = packer_.binsUsed();
        const std::uint64_t nc = pt.chunks.size();
        const std::uint64_t per_bin = divCeil(nc, banks);
        for (std::uint64_t i = 0; i < nc; ++i) {
            ChunkPlace &cp = pt.chunks[static_cast<std::size_t>(i)];
            const unsigned bin =
                base + static_cast<unsigned>(i / per_bin);
            if (auto slot =
                    packer_.insertAt(bin, cp.rectW, cp.rectH)) {
                cp.slot = *slot;
            } else {
                // The directed bin overflowed (giant table):
                // degrade gracefully to first-fit packing.
                util::warn("spread bin ", bin,
                           " overflowed; falling back to packed "
                           "placement for one chunk");
                cp.slot = packer_.insert(cp.rectW, cp.rectH);
            }
        }
    }

    tables_.push_back(std::move(pt));
    return static_cast<TableId>(tables_.size() - 1);
}

const Table &
Database::table(TableId id) const
{
    return *tables_.at(id).table;
}

ChunkLayout
Database::layout(TableId id) const
{
    return tables_.at(id).layout;
}

void
Database::chunkCoord(const PlacedTable &pt, const ChunkPlace &cp,
                     unsigned u, unsigned w, unsigned &r,
                     unsigned &c) const
{
    const unsigned tw = pt.table->schema().tupleWords();
    unsigned rr, cc;
    if (pt.layout == ChunkLayout::ColumnOriented) {
        rr = u;
        cc = w;
    } else {
        const unsigned idx = u * tw + w;
        rr = idx / cp.rectW;
        cc = idx % cp.rectW;
    }
    if (!cp.slot.rotated) {
        r = cp.slot.y + rr;
        c = cp.slot.x + cc;
    } else {
        r = cp.slot.y + cc;
        c = cp.slot.x + rr;
    }
}

Addr
Database::physAddr(unsigned bin, unsigned r, unsigned c,
                   Orientation space) const
{
    const mem::Geometry &g = map_.geometry();
    const unsigned C = g.channels;
    const unsigned R = g.ranksPerChannel;
    const unsigned B = g.banksPerRank;

    if (colCapable_) {
        mem::DecodedAddr d;
        d.channel = bin % C;
        d.rank = (bin / C) % R;
        d.bank = (bin / (C * R)) % B;
        d.subarray = bin / (C * R * B);
        if (d.subarray >= g.subarraysPerBank)
            rcnvm_fatal("database does not fit: bin ", bin,
                        " exceeds device subarrays");
        d.row = r;
        d.col = c;
        return map_.encode(d, space);
    }

    if (space != Orientation::Row)
        rcnvm_panic("column address requested on a row-only device");

    const std::uint64_t linear =
        std::uint64_t{bin} * binSide * binSide * 8 +
        (std::uint64_t{r} * binSide + c) * 8;
    const std::uint64_t block_bytes = g.rowBytes();
    const std::uint64_t block = linear / block_bytes;
    const std::uint64_t within = linear % block_bytes;

    mem::DecodedAddr d;
    d.channel = static_cast<unsigned>(block % C);
    d.rank = static_cast<unsigned>((block / C) % R);
    d.bank = static_cast<unsigned>((block / (C * R)) % B);
    const std::uint64_t row_linear = block / (C * R * B);
    d.subarray =
        static_cast<unsigned>(row_linear / g.rowsPerSubarray);
    d.row = static_cast<unsigned>(row_linear % g.rowsPerSubarray);
    if (d.subarray >= g.subarraysPerBank)
        rcnvm_fatal("database does not fit on ", toString(kind_));
    d.col = static_cast<unsigned>(within / g.wordBytes);
    d.offset = static_cast<unsigned>(within % g.wordBytes);
    return map_.encode(d, Orientation::Row);
}

Addr
Database::wordAddr(TableId id, std::uint64_t t, unsigned w,
                   Orientation space) const
{
    const PlacedTable &pt = tables_.at(id);
    const std::size_t ci = static_cast<std::size_t>(t / chunkTuples);
    const ChunkPlace &cp = pt.chunks.at(ci);
    unsigned r, c;
    chunkCoord(pt, cp, static_cast<unsigned>(t % chunkTuples), w, r,
               c);
    return physAddr(cp.slot.bin, r, c, space);
}

void
Database::emitRowRun(unsigned bin, unsigned r, unsigned c0,
                     unsigned c1, std::vector<LineRef> &out) const
{
    for (unsigned c = c0 & ~7u; c <= c1; c += 8) {
        out.push_back(LineRef{physAddr(bin, r, c, Orientation::Row),
                              Orientation::Row});
    }
}

void
Database::emitColRun(unsigned bin, unsigned r0, unsigned r1,
                     unsigned c, std::vector<LineRef> &out) const
{
    for (unsigned r = r0 & ~7u; r <= r1; r += 8) {
        out.push_back(
            LineRef{physAddr(bin, r, c, Orientation::Column),
                    Orientation::Column});
    }
}

void
Database::fieldScanLines(TableId id, unsigned w, std::uint64_t t0,
                         std::uint64_t t1,
                         std::vector<LineRef> &out) const
{
    if (t0 >= t1)
        return;
    const PlacedTable &pt = tables_.at(id);
    const unsigned tw = pt.table->schema().tupleWords();

    const auto push_line = [&out](Addr addr, Orientation o) {
        const LineRef ref{util::alignDown(addr, 64), o};
        if (out.empty() || !(out.back() == ref))
            out.push_back(ref);
    };

    const std::size_t c_first =
        static_cast<std::size_t>(t0 / chunkTuples);
    const std::size_t c_last =
        static_cast<std::size_t>((t1 - 1) / chunkTuples);

    for (std::size_t ci = c_first; ci <= c_last; ++ci) {
        const ChunkPlace &cp = pt.chunks.at(ci);
        const unsigned u0 = static_cast<unsigned>(
            std::max(t0, cp.firstTuple) - cp.firstTuple);
        const unsigned u1 = static_cast<unsigned>(
            std::min<std::uint64_t>(t1, cp.firstTuple +
                                            cp.tupleCount) -
            cp.firstTuple);
        if (u0 >= u1)
            continue;
        const unsigned bin = cp.slot.bin;
        const unsigned x = cp.slot.x;
        const unsigned y = cp.slot.y;

        if (pt.layout == ChunkLayout::ColumnOriented) {
            if (!cp.slot.rotated) {
                // Field w is physical column x+w, tuples along rows.
                if (colCapable_) {
                    emitColRun(bin, y + u0, y + u1 - 1, x + w,
                               out);
                } else {
                    // Linear image: one strided line per tuple.
                    for (unsigned u = u0; u < u1; ++u) {
                        push_line(physAddr(bin, y + u, x + w,
                                           Orientation::Row),
                                  Orientation::Row);
                    }
                }
            } else {
                // Rotated: field w is physical row y+w, tuples along
                // columns - a sequential row-oriented scan.
                emitRowRun(bin, y + w, x + u0, x + u1 - 1, out);
            }
            continue;
        }

        // RowOriented layout.
        if (!cp.slot.rotated) {
            if (colCapable_ && cp.rectW % tw == 0) {
                // Tuples with equal residue share one physical
                // column; scan each residue column vertically.
                const unsigned per_row = cp.rectW / tw;
                for (unsigned k = 0; k < per_row; ++k) {
                    // Tuples u = m * per_row + k within [u0, u1).
                    unsigned m_lo =
                        u0 > k ? divCeil(u0 - k, per_row) : 0;
                    if (k + m_lo * per_row >= u1)
                        continue;
                    const unsigned m_hi = (u1 - 1 - k) / per_row;
                    const unsigned c = x + k * tw + w;
                    emitColRun(bin, y + m_lo, y + m_hi, c, out);
                }
            } else {
                for (unsigned u = u0; u < u1; ++u) {
                    const unsigned idx = u * tw + w;
                    push_line(physAddr(bin, y + idx / cp.rectW,
                                       x + idx % cp.rectW,
                                       Orientation::Row),
                              Orientation::Row);
                }
            }
        } else {
            // Rotated row layout (dual-addressable devices only):
            // residue columns become residue rows.
            if (cp.rectW % tw == 0) {
                const unsigned per_row = cp.rectW / tw;
                for (unsigned k = 0; k < per_row; ++k) {
                    unsigned m_lo =
                        u0 > k ? divCeil(u0 - k, per_row) : 0;
                    if (k + m_lo * per_row >= u1)
                        continue;
                    const unsigned m_hi = (u1 - 1 - k) / per_row;
                    const unsigned r = y + k * tw + w;
                    emitRowRun(bin, r, x + m_lo, x + m_hi, out);
                }
            } else {
                for (unsigned u = u0; u < u1; ++u) {
                    unsigned r, c;
                    chunkCoord(pt, cp, u, w, r, c);
                    push_line(physAddr(bin, r, c,
                                       Orientation::Column),
                              Orientation::Column);
                }
            }
        }
    }
}

void
Database::tupleLines(TableId id, std::uint64_t t, unsigned w0,
                     unsigned w1, std::vector<LineRef> &out) const
{
    if (w0 >= w1)
        return;
    const PlacedTable &pt = tables_.at(id);
    const unsigned tw = pt.table->schema().tupleWords();
    const std::size_t ci = static_cast<std::size_t>(t / chunkTuples);
    const ChunkPlace &cp = pt.chunks.at(ci);
    const unsigned u = static_cast<unsigned>(t % chunkTuples);
    const unsigned bin = cp.slot.bin;
    const unsigned x = cp.slot.x;
    const unsigned y = cp.slot.y;

    if (pt.layout == ChunkLayout::ColumnOriented) {
        if (!cp.slot.rotated) {
            emitRowRun(bin, y + u, x + w0, x + w1 - 1, out);
        } else {
            emitColRun(bin, y + w0, y + w1 - 1, x + u, out);
        }
        return;
    }

    // RowOriented: the words are contiguous in chunk space but may
    // wrap across rect rows; emit one range per rect row touched.
    const unsigned idx0 = u * tw + w0;
    const unsigned idx1 = u * tw + w1 - 1;
    for (unsigned rr = idx0 / cp.rectW; rr <= idx1 / cp.rectW; ++rr) {
        const unsigned lo =
            std::max(idx0, rr * cp.rectW) % cp.rectW;
        const unsigned hi =
            std::min(idx1, rr * cp.rectW + cp.rectW - 1) % cp.rectW;
        if (!cp.slot.rotated) {
            emitRowRun(bin, y + rr, x + lo, x + hi, out);
        } else {
            emitColRun(bin, y + lo, y + hi, x + rr, out);
        }
    }
}

bool
Database::fieldLine(TableId id, std::uint64_t t, unsigned w,
                    LineRef &out) const
{
    const PlacedTable &pt = tables_.at(id);
    if (pt.layout != ChunkLayout::ColumnOriented || !colCapable_)
        return false;
    const std::size_t ci = static_cast<std::size_t>(t / chunkTuples);
    const ChunkPlace &cp = pt.chunks.at(ci);
    const unsigned u = static_cast<unsigned>(t % chunkTuples);
    if (!cp.slot.rotated) {
        // Tuples run down physical column x+w.
        const Addr a = physAddr(cp.slot.bin, cp.slot.y + u,
                                cp.slot.x + w, Orientation::Column);
        out = LineRef{util::alignDown(a, 64), Orientation::Column};
    } else {
        // Rotated chunk: tuples run along physical row y+w.
        const Addr a = physAddr(cp.slot.bin, cp.slot.y + w,
                                cp.slot.x + u, Orientation::Row);
        out = LineRef{util::alignDown(a, 64), Orientation::Row};
    }
    return true;
}

void
Database::physicalScanLines(TableId id,
                            std::vector<LineRef> &out) const
{
    const PlacedTable &pt = tables_.at(id);

    // Collect the x-interval each chunk occupies on each (bin, row)
    // it touches, then walk rows in order, draining every interval
    // of a row before moving to the next.
    struct Segment {
        unsigned bin, row, x0, x1; // [x0, x1] inclusive, in words
    };
    std::vector<Segment> segments;
    for (const ChunkPlace &cp : pt.chunks) {
        const unsigned w = cp.slot.rotated ? cp.rectH : cp.rectW;
        const unsigned h = cp.slot.rotated ? cp.rectW : cp.rectH;
        for (unsigned rr = 0; rr < h; ++rr) {
            segments.push_back(Segment{cp.slot.bin, cp.slot.y + rr,
                                       cp.slot.x,
                                       cp.slot.x + w - 1});
        }
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  if (a.bin != b.bin)
                      return a.bin < b.bin;
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.x0 < b.x0;
              });
    // Coalesce intervals that touch or share an aligned line, so a
    // boundary line between side-by-side chunks is read only once.
    std::size_t i = 0;
    while (i < segments.size()) {
        Segment cur = segments[i++];
        while (i < segments.size() &&
               segments[i].bin == cur.bin &&
               segments[i].row == cur.row &&
               (segments[i].x0 & ~7u) <= cur.x1) {
            cur.x1 = std::max(cur.x1, segments[i].x1);
            ++i;
        }
        emitRowRun(cur.bin, cur.row, cur.x0, cur.x1, out);
    }
}

bool
Database::gatherable(TableId id, unsigned w) const
{
    if (kind_ != mem::DeviceKind::GsDram)
        return false;
    const PlacedTable &pt = tables_.at(id);
    if (pt.layout != ChunkLayout::RowOriented)
        return false;
    const unsigned tw = pt.table->schema().tupleWords();
    if (!util::isPowerOfTwo(tw))
        return false;
    // The 8-word gather group must sit inside one DRAM row.
    const std::uint64_t span = (std::uint64_t{7} * tw + 1) * 8;
    if (span > map_.geometry().rowBytes())
        return false;
    (void)w;
    return true;
}

} // namespace rcnvm::imdb
