/**
 * @file
 * Data placement of IMDB tables onto a memory device (Sec. 4.5).
 *
 * Tables are sliced into chunks of up to 1024 tuples. Chunk
 * contents live in a 1024x1024-word chunk space with one of two
 * intra-chunk layouts (Figure 13):
 *
 *  - RowOriented:    tuples run left-to-right, wrapping row by row
 *                    (the classical row-store order);
 *  - ColumnOriented: tuple t occupies row t, so one field forms a
 *                    physical column across tuples.
 *
 * Chunks are packed into bins by the online 2-D bin packer (with
 * rotation) and bins are realised differently per device:
 *
 *  - RC-NVM: a bin is a physical subarray, spread round-robin over
 *    channels/ranks/banks; words get both row- and column-oriented
 *    addresses via the Figure-7 map.
 *  - DRAM/RRAM/GS-DRAM: a bin is an 8 MB linear region, linearised
 *    row-major (8 KB virtual rows) and interleaved across
 *    channels/ranks/banks at row-buffer granularity. RowOriented
 *    chunks then reproduce exactly the classical contiguous
 *    row-store layout.
 */

#ifndef RCNVM_IMDB_DATABASE_HH_
#define RCNVM_IMDB_DATABASE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "imdb/bin_packing.hh"
#include "imdb/table.hh"
#include "mem/geometry.hh"
#include "mem/timing.hh"
#include "util/types.hh"

namespace rcnvm::imdb {

/** Intra-chunk data layout (Figure 13). */
enum class ChunkLayout : std::uint8_t {
    RowOriented,
    ColumnOriented,
};

/**
 * Inter-chunk placement policy.
 *
 * Packed minimises the number of subarrays used (the Fujita
 * bin-packing objective of Sec. 4.5.3). Spread round-robins
 * consecutive chunks over one bin per bank, trading subarray count
 * for bank-level parallelism; it is the performance default and the
 * packing-ablation bench quantifies the trade.
 */
enum class PlacementPolicy : std::uint8_t {
    Packed,
    Spread,
};

/** One 64-byte line access the compiler should emit. */
struct LineRef {
    Addr addr = 0;
    Orientation orient = Orientation::Row;

    bool operator==(const LineRef &) const = default;
};

/**
 * A database instance bound to one memory device: tables, their
 * placement, and the address/geometry queries used by the query
 * compiler.
 */
class Database
{
  public:
    using TableId = unsigned;

    /** Tuples per chunk (one subarray row/column worth). */
    static constexpr unsigned chunkTuples = 1024;

    /** Bin (subarray) side in 8-byte words. */
    static constexpr unsigned binSide = 1024;

    /**
     * @param kind  device the database runs on
     * @param map   the device's address map
     * @param policy  inter-chunk placement policy (dual-addressable
     *        devices only; linear devices interleave at row-buffer
     *        granularity regardless)
     * @param allow_rotation  let the packer rotate chunks
     */
    Database(mem::DeviceKind kind, const mem::AddressMap &map,
             PlacementPolicy policy = PlacementPolicy::Spread,
             bool allow_rotation = true);

    /** True when the device supports column-oriented access. */
    bool columnCapable() const { return colCapable_; }

    /** Device kind the database is placed on. */
    mem::DeviceKind deviceKind() const { return kind_; }

    /**
     * Place a table. Tables must outlive the database. On devices
     * without column access the requested layout is still honoured
     * (it changes the linearised image), which is how the Fig-17
     * micro-benchmarks exercise L1/L2 layouts on DRAM and RRAM.
     */
    TableId addTable(const Table *table, ChunkLayout layout);

    /** The table object behind an id. */
    const Table &table(TableId id) const;

    /** The layout a table was placed with. */
    ChunkLayout layout(TableId id) const;

    /**
     * Physical address of word @p w of tuple @p t, expressed in
     * @p space orientation. Column space is only valid on
     * column-capable devices.
     */
    Addr wordAddr(TableId id, std::uint64_t t, unsigned w,
                  Orientation space) const;

    /**
     * Append to @p out the 64-byte line accesses that read field
     * word @p w of every tuple in [t0, t1), in a buffer-friendly,
     * order-insensitive sequence (aggregations, predicate scans).
     */
    void fieldScanLines(TableId id, unsigned w, std::uint64_t t0,
                        std::uint64_t t1,
                        std::vector<LineRef> &out) const;

    /**
     * Append the line accesses that fetch words [w0, w1) of tuple
     * @p t (tuple materialisation).
     */
    void tupleLines(TableId id, std::uint64_t t, unsigned w0,
                    unsigned w1, std::vector<LineRef> &out) const;

    /**
     * The single line that covers field word @p w of the 8-aligned
     * tuple group starting at @p t, oriented along the tuple axis.
     * Exists only for column-oriented chunks (rotated or not):
     * unrotated chunks yield a column-oriented line, rotated chunks
     * a row-oriented one. Returns false for row-oriented layouts,
     * where one line cannot cover a tuple group of one field.
     */
    bool fieldLine(TableId id, std::uint64_t t, unsigned w,
                   LineRef &out) const;

    /**
     * Append the line accesses of an order-insensitive whole-table
     * sequential scan, in (bin, row, column) order. Adjacent chunks
     * sharing physical rows are merged so open rows are drained
     * before moving on (the Fig-17 "row-direction" scan).
     */
    void physicalScanLines(TableId id,
                           std::vector<LineRef> &out) const;

    /**
     * True when GS-DRAM can gather field word @p w of this table:
     * row-oriented layout, power-of-two tuple stride, and the
     * 8-word gather group contained in one DRAM row.
     */
    bool gatherable(TableId id, unsigned w) const;

    /** Bins (subarrays / 8 MB regions) in use. */
    unsigned binsUsed() const { return packer_.binsUsed(); }

    /** Area utilisation of the bin packing. */
    double packingUtilization() const
    {
        return packer_.utilization();
    }

  private:
    struct ChunkPlace {
        PackSlot slot;
        std::uint64_t firstTuple = 0;
        unsigned tupleCount = 0;
        unsigned rectW = 0; //!< pre-rotation rectangle width
        unsigned rectH = 0;
    };

    struct PlacedTable {
        const Table *table = nullptr;
        ChunkLayout layout = ChunkLayout::ColumnOriented;
        std::vector<ChunkPlace> chunks;
    };

    /** Chunk-space coordinates of (local tuple u, word w). */
    void chunkCoord(const PlacedTable &pt, const ChunkPlace &cp,
                    unsigned u, unsigned w, unsigned &r,
                    unsigned &c) const;

    /** Physical address of bin-space word (r, c). */
    Addr physAddr(unsigned bin, unsigned r, unsigned c,
                  Orientation space) const;

    /**
     * Emit the row-oriented lines covering words [c0, c1] of row
     * @p r. Addresses are computed per line, so the run stays
     * correct across block-interleave boundaries on linear devices.
     */
    void emitRowRun(unsigned bin, unsigned r, unsigned c0,
                    unsigned c1, std::vector<LineRef> &out) const;

    /**
     * Emit the column-oriented lines covering words [r0, r1] of
     * column @p c (dual-addressable devices only).
     */
    void emitColRun(unsigned bin, unsigned r0, unsigned r1,
                    unsigned c, std::vector<LineRef> &out) const;

    mem::DeviceKind kind_;
    /** By value: the database must stay usable for plan building
     *  after the caller's map goes out of scope. */
    mem::AddressMap map_;
    bool colCapable_;
    bool spread_;
    BinPacker packer_;
    std::vector<PlacedTable> tables_;
};

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_DATABASE_HH_
