#include "imdb/bin_packing.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcnvm::imdb {

BinPacker::BinPacker(unsigned bin_side, bool allow_rotation)
    : binSide_(bin_side), allowRotation_(allow_rotation)
{
}

void
BinPacker::normalise(unsigned &w, unsigned &h, bool &rotated) const
{
    if (w == 0 || h == 0 || std::max(w, h) > binSide_ ||
        (std::min(w, h) > binSide_)) {
        rcnvm_fatal("chunk ", w, "x", h, " does not fit a ", binSide_,
                    "x", binSide_, " subarray");
    }
    // Shelf heuristics pack best when items lie flat (wider than
    // tall), so prefer the flat orientation when rotation is
    // allowed.
    rotated = false;
    if (allowRotation_ && h > w) {
        std::swap(w, h);
        rotated = true;
    }
}

bool
BinPacker::tryPlaceInBin(unsigned b, unsigned w, unsigned h,
                         bool rotated, PackSlot &slot)
{
    Bin &bin = bins_[b];
    // Existing shelves: first fit whose height accommodates the
    // item and whose remaining width is sufficient.
    for (Shelf &shelf : bin.shelves) {
        if (h <= shelf.height && shelf.used + w <= binSide_) {
            slot = PackSlot{b, shelf.used, shelf.y, rotated};
            shelf.used += w;
            bin.usedArea += std::uint64_t{w} * h;
            return true;
        }
    }
    // Open a new shelf in this bin if vertical space remains.
    if (bin.nextShelfY + h <= binSide_) {
        Shelf shelf;
        shelf.y = bin.nextShelfY;
        shelf.height = h;
        shelf.used = w;
        bin.nextShelfY += h;
        bin.shelves.push_back(shelf);
        slot = PackSlot{b, 0, shelf.y, rotated};
        bin.usedArea += std::uint64_t{w} * h;
        return true;
    }
    return false;
}

PackSlot
BinPacker::insert(unsigned w, unsigned h)
{
    bool rotated;
    normalise(w, h, rotated);

    PackSlot slot;
    for (unsigned b = 0; b < bins_.size(); ++b) {
        if (tryPlaceInBin(b, w, h, rotated, slot))
            return slot;
    }
    // Try the other orientation before opening a new bin.
    if (allowRotation_) {
        for (unsigned b = 0; b < bins_.size(); ++b) {
            if (tryPlaceInBin(b, h, w, !rotated, slot))
                return slot;
        }
    }

    bins_.emplace_back();
    const unsigned b = static_cast<unsigned>(bins_.size() - 1);
    const bool ok = tryPlaceInBin(b, w, h, rotated, slot);
    if (!ok)
        rcnvm_panic("fresh bin rejected an in-range item");
    return slot;
}

std::optional<PackSlot>
BinPacker::insertAt(unsigned bin, unsigned w, unsigned h)
{
    bool rotated;
    normalise(w, h, rotated);
    while (bins_.size() <= bin)
        bins_.emplace_back();
    PackSlot slot;
    if (tryPlaceInBin(bin, w, h, rotated, slot))
        return slot;
    if (allowRotation_ && tryPlaceInBin(bin, h, w, !rotated, slot))
        return slot;
    return std::nullopt;
}

double
BinPacker::utilization() const
{
    if (bins_.empty())
        return 0.0;
    std::uint64_t used = 0;
    for (const Bin &bin : bins_)
        used += bin.usedArea;
    const double total = static_cast<double>(bins_.size()) *
                         static_cast<double>(binSide_) *
                         static_cast<double>(binSide_);
    return static_cast<double>(used) / total;
}

} // namespace rcnvm::imdb
