#include "imdb/schema.hh"

#include "util/logging.hh"

namespace rcnvm::imdb {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields))
{
    unsigned offset = 0;
    offsets_.reserve(fields_.size());
    for (const Field &f : fields_) {
        if (f.bytes == 0 || f.bytes % 8 != 0)
            rcnvm_fatal("field ", f.name,
                        ": width must be a positive multiple of 8, "
                        "got ",
                        f.bytes);
        offsets_.push_back(offset);
        offset += f.words();
    }
    tupleWords_ = offset;
}

// GCC 12 reports a -Wrestrict false positive (PR 105651) when the
// small-string concatenation below is inlined at -O3.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
Schema
Schema::uniform(unsigned n)
{
    std::vector<Field> fields;
    fields.reserve(n);
    for (unsigned i = 1; i <= n; ++i)
        fields.push_back(Field{"f" + std::to_string(i), 8});
    return Schema(std::move(fields));
}
#pragma GCC diagnostic pop

unsigned
Schema::fieldIndex(const std::string &name) const
{
    for (unsigned i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name == name)
            return i;
    }
    rcnvm_fatal("unknown field: ", name);
}

} // namespace rcnvm::imdb
