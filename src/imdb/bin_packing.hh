/**
 * @file
 * Two-dimensional online bin packing with rotatable items,
 * implementing the inter-chunk placement of Sec. 4.5.3: table
 * chunks are rectangles, subarrays are square bins, and chunks may
 * be rotated 90 degrees before placement (Fujita & Hada's problem
 * setting). A shelf-based online heuristic is used: items are
 * placed left to right on shelves, rotated to minimise shelf
 * height growth, opening a new shelf or bin only when necessary.
 *
 * Besides the classical first-fit insert(), a directed insertAt()
 * places an item into a chosen bin; the Database uses it to spread
 * consecutive chunks over one bin per bank (see PlacementPolicy).
 */

#ifndef RCNVM_IMDB_BIN_PACKING_HH_
#define RCNVM_IMDB_BIN_PACKING_HH_

#include <cstdint>
#include <optional>
#include <vector>

namespace rcnvm::imdb {

/** Where an item ended up. */
struct PackSlot {
    unsigned bin = 0;  //!< bin (subarray) index
    unsigned x = 0;    //!< left edge within the bin
    unsigned y = 0;    //!< top edge within the bin
    bool rotated = false; //!< item was rotated 90 degrees
};

/**
 * Online shelf packer for square bins of side `binSide`.
 */
class BinPacker
{
  public:
    /**
     * @param bin_side    bin width and height (1024 words)
     * @param allow_rotation  rotate items when it packs tighter
     */
    explicit BinPacker(unsigned bin_side, bool allow_rotation = true);

    /**
     * Place a w x h rectangle (w, h <= binSide) into the first bin
     * that fits, opening a new bin when none does; items too large
     * are a fatal configuration error.
     */
    PackSlot insert(unsigned w, unsigned h);

    /**
     * Place a rectangle into bin @p bin specifically, opening empty
     * bins up to that index if needed. Returns nullopt when the bin
     * cannot fit the item.
     */
    std::optional<PackSlot> insertAt(unsigned bin, unsigned w,
                                     unsigned h);

    /** Number of bins opened so far. */
    unsigned binsUsed() const
    {
        return static_cast<unsigned>(bins_.size());
    }

    /** Fraction of opened-bin area covered by items. */
    double utilization() const;

    /** Bin side length. */
    unsigned binSide() const { return binSide_; }

  private:
    struct Shelf {
        unsigned y = 0;      //!< top of the shelf
        unsigned height = 0; //!< shelf height (max item height)
        unsigned used = 0;   //!< occupied width
    };

    struct Bin {
        std::vector<Shelf> shelves;
        unsigned nextShelfY = 0;
        std::uint64_t usedArea = 0;
    };

    /** Validate the item and flip it flat when allowed. */
    void normalise(unsigned &w, unsigned &h, bool &rotated) const;

    /** Try placing (w, h) in one specific existing bin. */
    bool tryPlaceInBin(unsigned b, unsigned w, unsigned h,
                       bool rotated, PackSlot &slot);

    unsigned binSide_;
    bool allowRotation_;
    std::vector<Bin> bins_;
};

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_BIN_PACKING_HH_
