/**
 * @file
 * An in-memory table: schema, cardinality, and synthetic contents
 * for the numeric fields referenced by predicates.
 */

#ifndef RCNVM_IMDB_TABLE_HH_
#define RCNVM_IMDB_TABLE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "imdb/schema.hh"
#include "util/random.hh"

namespace rcnvm::imdb {

/**
 * Table metadata plus generated values. Only 8-byte fields carry
 * values (wide fields are opaque payloads); values are uniform in
 * [0, valueRange) so predicate selectivity can be dialled by
 * choosing thresholds.
 */
class Table
{
  public:
    /** Value domain used by the generator. */
    static constexpr std::int64_t valueRange = 100000;

    /**
     * @param name    table name ("table-a", ...)
     * @param schema  field layout
     * @param tuples  cardinality
     * @param seed    RNG seed for deterministic contents
     */
    Table(std::string name, Schema schema, std::uint64_t tuples,
          std::uint64_t seed);

    const std::string &name() const { return name_; }
    const Schema &schema() const { return schema_; }
    std::uint64_t tuples() const { return tuples_; }

    /** Value of 8-byte field @p f in tuple @p t. */
    std::int64_t value(unsigned f, std::uint64_t t) const;

    /**
     * Threshold x such that roughly @p selectivity of tuples
     * satisfy value > x (uniform distribution inverse).
     */
    std::int64_t thresholdForGreater(double selectivity) const;

    /**
     * Evaluate `field > x` for every tuple.
     * @return match bitmap indexed by tuple
     */
    std::vector<bool> matchGreater(unsigned f, std::int64_t x) const;

    /** Evaluate `field < x` for every tuple. */
    std::vector<bool> matchLess(unsigned f, std::int64_t x) const;

    /** Evaluate `field == x` for every tuple. */
    std::vector<bool> matchEqual(unsigned f, std::int64_t x) const;

  private:
    std::string name_;
    Schema schema_;
    std::uint64_t tuples_;
    /** columns_[field][tuple]; empty for wide fields. */
    std::vector<std::vector<std::int64_t>> columns_;
};

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_TABLE_HH_
