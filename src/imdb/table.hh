/**
 * @file
 * An in-memory table: schema, cardinality, and synthetic contents
 * for the numeric fields referenced by predicates.
 */

#ifndef RCNVM_IMDB_TABLE_HH_
#define RCNVM_IMDB_TABLE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "imdb/schema.hh"
#include "util/random.hh"

namespace rcnvm::imdb {

/**
 * Table metadata plus generated values. Only 8-byte fields carry
 * values (wide fields are opaque payloads); values are uniform in
 * [0, valueRange) so predicate selectivity can be dialled by
 * choosing thresholds.
 */
class Table
{
  public:
    /** Value domain used by the generator. */
    static constexpr std::int64_t valueRange = 100000;

    /** Tuples summarised by one chunk-statistics entry. Matches
     *  Database::chunkTuples so a pruned statistics chunk maps onto
     *  exactly one placed chunk of the bin packer. */
    static constexpr unsigned chunkTuples = 1024;

    /** Min/max summary of one field over one chunk of tuples. */
    struct ChunkMinMax {
        std::int64_t min = 0;
        std::int64_t max = 0;
    };

    /**
     * @param name    table name ("table-a", ...)
     * @param schema  field layout
     * @param tuples  cardinality
     * @param seed    RNG seed for deterministic contents
     */
    Table(std::string name, Schema schema, std::uint64_t tuples,
          std::uint64_t seed);

    const std::string &name() const { return name_; }
    const Schema &schema() const { return schema_; }
    std::uint64_t tuples() const { return tuples_; }

    /** Value of 8-byte field @p f in tuple @p t. */
    std::int64_t value(unsigned f, std::uint64_t t) const;

    /**
     * Overwrite the value of 8-byte field @p f in tuple @p t,
     * widening the chunk's min/max summary so pruning stays sound
     * (a summary may overstate the range after updates — that only
     * costs a scanned chunk, never a wrong result).
     */
    void setValue(unsigned f, std::uint64_t t, std::int64_t v);

    /** Number of chunk-statistics entries per field. */
    unsigned chunkCount() const;

    /**
     * Min/max of 8-byte field @p f over chunk @p chunk (tuples
     * [chunk * chunkTuples, min((chunk+1) * chunkTuples, tuples))).
     * The plan optimizer consults these to skip chunks no tuple of
     * which can satisfy a scan predicate.
     */
    ChunkMinMax chunkStats(unsigned f, unsigned chunk) const;

    /**
     * Threshold x such that roughly @p selectivity of tuples
     * satisfy value > x (uniform distribution inverse).
     */
    std::int64_t thresholdForGreater(double selectivity) const;

    /**
     * Evaluate `field > x` for every tuple.
     * @return match bitmap indexed by tuple
     */
    std::vector<bool> matchGreater(unsigned f, std::int64_t x) const;

    /** Evaluate `field < x` for every tuple. */
    std::vector<bool> matchLess(unsigned f, std::int64_t x) const;

    /** Evaluate `field == x` for every tuple. */
    std::vector<bool> matchEqual(unsigned f, std::int64_t x) const;

  private:
    std::string name_;
    Schema schema_;
    std::uint64_t tuples_;
    /** columns_[field][tuple]; empty for wide fields. */
    std::vector<std::vector<std::int64_t>> columns_;
    /** chunkStats_[field][chunk]; empty for wide fields. */
    std::vector<std::vector<ChunkMinMax>> chunkStats_;
};

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_TABLE_HH_
