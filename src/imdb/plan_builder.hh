/**
 * @file
 * Compiler primitives that translate relational operators into
 * per-core access plans, including the paper's access-path choices
 * (row vs. column vs. gathered) and the group-caching transform.
 */

#ifndef RCNVM_IMDB_PLAN_BUILDER_HH_
#define RCNVM_IMDB_PLAN_BUILDER_HH_

#include <cstdint>
#include <vector>

#include "cpu/mem_op.hh"
#include "imdb/database.hh"

namespace rcnvm::imdb {

/** CPU cost constants (cycles) used by the query compiler. */
struct ComputeCosts {
    unsigned compare = 1;     //!< predicate evaluation per value
    unsigned aggregate = 1;   //!< SUM/AVG accumulation per value
    unsigned materialize = 2; //!< output tuple materialisation
    unsigned hash = 6;        //!< hash insert or probe per tuple
};

/**
 * Builds one core's AccessPlan from line/word primitives. The
 * workload layer partitions work across cores and calls one builder
 * per core.
 */
class PlanBuilder
{
  public:
    explicit PlanBuilder(const Database &db) : db_(&db) {}

    /** The finished plan (builder resets afterwards). */
    cpu::AccessPlan take();

    /** Append a raw CPU-work op. */
    void compute(std::uint64_t cycles);

    /** Append a fence (drain outstanding accesses). */
    void fence();

    /** Emit one line access (load/cload or line store/cstore). */
    void emitLine(const LineRef &line, bool write);

    /**
     * Emit a list of line accesses, attaching @p compute_per_line
     * cycles of work after each.
     */
    void emitLines(const std::vector<LineRef> &lines, bool write,
                   unsigned compute_per_line);

    /**
     * Scan field word @p w of tuples [t0, t1) using the placement's
     * best order-insensitive sequence, with @p compute_per_value
     * cycles consumed per value. Uses GS-DRAM gathers when the
     * device and table allow it.
     */
    void scanFieldWord(Database::TableId id, unsigned w,
                       std::uint64_t t0, std::uint64_t t1,
                       unsigned compute_per_value);

    /**
     * Fetch words [w0, w1) of each listed tuple (row-oriented tuple
     * materialisation), @p compute_per_tuple cycles each. Lines
     * shared by adjacent listed tuples are emitted once.
     */
    void fetchTuples(Database::TableId id,
                     const std::vector<std::uint64_t> &tuples,
                     unsigned w0, unsigned w1,
                     unsigned compute_per_tuple);

    /**
     * Fetch words [w0, w1) of the listed tuples choosing the best
     * access path: per-tuple row fetches when matches are sparse,
     * or column-line reads of each output word covering the
     * matched 8-tuple groups when matches are dense enough that
     * column-buffer locality wins (the Figure-12 trade-off).
     */
    void fetchTuplesBest(Database::TableId id,
                         const std::vector<std::uint64_t> &tuples,
                         unsigned w0, unsigned w1,
                         unsigned compute_per_tuple);

    /**
     * Store 8-byte field word @p w of each listed tuple. On
     * column-capable devices with column-oriented layout the store
     * uses the column address space (cstore), keeping the write in
     * the same space as the surrounding scan.
     */
    void storeFieldWord(Database::TableId id,
                        const std::vector<std::uint64_t> &tuples,
                        unsigned w);

    /**
     * Hash-table access: read or write the key word of each listed
     * slot with @p compute_each cycles of hashing per access. Hash
     * regions are row-store tables, so this is always row-oriented.
     */
    void hashAccess(Database::TableId hash_id,
                    const std::vector<std::uint64_t> &slots,
                    bool write, unsigned compute_each);

    /**
     * The Sec.-5 ordered multi-column scan: read the given field
     * words of every tuple in [t0, t1) in strict tuple order.
     *
     * With @p group_lines == 0 the accesses interleave across the
     * field columns per 8-tuple group (the column-buffer-thrashing
     * baseline). With @p group_lines == K > 0, the group-caching
     * transform prefetches K lines per field column, pins them in
     * the LLC, consumes them from cache, and unpins.
     */
    void orderedMultiColumnScan(Database::TableId id,
                                const std::vector<unsigned> &words,
                                std::uint64_t t0, std::uint64_t t1,
                                unsigned group_lines,
                                unsigned compute_per_tuple);

    /** Cost constants in use. */
    const ComputeCosts &costs() const { return costs_; }

  private:
    const Database *db_;
    ComputeCosts costs_;
    cpu::AccessPlan plan_;
};

/**
 * Order-insensitive whole-table physical scan: every 64-byte line
 * covering the table, in (bin, row, column) order - the sequential
 * "row-direction" scan of the Fig-17 micro-benchmarks. The caller
 * partitions the returned lines across cores.
 */
std::vector<LineRef> physicalScanLines(const Database &db,
                                       Database::TableId id);

} // namespace rcnvm::imdb

#endif // RCNVM_IMDB_PLAN_BUILDER_HH_
