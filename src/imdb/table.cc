#include "imdb/table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcnvm::imdb {

Table::Table(std::string name, Schema schema, std::uint64_t tuples,
             std::uint64_t seed)
    : name_(std::move(name)), schema_(std::move(schema)),
      tuples_(tuples)
{
    util::Random rng(seed);
    columns_.resize(schema_.fieldCount());
    for (unsigned f = 0; f < schema_.fieldCount(); ++f) {
        if (schema_.field(f).words() != 1)
            continue; // wide fields carry no predicate values
        auto &col = columns_[f];
        col.resize(tuples_);
        for (std::uint64_t t = 0; t < tuples_; ++t) {
            col[t] = static_cast<std::int64_t>(
                rng.nextBounded(valueRange));
        }
    }

    // Chunk min/max summaries, computed after generation so the RNG
    // draw sequence (and therefore every seeded golden) is untouched.
    chunkStats_.resize(columns_.size());
    for (unsigned f = 0; f < columns_.size(); ++f) {
        const auto &col = columns_[f];
        if (col.empty())
            continue;
        auto &stats = chunkStats_[f];
        stats.resize(chunkCount());
        for (unsigned c = 0; c < stats.size(); ++c) {
            const std::uint64_t t0 = std::uint64_t{c} * chunkTuples;
            const std::uint64_t t1 =
                std::min<std::uint64_t>(t0 + chunkTuples, tuples_);
            ChunkMinMax mm{col[t0], col[t0]};
            for (std::uint64_t t = t0 + 1; t < t1; ++t) {
                mm.min = std::min(mm.min, col[t]);
                mm.max = std::max(mm.max, col[t]);
            }
            stats[c] = mm;
        }
    }
}

std::int64_t
Table::value(unsigned f, std::uint64_t t) const
{
    if (f >= columns_.size() || columns_[f].empty())
        rcnvm_fatal(name_, ": field ", f, " has no numeric values");
    return columns_[f][t];
}

void
Table::setValue(unsigned f, std::uint64_t t, std::int64_t v)
{
    if (f >= columns_.size() || columns_[f].empty())
        rcnvm_fatal(name_, ": field ", f, " has no numeric values");
    if (t >= tuples_)
        rcnvm_fatal(name_, ": tuple ", t, " of ", tuples_);
    columns_[f][t] = v;
    ChunkMinMax &mm =
        chunkStats_[f][static_cast<unsigned>(t / chunkTuples)];
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
}

unsigned
Table::chunkCount() const
{
    return static_cast<unsigned>((tuples_ + chunkTuples - 1) /
                                 chunkTuples);
}

Table::ChunkMinMax
Table::chunkStats(unsigned f, unsigned chunk) const
{
    if (f >= chunkStats_.size() || chunkStats_[f].empty())
        rcnvm_fatal(name_, ": field ", f, " has no chunk statistics");
    if (chunk >= chunkStats_[f].size())
        rcnvm_fatal(name_, ": chunk ", chunk, " of ",
                    chunkStats_[f].size());
    return chunkStats_[f][chunk];
}

std::int64_t
Table::thresholdForGreater(double selectivity) const
{
    if (selectivity <= 0.0)
        return valueRange;
    if (selectivity >= 1.0)
        return -1;
    return static_cast<std::int64_t>(
        static_cast<double>(valueRange) * (1.0 - selectivity));
}

std::vector<bool>
Table::matchGreater(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) > x;
    return out;
}

std::vector<bool>
Table::matchLess(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) < x;
    return out;
}

std::vector<bool>
Table::matchEqual(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) == x;
    return out;
}

} // namespace rcnvm::imdb
