#include "imdb/table.hh"

#include "util/logging.hh"

namespace rcnvm::imdb {

Table::Table(std::string name, Schema schema, std::uint64_t tuples,
             std::uint64_t seed)
    : name_(std::move(name)), schema_(std::move(schema)),
      tuples_(tuples)
{
    util::Random rng(seed);
    columns_.resize(schema_.fieldCount());
    for (unsigned f = 0; f < schema_.fieldCount(); ++f) {
        if (schema_.field(f).words() != 1)
            continue; // wide fields carry no predicate values
        auto &col = columns_[f];
        col.resize(tuples_);
        for (std::uint64_t t = 0; t < tuples_; ++t) {
            col[t] = static_cast<std::int64_t>(
                rng.nextBounded(valueRange));
        }
    }
}

std::int64_t
Table::value(unsigned f, std::uint64_t t) const
{
    if (f >= columns_.size() || columns_[f].empty())
        rcnvm_fatal(name_, ": field ", f, " has no numeric values");
    return columns_[f][t];
}

std::int64_t
Table::thresholdForGreater(double selectivity) const
{
    if (selectivity <= 0.0)
        return valueRange;
    if (selectivity >= 1.0)
        return -1;
    return static_cast<std::int64_t>(
        static_cast<double>(valueRange) * (1.0 - selectivity));
}

std::vector<bool>
Table::matchGreater(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) > x;
    return out;
}

std::vector<bool>
Table::matchLess(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) < x;
    return out;
}

std::vector<bool>
Table::matchEqual(unsigned f, std::int64_t x) const
{
    std::vector<bool> out(tuples_);
    for (std::uint64_t t = 0; t < tuples_; ++t)
        out[t] = value(f, t) == x;
    return out;
}

} // namespace rcnvm::imdb
