/**
 * @file
 * Periodic epoch sampling driven off the event queue: every epoch
 * the sampler reads a set of registered gauges (queue depth, MSHR
 * occupancy, cumulative miss counts, …) and appends one row to a
 * time series, so reports can plot per-epoch behaviour instead of a
 * single end-of-run aggregate.
 */

#ifndef RCNVM_SIM_EPOCH_SAMPLER_HH_
#define RCNVM_SIM_EPOCH_SAMPLER_HH_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "util/types.hh"

namespace rcnvm::sim {

/** The collected time series: one named column per gauge, one row
 *  per epoch. Plain data, freely copyable into results. */
struct EpochSeries {
    std::vector<std::string> names;        //!< column names
    std::vector<Tick> ticks;               //!< sample times
    std::vector<std::vector<double>> rows; //!< rows[i][col]

    bool empty() const { return ticks.empty(); }

    /** CSV with a `tick,<name>,...` header. */
    void writeCsv(std::ostream &os) const;

    /** JSON object {"names":[...],"ticks":[...],"rows":[[...]]}. */
    void writeJson(std::ostream &os) const;
};

/**
 * Samples gauges every @p epoch ticks while the simulation has other
 * work pending. The sampling event reschedules itself only when the
 * event queue holds at least one other event, so a run's event loop
 * still terminates: once the sampler is alone in the queue it takes
 * a final sample and stops.
 */
class EpochSampler
{
  public:
    explicit EpochSampler(EventQueue &eq) : eq_(eq) {}

    /** Register a gauge column (before the first start()). */
    void
    addGauge(std::string name, std::function<double()> fn)
    {
        series_.names.push_back(std::move(name));
        gauges_.push_back(std::move(fn));
    }

    /** Begin sampling every @p epoch ticks from now. Rows append to
     *  the existing series, so multi-phase runs produce one
     *  continuous timeline. */
    void start(Tick epoch);

    /** True while a sampling event is queued. */
    bool running() const { return running_; }

    /** The series collected so far. */
    const EpochSeries &series() const { return series_; }

    /** Drop all collected rows (gauges stay registered). */
    void
    clear()
    {
        series_.ticks.clear();
        series_.rows.clear();
    }

  private:
    void fire();
    void sampleRow();

    EventQueue &eq_;
    std::vector<std::function<double()>> gauges_;
    EpochSeries series_;
    Tick epoch_{0};
    bool running_ = false;
};

} // namespace rcnvm::sim

#endif // RCNVM_SIM_EPOCH_SAMPLER_HH_
