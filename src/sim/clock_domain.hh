/**
 * @file
 * Clock domains convert between cycles of a component clock and
 * global simulation ticks (picoseconds).
 */

#ifndef RCNVM_SIM_CLOCK_DOMAIN_HH_
#define RCNVM_SIM_CLOCK_DOMAIN_HH_

#include "util/types.hh"

namespace rcnvm::sim {

/**
 * A fixed-frequency clock domain producing @p Dom -tagged cycles.
 *
 * The CPU runs at 2 GHz (500 ps, tag `CpuClk`), DDR3-1333 devices at
 * 666 MHz (750 ps bus clock) and LPDDR3-800 devices at 400 MHz
 * (2500 ps), both tagged `MemClk` — which device a `MemClk` domain
 * clocks is instance state chosen with the device at runtime.
 *
 * The conversion members below are the *only* legal crossings
 * between `Cycles<Dom>` and `Tick`: the strong types reject every
 * bare-integer shortcut, so a DDR cycle count can no longer be added
 * to a CPU deadline without naming the clock that scales it.
 */
template <typename Dom>
class ClockDomain
{
  public:
    /** Create a domain whose clock period is @p period_ticks. */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks) {}

    /** Clock period in ticks. */
    Tick period() const { return period_; }

    /** Convert a cycle count to a tick duration. */
    Tick
    cyclesToTicks(Cycles<Dom> c) const
    {
        return period_ * c.value();
    }

    /** Convert a tick duration to whole cycles, rounding up. */
    Cycles<Dom>
    ticksToCycles(Tick t) const
    {
        return Cycles<Dom>{(t + period_ - Tick{1}) / period_};
    }

    /** The first clock edge at or after @p t. */
    Tick
    nextEdgeAt(Tick t) const
    {
        return period_ * ((t + period_ - Tick{1}) / period_);
    }

  private:
    Tick period_;
};

/** CPU clock domain used throughout the paper's configuration. */
inline ClockDomain<CpuClk>
cpuClock()
{
    return ClockDomain<CpuClk>(Tick{500}); // 2 GHz
}

/** A memory-device clock domain with the given bus-clock period. */
inline ClockDomain<MemClk>
memClock(Tick period_ticks)
{
    return ClockDomain<MemClk>(period_ticks);
}

} // namespace rcnvm::sim

#endif // RCNVM_SIM_CLOCK_DOMAIN_HH_
