/**
 * @file
 * Clock domains convert between cycles of a component clock and
 * global simulation ticks (picoseconds).
 */

#ifndef RCNVM_SIM_CLOCK_DOMAIN_HH_
#define RCNVM_SIM_CLOCK_DOMAIN_HH_

#include "util/types.hh"

namespace rcnvm::sim {

/**
 * A fixed-frequency clock domain.
 *
 * The CPU runs at 2 GHz (500 ps), DDR3-1333 devices at 666 MHz
 * (750 ps bus clock), and LPDDR3-800 devices at 400 MHz (2500 ps).
 */
class ClockDomain
{
  public:
    /** Create a domain whose clock period is @p period_ticks. */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks) {}

    /** Clock period in ticks. */
    Tick period() const { return period_; }

    /** Convert a cycle count to a tick duration. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Convert a tick duration to whole cycles, rounding up. */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    /** The first clock edge at or after @p t. */
    Tick
    nextEdgeAt(Tick t) const
    {
        return ((t + period_ - 1) / period_) * period_;
    }

  private:
    Tick period_;
};

/** CPU clock domain used throughout the paper's configuration. */
inline ClockDomain
cpuClock()
{
    return ClockDomain(500); // 2 GHz
}

} // namespace rcnvm::sim

#endif // RCNVM_SIM_CLOCK_DOMAIN_HH_
