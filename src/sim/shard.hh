/**
 * @file
 * Channel-sharded conservative parallel simulation engine.
 *
 * The machine's event population splits into one core/cache shard
 * (shard 0: cores, hierarchy, retry plumbing) and one shard per
 * memory channel (its controller, banks, and bank-level events),
 * each with a private EventQueue. Shards advance in fixed windows of
 * G ticks, where G is half the minimum channel-to-cache response
 * latency S (derivable from TimingParams: a completion fires at
 * least tCAS + tBURST after the issue event that produced it).
 *
 * Synchronization is a depth-1 pipeline rather than a lockstep
 * barrier: while the channel shards execute window k, the core shard
 * executes window k+1. Both cross-shard directions are covered by
 * construction:
 *
 *  - core -> channel (issue) messages carry ticks inside the core's
 *    window k+1; the channels only process that window one round
 *    later, after the messages were delivered at the exchange.
 *    Zero-latency issues (write-back drains at fill ticks) are
 *    therefore always visible in time.
 *  - channel -> core (completion) messages produced in window k have
 *    ticks >= k's start + S = k's start + 2G, i.e. at or beyond the
 *    end of the core's concurrent window k+1, so the core never
 *    misses one; they are delivered at the exchange and executed in
 *    a later window.
 *
 * Messages travel through single-producer mailboxes drained by the
 * coordinator at window boundaries and spliced into the receiving
 * queue with EventQueue::inject(), stamped with the depth-2 lineage
 * (schedule tick, producer schedule tick) the entry would have had
 * on a single shared queue, so the same-tick order matches the
 * single-queue interleaving. With RCNVM_THREADS=1 none of this
 * machinery is constructed and the classic single-queue loop runs
 * unchanged (byte-identical goldens).
 */

#ifndef RCNVM_SIM_SHARD_HH_
#define RCNVM_SIM_SHARD_HH_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "util/types.hh"

namespace rcnvm::sim {

/**
 * A bounded single-producer mailbox for cross-shard messages. One
 * shard posts during a window; the coordinator drains at the next
 * exchange, so the backlog is bounded by one window's traffic. The
 * producer and the draining coordinator are always separated by the
 * engine's round barrier, which provides the happens-before edge.
 */
class ShardMailbox
{
  public:
    /** Post @p cb for delivery at @p when, carrying the depth-2
     *  lineage stamps the entry would have had on a single shared
     *  queue: scheduled at @p sched_tick by a producer that was
     *  itself scheduled at @p sched_tick2. The receiving queue's
     *  comparator places the message among same-tick events from
     *  those stamps alone, so delivery order across mailboxes does
     *  not matter beyond full-tie seq order. */
    void post(Tick when, Tick sched_tick, Tick sched_tick2,
              EventQueue::Callback cb);

    /** Inject every message, in post order, into @p q and clear. */
    void drainInto(EventQueue &q);

    /** True when no messages are waiting. */
    bool empty() const { return msgs_.empty(); }

  private:
    struct Msg {
        Tick when;
        Tick schedTick;
        Tick schedTick2;
        EventQueue::Callback cb;
    };

    /** A window's cross-shard traffic is bounded by the events in
     *  it; a backlog this deep means the exchange stopped running. */
    static constexpr std::size_t kMaxBacklog = 1u << 22;

    std::vector<Msg> msgs_;
};

/**
 * The coordinator: owns the worker threads, the per-direction
 * mailboxes, and the window pipeline over one core queue plus N
 * channel queues. Construction spawns the workers (parked on an
 * atomic round counter); destruction joins them. run() drains every
 * shard to quiescence and leaves all queue clocks aligned at the
 * globally last executed tick, so callers observe the same now() a
 * single-queue run would report.
 */
class ParallelEngine
{
  public:
    /**
     * @param core      the core/cache shard's queue (shard 0)
     * @param channels  one queue per memory channel
     * @param workers   worker-thread budget (clamped to channel
     *                  count; at least one)
     * @param window    window length G in ticks; must satisfy
     *                  2 * G <= minimum cross-shard response latency
     */
    ParallelEngine(EventQueue &core, std::vector<EventQueue *> channels,
                   unsigned workers, Tick window);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Mailbox for issue traffic into channel @p c. */
    ShardMailbox &toChannel(unsigned c) { return toChannel_[c]; }

    /** Mailbox for completion traffic from channel @p c. */
    ShardMailbox &toCore(unsigned c) { return toCore_[c]; }

    /**
     * Register an exchange hook, called by the coordinator at every
     * window boundary after message delivery with the next core
     * window's start tick. Memory systems use it to fold channel
     * dequeue counts into their occupancy mirrors and to inject
     * retry notifications for clients refused under backpressure.
     * Hooks run in registration order; a hybrid machine registers
     * one per tier.
     */
    void addExchangeHook(std::function<void(Tick)> hook)
    {
        exchangeHooks_.push_back(std::move(hook));
    }

    /** Run the window pipeline until every shard is drained. */
    void run();

    /** Window length G in ticks. */
    Tick window() const { return window_; }

    /** Worker threads actually spawned. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Pipelined (overlapped) rounds executed so far. */
    std::uint64_t overlappedRounds() const { return overlapped_; }

    /** Flush (channel-only) rounds executed so far. */
    std::uint64_t flushRounds() const { return flushes_; }

  private:
    /** Body of worker @p w: drain its channels through each granted
     *  window limit until stopped. */
    void workerLoop(unsigned w);

    /** Grant the workers one round through @p limit. */
    void launchRound(Tick limit);

    /** Wait until every worker finished the granted round. */
    void joinRound();

    /** Deliver all mailboxes and call the exchange hook. */
    void exchange(Tick next_window_start);

    /** True when any shard still has pending events. */
    bool anyPending() const;

    /** Earliest pending tick across all shards. @pre anyPending() */
    Tick minNextTick() const;

    EventQueue &core_;
    std::vector<EventQueue *> channels_;
    std::vector<ShardMailbox> toChannel_;
    std::vector<ShardMailbox> toCore_;
    std::vector<std::function<void(Tick)>> exchangeHooks_;
    Tick window_;

    // Round barrier. The coordinator publishes a round number in
    // go_ (release) after writing limit_; workers acknowledge in
    // their done_ slot (release) after draining their channels.
    // These two edges order every cross-thread access of queues and
    // mailboxes, so everything else is plain data.
    std::atomic<std::uint64_t> go_{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> done_;
    Tick limit_{0};
    std::atomic<bool> stop_{false};
    std::uint64_t round_ = 0;
    unsigned nWorkers_ = 0; //!< fixed before any thread starts
    unsigned spinBudget_; //!< pause-spins before yielding (0 when
                          //!< the host lacks spare hardware threads)
    std::vector<std::thread> threads_;

    std::uint64_t overlapped_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace rcnvm::sim

#endif // RCNVM_SIM_SHARD_HH_
