#include "sim/epoch_sampler.hh"

#include <ostream>

#include "util/logging.hh"
#include "util/stats_io.hh"

namespace rcnvm::sim {

void
EpochSeries::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const auto &n : names)
        os << "," << n;
    os << "\n";
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        os << ticks[i];
        for (const double v : rows[i])
            os << "," << v;
        os << "\n";
    }
}

void
EpochSeries::writeJson(std::ostream &os) const
{
    os << "{\"names\":[";
    for (std::size_t i = 0; i < names.size(); ++i) {
        os << (i ? "," : "") << "\""
           << util::jsonEscape(names[i]) << "\"";
    }
    os << "],\"ticks\":[";
    for (std::size_t i = 0; i < ticks.size(); ++i)
        os << (i ? "," : "") << ticks[i];
    os << "],\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i ? "," : "") << "[";
        for (std::size_t j = 0; j < rows[i].size(); ++j)
            os << (j ? "," : "") << rows[i][j];
        os << "]";
    }
    os << "]}";
}

void
EpochSampler::start(Tick epoch)
{
    if (epoch == Tick{})
        rcnvm_panic("epoch sampling period must be non-zero");
    if (running_)
        return;
    epoch_ = epoch;
    running_ = true;
    eq_.scheduleAfter(epoch_, [this] { fire(); });
}

void
EpochSampler::sampleRow()
{
    series_.ticks.push_back(eq_.now());
    std::vector<double> row;
    row.reserve(gauges_.size());
    for (const auto &g : gauges_)
        row.push_back(g());
    series_.rows.push_back(std::move(row));
}

void
EpochSampler::fire()
{
    sampleRow();
    // Reschedule only while the simulation has other work: when this
    // event is the only one left, the run is over and rescheduling
    // would keep the event loop alive forever.
    if (eq_.pending() > 0) {
        eq_.scheduleAfter(epoch_, [this] { fire(); });
    } else {
        running_ = false;
    }
}

} // namespace rcnvm::sim
