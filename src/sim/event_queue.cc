#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace rcnvm::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        rcnvm_panic("event scheduled in the past: ", when, " < ", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::run()
{
    while (!heap_.empty()) {
        // Copy out before pop: the callback may schedule new events.
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        ++executed_;
        entry.cb();
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        ++executed_;
        entry.cb();
    }
    if (now_ < limit)
        now_ = limit;
}

} // namespace rcnvm::sim
