#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcnvm::sim {

void
EventQueue::panicPastEvent(Tick when) const
{
    rcnvm_panic("event scheduled in the past: ", when, " < ", now_);
}

EventQueue::Entry
EventQueue::popTop()
{
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
        // Sift the displaced last entry down from the root.
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = kHeapArity * i + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t end = std::min(first + kHeapArity, n);
            for (std::size_t c = first + 1; c < end; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }
    return top;
}

EventQueue::Callback
EventQueue::takeSlot(std::uint32_t slot)
{
    // Move out before running: the callback may schedule new events
    // and reallocate the slab.
    Callback cb = std::move(slab_[slot]);
    free_.push_back(slot);
    return cb;
}

void
EventQueue::run()
{
    while (!heap_.empty()) {
        const Entry entry = popTop();
        Callback cb = takeSlot(entry.slot);
        now_ = entry.when;
        currentSchedTick_ = entry.schedTick;
        currentSchedTick2_ = entry.schedTick2;
        ++executed_;
        cb();
        currentSchedTick_ = now_;
        currentSchedTick2_ = now_;
    }
}

void
EventQueue::runUntil(Tick limit)
{
    drainThrough(limit);
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::drainThrough(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit) {
        const Entry entry = popTop();
        Callback cb = takeSlot(entry.slot);
        now_ = entry.when;
        currentSchedTick_ = entry.schedTick;
        currentSchedTick2_ = entry.schedTick2;
        ++executed_;
        cb();
        currentSchedTick_ = now_;
        currentSchedTick2_ = now_;
    }
}

} // namespace rcnvm::sim
