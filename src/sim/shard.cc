#include "sim/shard.hh"

#include <algorithm>
#include <chrono>

#include "util/logging.hh"

namespace rcnvm::sim {

namespace {

/** One iteration of a bounded spin-then-yield-then-sleep wait.
 *  @p spins counts calls so far; the first @p spin_budget of them
 *  are busy pauses (cheap when a spare hardware thread exists),
 *  then the scheduler is yielded to, and after sustained waiting
 *  the thread sleeps so parked workers cost nothing between runs. */
void
relaxWait(std::uint64_t &spins, unsigned spin_budget)
{
    ++spins;
    if (spins <= spin_budget) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield");
#endif
        return;
    }
    if (spins <= spin_budget + 4096) {
        std::this_thread::yield();
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
}

} // namespace

void
ShardMailbox::post(Tick when, Tick sched_tick, Tick sched_tick2,
                   EventQueue::Callback cb)
{
    if (msgs_.size() >= kMaxBacklog)
        rcnvm_panic("shard mailbox backlog exceeded ", kMaxBacklog,
                    " messages; the window exchange is not running");
    msgs_.push_back(Msg{when, sched_tick, sched_tick2,
                        std::move(cb)});
}

void
ShardMailbox::drainInto(EventQueue &q)
{
    for (Msg &m : msgs_)
        q.inject(m.when, m.schedTick, m.schedTick2, std::move(m.cb));
    msgs_.clear();
}

ParallelEngine::ParallelEngine(EventQueue &core,
                               std::vector<EventQueue *> channels,
                               unsigned workers, Tick window)
    : core_(core),
      channels_(std::move(channels)),
      toChannel_(channels_.size()),
      toCore_(channels_.size()),
      window_(window)
{
    if (channels_.empty())
        rcnvm_panic("sharded engine needs at least one channel");
    if (window_ == Tick{})
        rcnvm_panic("sharded engine needs a non-zero window");

    const unsigned n = std::max(
        1u,
        std::min(workers,
                 static_cast<unsigned>(channels_.size())));
    nWorkers_ = n;
    done_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (unsigned w = 0; w < n; ++w)
        done_[w].store(0, std::memory_order_relaxed);

    // Busy-spinning only pays when the waiting thread does not
    // preempt the thread it waits for; on an oversubscribed host
    // (fewer hardware threads than engine threads) go straight to
    // yielding.
    const unsigned hw = std::thread::hardware_concurrency();
    spinBudget_ = hw > n ? 2048 : 0;

    threads_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ParallelEngine::~ParallelEngine()
{
    stop_.store(true, std::memory_order_relaxed);
    go_.store(round_ + 1, std::memory_order_release);
    for (std::thread &t : threads_)
        t.join();
}

void
ParallelEngine::workerLoop(unsigned w)
{
    const unsigned stride = nWorkers_;
    for (std::uint64_t round = 1;; ++round) {
        std::uint64_t spins = 0;
        while (go_.load(std::memory_order_acquire) < round)
            relaxWait(spins, spinBudget_);
        if (stop_.load(std::memory_order_relaxed))
            return;
        const Tick limit = limit_;
        for (std::size_t c = w; c < channels_.size(); c += stride)
            channels_[c]->drainThrough(limit);
        done_[w].store(round, std::memory_order_release);
    }
}

void
ParallelEngine::launchRound(Tick limit)
{
    limit_ = limit;
    go_.store(++round_, std::memory_order_release);
}

void
ParallelEngine::joinRound()
{
    for (std::size_t w = 0; w < threads_.size(); ++w) {
        std::uint64_t spins = 0;
        while (done_[w].load(std::memory_order_acquire) < round_)
            relaxWait(spins, spinBudget_);
    }
}

void
ParallelEngine::exchange(Tick next_window_start)
{
    // Delivery order across mailboxes is immaterial: every message
    // carries its single-queue depth-2 lineage stamps and the
    // receiving queue's comparator places it from those. Only a
    // full lineage tie (messages due at one tick, scheduled at one
    // tick, by producers scheduled at one tick) falls back to seq,
    // i.e. channel index.
    for (std::size_t c = 0; c < channels_.size(); ++c)
        toChannel_[c].drainInto(*channels_[c]);
    for (ShardMailbox &box : toCore_)
        box.drainInto(core_);
    for (const auto &hook : exchangeHooks_)
        hook(next_window_start);
}

bool
ParallelEngine::anyPending() const
{
    if (core_.pending() > 0)
        return true;
    for (const EventQueue *q : channels_) {
        if (q->pending() > 0)
            return true;
    }
    return false;
}

Tick
ParallelEngine::minNextTick() const
{
    Tick best{~std::uint64_t{0}};
    if (core_.pending() > 0)
        best = core_.nextEventTick();
    for (const EventQueue *q : channels_) {
        if (q->pending() > 0)
            best = std::min(best, q->nextEventTick());
    }
    return best;
}

void
ParallelEngine::run()
{
    const Tick G = window_;
    bool owed = false; //!< channels still owe the window below
    Tick owedStart{0};

    // Clients may have issued before the pipeline started (plan
    // setup runs synchronously); deliver those messages so the
    // window decisions below see every pending event.
    exchange(core_.now());

    for (;;) {
        if (owed) {
            // The core has finished [owedStart, owedStart + G); the
            // channels have not run it yet. The only core window
            // that may legally overlap their catch-up is the
            // contiguous one: with a gap, a completion produced in
            // the owed window (tick >= owedStart + 2G) could land
            // inside the core's window and be missed.
            const Tick contig = owedStart + G;
            const bool coreWork = core_.pending() > 0 &&
                                  core_.nextEventTick() < contig + G;
            if (coreWork) {
                ++overlapped_;
                launchRound(owedStart + G - Tick{1});
                core_.drainThrough(contig + G - Tick{1});
                joinRound();
                exchange(contig + G);
                owedStart = contig;
            } else {
                // Core idle in the contiguous window: let the
                // channels catch up alone, deliver their output,
                // and re-decide (the completions may create the
                // core work the pipeline was missing).
                ++flushes_;
                launchRound(owedStart + G - Tick{1});
                joinRound();
                exchange(contig);
                owed = false;
            }
        } else {
            // Pipeline empty: nothing undelivered, channels caught
            // up. Jump to the earliest actionable tick anywhere and
            // restart the pipeline with a core-only round (the
            // channels' matching window runs next round, exactly
            // like the pipeline's very first window).
            if (!anyPending())
                break;
            const Tick S = minNextTick();
            core_.drainThrough(S + G - Tick{1});
            exchange(S + G);
            owed = true;
            owedStart = S;
        }
    }

    // Align every shard clock at the globally last executed tick so
    // now()-derived values (serve() spans, statistics windows) read
    // as they would after a single-queue run.
    Tick last = core_.now();
    for (EventQueue *q : channels_)
        last = std::max(last, q->now());
    core_.advanceTo(last);
    for (EventQueue *q : channels_)
        q->advanceTo(last);
}

} // namespace rcnvm::sim
