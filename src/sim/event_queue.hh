/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute ticks (1 tick = 1 ps);
 * the queue executes them in tick order, breaking ties by insertion
 * order so simulations are fully deterministic.
 */

#ifndef RCNVM_SIM_EVENT_QUEUE_HH_
#define RCNVM_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace rcnvm::sim {

/**
 * A deterministic tick-ordered event queue.
 *
 * Events are arbitrary callables. The queue owns no component state;
 * everything interesting happens inside the callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute tick @p when.
     *  @pre when >= now() */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Run events until the queue is empty. */
    void run();

    /** Run events with tick <= @p limit; later events stay queued. */
    void runUntil(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace rcnvm::sim

#endif // RCNVM_SIM_EVENT_QUEUE_HH_
