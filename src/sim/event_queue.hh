/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute ticks (1 tick = 1 ps);
 * the queue executes them in tick order, breaking ties by insertion
 * order so simulations are fully deterministic.
 */

#ifndef RCNVM_SIM_EVENT_QUEUE_HH_
#define RCNVM_SIM_EVENT_QUEUE_HH_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::sim {

/** Move-only inline-storage callable used for event callbacks.
 *  The widened inline capacity fits the largest hot-path capture (a
 *  moved-in MemRequest carrying its completion continuation), so
 *  scheduling an event never allocates. */
using UniqueFunction = util::UniqueFunction<void(), 160>;

/**
 * A deterministic tick-ordered event queue.
 *
 * Events are arbitrary callables. The queue owns no component state;
 * everything interesting happens inside the callbacks. Internally a
 * heap of small POD entries ordering (tick, seq); the callbacks
 * themselves live in a slab indexed by the entries, so heap sifts
 * move 24 bytes instead of relocating whole captures.
 */
class EventQueue
{
  public:
    using Callback = UniqueFunction;

    EventQueue()
    {
        heap_.reserve(64);
        slab_.reserve(64);
        free_.reserve(64);
    }

    /** Schedule @p cb to run at absolute tick @p when.
     *  @pre when >= now()
     *  Defined inline: this runs several times per simulated access,
     *  and inlining lets callers materialise the callback directly
     *  in the slab slot. */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panicPastEvent(when);
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            slab_[slot] = std::move(cb);
        } else {
            slot = static_cast<std::uint32_t>(slab_.size());
            slab_.push_back(std::move(cb));
        }
        pushEntry(Entry{when, nextSeq_++, slot});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Run events until the queue is empty. */
    void run();

    /** Run events with tick <= @p limit; later events stay queued. */
    void runUntil(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Heap arity: a 4-ary heap halves the sift depth of a binary
     *  one and its four-child scans stay within one cache line of
     *  24-byte entries, which measurably speeds up the simulator's
     *  hottest loop. */
    static constexpr std::size_t kHeapArity = 4;

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    /** Out-of-line cold path of schedule()'s precondition check. */
    [[noreturn]] void panicPastEvent(Tick when) const;

    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Strict ordering of the min-heap: tick, then insertion order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Sift @p e up into the 4-ary min-heap. */
    void
    pushEntry(Entry e)
    {
        std::size_t i = heap_.size();
        heap_.push_back(e);
        while (i > 0) {
            const std::size_t parent = (i - 1) / kHeapArity;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    /** Remove and return the earliest entry of the 4-ary min-heap. */
    Entry popTop();

    /** Take the callback for @p slot and recycle the slot. */
    Callback takeSlot(std::uint32_t slot);

    std::vector<Entry> heap_;
    std::vector<Callback> slab_;       //!< parked callbacks
    std::vector<std::uint32_t> free_;  //!< recycled slab slots
    Tick now_{0};
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace rcnvm::sim

#endif // RCNVM_SIM_EVENT_QUEUE_HH_
