/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute ticks (1 tick = 1 ps);
 * the queue executes them in tick order, breaking ties by insertion
 * order so simulations are fully deterministic.
 */

#ifndef RCNVM_SIM_EVENT_QUEUE_HH_
#define RCNVM_SIM_EVENT_QUEUE_HH_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::sim {

/** Move-only inline-storage callable used for event callbacks.
 *  The widened inline capacity fits the largest hot-path capture (a
 *  moved-in MemRequest carrying its completion continuation), so
 *  scheduling an event never allocates. */
using UniqueFunction = util::UniqueFunction<void(), 160>;

/**
 * A deterministic tick-ordered event queue.
 *
 * Events are arbitrary callables. The queue owns no component state;
 * everything interesting happens inside the callbacks. Internally a
 * heap of small POD entries ordering (tick, schedule tick, producer
 * schedule tick, seq); the
 * callbacks themselves live in a slab indexed by the entries, so
 * heap sifts move small PODs instead of relocating whole captures.
 *
 * The schedule-tick components exist for the channel-sharded
 * parallel engine: every entry remembers the tick at which it was
 * scheduled and, one level deeper, the tick at which its *producer*
 * was scheduled, and inject() lets the engine splice a message from
 * another shard into the order *as if* it had been scheduled there
 * with those stamps. For purely local scheduling the extra
 * components are inert: schedule ticks are non-decreasing in seq,
 * and within one (when, schedTick) class entries are produced by
 * events executing in producer-schedule-tick order, so
 * (when, schedTick, schedTick2, seq) orders identically to the
 * historical (when, seq) and single-threaded runs are
 * byte-identical.
 */
class EventQueue
{
  public:
    using Callback = UniqueFunction;

    EventQueue()
    {
        heap_.reserve(64);
        slab_.reserve(64);
        free_.reserve(64);
    }

    /** Schedule @p cb to run at absolute tick @p when.
     *  @pre when >= now()
     *  Defined inline: this runs several times per simulated access,
     *  and inlining lets callers materialise the callback directly
     *  in the slab slot. */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panicPastEvent(when);
        pushEntry(Entry{when, now_, currentSchedTick_, nextSeq_++,
                        storeSlot(std::move(cb))});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Splice a cross-shard message into the order: run @p cb at
     * @p when, ordered among same-tick events as if it had been
     * scheduled at @p sched_tick (the tick of the event on the
     * source shard that produced it) by a producer that was itself
     * scheduled at @p sched_tick2. Only the parallel engine calls
     * this; local code uses schedule(), whose stamps are implicitly
     * (now(), currentSchedTick()).
     * @pre when >= now()
     */
    void
    inject(Tick when, Tick sched_tick, Tick sched_tick2, Callback cb)
    {
        if (when < now_)
            panicPastEvent(when);
        pushEntry(Entry{when, sched_tick, sched_tick2, nextSeq_++,
                        storeSlot(std::move(cb))});
    }

    /** Run events until the queue is empty. */
    void run();

    /** Run events with tick <= @p limit; later events stay queued. */
    void runUntil(Tick limit);

    /**
     * Run events with tick <= @p limit like runUntil(), but leave
     * now() at the last executed event instead of advancing it to
     * @p limit. The parallel engine's window loop uses this so a
     * shard's clock never overshoots into a window it has not been
     * granted, and so end-of-run clocks reflect real events.
     */
    void drainThrough(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule tick of the event currently executing (now() when
     *  no event is in flight). Cross-shard posts read this so a
     *  message inherits its producing event's position in the
     *  same-tick order. */
    Tick currentSchedTick() const { return currentSchedTick_; }

    /** Producer schedule tick of the event currently executing —
     *  the next component of its same-tick lineage. Cross-shard
     *  posts that must stand in for the executing event itself
     *  (issue messages, whose single-queue equivalent is a plain
     *  call from that event) forward this alongside
     *  currentSchedTick(). */
    Tick currentSchedTick2() const { return currentSchedTick2_; }

    /** Tick of the earliest pending event. @pre pending() > 0 */
    Tick
    nextEventTick() const
    {
        return heap_.front().when;
    }

    /** Move the clock forward to @p t without running anything
     *  (end-of-run alignment across shards). Never moves backward. */
    void
    advanceTo(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Heap arity: a 4-ary heap halves the sift depth of a binary
     *  one and its four-child scans touch at most three cache lines
     *  of 40-byte entries, which measurably speeds up the
     *  simulator's hottest loop. */
    static constexpr std::size_t kHeapArity = 4;

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    /** Out-of-line cold path of schedule()'s precondition check. */
    [[noreturn]] void panicPastEvent(Tick when) const;

    struct Entry {
        Tick when;
        Tick schedTick;  //!< tick at which this entry was scheduled
        Tick schedTick2; //!< tick at which its producer was scheduled
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Strict ordering of the min-heap: tick, then schedule tick,
     *  then producer schedule tick, then insertion order. For
     *  local-only scheduling the middle components never reorder
     *  anything (both rise with seq); they exist to place injected
     *  cross-shard messages. Two lineage levels are needed because
     *  an injected completion and a locally scheduled event can tie
     *  on (when, schedTick) — scheduled at the same tick, due at
     *  the same tick — and the single queue breaks that tie by the
     *  order their *producers* executed, which is their producers'
     *  schedule-tick order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.schedTick != b.schedTick)
            return a.schedTick < b.schedTick;
        if (a.schedTick2 != b.schedTick2)
            return a.schedTick2 < b.schedTick2;
        return a.seq < b.seq;
    }

    /** Park @p cb in the slab and return its slot. */
    std::uint32_t
    storeSlot(Callback cb)
    {
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            slab_[slot] = std::move(cb);
        } else {
            slot = static_cast<std::uint32_t>(slab_.size());
            slab_.push_back(std::move(cb));
        }
        return slot;
    }

    /** Sift @p e up into the 4-ary min-heap. */
    void
    pushEntry(Entry e)
    {
        std::size_t i = heap_.size();
        heap_.push_back(e);
        while (i > 0) {
            const std::size_t parent = (i - 1) / kHeapArity;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    /** Remove and return the earliest entry of the 4-ary min-heap. */
    Entry popTop();

    /** Take the callback for @p slot and recycle the slot. */
    Callback takeSlot(std::uint32_t slot);

    std::vector<Entry> heap_;
    std::vector<Callback> slab_;       //!< parked callbacks
    std::vector<std::uint32_t> free_;  //!< recycled slab slots
    Tick now_{0};
    Tick currentSchedTick_{0};
    Tick currentSchedTick2_{0};
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace rcnvm::sim

#endif // RCNVM_SIM_EVENT_QUEUE_HH_
