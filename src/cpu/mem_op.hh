/**
 * @file
 * The operations a core replays: loads/stores in both orientations
 * (the paper's load/store and cload/cstore instructions), compute
 * delays, group-caching pin/unpin, and fences.
 */

#ifndef RCNVM_CPU_MEM_OP_HH_
#define RCNVM_CPU_MEM_OP_HH_

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rcnvm::cpu {

/** Kind of one replayed operation. */
enum class OpKind : std::uint8_t {
    Load,    //!< row-oriented load
    Store,   //!< row-oriented store
    CLoad,   //!< column-oriented load (ISA extension)
    CStore,  //!< column-oriented store (ISA extension)
    CPrefetch, //!< group-caching prefetch into the shared LLC
    GLoad,   //!< GS-DRAM gathered load (cache-bypassing)
    Compute, //!< fixed CPU work, no memory access
    Pin,     //!< group caching: pin [addr, addr+bytes) in the LLC
    Unpin,   //!< group caching: release a pinned range
    Fence,   //!< wait until all outstanding accesses complete
};

/** One operation of an access plan. */
struct MemOp {
    OpKind kind = OpKind::Load;
    Addr addr = 0;
    std::uint32_t bytes = 64;
    std::uint32_t computeCycles = 0; //!< Compute kind: busy cycles
    /** Address space of a Pin/Unpin range. */
    Orientation pinOrient = Orientation::Column;

    /** Orientation implied by the op kind. */
    Orientation
    orientation() const
    {
        if (kind == OpKind::Pin || kind == OpKind::Unpin ||
            kind == OpKind::CPrefetch) {
            return pinOrient;
        }
        return (kind == OpKind::CLoad || kind == OpKind::CStore)
                   ? Orientation::Column
                   : Orientation::Row;
    }

    /** True for operations that reach the memory hierarchy. */
    bool
    isMemory() const
    {
        switch (kind) {
          case OpKind::Load:
          case OpKind::Store:
          case OpKind::CLoad:
          case OpKind::CStore:
          case OpKind::CPrefetch:
          case OpKind::GLoad:
            return true;
          default:
            return false;
        }
    }

    /** True for stores of either orientation. */
    bool
    isWrite() const
    {
        return kind == OpKind::Store || kind == OpKind::CStore;
    }

    // Convenience constructors -------------------------------------

    static MemOp
    load(Addr a, std::uint32_t bytes = 64)
    {
        return MemOp{OpKind::Load, a, bytes, 0};
    }

    static MemOp
    store(Addr a, std::uint32_t bytes = 8)
    {
        return MemOp{OpKind::Store, a, bytes, 0};
    }

    static MemOp
    cload(Addr a, std::uint32_t bytes = 64)
    {
        return MemOp{OpKind::CLoad, a, bytes, 0};
    }

    static MemOp
    cstore(Addr a, std::uint32_t bytes = 8)
    {
        return MemOp{OpKind::CStore, a, bytes, 0};
    }

    static MemOp
    gload(Addr a)
    {
        return MemOp{OpKind::GLoad, a, 64, 0};
    }

    // Typed overloads: call sites that statically know their address
    // space use the strong types, making an orientation/op mismatch
    // (a column address fed to a row-oriented load) a compile error.

    static MemOp
    load(RowAddr a, std::uint32_t bytes = 64)
    {
        return load(a.value(), bytes);
    }

    static MemOp
    store(RowAddr a, std::uint32_t bytes = 8)
    {
        return store(a.value(), bytes);
    }

    static MemOp
    cload(ColAddr a, std::uint32_t bytes = 64)
    {
        return cload(a.value(), bytes);
    }

    static MemOp
    cstore(ColAddr a, std::uint32_t bytes = 8)
    {
        return cstore(a.value(), bytes);
    }

    /** Gathered loads address the row space (GS-DRAM, Sec. 2.3). */
    static MemOp
    gload(RowAddr a)
    {
        return gload(a.value());
    }

    static MemOp
    cprefetch(Addr a, Orientation orient = Orientation::Column)
    {
        return MemOp{OpKind::CPrefetch, a, 64, 0, orient};
    }

    static MemOp
    compute(std::uint32_t cycles)
    {
        return MemOp{OpKind::Compute, 0, 0, cycles};
    }

    static MemOp
    pin(Addr a, std::uint32_t bytes,
        Orientation orient = Orientation::Column)
    {
        return MemOp{OpKind::Pin, a, bytes, 0, orient};
    }

    static MemOp
    unpin(Addr a, std::uint32_t bytes,
          Orientation orient = Orientation::Column)
    {
        return MemOp{OpKind::Unpin, a, bytes, 0, orient};
    }

    static MemOp
    fence()
    {
        return MemOp{OpKind::Fence, 0, 0, 0};
    }
};

/**
 * The per-core instruction stream of one experiment. Pin/Unpin apply
 * to the orientation given by `pinOrient` of the builder that made
 * the plan; for simplicity pins always target column-oriented lines
 * (the group-caching use case).
 */
using AccessPlan = std::vector<MemOp>;

} // namespace rcnvm::cpu

#endif // RCNVM_CPU_MEM_OP_HH_
