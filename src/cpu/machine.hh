/**
 * @file
 * The full simulated machine: cores, cache hierarchy, and one of the
 * four memory devices, assembled per the Table-1 configuration.
 */

#ifndef RCNVM_CPU_MACHINE_HH_
#define RCNVM_CPU_MACHINE_HH_

#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/mem_op.hh"
#include "mem/hybrid_tier.hh"
#include "mem/memory_system.hh"
#include "sim/epoch_sampler.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "util/random.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace rcnvm::cpu {

/** Machine-level configuration. */
struct MachineConfig {
    mem::DeviceKind device = mem::DeviceKind::RcNvm;
    /** Device timing override (Figure-22 sensitivity sweeps). */
    std::optional<mem::TimingParams> timing;
    cache::HierarchyConfig hierarchy;
    unsigned window = 8; //!< outstanding accesses per core
    bool salp = false;   //!< subarray-level parallelism extension
    unsigned memQueueCapacity = 32; //!< per-channel queue depth
    /** Controller request-selection policy (FR-FCFS by default). */
    mem::SchedPolicyKind schedPolicy = mem::SchedPolicyKind::FrFcfs;
    /** Hybrid DRAM-fronting-NVM tier; disabled by default, in which
     *  case the machine is the classic single-device build and every
     *  historical golden is byte-identical. */
    mem::HybridTierConfig tier;
    /** Memory geometry override (channel-scaling studies; defaults
     *  to the device's Table-1 preset). */
    std::optional<mem::Geometry> geometry;
    /**
     * Channel worker threads for the sharded parallel engine;
     * RCNVM_THREADS overrides the built-in default of 1. At 1 the
     * machine runs the classic single-queue loop, byte-identical to
     * every previous release; above 1 each memory channel gets a
     * private event queue drained by a worker pool of this size
     * (clamped to the channel count) behind a conservative window
     * pipeline. Statistics are identical either way up to the
     * documented saturation caveat (DESIGN.md section 4f).
     */
    unsigned threads =
        static_cast<unsigned>(util::envUint64("RCNVM_THREADS", 1));
    /** Epoch-sample period in ticks; 0 disables the time series. */
    Tick epochTicks{0};
    /**
     * Seed for stochastic components attached to this machine (the
     * OLXP service generators default to it). RCNVM_SEED overrides
     * the built-in default, so one environment variable makes every
     * experiment reproducible end to end.
     */
    std::uint64_t seed = util::envSeed(42);
};

/** Result of one simulation run. */
struct RunResult {
    Tick ticks{0}; //!< wall-clock of the slowest core
    util::StatsMap stats;
    /** Per-epoch time series (empty unless epochTicks was set). */
    sim::EpochSeries series;

    /** Execution time in CPU cycles (2 GHz). */
    double cycles() const { return static_cast<double>(ticks.value()) / 500.0; }

    /** Execution time in nanoseconds. */
    double ns() const { return ticksToNs(ticks); }
};

/**
 * Owns the event queue and all components of one simulated machine.
 * A machine can run several plans in sequence; state (caches, bank
 * buffers) persists between runs unless reset() is called.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** The configuration the machine was built with. */
    const MachineConfig &config() const { return config_; }

    /** The device kind this machine models. */
    mem::DeviceKind device() const { return config_.device; }

    /** Capabilities of the memory device. */
    const mem::DeviceCaps &caps() const { return memory_->caps(); }

    /** The device address map (used by plan builders). */
    const mem::AddressMap &map() const { return memory_->map(); }

    /**
     * Replay one plan per core (plans.size() <= cores; remaining
     * cores stay idle) and return timing plus merged statistics.
     */
    RunResult run(const std::vector<AccessPlan> &plans);

    /** Convenience: run a single-core plan. */
    RunResult run(const AccessPlan &plan);

    /**
     * Replay one pull-based operation stream per core
     * (sources.size() <= cores; a nullptr entry leaves that core
     * idle). The streaming counterpart of run(): a core consumes
     * its source one operation at a time, so the backing data may
     * be an mmap-windowed multi-GB trace instead of a materialised
     * plan. Replaying the same operation sequence produces the same
     * events — and therefore byte-identical statistics — as run().
     */
    RunResult runSources(const std::vector<OpSource *> &sources);

    // --- Service-mode primitives (the OLXP scheduler). Instead of
    // --- replaying one fixed plan list, a client seeds the event
    // --- queue with arrival events, starts plans on cores as they
    // --- free up mid-simulation, and drives the loop with serve().

    /** Number of cores in the machine. */
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** True when core @p c is not executing a plan. */
    bool coreIdle(unsigned c) const { return cores_[c]->finished(); }

    /**
     * Start @p plan on idle core @p c; @p on_finish fires at
     * completion. Legal mid-simulation, including from inside
     * another (or the same) core's completion callback. The plan is
     * borrowed and must stay alive until completion.
     */
    void startOnCore(unsigned c, const AccessPlan &plan,
                     util::UniqueFunction<void(Tick)> on_finish);

    /**
     * As startOnCore, additionally marking every access of this plan
     * as latency-class traffic (@p priority) — see Core::setPriority.
     * Dispatchers use this to flag OLTP-class work so the
     * read-priority channel policy can serve it first.
     */
    void startOnCore(unsigned c, const AccessPlan &plan, bool priority,
                     util::UniqueFunction<void(Tick)> on_finish);

    /**
     * Run the event loop until it drains, then snapshot statistics
     * exactly like run(). Callers are responsible for having seeded
     * the queue (arrival events, startOnCore) and for terminating
     * generators, or the loop never empties. RunResult::ticks spans
     * from the call to the last event (drain included).
     */
    RunResult serve();

    /** The machine's event queue (service generators schedule
     *  arrival events into it). */
    sim::EventQueue &eventQueue() { return eq_; }

    /** The epoch sampler, or nullptr when epochTicks is 0 (service
     *  clients attach run-queue gauges to it). */
    sim::EpochSampler *epochSampler() { return sampler_.get(); }

    /** Drop all cache/bank state and statistics. */
    void reset();

    /** Access to the hierarchy (tests and advanced callers). */
    cache::Hierarchy &hierarchy() { return *hierarchy_; }

    /** Access to the (far) memory system (tests and advanced
     *  callers). In a hybrid machine this is the NVM device. */
    mem::MemorySystem &memory() { return *memory_; }

    /** The memory tier the hierarchy talks to: the hybrid tier when
     *  enabled, otherwise the far memory system itself. */
    mem::MemoryTier &tier() { return *tier_; }

    /** The hybrid tier, or nullptr when disabled. */
    mem::HybridMemory *hybrid() { return hybrid_.get(); }

    /** The near (DRAM) memory system, or nullptr when the hybrid
     *  tier is disabled. */
    mem::MemorySystem *nearMemory() { return near_.get(); }

    /** The sharded engine, or nullptr in single-queue mode (tests
     *  and benchmarks inspect worker counts and round statistics). */
    sim::ParallelEngine *engine() { return engine_.get(); }

    /** The machine-wide statistics registry (tests and reports).
     *  run() snapshots it; callers may read it mid-run too. */
    const util::StatRegistry &registry() const { return registry_; }

    /** Mutable registry access: service clients register their own
     *  statistics (latency histograms, admission counters) so they
     *  ride in the same snapshot. Registered sources must outlive
     *  every later snapshot of this machine. */
    util::StatRegistry &registry() { return registry_; }

  private:
    MachineConfig config_;
    sim::EventQueue eq_; //!< core/cache shard (the only queue at
                         //!< threads = 1)
    /** Per-channel shard queues (empty in single-queue mode). */
    std::vector<std::unique_ptr<sim::EventQueue>> channelQueues_;
    std::unique_ptr<mem::MemorySystem> memory_;
    /** Near DRAM tier and its composition (hybrid machines only). */
    std::unique_ptr<mem::MemorySystem> near_;
    std::unique_ptr<mem::HybridMemory> hybrid_;
    /** The tier the hierarchy was built against (hybrid_ or
     *  memory_); never null after construction. */
    mem::MemoryTier *tier_ = nullptr;
    std::unique_ptr<cache::Hierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Holds pointers into the components above; members are
     *  destroyed in reverse declaration order, so it must stay
     *  declared after them (it never dereferences at destruction,
     *  but the ordering keeps the invariant obvious). */
    util::StatRegistry registry_;
    std::unique_ptr<sim::EpochSampler> sampler_;
    /** Declared last: its destructor joins the worker threads, so
     *  every component the workers may touch outlives them. */
    std::unique_ptr<sim::ParallelEngine> engine_;
};

} // namespace rcnvm::cpu

#endif // RCNVM_CPU_MACHINE_HH_
