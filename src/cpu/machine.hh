/**
 * @file
 * The full simulated machine: cores, cache hierarchy, and one of the
 * four memory devices, assembled per the Table-1 configuration.
 */

#ifndef RCNVM_CPU_MACHINE_HH_
#define RCNVM_CPU_MACHINE_HH_

#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/mem_op.hh"
#include "mem/memory_system.hh"
#include "sim/epoch_sampler.hh"
#include "sim/event_queue.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace rcnvm::cpu {

/** Machine-level configuration. */
struct MachineConfig {
    mem::DeviceKind device = mem::DeviceKind::RcNvm;
    /** Device timing override (Figure-22 sensitivity sweeps). */
    std::optional<mem::TimingParams> timing;
    cache::HierarchyConfig hierarchy;
    unsigned window = 8; //!< outstanding accesses per core
    bool salp = false;   //!< subarray-level parallelism extension
    unsigned memQueueCapacity = 32; //!< per-channel queue depth
    /** Epoch-sample period in ticks; 0 disables the time series. */
    Tick epochTicks = 0;
};

/** Result of one simulation run. */
struct RunResult {
    Tick ticks = 0; //!< wall-clock of the slowest core
    util::StatsMap stats;
    /** Per-epoch time series (empty unless epochTicks was set). */
    sim::EpochSeries series;

    /** Execution time in CPU cycles (2 GHz). */
    double cycles() const { return static_cast<double>(ticks) / 500.0; }

    /** Execution time in nanoseconds. */
    double ns() const { return ticksToNs(ticks); }
};

/**
 * Owns the event queue and all components of one simulated machine.
 * A machine can run several plans in sequence; state (caches, bank
 * buffers) persists between runs unless reset() is called.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** The device kind this machine models. */
    mem::DeviceKind device() const { return config_.device; }

    /** Capabilities of the memory device. */
    const mem::DeviceCaps &caps() const { return memory_->caps(); }

    /** The device address map (used by plan builders). */
    const mem::AddressMap &map() const { return memory_->map(); }

    /**
     * Replay one plan per core (plans.size() <= cores; remaining
     * cores stay idle) and return timing plus merged statistics.
     */
    RunResult run(const std::vector<AccessPlan> &plans);

    /** Convenience: run a single-core plan. */
    RunResult run(const AccessPlan &plan);

    /** Drop all cache/bank state and statistics. */
    void reset();

    /** Access to the hierarchy (tests and advanced callers). */
    cache::Hierarchy &hierarchy() { return *hierarchy_; }

    /** Access to the memory system (tests and advanced callers). */
    mem::MemorySystem &memory() { return *memory_; }

    /** The machine-wide statistics registry (tests and reports).
     *  run() snapshots it; callers may read it mid-run too. */
    const util::StatRegistry &registry() const { return registry_; }

  private:
    MachineConfig config_;
    sim::EventQueue eq_;
    std::unique_ptr<mem::MemorySystem> memory_;
    std::unique_ptr<cache::Hierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Holds pointers into the components above; members are
     *  destroyed in reverse declaration order, so it must stay
     *  declared after them (it never dereferences at destruction,
     *  but the ordering keeps the invariant obvious). */
    util::StatRegistry registry_;
    std::unique_ptr<sim::EpochSampler> sampler_;
};

} // namespace rcnvm::cpu

#endif // RCNVM_CPU_MACHINE_HH_
