#include "cpu/core.hh"

#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace rcnvm::cpu {

Core::Core(unsigned id, sim::EventQueue &eq,
           cache::Hierarchy &hierarchy, unsigned window)
    : id_(id),
      eq_(eq),
      hierarchy_(hierarchy),
      window_(window),
      clock_(hierarchy.config().cpuClock())
{
    hierarchy_.setRetryHandler(id_, [this] { onRetry(); });
}

void
Core::start(const AccessPlan &plan,
            util::UniqueFunction<void(Tick)> on_finish)
{
    planSource_ = PlanOpSource(plan);
    start(planSource_, std::move(on_finish));
}

void
Core::start(OpSource &source,
            util::UniqueFunction<void(Tick)> on_finish)
{
    source_ = &source;
    onFinish_ = std::move(on_finish);
    outstanding_ = 0;
    readyTick_ = eq_.now();
    finished_ = false;
    fencePending_ = false;
    stalledFull_ = false;
    stalledRetry_ = false;
    scheduleAdvance(eq_.now());
}

void
Core::scheduleAdvance(Tick when)
{
    if (advanceScheduled_)
        return;
    advanceScheduled_ = true;
    eq_.schedule(when, [this] {
        advanceScheduled_ = false;
        advance();
    });
}

void
Core::onAccessDone()
{
    --outstanding_;
    if (stalledFull_) {
        stalledFull_ = false;
        stallTicks_.inc((eq_.now() - stallStart_).value());
    }
    advance();
}

void
Core::onRetry()
{
    // The hierarchy broadcasts; only a core actually parked on a
    // refused access reacts.
    if (!stalledRetry_)
        return;
    stalledRetry_ = false;
    retryStallTicks_.inc((eq_.now() - retryStallStart_).value());
    advance();
}

void
Core::advance()
{
    if (finished_)
        return;

    while (const MemOp *head = source_->peek()) {
        const Tick now = eq_.now();
        if (now < readyTick_) {
            scheduleAdvance(readyTick_);
            return;
        }

        const MemOp &op = *head;
        switch (op.kind) {
          case OpKind::Compute:
            readyTick_ = now + clock_.cyclesToTicks(
                                   CpuCycles{op.computeCycles});
            source_->advance();
            continue;

          case OpKind::Pin:
            hierarchy_.pinRange(op.addr, op.pinOrient, op.bytes,
                                true);
            readyTick_ = now + clock_.cyclesToTicks(CpuCycles{2});
            source_->advance();
            continue;

          case OpKind::Unpin:
            hierarchy_.pinRange(op.addr, op.pinOrient, op.bytes,
                                false);
            readyTick_ = now + clock_.cyclesToTicks(CpuCycles{2});
            source_->advance();
            continue;

          case OpKind::Fence:
            if (outstanding_ > 0) {
                fencePending_ = true;
                return; // resumed by onAccessDone
            }
            source_->advance();
            continue;

          case OpKind::Load:
          case OpKind::Store:
          case OpKind::CLoad:
          case OpKind::CStore:
          case OpKind::CPrefetch:
          case OpKind::GLoad: {
            if (outstanding_ >= window_) {
                if (!stalledFull_) {
                    stalledFull_ = true;
                    stallStart_ = now;
                }
                return; // resumed by onAccessDone
            }

            cache::CacheAccess access;
            access.addr = op.addr;
            access.orient = op.orientation();
            access.isWrite = op.isWrite();
            access.bypass = op.kind == OpKind::GLoad;
            access.prefetchL3 = op.kind == OpKind::CPrefetch;
            access.priority = priority_;
            access.bytes = op.bytes;
            // Completion is always delivered through the event queue
            // (never synchronously from inside access), so the
            // post-acceptance bookkeeping below cannot race it.
            bool accepted;
#if RCNVM_PACKET_TRACE
            if (util::ChromeTracer::active()) {
                // Traced path only: the issue tick and address ride
                // in the continuation, so the untraced continuation
                // stays as small as before.
                accepted = hierarchy_.access(
                    id_, access,
                    [this, addr = op.addr, t0 = now](Tick t) {
                        RCNVM_TRACE_COMPLETE(
                            "memop", util::ChromeTracer::kPidCpu, id_,
                            t0, t - t0, addr);
                        onAccessDone();
                    });
            } else
#endif
            {
                accepted = hierarchy_.access(
                    id_, access, [this](Tick) { onAccessDone(); });
            }
            if (!accepted) {
                retries_.inc();
                if (!stalledRetry_) {
                    stalledRetry_ = true;
                    retryStallStart_ = now;
                }
                return; // resumed by onRetry
            }
            ++outstanding_;
            memOps_.inc();
            source_->advance();
            readyTick_ = now + clock_.period(); // one issue per cycle
            continue;
          }
        }
    }

    // Reaching here means the source is exhausted (the loop returns
    // from inside on every stall).
    if (fencePending_ && outstanding_ == 0)
        fencePending_ = false;

    // The final operation may have been a Compute/Pin that set a
    // future ready time; the core is only done once it elapses.
    if (eq_.now() < readyTick_) {
        scheduleAdvance(readyTick_);
        return;
    }

    if (outstanding_ == 0 && !finished_) {
        finished_ = true;
        finishTick_ = eq_.now();
        // Detach the continuation before invoking it: a scheduler
        // may start() this core again from inside the callback
        // (dispatching the next queued request onto the freed core),
        // which overwrites onFinish_ while it executes.
        if (onFinish_) {
            auto fn = std::move(onFinish_);
            fn(finishTick_);
        }
    }
}

} // namespace rcnvm::cpu
