#include "cpu/machine.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace rcnvm::cpu {

Machine::Machine(const MachineConfig &config) : config_(config)
{
    const mem::TimingParams timing =
        config_.timing ? *config_.timing
                       : mem::timingFor(config_.device);
    memory_ = std::make_unique<mem::MemorySystem>(
        config_.device, eq_, timing, config_.salp,
        config_.memQueueCapacity);
    hierarchy_ = std::make_unique<cache::Hierarchy>(
        config_.hierarchy, eq_, *memory_);
    for (unsigned c = 0; c < config_.hierarchy.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, eq_, *hierarchy_,
                                                config_.window));
    }
}

RunResult
Machine::run(const std::vector<AccessPlan> &plans)
{
    if (plans.size() > cores_.size())
        rcnvm_fatal("more plans (", plans.size(), ") than cores (",
                    cores_.size(), ")");

    const Tick start = eq_.now();
    Tick latest = start;
    unsigned running = 0;

    for (std::size_t i = 0; i < plans.size(); ++i) {
        if (plans[i].empty())
            continue;
        ++running;
        cores_[i]->start(plans[i], [&latest, &running](Tick t) {
            latest = std::max(latest, t);
            --running;
        });
    }

    eq_.run();

    if (running != 0)
        rcnvm_panic("simulation deadlock: ", running,
                    " cores never finished");

    RunResult result;
    result.ticks = latest - start;
    result.stats = hierarchy_->stats();
    result.stats.merge(memory_->stats());
    double mem_ops = 0, stall = 0, retries = 0, retry_stall = 0;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const Core &core = *cores_[c];
        mem_ops += static_cast<double>(core.memOps());
        stall += static_cast<double>(core.stallTicks());
        retries += static_cast<double>(core.retries());
        retry_stall += static_cast<double>(core.retryStallTicks());
        result.stats.set("cpu.core" + std::to_string(c) +
                             ".retryStallTicks",
                         static_cast<double>(core.retryStallTicks()));
    }
    result.stats.set("cpu.memOps", mem_ops);
    result.stats.set("cpu.stallTicks", stall);
    result.stats.set("cpu.retries", retries);
    result.stats.set("cpu.retryStallTicks", retry_stall);
    result.stats.set("run.ticks", static_cast<double>(result.ticks));
    return result;
}

RunResult
Machine::run(const AccessPlan &plan)
{
    return run(std::vector<AccessPlan>{plan});
}

void
Machine::reset()
{
    hierarchy_->reset();
    memory_->reset();
}

} // namespace rcnvm::cpu
