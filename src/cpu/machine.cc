#include "cpu/machine.hh"

#include <algorithm>
#include <string>

#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace rcnvm::cpu {

Machine::Machine(const MachineConfig &config) : config_(config)
{
    // Tracing attaches at machine construction so every component's
    // probes see a consistent enabled/disabled state for the run.
    util::ChromeTracer::enableFromEnv();

    const mem::TimingParams timing =
        config_.timing ? *config_.timing
                       : mem::timingFor(config_.device);
    const mem::Geometry geometry =
        config_.geometry ? *config_.geometry
                         : mem::geometryFor(config_.device);

    // Channel sharding is an execution strategy, not a model change.
    // The lookahead window is half the minimum channel-to-core
    // response latency (a completion fires at least tCAS + tBURST
    // after the issue that produced it), which licenses the engine's
    // depth-1 window pipeline.
    unsigned threads = std::max(1u, config_.threads);
    if (threads > 1 && util::ChromeTracer::active() != nullptr) {
        util::warn("RCNVM_THREADS > 1 is incompatible with Chrome "
                   "tracing (probes share one sink); running "
                   "single-threaded");
        threads = 1;
    }
    const mem::TimingParams nearTiming =
        config_.tier.nearTiming ? *config_.tier.nearTiming
                                : mem::TimingParams::ddr3_1333();
    Tick smin = timing.cyc(timing.tCAS) + timing.cyc(timing.tBURST);
    if (config_.tier.enabled) {
        // Both tiers' controllers share the channel shards, so the
        // lookahead must cover the faster (near) device's minimum
        // channel-to-core response latency too.
        const Tick nearSmin = nearTiming.cyc(nearTiming.tCAS) +
                              nearTiming.cyc(nearTiming.tBURST);
        smin = std::min(smin, nearSmin);
    }
    const Tick window{smin.value() / 2};
    if (threads > 1 && window == Tick{}) {
        util::warn("device timing gives no cross-shard lookahead; "
                   "running single-threaded");
        threads = 1;
    }

    std::vector<sim::EventQueue *> channelQueues;
    if (threads > 1) {
        for (unsigned c = 0; c < geometry.channels; ++c) {
            channelQueues_.push_back(
                std::make_unique<sim::EventQueue>());
            channelQueues.push_back(channelQueues_.back().get());
        }
    }
    memory_ = std::make_unique<mem::MemorySystem>(
        config_.device, eq_, timing, config_.salp,
        config_.memQueueCapacity, geometry, channelQueues,
        config_.schedPolicy);
    tier_ = memory_.get();
    if (config_.tier.enabled) {
        // The near DRAM tier inherits the far device's channel count
        // and row shape (a frame holds exactly one far row) and runs
        // its controllers on the same channel shard queues.
        mem::Geometry nearGeo = geometry;
        nearGeo.ranksPerChannel = config_.tier.nearRanksPerChannel;
        nearGeo.banksPerRank = config_.tier.nearBanksPerRank;
        nearGeo.subarraysPerBank = 1;
        nearGeo.rowsPerSubarray = config_.tier.nearRowsPerBank;
        near_ = std::make_unique<mem::MemorySystem>(
            mem::DeviceKind::Dram, eq_, nearTiming, false,
            config_.memQueueCapacity, nearGeo, channelQueues,
            config_.schedPolicy);
        hybrid_ = std::make_unique<mem::HybridMemory>(
            *memory_, *near_, config_.tier, eq_);
        tier_ = hybrid_.get();
    }
    if (threads > 1) {
        engine_ = std::make_unique<sim::ParallelEngine>(
            eq_, channelQueues, threads, window);
        if (hybrid_)
            hybrid_->attachShardLink(*engine_);
        else
            memory_->attachShardLink(*engine_);
    }
    hierarchy_ = std::make_unique<cache::Hierarchy>(
        config_.hierarchy, eq_, *tier_);
    for (unsigned c = 0; c < config_.hierarchy.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, eq_, *hierarchy_,
                                                config_.window));
    }

    hierarchy_->registerStats(registry_);
    tier_->registerStats(registry_);
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const Core *core = cores_[c].get();
        registry_.addCounterFn("cpu.memOps", [core] {
            return static_cast<double>(core->memOps());
        });
        registry_.addCounterFn("cpu.stallTicks", [core] {
            return static_cast<double>(core->stallTicks());
        });
        registry_.addCounterFn("cpu.retries", [core] {
            return static_cast<double>(core->retries());
        });
        registry_.addCounterFn("cpu.retryStallTicks", [core] {
            return static_cast<double>(core->retryStallTicks());
        });
        registry_.addGauge(
            "cpu.core" + std::to_string(c) + ".retryStallTicks",
            [core] {
                return static_cast<double>(core->retryStallTicks());
            });
    }

    if (config_.epochTicks > Tick{}) {
        sampler_ = std::make_unique<sim::EpochSampler>(eq_);
        sampler_->addGauge("mem.queued", [this] {
            return static_cast<double>(tier_->queuedTotal());
        });
        sampler_->addGauge("cache.mshrUsed", [this] {
            return static_cast<double>(hierarchy_->mshrInUse());
        });
        sampler_->addGauge("cache.llcMisses", [this] {
            return static_cast<double>(hierarchy_->llcMissCount());
        });
    }
}

RunResult
Machine::run(const std::vector<AccessPlan> &plans)
{
    if (plans.size() > cores_.size())
        rcnvm_fatal("more plans (", plans.size(), ") than cores (",
                    cores_.size(), ")");

    const Tick start = eq_.now();
    Tick latest = start;
    unsigned running = 0;

    for (std::size_t i = 0; i < plans.size(); ++i) {
        if (plans[i].empty())
            continue;
        ++running;
        cores_[i]->start(plans[i], [&latest, &running](Tick t) {
            latest = std::max(latest, t);
            --running;
        });
    }

    if (sampler_)
        sampler_->start(config_.epochTicks);

    if (engine_)
        engine_->run();
    else
        eq_.run();

    if (running != 0)
        rcnvm_panic("simulation deadlock: ", running,
                    " cores never finished");

    // One snapshot of the shared registry replaces the old per-layer
    // StatsMap merge: derived values are formulas evaluated here,
    // over fully aggregated inputs, so nothing non-additive is ever
    // pushed through StatsMap::merge.
    RunResult result;
    result.ticks = latest - start;
    result.stats = registry_.snapshot();
    result.stats.set("run.ticks", static_cast<double>(result.ticks.value()));
    if (sampler_) {
        result.series = sampler_->series();
        sampler_->clear();
    }
    return result;
}

RunResult
Machine::run(const AccessPlan &plan)
{
    return run(std::vector<AccessPlan>{plan});
}

RunResult
Machine::runSources(const std::vector<OpSource *> &sources)
{
    if (sources.size() > cores_.size())
        rcnvm_fatal("more op sources (", sources.size(),
                    ") than cores (", cores_.size(), ")");

    const Tick start = eq_.now();
    Tick latest = start;
    unsigned running = 0;

    for (std::size_t i = 0; i < sources.size(); ++i) {
        if (sources[i] == nullptr)
            continue;
        ++running;
        cores_[i]->start(*sources[i], [&latest, &running](Tick t) {
            latest = std::max(latest, t);
            --running;
        });
    }

    if (sampler_)
        sampler_->start(config_.epochTicks);

    if (engine_)
        engine_->run();
    else
        eq_.run();

    if (running != 0)
        rcnvm_panic("simulation deadlock: ", running,
                    " cores never finished");

    RunResult result;
    result.ticks = latest - start;
    result.stats = registry_.snapshot();
    result.stats.set("run.ticks", static_cast<double>(result.ticks.value()));
    if (sampler_) {
        result.series = sampler_->series();
        sampler_->clear();
    }
    return result;
}

void
Machine::startOnCore(unsigned c, const AccessPlan &plan,
                     util::UniqueFunction<void(Tick)> on_finish)
{
    if (c >= cores_.size())
        rcnvm_fatal("startOnCore: core ", c, " of ", cores_.size());
    if (!cores_[c]->finished())
        rcnvm_fatal("startOnCore: core ", c, " is busy");
    cores_[c]->start(plan, std::move(on_finish));
}

void
Machine::startOnCore(unsigned c, const AccessPlan &plan, bool priority,
                     util::UniqueFunction<void(Tick)> on_finish)
{
    if (c >= cores_.size())
        rcnvm_fatal("startOnCore: core ", c, " of ", cores_.size());
    cores_[c]->setPriority(priority);
    startOnCore(c, plan, std::move(on_finish));
}

RunResult
Machine::serve()
{
    const Tick start = eq_.now();

    if (sampler_)
        sampler_->start(config_.epochTicks);

    if (engine_)
        engine_->run();
    else
        eq_.run();

    for (std::size_t c = 0; c < cores_.size(); ++c) {
        if (!cores_[c]->finished())
            rcnvm_panic("service deadlock: core ", c,
                        " never finished");
    }

    RunResult result;
    result.ticks = eq_.now() - start;
    result.stats = registry_.snapshot();
    result.stats.set("run.ticks", static_cast<double>(result.ticks.value()));
    if (sampler_) {
        result.series = sampler_->series();
        sampler_->clear();
    }
    return result;
}

void
Machine::reset()
{
    hierarchy_->reset();
    tier_->reset(); // the hybrid tier resets both devices
}

} // namespace rcnvm::cpu
