/**
 * @file
 * A trace-replaying in-order core with a bounded window of
 * outstanding memory accesses.
 */

#ifndef RCNVM_CPU_CORE_HH_
#define RCNVM_CPU_CORE_HH_

#include "util/unique_function.hh"

#include "cache/hierarchy.hh"
#include "cpu/mem_op.hh"
#include "cpu/op_source.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::cpu {

/**
 * Replays an operation stream against the cache hierarchy — a
 * pre-materialised AccessPlan or any pull-based OpSource (windowed
 * binary-trace replay).
 *
 * The core issues one operation per CPU cycle while fewer than
 * `window` memory accesses are outstanding; Compute ops make it busy
 * for their duration; Fence drains the window. This models the
 * memory-level parallelism of an out-of-order core running the
 * memory-bound query kernels without simulating its pipeline.
 *
 * The hierarchy may refuse an access (miss path saturated); the core
 * then stalls on retry and re-presents the same operation when the
 * hierarchy's retry notification fires.
 */
class Core
{
  public:
    /**
     * @param id        core number (cache port selector)
     * @param eq        simulation event queue
     * @param hierarchy cache hierarchy to access; the core clocks
     *                  itself from its cpuPeriod so the two can
     *                  never be configured apart
     * @param window    maximum outstanding memory accesses
     */
    Core(unsigned id, sim::EventQueue &eq,
         cache::Hierarchy &hierarchy, unsigned window = 8);

    /** Begin replaying @p plan; @p on_finish fires when done.
     *  The plan is borrowed, not copied: the caller must keep it
     *  alive until the run completes. The core must be finished();
     *  calling start from inside the previous plan's on_finish
     *  callback is allowed (service dispatch onto a freed core). */
    void start(const AccessPlan &plan,
               util::UniqueFunction<void(Tick)> on_finish);

    /** Begin consuming @p source — the streaming form of start():
     *  the core pulls operations one at a time, so the stream may be
     *  unbounded (trace replay). Same borrowing and re-entry rules
     *  as the plan overload, which is implemented on top of this. */
    void start(OpSource &source,
               util::UniqueFunction<void(Tick)> on_finish);

    /** Mark every access of subsequently started plans as
     *  latency-class (OLTP) traffic; the flag rides the miss packets
     *  into the channel controller, where the read-priority policy
     *  can act on it. Sticky until changed — dispatchers set it per
     *  plan right before start(). */
    void setPriority(bool p) { priority_ = p; }

    /** Current latency-class flag. */
    bool priority() const { return priority_; }

    /** True when the whole plan has completed. */
    bool finished() const { return finished_; }

    /** Tick at which the plan finished (valid when finished()). */
    Tick finishTick() const { return finishTick_; }

    /** Number of memory operations issued. */
    std::uint64_t memOps() const { return memOps_.value(); }

    /** Cycles spent stalled with a full window. */
    std::uint64_t stallTicks() const { return stallTicks_.value(); }

    /** Accesses the hierarchy refused (retried later). */
    std::uint64_t retries() const { return retries_.value(); }

    /** Ticks spent stalled waiting for a retry notification. */
    std::uint64_t retryStallTicks() const
    {
        return retryStallTicks_.value();
    }

  private:
    void advance();
    void scheduleAdvance(Tick when);
    void onAccessDone();
    void onRetry();

    unsigned id_;
    sim::EventQueue &eq_;
    cache::Hierarchy &hierarchy_;
    unsigned window_;
    sim::ClockDomain<CpuClk> clock_; //!< from HierarchyConfig:
                                     //!< one shared 2 GHz clock

    OpSource *source_ = nullptr; //!< borrowed from start()
    /** Adapter for the fixed-plan start() overload; source_ points
     *  at it when a plan (rather than a caller stream) is active. */
    PlanOpSource planSource_;
    unsigned outstanding_ = 0;
    Tick readyTick_{0};
    bool advanceScheduled_ = false;
    bool stalledFull_ = false;
    bool stalledRetry_ = false;
    bool fencePending_ = false;
    bool priority_ = false;
    bool finished_ = true;
    Tick finishTick_{0};
    Tick stallStart_{0};
    Tick retryStallStart_{0};
    util::UniqueFunction<void(Tick)> onFinish_;

    util::Counter memOps_;
    util::Counter stallTicks_;
    util::Counter retries_;
    util::Counter retryStallTicks_;
};

} // namespace rcnvm::cpu

#endif // RCNVM_CPU_CORE_HH_
