/**
 * @file
 * The pull-based operation-stream seam a core replays from.
 *
 * Historically a core consumed a pre-materialised AccessPlan (a
 * vector borrowed for the whole run). That shape cannot express an
 * unbounded input — a multi-GB binary trace must stream through a
 * window, not sit in memory — so the core now pulls operations from
 * this interface one at a time, and the fixed plan becomes just one
 * implementation of it (PlanOpSource). Trace replay plugs in a
 * windowed reader behind the same two calls.
 */

#ifndef RCNVM_CPU_OP_SOURCE_HH_
#define RCNVM_CPU_OP_SOURCE_HH_

#include <cstddef>

#include "cpu/mem_op.hh"

namespace rcnvm::cpu {

/**
 * A stream of operations consumed by one core.
 *
 * The contract mirrors how the core's issue loop re-presents work
 * after stalls: peek() must be repeatable — calling it again without
 * an intervening advance() returns the same operation — and the
 * returned pointer stays valid until advance() consumes it. A
 * streaming implementation may perform I/O inside peek() (refilling
 * its window); the core only calls it from event context.
 */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** The operation at the head of the stream, or nullptr when the
     *  stream is exhausted. */
    virtual const MemOp *peek() = 0;

    /** Consume the head operation. @pre peek() != nullptr */
    virtual void advance() = 0;
};

/**
 * The fixed-plan source: adapts a borrowed AccessPlan to the stream
 * seam. This is what Core::start(const AccessPlan &) wraps, so plan
 * replay and stream replay share one issue loop and stay
 * tick-identical by construction.
 */
class PlanOpSource final : public OpSource
{
  public:
    PlanOpSource() = default;

    /** The plan is borrowed, not copied: the caller must keep it
     *  alive until the stream is exhausted. */
    explicit PlanOpSource(const AccessPlan &plan) : plan_(&plan) {}

    const MemOp *
    peek() override
    {
        if (plan_ == nullptr || pc_ >= plan_->size())
            return nullptr;
        return &(*plan_)[pc_];
    }

    void advance() override { ++pc_; }

  private:
    const AccessPlan *plan_ = nullptr;
    std::size_t pc_ = 0;
};

} // namespace rcnvm::cpu

#endif // RCNVM_CPU_OP_SOURCE_HH_
