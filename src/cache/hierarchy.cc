#include "cache/hierarchy.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::cache {

Hierarchy::Hierarchy(const HierarchyConfig &config, sim::EventQueue &eq,
                     mem::MemorySystem &memory)
    : config_(config),
      eq_(eq),
      memory_(memory),
      synonymEnabled_(memory.caps().columnAccess),
      synonym_(memory.map())
{
    for (unsigned c = 0; c < config_.cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(config_.l1));
        l2_.push_back(std::make_unique<Cache>(config_.l2));
    }
    l3_ = std::make_unique<Cache>(config_.l3);
}

Cycles
Hierarchy::onL3Fill(const LineKey &key)
{
    if (!synonymEnabled_)
        return 0;
    // Orientation filter: when no lines of the other orientation are
    // cached at all, the crossing probe is skipped at zero cost.
    if (l3_->linesWithOrientation(flip(key.orient)) == 0)
        return 0;

    Cycles extra = config_.synonymProbe;
    synonymProbes_.inc(SynonymMapper::wordsPerLine);

    CacheLine *self = l3_->find(key);
    for (const Crossing &c : synonym_.crossings(key)) {
        CacheLine *partner = l3_->find(c.partner);
        if (!partner)
            continue;
        crossingsFound_.inc();
        if (self)
            self->crossing |= std::uint8_t(1u << c.selfWord);
        partner->crossing |= std::uint8_t(1u << c.partnerWord);
        extra += 1; // copy the shared word across
    }
    synonymTicks_.inc(config_.cpuPeriod * extra);
    return extra;
}

Cycles
Hierarchy::onWrite(unsigned core, const LineKey &key, unsigned word)
{
    if (!synonymEnabled_)
        return 0;
    CacheLine *self = l3_->find(key);
    if (!self || !(self->crossing & (1u << word)))
        return 0;

    // Keep the duplicated word coherent: update the crossed line in
    // the shared L3 and in any private copies.
    const Crossing c = synonym_.crossingOfWord(key, word);
    CacheLine *partner = l3_->find(c.partner);
    Cycles extra = config_.synonymUpdate;
    if (partner)
        partner->state = MesiState::Modified;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        if (CacheLine *p1 = l1_[i]->find(c.partner))
            p1->state = MesiState::Modified;
        if (CacheLine *p2 = l2_[i]->find(c.partner))
            p2->state = MesiState::Modified;
    }
    if (CacheLine *own1 = l1_[core]->find(c.partner))
        own1->state = MesiState::Modified;
    if (CacheLine *own2 = l2_[core]->find(c.partner))
        own2->state = MesiState::Modified;

    synonymUpdates_.inc();
    synonymTicks_.inc(config_.cpuPeriod * extra);
    return extra;
}

void
Hierarchy::onL3Evict(const Cache::Victim &victim)
{
    if (!synonymEnabled_ || victim.crossing == 0)
        return;
    Cycles cleanup = 0;
    for (unsigned w = 0; w < SynonymMapper::wordsPerLine; ++w) {
        if (!(victim.crossing & (1u << w)))
            continue;
        const Crossing c = synonym_.crossingOfWord(victim.key, w);
        if (CacheLine *partner = l3_->find(c.partner))
            partner->crossing &= std::uint8_t(~(1u << c.partnerWord));
        cleanup += config_.synonymCleanup;
    }
    // Clean-up happens off the critical path but still consumes tag
    // bandwidth; account it in the overhead statistic.
    synonymTicks_.inc(config_.cpuPeriod * cleanup);
}

void
Hierarchy::writeback(const LineKey &key)
{
    writebacks_.inc();
    mem::MemRequest req;
    req.addr = key.addr;
    req.orient = key.orient;
    req.isWrite = true;
    memory_.issue(std::move(req));
}

void
Hierarchy::backInvalidate(const LineKey &key, bool &was_dirty)
{
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (auto v = l1_[i]->invalidate(key)) {
            if (v->state == MesiState::Modified)
                was_dirty = true;
        }
        if (auto v = l2_[i]->invalidate(key)) {
            if (v->state == MesiState::Modified)
                was_dirty = true;
        }
    }
}

void
Hierarchy::fillL3(const LineKey &key, MesiState state, Cycles &extra)
{
    auto victim = l3_->insert(key, state);
    if (victim && victim->state != MesiState::Invalid) {
        // Inclusion: remove private copies of the evicted line.
        bool dirty = victim->state == MesiState::Modified;
        backInvalidate(victim->key, dirty);
        onL3Evict(*victim);
        if (dirty)
            writeback(victim->key);
    }
    extra += onL3Fill(key);
}

void
Hierarchy::fillPrivate(unsigned core, const LineKey &key,
                       MesiState state)
{
    if (auto v2 = l2_[core]->insert(key, state)) {
        if (v2->state != MesiState::Invalid) {
            // L2 inclusion over L1.
            if (auto v1 = l1_[core]->invalidate(v2->key)) {
                if (v1->state == MesiState::Modified)
                    v2->state = MesiState::Modified;
            }
            if (v2->state == MesiState::Modified) {
                // Fold the dirty data back into the shared L3.
                if (CacheLine *l3line = l3_->find(v2->key))
                    l3line->state = MesiState::Modified;
            }
        }
    }
    if (auto v1 = l1_[core]->insert(key, state)) {
        if (v1->state == MesiState::Modified) {
            if (CacheLine *l2line = l2_[core]->find(v1->key))
                l2line->state = MesiState::Modified;
            else if (CacheLine *l3line = l3_->find(v1->key))
                l3line->state = MesiState::Modified;
        }
    }
}

Cycles
Hierarchy::coherenceOnRead(unsigned core, const LineKey &key)
{
    Cycles extra = 0;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        CacheLine *p1 = l1_[i]->find(key);
        CacheLine *p2 = l2_[i]->find(key);
        const bool dirty =
            (p1 && p1->state == MesiState::Modified) ||
            (p2 && p2->state == MesiState::Modified);
        if (dirty) {
            // Remote dirty copy: fetch and downgrade to Shared.
            if (p1)
                p1->state = MesiState::Shared;
            if (p2)
                p2->state = MesiState::Shared;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            cohRemoteFetches_.inc();
            cohTicks_.inc(config_.cpuPeriod *
                          config_.remoteFetchPenalty);
            extra += config_.remoteFetchPenalty;
        }
    }
    return extra;
}

Cycles
Hierarchy::coherenceOnWrite(unsigned core, const LineKey &key)
{
    Cycles extra = 0;
    bool any = false;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        if (l1_[i]->invalidate(key))
            any = true;
        if (l2_[i]->invalidate(key))
            any = true;
    }
    if (any) {
        cohInvalidations_.inc();
        cohTicks_.inc(config_.cpuPeriod * config_.invalidatePenalty);
        extra += config_.invalidatePenalty;
    }
    return extra;
}

void
Hierarchy::access(unsigned core, const CacheAccess &a, DoneFn done)
{
    accesses_.inc();

    if (a.bypass) {
        // GS-DRAM gathered access: streams past the caches.
        bypasses_.inc();
        llcMisses_.inc();
        mem::MemRequest req;
        req.addr = util::alignDown(a.addr, 64);
        req.orient = a.orient;
        req.isWrite = a.isWrite;
        req.gathered = true;
        const Tick path =
            config_.cpuPeriod * (config_.l1Latency + config_.l2Latency +
                                 config_.l3Latency);
        req.onComplete = [done = std::move(done)](Tick t) mutable {
            done(t);
        };
        eq_.scheduleAfter(path, [this, req = std::move(req)]() mutable {
            memory_.issue(std::move(req));
        });
        return;
    }

    const LineKey key{util::alignDown(a.addr, 64), a.orient};
    const unsigned word = static_cast<unsigned>((a.addr % 64) / 8);

    // Warm the lower-level sets while the L1 scan runs; on the usual
    // L1 miss their tag reads then hit the host's cache.
    l2_[core]->prefetchSet(key);
    l3_->prefetchSet(key);

    if (a.prefetchL3) {
        // Group-caching prefetch: install the line in the shared
        // LLC without disturbing the private caches, so the pinned
        // group does not thrash L1/L2 (Sec. 5).
        if (l3_->find(key)) {
            l3Hits_.inc();
            eq_.scheduleAfter(config_.cpuPeriod * config_.l3Latency,
                              [done = std::move(done), this]() mutable {
                                  done(eq_.now());
                              });
            return;
        }
        llcMisses_.inc();
        mem::MemRequest req;
        req.addr = key.addr;
        req.orient = key.orient;
        req.onComplete = [this, key,
                          done = std::move(done)](Tick) mutable {
            Cycles extra = 0;
            fillL3(key, MesiState::Exclusive, extra);
            eq_.scheduleAfter(config_.cpuPeriod * extra,
                              [done = std::move(done), this]() mutable {
                                  done(eq_.now());
                              });
        };
        const Tick path =
            config_.cpuPeriod * config_.l3Latency;
        eq_.scheduleAfter(path,
                          [this, req = std::move(req)]() mutable {
                              memory_.issue(std::move(req));
                          });
        return;
    }

    Cycles lat = config_.l1Latency;

    // L1.
    if (CacheLine *line = l1_[core]->find(key)) {
        l1Hits_.inc();
        if (a.isWrite) {
            if (line->state == MesiState::Shared)
                lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            if (CacheLine *l2line = l2_[core]->find(key))
                l2line->state = MesiState::Modified;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        eq_.scheduleAfter(config_.cpuPeriod * lat,
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return;
    }

    // L2.
    lat += config_.l2Latency;
    if (CacheLine *line = l2_[core]->find(key)) {
        l2Hits_.inc();
        MesiState fill_state = line->state;
        if (a.isWrite) {
            if (line->state == MesiState::Shared)
                lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            fill_state = MesiState::Modified;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        if (auto v1 = l1_[core]->insert(key, fill_state)) {
            if (v1->state == MesiState::Modified) {
                if (CacheLine *l2v = l2_[core]->find(v1->key))
                    l2v->state = MesiState::Modified;
            }
        }
        eq_.scheduleAfter(config_.cpuPeriod * lat,
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return;
    }

    // L3 + directory.
    lat += config_.l3Latency;
    if (CacheLine *line = l3_->find(key)) {
        l3Hits_.inc();
        lat += coherenceOnRead(core, key);
        MesiState fill_state = MesiState::Shared;
        if (a.isWrite) {
            lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            fill_state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        fillPrivate(core, key, fill_state);
        eq_.scheduleAfter(config_.cpuPeriod * lat,
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return;
    }

    // Miss to memory.
    llcMisses_.inc();
    mem::MemRequest req;
    req.addr = key.addr;
    req.orient = key.orient;
    req.isWrite = false; // line fill; the write happens on return

    const bool is_write = a.isWrite;
    req.onComplete = [this, core, key, word, is_write,
                      done = std::move(done)](Tick) mutable {
        // The sets were last touched when the miss issued, thousands
        // of simulated ticks ago; warm the private ones while the L3
        // fill and synonym probe run.
        l1_[core]->prefetchSet(key);
        l2_[core]->prefetchSet(key);
        Cycles extra = 0;
        fillL3(key, is_write ? MesiState::Modified : MesiState::Exclusive,
               extra);
        if (is_write) {
            extra += coherenceOnWrite(core, key);
            extra += onWrite(core, key, word);
        }
        fillPrivate(core, key,
                    is_write ? MesiState::Modified
                             : MesiState::Exclusive);
        const Tick fill = config_.cpuPeriod *
                          (config_.l1Latency + extra);
        eq_.scheduleAfter(fill, [done = std::move(done), this]() mutable {
            done(eq_.now());
        });
    };

    const Tick path = config_.cpuPeriod * lat;
    eq_.scheduleAfter(path, [this, req = std::move(req)]() mutable {
        memory_.issue(std::move(req));
    });
}

unsigned
Hierarchy::pinRange(Addr addr, Orientation orient, std::uint64_t bytes,
                    bool pinned)
{
    unsigned changed = 0;
    const Addr first = util::alignDown(addr, 64);
    const Addr last = util::alignDown(addr + bytes - 1, 64);
    for (Addr a = first; a <= last; a += 64) {
        if (l3_->setPinned(LineKey{a, orient}, pinned))
            ++changed;
    }
    pinOps_.inc();
    return changed;
}

util::StatsMap
Hierarchy::stats() const
{
    util::StatsMap out;
    out.set("cache.accesses", static_cast<double>(accesses_.value()));
    out.set("cache.l1Hits", static_cast<double>(l1Hits_.value()));
    out.set("cache.l2Hits", static_cast<double>(l2Hits_.value()));
    out.set("cache.l3Hits", static_cast<double>(l3Hits_.value()));
    out.set("cache.llcMisses", static_cast<double>(llcMisses_.value()));
    out.set("cache.writebacks",
            static_cast<double>(writebacks_.value()));
    out.set("cache.bypasses", static_cast<double>(bypasses_.value()));
    out.set("cache.synonymProbes",
            static_cast<double>(synonymProbes_.value()));
    out.set("cache.crossingsFound",
            static_cast<double>(crossingsFound_.value()));
    out.set("cache.synonymUpdates",
            static_cast<double>(synonymUpdates_.value()));
    out.set("cache.synonymTicks",
            static_cast<double>(synonymTicks_.value()));
    out.set("cache.cohRemoteFetches",
            static_cast<double>(cohRemoteFetches_.value()));
    out.set("cache.cohInvalidations",
            static_cast<double>(cohInvalidations_.value()));
    out.set("cache.cohTicks", static_cast<double>(cohTicks_.value()));
    out.set("cache.pinOps", static_cast<double>(pinOps_.value()));
    double pinned_evictions = static_cast<double>(l3_->pinnedEvictions());
    out.set("cache.pinnedEvictions", pinned_evictions);
    return out;
}

void
Hierarchy::reset()
{
    for (auto &c : l1_)
        c->reset();
    for (auto &c : l2_)
        c->reset();
    l3_->reset();
    accesses_.reset();
    l1Hits_.reset();
    l2Hits_.reset();
    l3Hits_.reset();
    llcMisses_.reset();
    writebacks_.reset();
    bypasses_.reset();
    synonymProbes_.reset();
    crossingsFound_.reset();
    synonymUpdates_.reset();
    synonymTicks_.reset();
    cohRemoteFetches_.reset();
    cohInvalidations_.reset();
    cohTicks_.reset();
    pinOps_.reset();
}

} // namespace rcnvm::cache
