#include "cache/hierarchy.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace rcnvm::cache {

Hierarchy::Hierarchy(const HierarchyConfig &config, sim::EventQueue &eq,
                     mem::MemoryTier &memory)
    : config_(config),
      eq_(eq),
      memory_(memory),
      synonymEnabled_(memory.caps().columnAccess),
      synonym_(memory.map()),
      mshrs_(config.mshrs),
      deferredInChannel_(memory.channels(), 0),
      retryHandlers_(config.cores)
{
    for (unsigned c = 0; c < config_.cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(config_.l1));
        l2_.push_back(std::make_unique<Cache>(config_.l2));
    }
    l3_ = std::make_unique<Cache>(config_.l3);
    memory_.setRetryCallback([this] { onMemorySpace(); });
}

void
Hierarchy::setRetryHandler(unsigned core, RetryFn fn)
{
    retryHandlers_.at(core) = std::move(fn);
}

CpuCycles
Hierarchy::onL3Fill(const LineKey &key)
{
    if (!synonymEnabled_)
        return CpuCycles{};
    // Orientation filter: when no lines of the other orientation are
    // cached at all, the crossing probe is skipped at zero cost.
    if (l3_->linesWithOrientation(flip(key.orient)) == 0)
        return CpuCycles{};

    CpuCycles extra = config_.synonymProbe;
    synonymProbes_.inc(SynonymMapper::wordsPerLine);

    CacheLine *self = l3_->find(key);
    for (const Crossing &c : synonym_.crossings(key)) {
        CacheLine *partner = l3_->find(c.partner);
        if (!partner)
            continue;
        crossingsFound_.inc();
        if (self)
            self->crossing |= std::uint8_t(1u << c.selfWord);
        partner->crossing |= std::uint8_t(1u << c.partnerWord);
        extra += CpuCycles{1}; // copy the shared word across
    }
    synonymTicks_.inc(config_.cyc(extra).value());
    return extra;
}

CpuCycles
Hierarchy::onWrite(unsigned core, const LineKey &key, unsigned word)
{
    if (!synonymEnabled_)
        return CpuCycles{};
    CacheLine *self = l3_->find(key);
    if (!self || !(self->crossing & (1u << word)))
        return CpuCycles{};

    // Keep the duplicated word coherent: update the crossed line in
    // the shared L3 and in any private copies.
    const Crossing c = synonym_.crossingOfWord(key, word);
    CacheLine *partner = l3_->find(c.partner);
    CpuCycles extra = config_.synonymUpdate;
    if (partner)
        partner->state = MesiState::Modified;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        if (CacheLine *p1 = l1_[i]->find(c.partner))
            p1->state = MesiState::Modified;
        if (CacheLine *p2 = l2_[i]->find(c.partner))
            p2->state = MesiState::Modified;
    }
    if (CacheLine *own1 = l1_[core]->find(c.partner))
        own1->state = MesiState::Modified;
    if (CacheLine *own2 = l2_[core]->find(c.partner))
        own2->state = MesiState::Modified;

    synonymUpdates_.inc();
    synonymTicks_.inc(config_.cyc(extra).value());
    return extra;
}

void
Hierarchy::onL3Evict(const Cache::Victim &victim)
{
    if (!synonymEnabled_ || victim.crossing == 0)
        return;
    CpuCycles cleanup;
    for (unsigned w = 0; w < SynonymMapper::wordsPerLine; ++w) {
        if (!(victim.crossing & (1u << w)))
            continue;
        const Crossing c = synonym_.crossingOfWord(victim.key, w);
        if (CacheLine *partner = l3_->find(c.partner))
            partner->crossing &= std::uint8_t(~(1u << c.partnerWord));
        cleanup += config_.synonymCleanup;
    }
    // Clean-up happens off the critical path but still consumes tag
    // bandwidth; account it in the overhead statistic.
    synonymTicks_.inc(config_.cyc(cleanup).value());
}

void
Hierarchy::sendPacket(mem::MemPacket &&pkt)
{
    // An older deferred packet for the same channel must go first;
    // issuing around it would reorder the miss stream the controller
    // sees and break FR-FCFS's arrival-order tie-breaking. When
    // nothing is deferred at all (the common case) the channel
    // lookup - an address decode - is skipped entirely.
    if (deferred_.empty()) {
        if (memory_.tryIssue(pkt))
            return;
    } else {
        const unsigned ch = memory_.channelOf(pkt.addr, pkt.orient);
        if (deferredInChannel_[ch] == 0 && memory_.tryIssue(pkt))
            return;
    }
    const unsigned ch = memory_.channelOf(pkt.addr, pkt.orient);
    ++deferredInChannel_[ch];
    deferred_.push_back(std::move(pkt));
}

void
Hierarchy::drainDeferred()
{
    std::vector<bool> blocked(deferredInChannel_.size(), false);
    for (auto it = deferred_.begin(); it != deferred_.end();) {
        const unsigned ch = memory_.channelOf(it->addr, it->orient);
        if (!blocked[ch] && memory_.tryIssue(*it)) {
            --deferredInChannel_[ch];
            it = deferred_.erase(it);
        } else {
            blocked[ch] = true;
            ++it;
        }
    }
}

void
Hierarchy::writeback(const LineKey &key)
{
    writebacks_.inc();
    wbBuffer_.push_back(key);
    drainWritebacks();
}

void
Hierarchy::drainWritebacks()
{
    while (!wbBuffer_.empty()) {
        const LineKey key = wbBuffer_.front();
        // Demand packets deferred on this channel are older and
        // latency-critical; they keep their queue slots.
        if (!deferred_.empty() &&
            deferredInChannel_[memory_.channelOf(key.addr,
                                                 key.orient)] != 0)
            break;
        mem::MemPacket pkt;
        pkt.addr = key.addr;
        pkt.orient = key.orient;
        pkt.isWrite = true;
        if (!memory_.tryIssue(pkt))
            break;
        wbBuffer_.pop_front();
    }
}

void
Hierarchy::onMemorySpace()
{
    drainDeferred();
    drainWritebacks();
    notifyRetry();
}

void
Hierarchy::notifyRetry()
{
    // Nothing was refused since the last notification: every fill
    // completion lands here, so skip the handler fan-out unless a
    // core is actually waiting. Cleared before invoking handlers -
    // a handler that retries and is refused again re-arms it.
    if (pendingRetries_ == 0)
        return;
    pendingRetries_ = 0;
    for (auto &fn : retryHandlers_) {
        if (fn)
            fn();
    }
}

void
Hierarchy::backInvalidate(const LineKey &key, bool &was_dirty)
{
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (auto v = l1_[i]->invalidate(key)) {
            if (v->state == MesiState::Modified)
                was_dirty = true;
        }
        if (auto v = l2_[i]->invalidate(key)) {
            if (v->state == MesiState::Modified)
                was_dirty = true;
        }
    }
}

void
Hierarchy::fillL3(const LineKey &key, MesiState state, CpuCycles &extra)
{
    auto victim = l3_->insert(key, state);
    if (victim && victim->state != MesiState::Invalid) {
        // Inclusion: remove private copies of the evicted line.
        bool dirty = victim->state == MesiState::Modified;
        backInvalidate(victim->key, dirty);
        onL3Evict(*victim);
        if (dirty)
            writeback(victim->key);
    }
    extra += onL3Fill(key);
}

void
Hierarchy::fillPrivate(unsigned core, const LineKey &key,
                       MesiState state)
{
    if (auto v2 = l2_[core]->insert(key, state)) {
        if (v2->state != MesiState::Invalid) {
            // L2 inclusion over L1.
            if (auto v1 = l1_[core]->invalidate(v2->key)) {
                if (v1->state == MesiState::Modified)
                    v2->state = MesiState::Modified;
            }
            if (v2->state == MesiState::Modified) {
                // Fold the dirty data back into the shared L3.
                if (CacheLine *l3line = l3_->find(v2->key))
                    l3line->state = MesiState::Modified;
            }
        }
    }
    if (auto v1 = l1_[core]->insert(key, state)) {
        if (v1->state == MesiState::Modified) {
            if (CacheLine *l2line = l2_[core]->find(v1->key))
                l2line->state = MesiState::Modified;
            else if (CacheLine *l3line = l3_->find(v1->key))
                l3line->state = MesiState::Modified;
        }
    }
}

CpuCycles
Hierarchy::coherenceOnRead(unsigned core, const LineKey &key)
{
    CpuCycles extra;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        CacheLine *p1 = l1_[i]->find(key);
        CacheLine *p2 = l2_[i]->find(key);
        const bool dirty =
            (p1 && p1->state == MesiState::Modified) ||
            (p2 && p2->state == MesiState::Modified);
        if (dirty) {
            // Remote dirty copy: fetch and downgrade to Shared.
            if (p1)
                p1->state = MesiState::Shared;
            if (p2)
                p2->state = MesiState::Shared;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            cohRemoteFetches_.inc();
            cohTicks_.inc(config_.cyc(config_.remoteFetchPenalty).value());
            extra += config_.remoteFetchPenalty;
        }
    }
    return extra;
}

CpuCycles
Hierarchy::coherenceOnWrite(unsigned core, const LineKey &key)
{
    CpuCycles extra;
    bool any = false;
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (i == core)
            continue;
        if (l1_[i]->invalidate(key))
            any = true;
        if (l2_[i]->invalidate(key))
            any = true;
    }
    if (any) {
        cohInvalidations_.inc();
        cohTicks_.inc(config_.cyc(config_.invalidatePenalty).value());
        extra += config_.invalidatePenalty;
    }
    return extra;
}

void
Hierarchy::onFillComplete(unsigned mshr_idx)
{
    // The issuing packet captured its slot index; a slot stays live
    // under one key until this (single) completion frees it, so no
    // key search is needed on the hot fill path.
    if (!mshrs_.live(mshr_idx))
        rcnvm_panic("fill completion for an unknown MSHR line");
    MshrEntry *entry = &mshrs_.at(mshr_idx);
    const LineKey key = entry->key;
    RCNVM_TRACE_INSTANT("fill", util::ChromeTracer::kPidCache,
                        entry->targets.empty() ? 0u
                                               : entry->targets[0].core,
                        eq_.now(), key.addr);

    bool any_write = false;
    unsigned demand_targets = 0;
    for (const MshrTarget &t : entry->targets) {
        if (t.isWrite)
            any_write = true;
        if (!t.prefetchOnly)
            ++demand_targets;
    }
    // Swap (not move) the target list out so both buffers keep their
    // capacity: a move would steal the entry's buffer and force a
    // fresh allocation on the next miss that reuses the entry. The
    // entry must be released before the retry notification below so
    // a woken core can claim it immediately.
    fillScratch_.clear();
    fillScratch_.swap(entry->targets);
    mshrs_.free(*entry);

    CpuCycles extra;
    fillL3(key, any_write ? MesiState::Modified : MesiState::Exclusive,
           extra);

    for (MshrTarget &t : fillScratch_) {
        if (t.prefetchOnly) {
            // Group-caching prefetch: the line is in the LLC now;
            // only the fill-side synonym work is on its path.
            eq_.scheduleAfter(config_.cyc(extra),
                              [done = std::move(t.done),
                               this]() mutable { done(eq_.now()); });
            continue;
        }
        // The sets were last touched when the miss issued, thousands
        // of simulated ticks ago; warm the private ones while the L3
        // fill and synonym probe run.
        l1_[t.core]->prefetchSet(key);
        l2_[t.core]->prefetchSet(key);
        CpuCycles textra = extra;
        if (t.isWrite) {
            textra += coherenceOnWrite(t.core, key);
            textra += onWrite(t.core, key, t.word);
        }
        const MesiState st =
            t.isWrite ? MesiState::Modified
            : (demand_targets == 1 && !any_write) ? MesiState::Exclusive
                                                  : MesiState::Shared;
        fillPrivate(t.core, key, st);
        const Tick fill = config_.cyc(config_.l1Latency + textra);
        eq_.scheduleAfter(fill, [done = std::move(t.done),
                                 this]() mutable { done(eq_.now()); });
    }

    // An MSHR (and possibly a channel slot) just freed up.
    notifyRetry();
}

bool
Hierarchy::access(unsigned core, const CacheAccess &a, DoneFn done)
{
    if (a.bypass) {
        // GS-DRAM gathered access: streams past the caches. Always
        // accepted - the packet parks in the deferred queue when the
        // channel is full, bounded by the cores' outstanding windows.
        accesses_.inc();
        bypasses_.inc();
        llcMisses_.inc();
        mem::MemPacket req;
        req.addr = util::alignDown(a.addr, 64);
        req.orient = a.orient;
        req.isWrite = a.isWrite;
        req.gathered = true;
        req.origin = core;
        req.priority = a.priority;
        const Tick path = config_.cyc(config_.l1Latency +
                                      config_.l2Latency +
                                      config_.l3Latency);
        req.onComplete = [done = std::move(done)](Tick t) mutable {
            done(t);
        };
        eq_.scheduleAfter(path, [this, req = std::move(req)]() mutable {
            sendPacket(std::move(req));
        });
        return true;
    }

    const LineKey key{util::alignDown(a.addr, 64), a.orient};
    const unsigned word = static_cast<unsigned>((a.addr % 64) / 8);

    // A fill for this line is already in flight: coalesce into its
    // target list instead of occupying a second queue slot.
    if (MshrEntry *entry = mshrs_.find(key)) {
        accesses_.inc();
        llcMisses_.inc();
        mshrCoalesced_.inc();
        RCNVM_TRACE_INSTANT("mshr.coalesce",
                            util::ChromeTracer::kPidCache, core,
                            eq_.now(), key.addr);
        entry->targets.push_back(MshrTarget{core, word, a.isWrite,
                                            a.prefetchL3,
                                            std::move(done)});
        return true;
    }

    // Warm the lower-level sets while the L1 scan runs; on the usual
    // L1 miss their tag reads then hit the host's cache.
    l2_[core]->prefetchSet(key);
    l3_->prefetchSet(key);

    if (a.prefetchL3) {
        // Group-caching prefetch: install the line in the shared
        // LLC without disturbing the private caches, so the pinned
        // group does not thrash L1/L2 (Sec. 5).
        if (l3_->find(key)) {
            accesses_.inc();
            l3Hits_.inc();
            eq_.scheduleAfter(config_.cyc(config_.l3Latency),
                              [done = std::move(done), this]() mutable {
                                  done(eq_.now());
                              });
            return true;
        }
        if (mshrs_.full() ||
            wbBuffer_.size() >= config_.wbBufferDepth) {
            retries_.inc();
            ++pendingRetries_;
            RCNVM_TRACE_INSTANT("retry", util::ChromeTracer::kPidCache,
                                core, eq_.now(), key.addr);
            return false;
        }
        accesses_.inc();
        llcMisses_.inc();
        MshrEntry *entry = mshrs_.allocate(key);
        RCNVM_TRACE_INSTANT("mshr.alloc", util::ChromeTracer::kPidCache,
                            core, eq_.now(), key.addr);
        entry->targets.push_back(
            MshrTarget{core, word, false, true, std::move(done)});
        mem::MemPacket req;
        req.addr = key.addr;
        req.orient = key.orient;
        req.origin = core;
        req.priority = a.priority;
        req.onComplete = [this, idx = mshrs_.indexOf(*entry)](Tick) {
            onFillComplete(idx);
        };
        const Tick path = config_.cyc(config_.l3Latency);
        eq_.scheduleAfter(path,
                          [this, req = std::move(req)]() mutable {
                              sendPacket(std::move(req));
                          });
        return true;
    }

    CpuCycles lat = config_.l1Latency;

    // L1.
    if (CacheLine *line = l1_[core]->find(key)) {
        accesses_.inc();
        l1Hits_.inc();
        if (a.isWrite) {
            if (line->state == MesiState::Shared)
                lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            if (CacheLine *l2line = l2_[core]->find(key))
                l2line->state = MesiState::Modified;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        eq_.scheduleAfter(config_.cyc(lat),
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return true;
    }

    // L2.
    lat += config_.l2Latency;
    if (CacheLine *line = l2_[core]->find(key)) {
        accesses_.inc();
        l2Hits_.inc();
        MesiState fill_state = line->state;
        if (a.isWrite) {
            if (line->state == MesiState::Shared)
                lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            fill_state = MesiState::Modified;
            if (CacheLine *l3line = l3_->find(key))
                l3line->state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        if (auto v1 = l1_[core]->insert(key, fill_state)) {
            if (v1->state == MesiState::Modified) {
                if (CacheLine *l2v = l2_[core]->find(v1->key))
                    l2v->state = MesiState::Modified;
            }
        }
        eq_.scheduleAfter(config_.cyc(lat),
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return true;
    }

    // L3 + directory.
    lat += config_.l3Latency;
    if (CacheLine *line = l3_->find(key)) {
        accesses_.inc();
        l3Hits_.inc();
        lat += coherenceOnRead(core, key);
        MesiState fill_state = MesiState::Shared;
        if (a.isWrite) {
            lat += coherenceOnWrite(core, key);
            line->state = MesiState::Modified;
            fill_state = MesiState::Modified;
            lat += onWrite(core, key, word);
        }
        fillPrivate(core, key, fill_state);
        eq_.scheduleAfter(config_.cyc(lat),
                          [done = std::move(done), this]() mutable {
                              done(eq_.now());
                          });
        return true;
    }

    // Write-back race: the line was evicted dirty and is parked in
    // the write-back buffer. Forward it back up instead of letting
    // the stale copy in memory win the race with the write-back.
    for (auto it = wbBuffer_.begin(); it != wbBuffer_.end(); ++it) {
        if (*it == key) {
            wbBuffer_.erase(it);
            accesses_.inc();
            wbForwards_.inc();
            // Back-invalidation at eviction removed every private
            // copy, so no coherence traffic is needed; the line
            // re-enters dirty because memory never saw the data.
            CpuCycles extra;
            fillL3(key, MesiState::Modified, extra);
            if (a.isWrite)
                extra += onWrite(core, key, word);
            fillPrivate(core, key, MesiState::Modified);
            eq_.scheduleAfter(config_.cyc(lat + extra),
                              [done = std::move(done), this]() mutable {
                                  done(eq_.now());
                              });
            return true;
        }
    }

    // Miss to memory. Refuse (and let the core retry) rather than
    // growing any structure without bound.
    if (mshrs_.full() || wbBuffer_.size() >= config_.wbBufferDepth) {
        retries_.inc();
        ++pendingRetries_;
        RCNVM_TRACE_INSTANT("retry", util::ChromeTracer::kPidCache,
                            core, eq_.now(), key.addr);
        return false;
    }

    accesses_.inc();
    llcMisses_.inc();
    MshrEntry *entry = mshrs_.allocate(key);
    RCNVM_TRACE_INSTANT("mshr.alloc", util::ChromeTracer::kPidCache,
                        core, eq_.now(), key.addr);
    entry->targets.push_back(MshrTarget{core, word, a.isWrite, false,
                                        std::move(done)});

    mem::MemPacket req;
    req.addr = key.addr;
    req.orient = key.orient;
    req.isWrite = false; // line fill; the write happens on return
    req.origin = core;
    req.priority = a.priority;
    req.onComplete = [this, idx = mshrs_.indexOf(*entry)](Tick) {
            onFillComplete(idx);
        };

    const Tick path = config_.cyc(lat);
    eq_.scheduleAfter(path, [this, req = std::move(req)]() mutable {
        sendPacket(std::move(req));
    });
    return true;
}

unsigned
Hierarchy::pinRange(Addr addr, Orientation orient, std::uint64_t bytes,
                    bool pinned)
{
    unsigned changed = 0;
    const Addr first = util::alignDown(addr, 64);
    const Addr last = util::alignDown(addr + bytes - 1, 64);
    for (Addr a = first; a <= last; a += 64) {
        if (l3_->setPinned(LineKey{a, orient}, pinned))
            ++changed;
    }
    pinOps_.inc();
    return changed;
}

void
Hierarchy::registerStats(util::StatRegistry &r) const
{
    r.addCounter("cache.accesses", accesses_);
    r.addCounter("cache.l1Hits", l1Hits_);
    r.addCounter("cache.l2Hits", l2Hits_);
    r.addCounter("cache.l3Hits", l3Hits_);
    r.addCounter("cache.llcMisses", llcMisses_);
    r.addCounter("cache.writebacks", writebacks_);
    r.addCounter("cache.bypasses", bypasses_);
    r.addCounter("cache.mshrCoalesced", mshrCoalesced_);
    r.addCounter("cache.retries", retries_);
    r.addCounter("cache.wbForwards", wbForwards_);
    r.addSampled("cache.mshrOccupancySamples", mshrs_.occupancy());
    r.addFormula("cache.mshrOccupancy",
                 [](const util::StatRegistry &g) {
                     return g.sampled("cache.mshrOccupancySamples")
                         .mean();
                 });
    r.addFormula("cache.maxMshrOccupancy",
                 [](const util::StatRegistry &g) {
                     return g.sampled("cache.mshrOccupancySamples")
                         .max();
                 });
    r.addCounter("cache.synonymProbes", synonymProbes_);
    r.addCounter("cache.crossingsFound", crossingsFound_);
    r.addCounter("cache.synonymUpdates", synonymUpdates_);
    r.addCounter("cache.synonymTicks", synonymTicks_);
    r.addCounter("cache.cohRemoteFetches", cohRemoteFetches_);
    r.addCounter("cache.cohInvalidations", cohInvalidations_);
    r.addCounter("cache.cohTicks", cohTicks_);
    r.addCounter("cache.pinOps", pinOps_);
    r.addCounterFn("cache.pinnedEvictions", [this] {
        return static_cast<double>(l3_->pinnedEvictions());
    });
}

util::StatsMap
Hierarchy::stats() const
{
    util::StatRegistry r;
    registerStats(r);
    return r.snapshot();
}

void
Hierarchy::reset()
{
    for (auto &c : l1_)
        c->reset();
    for (auto &c : l2_)
        c->reset();
    l3_->reset();
    mshrs_.reset();
    deferred_.clear();
    std::fill(deferredInChannel_.begin(), deferredInChannel_.end(), 0u);
    wbBuffer_.clear();
    pendingRetries_ = 0;
    accesses_.reset();
    l1Hits_.reset();
    l2Hits_.reset();
    l3Hits_.reset();
    llcMisses_.reset();
    writebacks_.reset();
    bypasses_.reset();
    mshrCoalesced_.reset();
    retries_.reset();
    wbForwards_.reset();
    synonymProbes_.reset();
    crossingsFound_.reset();
    synonymUpdates_.reset();
    synonymTicks_.reset();
    cohRemoteFetches_.reset();
    cohInvalidations_.reset();
    cohTicks_.reset();
    pinOps_.reset();
}

} // namespace rcnvm::cache
