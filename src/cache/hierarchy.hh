/**
 * @file
 * Three-level cache hierarchy with directory-based MESI coherence
 * and the RC-NVM synonym extensions of Sec. 4.3.
 *
 * Private L1/L2 per core, shared inclusive L3. Crossing bits are
 * maintained at the shared L3, which doubles as the directory - the
 * placement the paper prescribes for multi-core operation ("these
 * bits are stored in the cache directory"). Probe, update, and
 * clean-up work is charged to a synonym-overhead statistic that the
 * Figure-21 bench reports as an overhead ratio.
 */

#ifndef RCNVM_CACHE_HIERARCHY_HH_
#define RCNVM_CACHE_HIERARCHY_HH_

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/synonym.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::cache {

/** Static configuration of the whole hierarchy (Table 1 defaults). */
struct HierarchyConfig {
    unsigned cores = 4;
    Tick cpuPeriod = 500; //!< 2 GHz

    CacheConfig l1{"L1", 32 * 1024, 64, 8};
    CacheConfig l2{"L2", 256 * 1024, 64, 8};
    CacheConfig l3{"L3", 8 * 1024 * 1024, 64, 8};

    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles l3Latency = 38;
    Cycles remoteFetchPenalty = 40; //!< dirty line in another core
    Cycles invalidatePenalty = 24;  //!< upgrade invalidations

    Cycles synonymProbe = 2;  //!< crossing probe on an L3 fill
    Cycles synonymUpdate = 2; //!< write-through to a crossed line
    Cycles synonymCleanup = 1; //!< per bit cleared on eviction
};

/** One memory operation as seen by the hierarchy. */
struct CacheAccess {
    Addr addr = 0;
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    bool bypass = false; //!< GS-DRAM gathered access: skip caches
    bool prefetchL3 = false; //!< group caching: fill the LLC only
    unsigned bytes = 64;
};

/**
 * The cache hierarchy. Functional state (tags, MESI, crossing bits)
 * is updated at issue time; timing is composed from level latencies
 * and the event-driven memory system below.
 */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyConfig &config, sim::EventQueue &eq,
              mem::MemorySystem &memory);

    /** The configuration in use. */
    const HierarchyConfig &config() const { return config_; }

    /** Completion continuation of one access (move-only). */
    using DoneFn = util::UniqueFunction<void(Tick)>;

    /**
     * Perform one access for @p core. @p done is invoked exactly
     * once with the completion tick.
     */
    void access(unsigned core, const CacheAccess &a, DoneFn done);

    /**
     * Pin or unpin every line of the given orientation overlapping
     * [addr, addr+bytes) in the shared L3 (group caching).
     * @return number of lines whose pin state changed
     */
    unsigned pinRange(Addr addr, Orientation orient,
                      std::uint64_t bytes, bool pinned);

    /** Aggregate statistics. */
    util::StatsMap stats() const;

    /** Drop all cache state and statistics. */
    void reset();

  private:
    /** Charge and account synonym work on an L3 fill. */
    Cycles onL3Fill(const LineKey &key);

    /** Propagate a write to a crossed line if the bit is set. */
    Cycles onWrite(unsigned core, const LineKey &key, unsigned word);

    /** Clear partner crossing bits when an L3 line leaves. */
    void onL3Evict(const Cache::Victim &victim);

    /** Insert into L3 handling eviction side effects. */
    void fillL3(const LineKey &key, MesiState state, Cycles &extra);

    /** Insert into a private level, maintaining inclusion. */
    void fillPrivate(unsigned core, const LineKey &key,
                     MesiState state);

    /** Invalidate a key from every private cache (back-inval). */
    void backInvalidate(const LineKey &key, bool &was_dirty);

    /** MESI: handle a miss that found the line in other cores. */
    Cycles coherenceOnRead(unsigned core, const LineKey &key);

    /** MESI: obtain exclusivity for a write. */
    Cycles coherenceOnWrite(unsigned core, const LineKey &key);

    /** Send a write-back of an evicted dirty line to memory. */
    void writeback(const LineKey &key);

    HierarchyConfig config_;
    sim::EventQueue &eq_;
    mem::MemorySystem &memory_;
    bool synonymEnabled_;
    SynonymMapper synonym_;

    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    // Statistics.
    util::Counter accesses_;
    util::Counter l1Hits_;
    util::Counter l2Hits_;
    util::Counter l3Hits_;
    util::Counter llcMisses_;
    util::Counter writebacks_;
    util::Counter bypasses_;
    util::Counter synonymProbes_;
    util::Counter crossingsFound_;
    util::Counter synonymUpdates_;
    util::Counter synonymTicks_;
    util::Counter cohRemoteFetches_;
    util::Counter cohInvalidations_;
    util::Counter cohTicks_;
    util::Counter pinOps_;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_HIERARCHY_HH_
