/**
 * @file
 * Three-level cache hierarchy with directory-based MESI coherence
 * and the RC-NVM synonym extensions of Sec. 4.3.
 *
 * Private L1/L2 per core, shared inclusive L3. Crossing bits are
 * maintained at the shared L3, which doubles as the directory - the
 * placement the paper prescribes for multi-core operation ("these
 * bits are stored in the cache directory"). Probe, update, and
 * clean-up work is charged to a synonym-overhead statistic that the
 * Figure-21 bench reports as an overhead ratio.
 *
 * The memory side is non-blocking: misses allocate MSHRs whose
 * target lists coalesce concurrent requests for the same line,
 * dirty evictions park in a write-back buffer, and when either
 * structure (or the channel queues below) is full the access is
 * refused and the issuing core stalls until a retry notification.
 */

#ifndef RCNVM_CACHE_HIERARCHY_HH_
#define RCNVM_CACHE_HIERARCHY_HH_

#include <deque>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/synonym.hh"
#include "mem/memory_system.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::cache {

/** Static configuration of the whole hierarchy (Table 1 defaults). */
struct HierarchyConfig {
    unsigned cores = 4;
    Tick cpuPeriod{500}; //!< 2 GHz; cores read their clock from here

    CacheConfig l1{"L1", 32 * 1024, 64, 8};
    CacheConfig l2{"L2", 256 * 1024, 64, 8};
    CacheConfig l3{"L3", 8 * 1024 * 1024, 64, 8};

    CpuCycles l1Latency{4};
    CpuCycles l2Latency{12};
    CpuCycles l3Latency{38};
    CpuCycles remoteFetchPenalty{40}; //!< dirty line in another core
    CpuCycles invalidatePenalty{24};  //!< upgrade invalidations

    CpuCycles synonymProbe{2};  //!< crossing probe on an L3 fill
    CpuCycles synonymUpdate{2}; //!< write-through to a crossed line
    CpuCycles synonymCleanup{1}; //!< per bit cleared on eviction

    unsigned mshrs = 16;         //!< in-flight line fills (MSHR file)
    unsigned wbBufferDepth = 16; //!< parked dirty evictions

    /** The 2 GHz core clock as a typed domain. */
    sim::ClockDomain<CpuClk>
    cpuClock() const
    {
        return sim::ClockDomain<CpuClk>(cpuPeriod);
    }

    /** Ticks for @p c CPU cycles (the only CpuCycles -> Tick
     *  crossing on the cache path). */
    Tick cyc(CpuCycles c) const { return cpuClock().cyclesToTicks(c); }
};

/** One memory operation as seen by the hierarchy. */
struct CacheAccess {
    Addr addr = 0;
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    bool bypass = false; //!< GS-DRAM gathered access: skip caches
    bool prefetchL3 = false; //!< group caching: fill the LLC only
    /** OLTP-class (latency-critical) access: carried into the miss
     *  packet so read-priority channel scheduling can see it. A miss
     *  that coalesces onto an in-flight MSHR entry inherits that
     *  packet's flag — the fill is already underway either way. */
    bool priority = false;
    unsigned bytes = 64;
};

/**
 * The cache hierarchy. Functional state (tags, MESI, crossing bits)
 * is updated at issue time; timing is composed from level latencies
 * and the event-driven memory system below.
 */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyConfig &config, sim::EventQueue &eq,
              mem::MemoryTier &memory);

    /** The configuration in use. */
    const HierarchyConfig &config() const { return config_; }

    /** Completion continuation of one access (move-only). */
    using DoneFn = util::UniqueFunction<void(Tick)>;

    /** Retry notification delivered to a refused core. */
    using RetryFn = util::UniqueFunction<void()>;

    /**
     * Perform one access for @p core.
     *
     * @return true when the access was accepted; @p done is then
     *   invoked exactly once with the completion tick. false when
     *   the miss path is saturated (MSHRs or write-back buffer
     *   full): @p done is discarded, nothing was counted, and the
     *   core must re-present the access after its retry handler
     *   fires.
     */
    [[nodiscard]] bool access(unsigned core, const CacheAccess &a,
                              DoneFn done);

    /**
     * Register @p core's retry handler. Invoked - from an event
     * context, never re-entrantly from inside access() - whenever
     * miss-path resources free up; the core decides whether it was
     * actually waiting.
     */
    void setRetryHandler(unsigned core, RetryFn fn);

    /**
     * Pin or unpin every line of the given orientation overlapping
     * [addr, addr+bytes) in the shared L3 (group caching).
     * @return number of lines whose pin state changed
     */
    unsigned pinRange(Addr addr, Orientation orient,
                      std::uint64_t bytes, bool pinned);

    /**
     * Register the hierarchy's statistics: raw counters plus the
     * derived MSHR-occupancy mean/max as report-time formulas. The
     * registry stores pointers into this object; it must not outlive
     * the hierarchy.
     */
    void registerStats(util::StatRegistry &r) const;

    /** Aggregate statistics (a snapshot of a registry built by
     *  registerStats). */
    util::StatsMap stats() const;

    /** MSHR slots currently allocated (epoch gauge). */
    std::size_t mshrInUse() const { return mshrs_.inUse(); }

    /** Demand misses past the LLC so far (epoch gauge). */
    std::uint64_t llcMissCount() const { return llcMisses_.value(); }

    /** Drop all cache state and statistics. */
    void reset();

  private:
    /** Charge and account synonym work on an L3 fill. */
    CpuCycles onL3Fill(const LineKey &key);

    /** Propagate a write to a crossed line if the bit is set. */
    CpuCycles onWrite(unsigned core, const LineKey &key, unsigned word);

    /** Clear partner crossing bits when an L3 line leaves. */
    void onL3Evict(const Cache::Victim &victim);

    /** Insert into L3 handling eviction side effects. */
    void fillL3(const LineKey &key, MesiState state, CpuCycles &extra);

    /** Insert into a private level, maintaining inclusion. */
    void fillPrivate(unsigned core, const LineKey &key,
                     MesiState state);

    /** Invalidate a key from every private cache (back-inval). */
    void backInvalidate(const LineKey &key, bool &was_dirty);

    /** MESI: handle a miss that found the line in other cores. */
    CpuCycles coherenceOnRead(unsigned core, const LineKey &key);

    /** MESI: obtain exclusivity for a write. */
    CpuCycles coherenceOnWrite(unsigned core, const LineKey &key);

    /** Park a write-back of an evicted dirty line and try to send. */
    void writeback(const LineKey &key);

    /** Fill returned from memory: service every target of the MSHR
     *  in slot @p mshr_idx (captured at issue; slots are stable). */
    void onFillComplete(unsigned mshr_idx);

    /** Hand a packet to memory, deferring it when the channel is
     *  full. Deferral keeps per-channel issue order. */
    void sendPacket(mem::MemPacket &&pkt);

    /** Re-offer deferred packets (in order, per channel). */
    void drainDeferred();

    /** Issue parked write-backs while their channel has room and no
     *  deferred demand packet is ahead of them. */
    void drainWritebacks();

    /** Channel queue space opened up: drain, then wake cores. */
    void onMemorySpace();

    /** Invoke every registered retry handler. */
    void notifyRetry();

    HierarchyConfig config_;
    sim::EventQueue &eq_;
    mem::MemoryTier &memory_;
    bool synonymEnabled_;
    SynonymMapper synonym_;

    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    MshrFile mshrs_;
    /** Scratch target list reused by onFillComplete (swap, not move,
     *  so neither buffer is reallocated per fill). */
    std::vector<MshrTarget> fillScratch_;
    std::deque<mem::MemPacket> deferred_; //!< refused by the channel
    std::vector<unsigned> deferredInChannel_; //!< per-channel count
    std::deque<LineKey> wbBuffer_; //!< parked dirty evictions
    std::vector<RetryFn> retryHandlers_;
    /** Refusals since the last retry notification; zero lets fill
     *  completions skip the handler fan-out entirely. */
    unsigned pendingRetries_ = 0;

    // Statistics.
    util::Counter accesses_;
    util::Counter l1Hits_;
    util::Counter l2Hits_;
    util::Counter l3Hits_;
    util::Counter llcMisses_;
    util::Counter writebacks_;
    util::Counter bypasses_;
    util::Counter mshrCoalesced_; //!< misses folded into a live MSHR
    util::Counter retries_;       //!< accesses refused (miss path full)
    util::Counter wbForwards_;    //!< misses served from the WB buffer
    util::Counter synonymProbes_;
    util::Counter crossingsFound_;
    util::Counter synonymUpdates_;
    util::Counter synonymTicks_;
    util::Counter cohRemoteFetches_;
    util::Counter cohInvalidations_;
    util::Counter cohTicks_;
    util::Counter pinOps_;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_HIERARCHY_HH_
