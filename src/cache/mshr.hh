/**
 * @file
 * Miss-status holding registers: the bounded book-keeping that lets
 * the cache hierarchy overlap misses without duplicating in-flight
 * line fills (gem5-style MSHR file with per-line target lists).
 */

#ifndef RCNVM_CACHE_MSHR_HH_
#define RCNVM_CACHE_MSHR_HH_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/line.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::cache {

/**
 * One coalesced consumer of an in-flight line fill. Every access
 * that arrives while the line is already being fetched appends a
 * target instead of occupying a second controller queue slot; all
 * targets are serviced, in arrival order, from the single fill.
 */
struct MshrTarget {
    unsigned core = 0;   //!< requesting core (fill destination)
    unsigned word = 0;   //!< word index touched (synonym engine)
    bool isWrite = false;
    /** L3-prefetch target: fills the shared cache only, no private
     *  fill and no per-core completion latency. */
    bool prefetchOnly = false;
    util::UniqueFunction<void(Tick)> done;
};

/** One in-flight line fill and everyone waiting on it. */
struct MshrEntry {
    LineKey key{};
    std::vector<MshrTarget> targets;
};

/**
 * A fixed pool of MSHR entries. Lookups are deterministic linear
 * scans over a validity bitmask: the pool is small (Table-1 scale,
 * tens of entries), only live entries are ever touched, and scan
 * order never depends on allocation history, so simulations replay
 * identically. When the pool is full the hierarchy refuses the
 * access and the core retries after the next fill completes.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity) : entries_(capacity)
    {
        // The validity mask caps the pool at one machine word; real
        // MSHR files are far smaller (Table-1 scale uses 16).
        if (capacity > 64)
            rcnvm_panic("MSHR file capacity above 64 entries");
    }

    /** Entry tracking @p key, or nullptr when no fill is in flight. */
    MshrEntry *find(const LineKey &key)
    {
        for (std::uint64_t m = valid_; m != 0; m &= m - 1) {
            MshrEntry &e = entries_[std::countr_zero(m)];
            if (e.key == key)
                return &e;
        }
        return nullptr;
    }

    /**
     * Claim a free entry for @p key (caller must have checked find).
     * Returns nullptr when the file is full; on success the
     * occupancy including the new entry is sampled.
     */
    MshrEntry *allocate(const LineKey &key)
    {
        if (full())
            return nullptr;
        // Lowest free slot: with the file not full, it is always
        // below capacity, and the choice is history-independent.
        const unsigned i =
            static_cast<unsigned>(std::countr_zero(~valid_));
        valid_ |= std::uint64_t{1} << i;
        entries_[i].key = key;
        ++inUse_;
        occupancy_.sample(static_cast<double>(inUse_));
        return &entries_[i];
    }

    /** Release @p entry once its fill has serviced every target. */
    void free(MshrEntry &entry)
    {
        const auto i =
            static_cast<std::size_t>(&entry - entries_.data());
        valid_ &= ~(std::uint64_t{1} << i);
        entry.targets.clear(); // keeps capacity for the next miss
        --inUse_;
    }

    /** Stable slot index of @p entry (for completion callbacks: a
     *  slot stays live, under the same key, until its fill's single
     *  completion frees it). */
    unsigned indexOf(const MshrEntry &entry) const
    {
        return static_cast<unsigned>(&entry - entries_.data());
    }

    /** Entry in slot @p index (caller must know it is live). */
    MshrEntry &at(unsigned index) { return entries_[index]; }

    /** True when slot @p index holds an in-flight fill. */
    bool live(unsigned index) const
    {
        return (valid_ >> index) & 1;
    }

    bool full() const { return inUse_ == entries_.size(); }
    std::size_t inUse() const { return inUse_; }
    std::size_t capacity() const { return entries_.size(); }

    /** Occupancy after each allocation (exported as a stat). */
    const util::Sampled &occupancy() const { return occupancy_; }

    void reset()
    {
        for (auto &e : entries_)
            e.targets.clear();
        valid_ = 0;
        inUse_ = 0;
        occupancy_.reset();
    }

  private:
    std::vector<MshrEntry> entries_;
    std::uint64_t valid_ = 0; //!< bit i set = entries_[i] live
    std::size_t inUse_ = 0;
    util::Sampled occupancy_;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_MSHR_HH_
