#include "cache/synonym.hh"

namespace rcnvm::cache {

Crossing
SynonymMapper::crossingOfWord(const LineKey &key,
                              unsigned word_index) const
{
    // Decode the word's location, then express it in the other
    // orientation and align to that orientation's line.
    const Addr word_addr = key.addr + Addr{word_index} * 8;
    mem::DecodedAddr d = map_->decode(word_addr, key.orient);
    d.offset = 0;

    const Orientation other = flip(key.orient);
    const Addr other_word = map_->encode(d, other);
    const Addr other_line = other_word & ~Addr{63};

    Crossing c;
    c.partner = LineKey{other_line, other};
    c.selfWord = word_index;
    c.partnerWord = static_cast<unsigned>((other_word - other_line) / 8);
    return c;
}

std::array<Crossing, SynonymMapper::wordsPerLine>
SynonymMapper::crossings(const LineKey &key) const
{
    std::array<Crossing, wordsPerLine> out;
    for (unsigned w = 0; w < wordsPerLine; ++w)
        out[w] = crossingOfWord(key, w);
    return out;
}

} // namespace rcnvm::cache
