/**
 * @file
 * A single set-associative cache level with LRU replacement,
 * orientation-aware tags, crossing-bit storage, and pinning.
 */

#ifndef RCNVM_CACHE_CACHE_HH_
#define RCNVM_CACHE_CACHE_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/line.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::cache {

/** Static configuration of one cache level. */
struct CacheConfig {
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;

    std::uint32_t numSets() const
    {
        return sizeBytes / (lineBytes * ways);
    }
};

/**
 * The tag/state array of one cache. Timing lives in the hierarchy;
 * this class is purely functional state.
 *
 * Row- and column-oriented lines share the sets (indexed by their
 * own addresses) and are distinguished by the orientation bit during
 * tag match, exactly as described in Sec. 4.3.1.
 */
class Cache
{
  public:
    /** Description of a line evicted by insert(). */
    struct Victim {
        LineKey key;
        MesiState state = MesiState::Invalid;
        std::uint8_t crossing = 0;
    };

    explicit Cache(const CacheConfig &config);

    /** The configuration this cache was built with. */
    const CacheConfig &config() const { return config_; }

    // find/probe/insert are defined inline below: the hierarchy runs
    // several of them per simulated access, and the set scans are
    // small enough that call overhead would dominate them.

    /** Hint the host to pull this key's set into its cache. The tag
     *  arrays are megabytes, so a set scan is usually a host-memory
     *  miss; issuing the prefetch a few hundred instructions before
     *  the scan hides most of that latency. */
    void
    prefetchSet(const LineKey &key) const
    {
        const auto *p = reinterpret_cast<const char *>(
            &lines_[std::size_t{setIndex(key)} * config_.ways]);
        // A set spans several host cache lines (16 ways x 24 bytes =
        // six of them); prefetch the whole span, not just the first.
        const std::size_t bytes = sizeof(CacheLine) * config_.ways;
        for (std::size_t off = 0; off < bytes; off += 64)
            __builtin_prefetch(p + off);
    }

    /** Look up a line; returns nullptr on miss. Updates LRU on hit. */
    CacheLine *
    find(const LineKey &key)
    {
        const unsigned set = setIndex(key);
        CacheLine *base = &lines_[std::size_t{set} * config_.ways];
        for (unsigned w = 0; w < config_.ways; ++w) {
            CacheLine &line = base[w];
            if (live(line) && line.tag == key.addr &&
                line.orient == key.orient) {
                line.lru = ++lruClock_;
                return &line;
            }
        }
        return nullptr;
    }

    /** Look up without disturbing replacement state. */
    const CacheLine *
    probe(const LineKey &key) const
    {
        const unsigned set = setIndex(key);
        const CacheLine *base = &lines_[std::size_t{set} * config_.ways];
        for (unsigned w = 0; w < config_.ways; ++w) {
            const CacheLine &line = base[w];
            if (live(line) && line.tag == key.addr &&
                line.orient == key.orient) {
                return &line;
            }
        }
        return nullptr;
    }

    /**
     * Insert a line, evicting the LRU non-pinned way if the set is
     * full. If every way is pinned, the LRU pinned line is unpinned
     * and evicted (counted in the pinnedEvictions statistic).
     *
     * @return the evicted victim, if any
     */
    std::optional<Victim>
    insert(const LineKey &key, MesiState state)
    {
        const unsigned set = setIndex(key);
        CacheLine *base = &lines_[std::size_t{set} * config_.ways];

        // One pass: match the key, remember the first free way, and
        // keep the LRU candidates ready in case the set is all live.
        CacheLine *target = nullptr;
        CacheLine *lru_unpinned = nullptr;
        CacheLine *lru_any = nullptr;
        for (unsigned w = 0; w < config_.ways; ++w) {
            CacheLine &line = base[w];
            if (live(line)) {
                if (line.tag == key.addr &&
                    line.orient == key.orient) {
                    line.state = state;
                    line.lru = ++lruClock_;
                    return std::nullopt;
                }
                if (!lru_any || line.lru < lru_any->lru)
                    lru_any = &line;
                if (!line.pinned &&
                    (!lru_unpinned || line.lru < lru_unpinned->lru)) {
                    lru_unpinned = &line;
                }
            } else if (!target) {
                target = &line;
            }
        }

        std::optional<Victim> victim;
        if (!target) {
            // Evict the LRU non-pinned way; fall back to the LRU
            // pinned way if the whole set is pinned (group
            // over-subscription).
            target = lru_unpinned ? lru_unpinned : lru_any;
            if (!lru_unpinned)
                ++pinnedEvictions_;

            victim =
                Victim{target->key(), target->state, target->crossing};
            if (target->orient == Orientation::Row)
                --rowLines_;
            else
                --columnLines_;
        }

        target->tag = key.addr;
        target->orient = key.orient;
        target->state = state;
        target->crossing = 0;
        target->pinned = false;
        target->epoch = epoch_;
        target->lru = ++lruClock_;
        if (key.orient == Orientation::Row)
            ++rowLines_;
        else
            ++columnLines_;
        return victim;
    }

    /** Remove a line if present; returns its pre-invalidation copy. */
    std::optional<Victim> invalidate(const LineKey &key);

    /** Pin or unpin a line; returns false when absent. */
    bool setPinned(const LineKey &key, bool pinned);

    /** Number of valid column-oriented lines (probe filtering). */
    std::uint64_t columnLines() const { return columnLines_; }

    /** Number of valid row-oriented lines. */
    std::uint64_t rowLines() const { return rowLines_; }

    /** Count of valid lines with the given orientation. */
    std::uint64_t
    linesWithOrientation(Orientation o) const
    {
        return o == Orientation::Row ? rowLines_ : columnLines_;
    }

    /** Forced evictions of pinned lines (should stay zero). */
    std::uint64_t pinnedEvictions() const { return pinnedEvictions_; }

    /** Drop all lines and statistics. */
    void reset();

  private:
    /** Shift/mask rather than divide/modulo: the constructor demands
     *  power-of-two line size and set count, and two runtime integer
     *  divisions here would otherwise lead every set scan. */
    unsigned
    setIndex(const LineKey &key) const
    {
        return static_cast<unsigned>((key.addr >> lineShift_) &
                                     setMask_);
    }

    /** A line counts as present only when it carries the current
     *  reset generation; reset() bumps the generation instead of
     *  touching every entry of the (possibly megabyte-sized) array. */
    bool
    live(const CacheLine &line) const
    {
        return line.epoch == epoch_ &&
               line.state != MesiState::Invalid;
    }

    CacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_ = 0; //!< log2(lineBytes)
    std::uint32_t setMask_ = 0;   //!< numSets - 1
    std::vector<CacheLine> lines_; //!< numSets_ x ways, row-major
    std::uint32_t epoch_ = 0;      //!< current reset generation
    std::uint64_t lruClock_ = 0;
    std::uint64_t rowLines_ = 0;
    std::uint64_t columnLines_ = 0;
    std::uint64_t pinnedEvictions_ = 0;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_CACHE_HH_
