/**
 * @file
 * A single set-associative cache level with LRU replacement,
 * orientation-aware tags, crossing-bit storage, and pinning.
 */

#ifndef RCNVM_CACHE_CACHE_HH_
#define RCNVM_CACHE_CACHE_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/line.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::cache {

/** Static configuration of one cache level. */
struct CacheConfig {
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;

    std::uint32_t numSets() const
    {
        return sizeBytes / (lineBytes * ways);
    }
};

/**
 * The tag/state array of one cache. Timing lives in the hierarchy;
 * this class is purely functional state.
 *
 * Row- and column-oriented lines share the sets (indexed by their
 * own addresses) and are distinguished by the orientation bit during
 * tag match, exactly as described in Sec. 4.3.1.
 */
class Cache
{
  public:
    /** Description of a line evicted by insert(). */
    struct Victim {
        LineKey key;
        MesiState state = MesiState::Invalid;
        std::uint8_t crossing = 0;
    };

    explicit Cache(const CacheConfig &config);

    /** The configuration this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Look up a line; returns nullptr on miss. Updates LRU on hit. */
    CacheLine *find(const LineKey &key);

    /** Look up without disturbing replacement state. */
    const CacheLine *probe(const LineKey &key) const;

    /**
     * Insert a line, evicting the LRU non-pinned way if the set is
     * full. If every way is pinned, the LRU pinned line is unpinned
     * and evicted (counted in the pinnedEvictions statistic).
     *
     * @return the evicted victim, if any
     */
    std::optional<Victim> insert(const LineKey &key, MesiState state);

    /** Remove a line if present; returns its pre-invalidation copy. */
    std::optional<Victim> invalidate(const LineKey &key);

    /** Pin or unpin a line; returns false when absent. */
    bool setPinned(const LineKey &key, bool pinned);

    /** Number of valid column-oriented lines (probe filtering). */
    std::uint64_t columnLines() const { return columnLines_; }

    /** Number of valid row-oriented lines. */
    std::uint64_t rowLines() const { return rowLines_; }

    /** Count of valid lines with the given orientation. */
    std::uint64_t
    linesWithOrientation(Orientation o) const
    {
        return o == Orientation::Row ? rowLines_ : columnLines_;
    }

    /** Forced evictions of pinned lines (should stay zero). */
    std::uint64_t pinnedEvictions() const { return pinnedEvictions_; }

    /** Drop all lines and statistics. */
    void reset();

  private:
    unsigned setIndex(const LineKey &key) const;

    CacheConfig config_;
    std::uint32_t numSets_;
    std::vector<CacheLine> lines_; //!< numSets_ x ways, row-major
    std::uint64_t lruClock_ = 0;
    std::uint64_t rowLines_ = 0;
    std::uint64_t columnLines_ = 0;
    std::uint64_t pinnedEvictions_ = 0;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_CACHE_HH_
