/**
 * @file
 * Cache line identity and state for the RC-NVM cache architecture
 * (paper Figure 8): MESI state, the orientation bit, per-8-byte
 * crossing bits, and the pin bit used by group caching.
 */

#ifndef RCNVM_CACHE_LINE_HH_
#define RCNVM_CACHE_LINE_HH_

#include <cstdint>
#include <functional>

#include "util/types.hh"

namespace rcnvm::cache {

/** MESI coherence states. */
enum class MesiState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/**
 * Identity of a cache line: its 64-byte-aligned address expressed in
 * its own orientation's address space, plus the orientation bit.
 * The same physical data cached via row- and column-oriented
 * addresses forms two distinct lines (the synonym problem).
 */
struct LineKey {
    Addr addr = 0;
    Orientation orient = Orientation::Row;

    bool operator==(const LineKey &) const = default;

    /** Build a key from a statically-oriented address; the pair is
     *  consistent by construction. */
    template <Orientation O>
    static LineKey
    of(OrientedAddr<O> a)
    {
        return LineKey{a.value(), O};
    }
};

/** Hash for LineKey (used by directory bookkeeping). */
struct LineKeyHash {
    std::size_t
    operator()(const LineKey &k) const
    {
        const std::size_t h = std::hash<Addr>{}(k.addr);
        return h ^ (k.orient == Orientation::Column ? 0x9e3779b9u : 0u);
    }
};

/** One cache line's tag-array entry. */
struct CacheLine {
    Addr tag = 0;          //!< full line address (within orientation)
    Orientation orient = Orientation::Row;
    MesiState state = MesiState::Invalid;
    std::uint8_t crossing = 0; //!< crossing bit per 8-byte word
    bool pinned = false;       //!< group-caching pin
    std::uint32_t epoch = 0;   //!< owning cache's reset generation
    std::uint64_t lru = 0;     //!< LRU timestamp

    bool valid() const { return state != MesiState::Invalid; }
    bool dirty() const { return state == MesiState::Modified; }

    /** Key identifying this (valid) line. */
    LineKey key() const { return LineKey{tag, orient}; }
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_LINE_HH_
