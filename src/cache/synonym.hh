/**
 * @file
 * Crossing-line geometry for the cache synonym problem (Sec. 4.3).
 *
 * A 64-byte row-oriented line holds 8 consecutive words of one
 * physical row; each of those words also belongs to exactly one
 * column-oriented line (8 consecutive words of one physical column),
 * and vice versa. These helpers enumerate the 8 potential crossing
 * lines of a given line and locate the shared word in each.
 */

#ifndef RCNVM_CACHE_SYNONYM_HH_
#define RCNVM_CACHE_SYNONYM_HH_

#include <array>

#include "cache/line.hh"
#include "mem/geometry.hh"
#include "util/types.hh"

namespace rcnvm::cache {

/** One crossing relationship between two lines. */
struct Crossing {
    LineKey partner;      //!< the crossing line in the other space
    unsigned selfWord;    //!< shared word's index within this line
    unsigned partnerWord; //!< shared word's index within the partner
};

/**
 * Computes crossing sets using a device's address map. Only valid
 * for dual-addressable (square-subarray) geometries.
 */
class SynonymMapper
{
  public:
    /** Words per cache line (64 B / 8 B). */
    static constexpr unsigned wordsPerLine = 8;

    explicit SynonymMapper(const mem::AddressMap &map) : map_(&map) {}

    /**
     * Enumerate the 8 lines of the opposite orientation that share a
     * word with @p key.
     */
    std::array<Crossing, wordsPerLine>
    crossings(const LineKey &key) const;

    /**
     * The crossing line containing word @p word_index of @p key,
     * without enumerating all eight.
     */
    Crossing crossingOfWord(const LineKey &key,
                            unsigned word_index) const;

  private:
    const mem::AddressMap *map_;
};

} // namespace rcnvm::cache

#endif // RCNVM_CACHE_SYNONYM_HH_
