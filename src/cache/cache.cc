#include "cache/cache.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::cache {

Cache::Cache(const CacheConfig &config)
    : config_(config), numSets_(config.numSets())
{
    if (!util::isPowerOfTwo(numSets_))
        rcnvm_fatal(config_.name, ": set count must be a power of two");
    lines_.resize(std::size_t{numSets_} * config_.ways);
}

unsigned
Cache::setIndex(const LineKey &key) const
{
    return static_cast<unsigned>((key.addr / config_.lineBytes) %
                                 numSets_);
}

CacheLine *
Cache::find(const LineKey &key)
{
    const unsigned set = setIndex(key);
    CacheLine *base = &lines_[std::size_t{set} * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        CacheLine &line = base[w];
        if (line.valid() && line.tag == key.addr &&
            line.orient == key.orient) {
            line.lru = ++lruClock_;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
Cache::probe(const LineKey &key) const
{
    const unsigned set = setIndex(key);
    const CacheLine *base = &lines_[std::size_t{set} * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        const CacheLine &line = base[w];
        if (line.valid() && line.tag == key.addr &&
            line.orient == key.orient) {
            return &line;
        }
    }
    return nullptr;
}

std::optional<Cache::Victim>
Cache::insert(const LineKey &key, MesiState state)
{
    const unsigned set = setIndex(key);
    CacheLine *base = &lines_[std::size_t{set} * config_.ways];

    // Reuse an existing entry or an invalid way when possible.
    CacheLine *target = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        CacheLine &line = base[w];
        if (line.valid() && line.tag == key.addr &&
            line.orient == key.orient) {
            line.state = state;
            line.lru = ++lruClock_;
            return std::nullopt;
        }
        if (!line.valid() && !target)
            target = &line;
    }

    std::optional<Victim> victim;
    if (!target) {
        // Evict the LRU non-pinned way; fall back to the LRU pinned
        // way if the whole set is pinned (group over-subscription).
        CacheLine *lru_unpinned = nullptr;
        CacheLine *lru_any = nullptr;
        for (unsigned w = 0; w < config_.ways; ++w) {
            CacheLine &line = base[w];
            if (!lru_any || line.lru < lru_any->lru)
                lru_any = &line;
            if (!line.pinned &&
                (!lru_unpinned || line.lru < lru_unpinned->lru)) {
                lru_unpinned = &line;
            }
        }
        target = lru_unpinned ? lru_unpinned : lru_any;
        if (!lru_unpinned)
            ++pinnedEvictions_;

        victim = Victim{target->key(), target->state, target->crossing};
        if (target->orient == Orientation::Row)
            --rowLines_;
        else
            --columnLines_;
    }

    target->tag = key.addr;
    target->orient = key.orient;
    target->state = state;
    target->crossing = 0;
    target->pinned = false;
    target->lru = ++lruClock_;
    if (key.orient == Orientation::Row)
        ++rowLines_;
    else
        ++columnLines_;
    return victim;
}

std::optional<Cache::Victim>
Cache::invalidate(const LineKey &key)
{
    CacheLine *line = find(key);
    if (!line)
        return std::nullopt;
    Victim v{line->key(), line->state, line->crossing};
    if (line->orient == Orientation::Row)
        --rowLines_;
    else
        --columnLines_;
    line->state = MesiState::Invalid;
    line->crossing = 0;
    line->pinned = false;
    return v;
}

bool
Cache::setPinned(const LineKey &key, bool pinned)
{
    CacheLine *line = find(key);
    if (!line)
        return false;
    line->pinned = pinned;
    return true;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = CacheLine{};
    lruClock_ = 0;
    rowLines_ = 0;
    columnLines_ = 0;
    pinnedEvictions_ = 0;
}

} // namespace rcnvm::cache
