#include "cache/cache.hh"

#include <bit>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::cache {

Cache::Cache(const CacheConfig &config)
    : config_(config), numSets_(config.numSets())
{
    if (!util::isPowerOfTwo(numSets_))
        rcnvm_fatal(config_.name, ": set count must be a power of two");
    if (!util::isPowerOfTwo(config_.lineBytes))
        rcnvm_fatal(config_.name, ": line size must be a power of two");
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    setMask_ = numSets_ - 1;
    lines_.resize(std::size_t{numSets_} * config_.ways);
}

std::optional<Cache::Victim>
Cache::invalidate(const LineKey &key)
{
    CacheLine *line = find(key);
    if (!line)
        return std::nullopt;
    Victim v{line->key(), line->state, line->crossing};
    if (line->orient == Orientation::Row)
        --rowLines_;
    else
        --columnLines_;
    line->state = MesiState::Invalid;
    line->crossing = 0;
    line->pinned = false;
    return v;
}

bool
Cache::setPinned(const LineKey &key, bool pinned)
{
    CacheLine *line = find(key);
    if (!line)
        return false;
    line->pinned = pinned;
    return true;
}

void
Cache::reset()
{
    // O(1): advancing the generation orphans every line at once; the
    // LRU clock keeps running so stale timestamps never resurface.
    // A full sweep is only needed on the (practically unreachable)
    // generation wrap-around.
    if (++epoch_ == 0) {
        for (auto &line : lines_)
            line = CacheLine{};
        lruClock_ = 0;
    }
    rowLines_ = 0;
    columnLines_ = 0;
    pinnedEvictions_ = 0;
}

} // namespace rcnvm::cache
