/**
 * @file
 * The eight Fig-17 micro-benchmarks: {row, column} x {read, write}
 * scans of a table stored with the L1 (row-oriented) or L2
 * (column-oriented) intra-chunk layout.
 */

#ifndef RCNVM_WORKLOAD_MICRO_HH_
#define RCNVM_WORKLOAD_MICRO_HH_

#include <string>
#include <vector>

#include "cpu/mem_op.hh"
#include "imdb/database.hh"

namespace rcnvm::workload {

/** The scan direction and operation of one micro-benchmark. */
enum class MicroBench {
    RowRead,  //!< scan every tuple, reading all fields
    RowWrite, //!< scan every tuple, writing all fields
    ColRead,  //!< scan field by field across all tuples
    ColWrite, //!< write field by field across all tuples
};

/** Printable name ("row-read", ...). */
const char *toString(MicroBench mb);

/**
 * Compile a micro-benchmark against a placed table, partitioned
 * over @p cores. Row scans follow the physical layout sequentially;
 * column scans visit one field at a time using the device's best
 * field-scan access path.
 */
std::vector<cpu::AccessPlan>
compileMicro(const imdb::Database &db, imdb::Database::TableId tid,
             MicroBench mb, unsigned cores);

} // namespace rcnvm::workload

#endif // RCNVM_WORKLOAD_MICRO_HH_
