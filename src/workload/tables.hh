/**
 * @file
 * The benchmark tables of Sec. 6.2: table-a (16 fixed 8-byte
 * fields), table-b (20 fixed 8-byte fields), table-c (variable
 * widths including the wide field f2_wide), the Fig-17 micro
 * benchmark table, and a scratch region used as a join hash table.
 */

#ifndef RCNVM_WORKLOAD_TABLES_HH_
#define RCNVM_WORKLOAD_TABLES_HH_

#include <cstdint>
#include <memory>

#include "imdb/table.hh"

namespace rcnvm::workload {

/** All tables used by the evaluation, generated deterministically. */
struct TableSet {
    std::unique_ptr<imdb::Table> a;     //!< 16 x 8 B fields
    std::unique_ptr<imdb::Table> b;     //!< 20 x 8 B fields
    std::unique_ptr<imdb::Table> c;     //!< has 32 B f2_wide
    std::unique_ptr<imdb::Table> micro; //!< Fig-17 scan target
    std::unique_ptr<imdb::Table> hash;  //!< join hash-table region

    /**
     * Build the standard set.
     *
     * @param tuples  cardinality of table-a/b/c and the hash region
     * @param micro_tuples  cardinality of the micro-benchmark table
     * @param seed    deterministic generator seed
     */
    static TableSet standard(std::uint64_t tuples = 65536,
                             std::uint64_t micro_tuples = 32768,
                             std::uint64_t seed = 42);
};

} // namespace rcnvm::workload

#endif // RCNVM_WORKLOAD_TABLES_HH_
