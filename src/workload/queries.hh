/**
 * @file
 * The Table-2 benchmark queries Q1-Q15 and their compilation to
 * per-core, per-phase access plans on a placed database.
 */

#ifndef RCNVM_WORKLOAD_QUERIES_HH_
#define RCNVM_WORKLOAD_QUERIES_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/mem_op.hh"
#include "imdb/database.hh"
#include "workload/tables.hh"

namespace rcnvm::workload {

/** The fifteen benchmark queries of Table 2. */
enum class QueryId {
    Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11, Q12, Q13, Q14, Q15,
};

/** Queries the engine compiles: all of Table 2 (Q1-Q15). */
inline constexpr unsigned kQueryCount = 15;

/**
 * Length of the timed SQL suite (Q1-Q13): the execution-time,
 * LLC-miss, buffer-miss, coherence, sensitivity, and energy benches
 * all run this prefix of Table 2. Q14/Q15 are the group-caching
 * studies (Figure 23) and are excluded from the timed suite.
 */
inline constexpr unsigned kTimedQueryCount = 13;

/** Static description of one query. */
struct QuerySpec {
    QueryId id;
    const char *name;
    const char *sql;
    const char *category; //!< OLTP / OLAP / OLXP / group-caching
};

/** All query specs in Table-2 order. */
const std::vector<QuerySpec> &allQueries();

/** Spec for one query id. */
const QuerySpec &querySpec(QueryId id);

/**
 * A compiled query: phases executed sequentially, each phase holding
 * one plan per core. Multi-phase queries are the hash joins (build
 * must complete before probe).
 */
struct CompiledQuery {
    std::vector<std::vector<cpu::AccessPlan>> phases;

    /** Total operations across all phases and cores. */
    std::uint64_t totalOps() const;
};

/**
 * A database instance for one device, holding the benchmark tables.
 */
struct PlacedDatabase {
    std::unique_ptr<imdb::Database> db;
    imdb::Database::TableId a = 0;
    imdb::Database::TableId b = 0;
    imdb::Database::TableId c = 0;
    imdb::Database::TableId hash = 0;
};

/**
 * Compiles Table-2 queries against a TableSet placed on a device.
 *
 * Host-side work (predicate bitmaps, join matching, hash slots) is
 * evaluated here from the synthetic table contents so plans reflect
 * real selectivities; the simulated machine then replays only the
 * memory behaviour.
 */
class QueryWorkload
{
  public:
    /** Default predicate selectivities per query (see Table 2). */
    struct Params {
        double q1Sel = 0.10;
        double q2Sel = 0.05; //!< "most of f10 is NOT greater than x"
        double q3Sel = 0.90; //!< "most of f10 is greater than x"
        double q4Sel = 0.50;
        double q5Sel = 0.50;
        double q6Sel = 0.50;
        double q7Sel = 0.50;
        double q10Sel = 0.30; //!< per predicate
        double q11Sel = 0.30;
        double q12Band = 0.01; //!< equality band selectivity
        double q13Band = 0.05;
        unsigned groupLines = 128; //!< Q14/Q15 group-caching size
    };

    /** Use the default Table-2 parameters. */
    explicit QueryWorkload(const TableSet &tables);

    /** Use custom selectivity parameters. */
    QueryWorkload(const TableSet &tables, const Params &params);

    /**
     * Place the benchmark tables on a device. RC-NVM uses the given
     * intra-chunk layout for the relational tables; row-only
     * devices always use the classical row-store layout.
     */
    PlacedDatabase place(mem::DeviceKind kind,
                         const mem::AddressMap &map,
                         imdb::ChunkLayout rc_layout =
                             imdb::ChunkLayout::ColumnOriented) const;

    /**
     * Compile one query.
     *
     * @param group_lines  overrides Params::groupLines for Q14/Q15;
     *                     the magic value UINT_MAX keeps the default
     */
    CompiledQuery compile(QueryId id, const PlacedDatabase &pd,
                          unsigned cores = 4,
                          unsigned group_lines = kDefaultGroup) const;

    /** Sentinel for "use Params::groupLines". */
    static constexpr unsigned kDefaultGroup = 0xffffffffu;

    /** The parameter block in use. */
    const Params &params() const { return params_; }

  private:
    struct Range {
        std::uint64_t lo, hi;
    };

    /** Tuple-range partition for core @p c of @p cores. */
    static Range corePartition(std::uint64_t tuples, unsigned cores,
                               unsigned c);

    CompiledQuery compileSelect(const PlacedDatabase &pd,
                                imdb::Database::TableId tid,
                                unsigned pred_word, double sel,
                                unsigned out_w0, unsigned out_w1,
                                unsigned cores) const;

    CompiledQuery compileAggregate(const PlacedDatabase &pd,
                                   imdb::Database::TableId tid,
                                   unsigned pred_word, double sel,
                                   unsigned agg_word,
                                   unsigned cores) const;

    CompiledQuery compileTwoPredicate(const PlacedDatabase &pd,
                                      unsigned pred1, unsigned pred2,
                                      double sel1, double sel2,
                                      unsigned cores) const;

    CompiledQuery compileJoin(const PlacedDatabase &pd,
                              bool with_f1_filter,
                              unsigned cores) const;

    CompiledQuery compileUpdate(const PlacedDatabase &pd,
                                double band,
                                const std::vector<unsigned> &words,
                                unsigned cores) const;

    CompiledQuery compileOrdered(const PlacedDatabase &pd,
                                 imdb::Database::TableId tid,
                                 const std::vector<unsigned> &words,
                                 unsigned group_lines,
                                 unsigned cores) const;

    const TableSet *tables_;
    Params params_;
};

} // namespace rcnvm::workload

#endif // RCNVM_WORKLOAD_QUERIES_HH_
