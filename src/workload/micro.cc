#include "workload/micro.hh"

#include <algorithm>

#include "imdb/plan_builder.hh"
#include "util/bitfield.hh"

namespace rcnvm::workload {

using imdb::Database;
using imdb::LineRef;
using imdb::PlanBuilder;

const char *
toString(MicroBench mb)
{
    switch (mb) {
      case MicroBench::RowRead:
        return "row-read";
      case MicroBench::RowWrite:
        return "row-write";
      case MicroBench::ColRead:
        return "col-read";
      case MicroBench::ColWrite:
        return "col-write";
    }
    return "?";
}

std::vector<cpu::AccessPlan>
compileMicro(const Database &db, Database::TableId tid, MicroBench mb,
             unsigned cores)
{
    const bool write =
        mb == MicroBench::RowWrite || mb == MicroBench::ColWrite;
    const bool row_scan =
        mb == MicroBench::RowRead || mb == MicroBench::RowWrite;

    std::vector<cpu::AccessPlan> plans;

    if (row_scan) {
        // Sequential physical scan, lines split contiguously.
        std::vector<LineRef> lines;
        db.physicalScanLines(tid, lines);
        const std::uint64_t per =
            util::divCeil(lines.size(), cores);
        for (unsigned c = 0; c < cores; ++c) {
            const std::uint64_t lo = std::min<std::uint64_t>(
                lines.size(), std::uint64_t{c} * per);
            const std::uint64_t hi = std::min<std::uint64_t>(
                lines.size(), lo + per);
            PlanBuilder builder(db);
            std::vector<LineRef> part(lines.begin() + lo,
                                      lines.begin() + hi);
            builder.emitLines(part, write, 1);
            plans.push_back(builder.take());
        }
        return plans;
    }

    // Column-direction scan: fields are distributed across cores so
    // each core streams whole fields in field-major order.
    const unsigned tw = db.table(tid).schema().tupleWords();
    const std::uint64_t n = db.table(tid).tuples();
    for (unsigned c = 0; c < cores; ++c) {
        PlanBuilder builder(db);
        for (unsigned w = c; w < tw; w += cores) {
            std::vector<LineRef> lines;
            db.fieldScanLines(tid, w, 0, n, lines);
            builder.emitLines(lines, write, 1);
        }
        plans.push_back(builder.take());
    }
    return plans;
}

} // namespace rcnvm::workload
