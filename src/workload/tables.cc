#include "workload/tables.hh"

namespace rcnvm::workload {

using imdb::Field;
using imdb::Schema;
using imdb::Table;

TableSet
TableSet::standard(std::uint64_t tuples, std::uint64_t micro_tuples,
                   std::uint64_t seed)
{
    TableSet set;
    set.a = std::make_unique<Table>("table-a", Schema::uniform(16),
                                    tuples, seed + 1);
    set.b = std::make_unique<Table>("table-b", Schema::uniform(20),
                                    tuples, seed + 2);
    // table-c: five variable-length fields (Sec. 6.2); f2_wide spans
    // four 8-byte words, matching the ~32 KB group-caching footprint
    // quoted for Q14 at 128 cache lines.
    set.c = std::make_unique<Table>(
        "table-c",
        Schema({Field{"f1", 8}, Field{"f2_wide", 32}, Field{"f3", 8},
                Field{"f4", 8}, Field{"f5", 8}}),
        tuples, seed + 3);
    set.micro = std::make_unique<Table>(
        "table-micro", Schema::uniform(16), micro_tuples, seed + 4);
    // Hash region: key + payload word per slot, sized so a
    // realistic 16-byte-entry table for the build side stays
    // mostly LLC-resident (as an IMDB would arrange).
    set.hash = std::make_unique<Table>(
        "hash-region", Schema::uniform(2),
        std::max<std::uint64_t>(1024, tuples / 4), seed + 5);
    return set;
}

} // namespace rcnvm::workload
