#include "workload/queries.hh"

#include <algorithm>
#include <unordered_map>

#include "imdb/plan_builder.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace rcnvm::workload {

using imdb::ChunkLayout;
using imdb::Database;
using imdb::LineRef;
using imdb::PlanBuilder;

namespace {

const std::vector<QuerySpec> specs = {
    {QueryId::Q1, "Q1",
     "SELECT f3, f4 FROM table-a WHERE f10 > x", "OLXP"},
    {QueryId::Q2, "Q2",
     "SELECT * FROM table-b WHERE f10 > x (low selectivity)", "OLTP"},
    {QueryId::Q3, "Q3",
     "SELECT * FROM table-b WHERE f10 > x (high selectivity)",
     "OLTP"},
    {QueryId::Q4, "Q4",
     "SELECT SUM(f9) FROM table-a WHERE f10 > x", "OLAP"},
    {QueryId::Q5, "Q5",
     "SELECT SUM(f9) FROM table-b WHERE f10 > x", "OLAP"},
    {QueryId::Q6, "Q6",
     "SELECT AVG(f1) FROM table-a WHERE f10 > x", "OLAP"},
    {QueryId::Q7, "Q7",
     "SELECT AVG(f1) FROM table-b WHERE f10 > x", "OLAP"},
    {QueryId::Q8, "Q8",
     "SELECT a.f3, b.f4 FROM table-a a, table-b b WHERE a.f1 > b.f1 "
     "AND a.f9 = b.f9",
     "OLXP"},
    {QueryId::Q9, "Q9",
     "SELECT a.f3, b.f4 FROM table-a a, table-b b WHERE a.f9 = b.f9",
     "OLXP"},
    {QueryId::Q10, "Q10",
     "SELECT f3, f4 FROM table-a WHERE f1 > x AND f9 < y", "OLTP"},
    {QueryId::Q11, "Q11",
     "SELECT f3, f4 FROM table-a WHERE f1 > x AND f2 < y", "OLTP"},
    {QueryId::Q12, "Q12",
     "UPDATE table-b SET f3 = x, f4 = y WHERE f10 = z", "OLTP"},
    {QueryId::Q13, "Q13",
     "UPDATE table-b SET f9 = x WHERE f10 = y", "OLTP"},
    {QueryId::Q14, "Q14",
     "SELECT SUM(f2_wide) FROM table-c (wide field)",
     "group-caching"},
    {QueryId::Q15, "Q15",
     "SELECT f3, f6, f10 FROM table-a (row order)", "group-caching"},
};

/** SplitMix-style host hash used for join slot selection. */
std::uint64_t
hashKey(std::int64_t key)
{
    std::uint64_t z = static_cast<std::uint64_t>(key) +
                      0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Matched tuple indices within [lo, hi). */
std::vector<std::uint64_t>
matchedIn(const std::vector<bool> &matches, std::uint64_t lo,
          std::uint64_t hi)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t t = lo; t < hi; ++t) {
        if (matches[t])
            out.push_back(t);
    }
    return out;
}

std::uint64_t
countMatches(const std::vector<bool> &matches)
{
    std::uint64_t n = 0;
    for (const bool m : matches)
        n += m ? 1 : 0;
    return n;
}

} // namespace

const std::vector<QuerySpec> &
allQueries()
{
    return specs;
}

const QuerySpec &
querySpec(QueryId id)
{
    for (const QuerySpec &s : specs) {
        if (s.id == id)
            return s;
    }
    rcnvm_panic("unknown query id");
}

std::uint64_t
CompiledQuery::totalOps() const
{
    std::uint64_t n = 0;
    for (const auto &phase : phases) {
        for (const auto &plan : phase)
            n += plan.size();
    }
    return n;
}

QueryWorkload::QueryWorkload(const TableSet &tables)
    : tables_(&tables), params_()
{
}

QueryWorkload::QueryWorkload(const TableSet &tables,
                             const Params &params)
    : tables_(&tables), params_(params)
{
}

PlacedDatabase
QueryWorkload::place(mem::DeviceKind kind, const mem::AddressMap &map,
                     ChunkLayout rc_layout) const
{
    PlacedDatabase pd;
    pd.db = std::make_unique<Database>(kind, map);
    const ChunkLayout layout = pd.db->columnCapable()
                                   ? rc_layout
                                   : ChunkLayout::RowOriented;
    pd.a = pd.db->addTable(tables_->a.get(), layout);
    pd.b = pd.db->addTable(tables_->b.get(), layout);
    pd.c = pd.db->addTable(tables_->c.get(), layout);
    // The hash region is scratch memory: classical row layout.
    pd.hash = pd.db->addTable(tables_->hash.get(),
                              ChunkLayout::RowOriented);
    return pd;
}

QueryWorkload::Range
QueryWorkload::corePartition(std::uint64_t tuples, unsigned cores,
                             unsigned c)
{
    // 8-aligned boundaries keep line ownership per core.
    const std::uint64_t per =
        util::alignUp(util::divCeil(tuples, cores), 8);
    const std::uint64_t lo = std::min<std::uint64_t>(
        tuples, std::uint64_t{c} * per);
    const std::uint64_t hi = std::min<std::uint64_t>(
        tuples, lo + per);
    return Range{lo, hi};
}

CompiledQuery
QueryWorkload::compileSelect(const PlacedDatabase &pd,
                             Database::TableId tid,
                             unsigned pred_word, double sel,
                             unsigned out_w0, unsigned out_w1,
                             unsigned cores) const
{
    const Database &db = *pd.db;
    const imdb::Table &table = db.table(tid);
    const std::uint64_t n = table.tuples();
    const auto matches = table.matchGreater(
        pred_word, table.thresholdForGreater(sel));
    const std::uint64_t match_count = countMatches(matches);

    // Access-path choice: (a) predicate column scan plus per-match
    // fetches, (b) a full scan of every field in the layout's
    // buffer-friendly order (column scans on a column-oriented
    // placement), or (c) one sequential physical scan.
    const unsigned tw = table.schema().tupleWords();
    std::vector<LineRef> tmp;
    db.fieldScanLines(tid, pred_word, 0, n, tmp);
    const std::uint64_t pred_lines = tmp.size();
    const std::uint64_t fetch_lines =
        match_count *
        util::divCeil(std::uint64_t{out_w1 - out_w0} * 8 + 8, 64);
    const std::uint64_t all_field_lines = pred_lines * tw;
    tmp.clear();
    db.physicalScanLines(tid, tmp);
    const std::uint64_t full_lines = tmp.size();

    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.emplace_back();
    if (pred_lines + fetch_lines <=
        std::min(all_field_lines, full_lines)) {
        for (unsigned c = 0; c < cores; ++c) {
            const Range r = corePartition(n, cores, c);
            PlanBuilder builder(db);
            builder.scanFieldWord(tid, pred_word, r.lo, r.hi,
                                  costs.compare);
            // The query optimizer picks row or column access to
            // minimise memory accesses (Sec. 5): sparse matches use
            // the Figure-12 row-access plan, dense ones go columnar.
            builder.fetchTuplesBest(tid,
                                    matchedIn(matches, r.lo, r.hi),
                                    out_w0, out_w1,
                                    costs.materialize);
            q.phases[0].push_back(builder.take());
        }
    } else if (all_field_lines <= full_lines) {
        // Scan every field column (set-oriented full-table read).
        for (unsigned c = 0; c < cores; ++c) {
            const Range r = corePartition(n, cores, c);
            PlanBuilder builder(db);
            for (unsigned w = 0; w < tw; ++w) {
                builder.scanFieldWord(tid, w, r.lo, r.hi,
                                      w == pred_word
                                          ? costs.compare
                                          : 0);
            }
            q.phases[0].push_back(builder.take());
        }
    } else {
        // Full scan: partition the physical line sequence.
        const std::uint64_t per =
            util::divCeil(full_lines, cores);
        for (unsigned c = 0; c < cores; ++c) {
            const std::uint64_t lo = std::min<std::uint64_t>(
                full_lines, std::uint64_t{c} * per);
            const std::uint64_t hi =
                std::min<std::uint64_t>(full_lines, lo + per);
            PlanBuilder builder(db);
            std::vector<LineRef> part(tmp.begin() + lo,
                                      tmp.begin() + hi);
            builder.emitLines(part, false, costs.compare * 2);
            q.phases[0].push_back(builder.take());
        }
    }
    return q;
}

CompiledQuery
QueryWorkload::compileAggregate(const PlacedDatabase &pd,
                                Database::TableId tid,
                                unsigned pred_word, double sel,
                                unsigned agg_word,
                                unsigned cores) const
{
    const Database &db = *pd.db;
    const imdb::Table &table = db.table(tid);
    const std::uint64_t n = table.tuples();
    const auto matches = table.matchGreater(
        pred_word, table.thresholdForGreater(sel));
    const std::uint64_t match_count = countMatches(matches);

    std::vector<LineRef> tmp;
    db.fieldScanLines(tid, agg_word, 0, n, tmp);
    const std::uint64_t agg_scan_lines = tmp.size();
    const bool scan_agg_column = agg_scan_lines <= match_count;

    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.emplace_back();
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(n, cores, c);
        PlanBuilder builder(db);
        builder.scanFieldWord(tid, pred_word, r.lo, r.hi,
                              costs.compare);
        if (scan_agg_column) {
            builder.scanFieldWord(tid, agg_word, r.lo, r.hi,
                                  costs.aggregate);
        } else {
            builder.fetchTuplesBest(tid,
                                    matchedIn(matches, r.lo, r.hi),
                                    agg_word, agg_word + 1,
                                    costs.aggregate);
        }
        q.phases[0].push_back(builder.take());
    }
    return q;
}

CompiledQuery
QueryWorkload::compileTwoPredicate(const PlacedDatabase &pd,
                                   unsigned pred1, unsigned pred2,
                                   double sel1, double sel2,
                                   unsigned cores) const
{
    const Database &db = *pd.db;
    const Database::TableId tid = pd.a;
    const imdb::Table &table = db.table(tid);
    const std::uint64_t n = table.tuples();
    const auto m1 = table.matchGreater(
        pred1, table.thresholdForGreater(sel1));
    const auto m2 = table.matchLess(
        pred2,
        static_cast<std::int64_t>(
            static_cast<double>(imdb::Table::valueRange) * sel2));
    std::vector<bool> both(n);
    for (std::uint64_t t = 0; t < n; ++t)
        both[t] = m1[t] && m2[t];

    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.emplace_back();
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(n, cores, c);
        PlanBuilder builder(db);
        builder.scanFieldWord(tid, pred1, r.lo, r.hi, costs.compare);
        builder.scanFieldWord(tid, pred2, r.lo, r.hi, costs.compare);
        builder.fetchTuplesBest(tid, matchedIn(both, r.lo, r.hi),
                                2, 4, costs.materialize);
        q.phases[0].push_back(builder.take());
    }
    return q;
}

CompiledQuery
QueryWorkload::compileJoin(const PlacedDatabase &pd,
                           bool with_f1_filter, unsigned cores) const
{
    const Database &db = *pd.db;
    const imdb::Table &ta = db.table(pd.a);
    const imdb::Table &tb = db.table(pd.b);
    const std::uint64_t na = ta.tuples();
    const std::uint64_t nb = tb.tuples();
    const std::uint64_t slots = db.table(pd.hash).tuples();
    const unsigned f9 = 8, f1 = 0;

    // Host-side equi-join on f9 (the simulated machine replays only
    // the memory behaviour of build, probe, and fetch).
    std::unordered_multimap<std::int64_t, std::uint64_t> index;
    index.reserve(na);
    for (std::uint64_t t = 0; t < na; ++t)
        index.emplace(ta.value(f9, t), t);

    std::vector<bool> match_a(na, false), match_b(nb, false);
    std::uint64_t pairs = 0;
    for (std::uint64_t t = 0; t < nb; ++t) {
        auto [it, end] = index.equal_range(tb.value(f9, t));
        for (; it != end; ++it) {
            if (with_f1_filter &&
                !(ta.value(f1, it->second) > tb.value(f1, t))) {
                continue;
            }
            match_a[it->second] = true;
            match_b[t] = true;
            ++pairs;
        }
    }

    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.resize(3);

    // Phase 1: build - scan a.f9 (and a.f1 for the filter payload),
    // insert into the hash region.
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(na, cores, c);
        PlanBuilder builder(db);
        builder.scanFieldWord(pd.a, f9, r.lo, r.hi, 0);
        if (with_f1_filter)
            builder.scanFieldWord(pd.a, f1, r.lo, r.hi, 0);
        std::vector<std::uint64_t> build_slots;
        build_slots.reserve(static_cast<std::size_t>(r.hi - r.lo));
        for (std::uint64_t t = r.lo; t < r.hi; ++t)
            build_slots.push_back(hashKey(ta.value(f9, t)) % slots);
        builder.hashAccess(pd.hash, build_slots, true, costs.hash);
        q.phases[0].push_back(builder.take());
    }

    // Phase 2: probe - scan b.f9 (and b.f1), look up the hash region.
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(nb, cores, c);
        PlanBuilder builder(db);
        builder.scanFieldWord(pd.b, f9, r.lo, r.hi, 0);
        if (with_f1_filter)
            builder.scanFieldWord(pd.b, f1, r.lo, r.hi, 0);
        std::vector<std::uint64_t> probe_slots;
        probe_slots.reserve(static_cast<std::size_t>(r.hi - r.lo));
        for (std::uint64_t t = r.lo; t < r.hi; ++t)
            probe_slots.push_back(hashKey(tb.value(f9, t)) % slots);
        builder.hashAccess(pd.hash, probe_slots, false, costs.hash);
        q.phases[1].push_back(builder.take());
    }

    // Phase 3: fetch outputs - a.f3 and b.f4 of matched tuples.
    const std::uint64_t pair_compute =
        pairs * costs.materialize / std::max(1u, cores);
    for (unsigned c = 0; c < cores; ++c) {
        const Range ra = corePartition(na, cores, c);
        const Range rb = corePartition(nb, cores, c);
        PlanBuilder builder(db);
        builder.fetchTuplesBest(pd.a,
                                matchedIn(match_a, ra.lo, ra.hi),
                                2, 3, 0);
        builder.fetchTuplesBest(pd.b,
                                matchedIn(match_b, rb.lo, rb.hi),
                                3, 4, 0);
        builder.compute(pair_compute);
        q.phases[2].push_back(builder.take());
    }
    return q;
}

CompiledQuery
QueryWorkload::compileUpdate(const PlacedDatabase &pd, double band,
                             const std::vector<unsigned> &words,
                             unsigned cores) const
{
    const Database &db = *pd.db;
    const Database::TableId tid = pd.b;
    const imdb::Table &table = db.table(tid);
    const std::uint64_t n = table.tuples();
    const unsigned f10 = 9;

    // Equality over a value band of the requested selectivity
    // (exact equality on a 100000-value domain matches almost
    // nothing at this scale).
    const std::int64_t z0 = imdb::Table::valueRange / 3;
    const std::int64_t z1 =
        z0 + static_cast<std::int64_t>(
                 band * static_cast<double>(imdb::Table::valueRange));
    std::vector<bool> matches(n);
    for (std::uint64_t t = 0; t < n; ++t) {
        const std::int64_t v = table.value(f10, t);
        matches[t] = v >= z0 && v < z1;
    }

    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.emplace_back();
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(n, cores, c);
        PlanBuilder builder(db);
        builder.scanFieldWord(tid, f10, r.lo, r.hi, costs.compare);
        const auto hit = matchedIn(matches, r.lo, r.hi);
        for (const unsigned w : words)
            builder.storeFieldWord(tid, hit, w);
        q.phases[0].push_back(builder.take());
    }
    return q;
}

CompiledQuery
QueryWorkload::compileOrdered(const PlacedDatabase &pd,
                              Database::TableId tid,
                              const std::vector<unsigned> &words,
                              unsigned group_lines,
                              unsigned cores) const
{
    const Database &db = *pd.db;
    const std::uint64_t n = db.table(tid).tuples();
    imdb::ComputeCosts costs;
    CompiledQuery q;
    q.phases.emplace_back();
    for (unsigned c = 0; c < cores; ++c) {
        const Range r = corePartition(n, cores, c);
        PlanBuilder builder(db);
        builder.orderedMultiColumnScan(tid, words, r.lo, r.hi,
                                       group_lines,
                                       costs.materialize);
        q.phases[0].push_back(builder.take());
    }
    return q;
}

CompiledQuery
QueryWorkload::compile(QueryId id, const PlacedDatabase &pd,
                       unsigned cores, unsigned group_lines) const
{
    const unsigned group = group_lines == kDefaultGroup
                               ? params_.groupLines
                               : group_lines;
    const unsigned f10 = 9, f9 = 8, f1 = 0;
    const imdb::Table &tb = *tables_->b;
    switch (id) {
      case QueryId::Q1:
        return compileSelect(pd, pd.a, f10, params_.q1Sel, 2, 4,
                             cores);
      case QueryId::Q2:
        return compileSelect(pd, pd.b, f10, params_.q2Sel, 0,
                             tb.schema().tupleWords(), cores);
      case QueryId::Q3:
        return compileSelect(pd, pd.b, f10, params_.q3Sel, 0,
                             tb.schema().tupleWords(), cores);
      case QueryId::Q4:
        return compileAggregate(pd, pd.a, f10, params_.q4Sel, f9,
                                cores);
      case QueryId::Q5:
        return compileAggregate(pd, pd.b, f10, params_.q5Sel, f9,
                                cores);
      case QueryId::Q6:
        return compileAggregate(pd, pd.a, f10, params_.q6Sel, f1,
                                cores);
      case QueryId::Q7:
        return compileAggregate(pd, pd.b, f10, params_.q7Sel, f1,
                                cores);
      case QueryId::Q8:
        return compileJoin(pd, true, cores);
      case QueryId::Q9:
        return compileJoin(pd, false, cores);
      case QueryId::Q10:
        return compileTwoPredicate(pd, f1, f9, params_.q10Sel,
                                   params_.q10Sel, cores);
      case QueryId::Q11:
        return compileTwoPredicate(pd, f1, 1, params_.q11Sel,
                                   params_.q11Sel, cores);
      case QueryId::Q12:
        return compileUpdate(pd, params_.q12Band, {2, 3}, cores);
      case QueryId::Q13:
        return compileUpdate(pd, params_.q13Band, {f9}, cores);
      case QueryId::Q14:
        return compileOrdered(pd, pd.c, {1, 2, 3, 4}, group, cores);
      case QueryId::Q15:
        return compileOrdered(pd, pd.a, {2, 5, 9}, group, cores);
    }
    rcnvm_panic("unknown query id");
}

} // namespace rcnvm::workload
