/**
 * @file
 * OLXP request generators: the traffic sources of the service layer.
 *
 * Two generator shapes model the paper's mixed workload:
 *
 *  - OltpGenerator — an *open-loop* Poisson stream of point lookups
 *    and single-field updates on table-a. Arrivals are independent
 *    of service completions, so queueing delay under overload shows
 *    up as tail latency (and, past the admission bound, as rejects)
 *    instead of silently throttling the offered load.
 *  - OlapGenerator — a *closed-loop* stream of Table-2-style field
 *    range scans: each stream keeps exactly one scan in flight and
 *    submits the next one when the previous completes, providing a
 *    sustained column-scan background.
 *
 * All randomness flows through util::Random so a seed reproduces the
 * exact request sequence.
 */

#ifndef RCNVM_OLXP_GENERATORS_HH_
#define RCNVM_OLXP_GENERATORS_HH_

#include <cstdint>

#include "cpu/mem_op.hh"
#include "util/random.hh"
#include "util/types.hh"
#include "workload/queries.hh"

namespace rcnvm::olxp {

/** Traffic class of one service request. */
enum class RequestClass : std::uint8_t {
    Oltp, //!< point lookup / update (open-loop)
    Olap, //!< field range scan (closed-loop)
};

/** Readable class name ("oltp" / "olap"). */
const char *toString(RequestClass cls);

/**
 * One in-flight service request: its compiled plan plus the arrival
 * tick latency is measured from. The scheduler owns the request for
 * its whole lifetime because the executing core borrows the plan.
 */
struct Request {
    RequestClass cls = RequestClass::Oltp;
    cpu::AccessPlan plan;
    Tick arrival{0};
};

/**
 * Open-loop Poisson OLTP source over table-a: uniformly random
 * tuples, full-tuple materialisation, and a configurable fraction of
 * single-field updates (read-modify-write).
 */
class OltpGenerator
{
  public:
    /**
     * @param pd  placed database the plans compile against
     * @param mean_inter_arrival  mean of the exponential gap (ticks)
     * @param update_fraction  probability a request also writes
     * @param seed  generator seed
     * @param hot_fraction  leading fraction of the table forming the
     *   hot set (used only when @p hot_probability > 0)
     * @param hot_probability  probability a lookup targets the hot
     *   set; 0 (the default) disables skew with a draw sequence
     *   identical to the historical uniform generator
     */
    OltpGenerator(const workload::PlacedDatabase &pd,
                  Tick mean_inter_arrival, double update_fraction,
                  std::uint64_t seed, double hot_fraction = 0.0,
                  double hot_probability = 0.0);

    /** Exponential inter-arrival draw, at least one tick. */
    Tick nextGap();

    /** Compile the next random point request arriving at
     *  @p arrival. */
    Request make(Tick arrival);

  private:
    const workload::PlacedDatabase *pd_;
    Tick meanInterArrival_;
    double updateFraction_;
    std::uint64_t tuples_;
    std::uint64_t hotTuples_;
    double hotProbability_;
    unsigned tupleWords_;
    util::Random rng_;
};

/**
 * Closed-loop OLAP source over table-a: single-field range scans of
 * a fixed tuple count, walking the table round-robin with a random
 * field per scan (an aggregation like Q4/Q6, restricted to a range
 * so one request has a bounded service time).
 *
 * The field is drawn from the first @p scan_fields columns: analytic
 * background traffic typically aggregates the same few measures over
 * and over, so its *column* working set is small even when the table
 * is huge. A column store therefore re-reads a footprint of
 * scan_fields * tuples * 8 bytes, while a row store drags every
 * tuple's full line through the hierarchy regardless of the field —
 * the access-count asymmetry the paper builds on.
 */
class OlapGenerator
{
  public:
    /**
     * @param pd  placed database the plans compile against
     * @param tuples_per_scan  range length of one scan request
     * @param scan_fields  fields the scans draw from (0 = all)
     * @param seed  generator seed
     */
    OlapGenerator(const workload::PlacedDatabase &pd,
                  std::uint64_t tuples_per_scan, unsigned scan_fields,
                  std::uint64_t seed);

    /** Compile the next range scan arriving at @p arrival. */
    Request make(Tick arrival);

  private:
    const workload::PlacedDatabase *pd_;
    std::uint64_t tuplesPerScan_;
    unsigned scanFields_;
    std::uint64_t tuples_;
    unsigned tupleWords_;
    std::uint64_t cursor_ = 0;
    util::Random rng_;
};

} // namespace rcnvm::olxp

#endif // RCNVM_OLXP_GENERATORS_HH_
