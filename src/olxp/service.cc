#include "olxp/service.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace rcnvm::olxp {

namespace {

/** Percentile-formula factory over a registered histogram name. */
util::StatRegistry::Formula
percentileOf(std::string name, double p)
{
    return [name = std::move(name), p](const util::StatRegistry &r) {
        return r.histogram(name).percentile(p);
    };
}

} // namespace

QueryScheduler::QueryScheduler(cpu::Machine &machine,
                               const workload::PlacedDatabase &pd,
                               const ServiceConfig &config)
    : machine_(machine),
      cfg_(config),
      // Streams draw from seeds offset per source so OLTP and OLAP
      // sequences stay decoupled: changing one stream's consumption
      // never perturbs the other.
      oltpGen_(pd, config.oltpInterArrival,
               config.oltpUpdateFraction,
               (config.seed ? config.seed : machine.config().seed) +
                   0x01,
               config.oltpHotTupleFraction,
               config.oltpHotProbability),
      olapGen_(pd, config.olapTuplesPerScan, config.olapFields,
               (config.seed ? config.seed : machine.config().seed) +
                   0x02),
      executing_(machine.coreCount())
{
    if (machine_.coreCount() == 0)
        rcnvm_fatal("service scheduler needs at least one core");
    registerStats();
}

void
QueryScheduler::registerStats()
{
    util::StatRegistry &r = machine_.registry();
    r.addHistogram("olxp.oltpLatency", oltpLatency_);
    r.addHistogram("olxp.olapLatency", olapLatency_);
    r.addCounter("olxp.oltpGenerated", oltpGenerated_);
    r.addCounter("olxp.olapGenerated", olapGenerated_);
    r.addCounter("olxp.oltpCompleted", oltpCompleted_);
    r.addCounter("olxp.olapCompleted", olapCompleted_);
    r.addCounter("olxp.oltpRejected", oltpRejected_);
    r.addCounter("olxp.olapRejected", olapRejected_);
    r.addCounter("olxp.olapResubmitDenied", olapResubmitDenied_);
    r.addGauge("olxp.queuePeak", [this] {
        return static_cast<double>(queuePeak_);
    });
    for (const char *cls : {"oltp", "olap"}) {
        const std::string hist =
            std::string("olxp.") + cls + "Latency";
        r.addFormula(hist + "P50", percentileOf(hist, 0.50));
        r.addFormula(hist + "P95", percentileOf(hist, 0.95));
        r.addFormula(hist + "P99", percentileOf(hist, 0.99));
    }
    if (sim::EpochSampler *sampler = machine_.epochSampler()) {
        sampler->addGauge("olxp.queueDepth", [this] {
            return static_cast<double>(queue_.size());
        });
        sampler->addGauge("olxp.inFlight", [this] {
            return static_cast<double>(inFlightCount_);
        });
    }
}

ServiceResult
QueryScheduler::run()
{
    sim::EventQueue &eq = machine_.eventQueue();

    // Closed-loop background first: each stream's initial scan is on
    // the machine from tick zero. Streams beyond the run-queue bound
    // park (the same admission every later resubmission passes).
    for (unsigned s = 0; s < cfg_.olapStreams; ++s) {
        olapGenerated_.inc();
        admitOlap(olapGen_.make(eq.now()));
    }
    dispatch();
    scheduleNextOltpArrival();

    cpu::RunResult rr = machine_.serve();

    if (!queue_.empty() || !parkedOlap_.empty() || inFlightCount_ != 0)
        rcnvm_panic("service drain left ", queue_.size(),
                    " queued, ", parkedOlap_.size(), " parked, and ",
                    inFlightCount_, " in-flight requests");

    ServiceResult result;
    result.run = std::move(rr);
    result.oltpGenerated = oltpGenerated_.value();
    result.oltpCompleted = oltpCompleted_.value();
    result.oltpRejected = oltpRejected_.value();
    result.olapGenerated = olapGenerated_.value();
    result.olapCompleted = olapCompleted_.value();
    result.olapRejected = olapRejected_.value();
    result.olapResubmitDenied = olapResubmitDenied_.value();
    result.oltpP50 = oltpLatency_.percentile(0.50);
    result.oltpP95 = oltpLatency_.percentile(0.95);
    result.oltpP99 = oltpLatency_.percentile(0.99);
    result.olapP50 = olapLatency_.percentile(0.50);
    result.olapP95 = olapLatency_.percentile(0.95);
    result.olapP99 = olapLatency_.percentile(0.99);
    return result;
}

void
QueryScheduler::scheduleNextOltpArrival()
{
    sim::EventQueue &eq = machine_.eventQueue();
    const Tick when = eq.now() + oltpGen_.nextGap();
    if (when >= cfg_.horizon)
        return; // open loop closed for business; the run drains
    eq.schedule(when, [this] { onOltpArrival(); });
}

void
QueryScheduler::onOltpArrival()
{
    oltpGenerated_.inc();
    // A full queue counts the reject inside submit().
    submit(oltpGen_.make(machine_.eventQueue().now()));
    scheduleNextOltpArrival();
}

bool
QueryScheduler::submit(Request request)
{
    if (queue_.size() >= cfg_.runQueueCapacity) {
        oltpRejected_.inc();
        return false;
    }
    enqueue(std::move(request));
    dispatch();
    return true;
}

void
QueryScheduler::enqueue(Request request)
{
    queue_.push_back(std::move(request));
    queuePeak_ = std::max(queuePeak_, queue_.size());
}

void
QueryScheduler::admitOlap(Request request)
{
    // Parked requests are older; admitting around them would reorder
    // the stream. Deny whenever any request is already waiting.
    if (parkedOlap_.empty() &&
        queue_.size() < cfg_.runQueueCapacity) {
        enqueue(std::move(request));
        return;
    }
    olapResubmitDenied_.inc();
    parkedOlap_.push_back(std::move(request));
}

void
QueryScheduler::admitParked()
{
    while (!parkedOlap_.empty() &&
           queue_.size() < cfg_.runQueueCapacity) {
        enqueue(std::move(parkedOlap_.front()));
        parkedOlap_.pop_front();
    }
}

void
QueryScheduler::dispatch()
{
    while (!queue_.empty()) {
        int core = -1;
        for (unsigned c = 0; c < machine_.coreCount(); ++c) {
            if (!executing_[c].has_value() && machine_.coreIdle(c)) {
                core = static_cast<int>(c);
                break;
            }
        }
        if (core < 0)
            return;

        executing_[core].emplace(std::move(queue_.front()));
        queue_.pop_front();
        ++inFlightCount_;
        machine_.startOnCore(
            static_cast<unsigned>(core), executing_[core]->plan,
            [this, core](Tick t) {
                onComplete(static_cast<unsigned>(core), t);
            });
    }
}

void
QueryScheduler::onComplete(unsigned core, Tick finish)
{
    Request &req = *executing_[core];
    const Tick latency =
        finish > req.arrival ? finish - req.arrival : Tick{0};
    const RequestClass cls = req.cls;
    if (cls == RequestClass::Oltp) {
        oltpLatency_.sample(latency.value());
        oltpCompleted_.inc();
    } else {
        olapLatency_.sample(latency.value());
        olapCompleted_.inc();
    }

    // The core no longer touches the finished plan, so the request
    // can be destroyed before the core is reused.
    executing_[core].reset();
    --inFlightCount_;

    if (cls == RequestClass::Olap &&
        machine_.eventQueue().now() < cfg_.horizon) {
        // Closed loop: the stream's next scan replaces this one —
        // through admission like everything else (a completion just
        // freed capacity, so liveness is guaranteed: every later
        // completion re-attempts the parked backlog below).
        olapGenerated_.inc();
        admitOlap(olapGen_.make(machine_.eventQueue().now()));
    }
    admitParked();
    dispatch();
}

} // namespace rcnvm::olxp
