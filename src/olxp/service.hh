/**
 * @file
 * The OLXP service layer: sustained concurrent query traffic on one
 * simulated machine.
 *
 * Where cpu::Machine::run replays a fixed plan per core to
 * completion, the QueryScheduler turns the machine into a
 * traffic-serving system: request generators seed arrival events
 * into the machine's event queue, requests park in a bounded run
 * queue (admission control — arrivals beyond the bound are rejected
 * and counted), and the scheduler dispatches the queue head onto
 * cores the moment they free up mid-simulation. Per-request latency
 * (arrival to completion, queue wait included) is recorded into
 * per-class log2 histograms registered in the machine's
 * StatRegistry, with p50/p95/p99 extracted as report-time formulas —
 * so tail latency rides in the same snapshot/JSON pipeline as every
 * other statistic.
 */

#ifndef RCNVM_OLXP_SERVICE_HH_
#define RCNVM_OLXP_SERVICE_HH_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cpu/machine.hh"
#include "olxp/generators.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "workload/queries.hh"

namespace rcnvm::olxp {

/** Configuration of one service run. */
struct ServiceConfig {
    /** Mean OLTP inter-arrival gap in ticks (offered load =
     *  1 / oltpInterArrival requests per tick). */
    Tick oltpInterArrival{100000};
    /** Fraction of OLTP requests that also write one field. */
    double oltpUpdateFraction = 0.2;
    /** Leading fraction of the table forming the OLTP hot set
     *  (only used when oltpHotProbability > 0). */
    double oltpHotTupleFraction = 0.125;
    /** Probability an OLTP lookup targets the hot set; 0 (the
     *  default) keeps the historical uniform tuple draw. */
    double oltpHotProbability = 0.0;
    /** Concurrent closed-loop OLAP scan streams (0 = no
     *  background). */
    unsigned olapStreams = 1;
    /** Tuples covered by one OLAP scan request. */
    std::uint64_t olapTuplesPerScan = 2048;
    /** Distinct fields the OLAP scans aggregate over (0 = all): the
     *  column working set of the analytic background. */
    unsigned olapFields = 2;
    /** Generators stop producing at this tick; in-flight and queued
     *  requests then drain and the run ends. */
    Tick horizon{20000000};
    /** Run-queue bound: open-loop arrivals finding this many
     *  requests queued are rejected. */
    unsigned runQueueCapacity = 64;
    /** Generator seed; 0 uses the machine's MachineConfig::seed
     *  (which itself defaults through RCNVM_SEED). */
    std::uint64_t seed = 0;
};

/** Outcome of one service run. */
struct ServiceResult {
    cpu::RunResult run; //!< drained-run ticks + stats snapshot

    std::uint64_t oltpGenerated = 0;
    std::uint64_t oltpCompleted = 0;
    std::uint64_t oltpRejected = 0;
    std::uint64_t olapGenerated = 0;
    std::uint64_t olapCompleted = 0;
    std::uint64_t olapRejected = 0; //!< always 0 (closed loop)
    /** Closed-loop OLAP (re)submissions that found the run queue
     *  full and were parked until a slot freed (never dropped). */
    std::uint64_t olapResubmitDenied = 0;

    double oltpP50 = 0, oltpP95 = 0, oltpP99 = 0; //!< ticks
    double olapP50 = 0, olapP95 = 0, olapP99 = 0; //!< ticks

    /** Completed OLTP requests per microsecond of service time. */
    double oltpThroughput() const
    {
        const double us = static_cast<double>(run.ticks.value()) / 1.0e6;
        return us > 0 ? static_cast<double>(oltpCompleted) / us : 0;
    }
};

/**
 * Compiles requests on the fly and serves them on a machine's cores.
 *
 * One scheduler attaches to one machine: construction registers the
 * service statistics (names below) into the machine's registry, so
 * the scheduler must outlive any later snapshot of that machine.
 *
 *   olxp.oltpLatency / olxp.olapLatency     log2 histograms (ticks)
 *   olxp.<class>Latency{P50,P95,P99}        formula percentiles
 *   olxp.<class>{Generated,Completed,Rejected}  counters
 *   olxp.queuePeak                          gauge (high-water mark)
 *
 * When the machine has an epoch sampler, a `olxp.queueDepth` gauge
 * is attached so the run-queue backlog shows up in the time series.
 */
class QueryScheduler
{
  public:
    QueryScheduler(cpu::Machine &machine,
                   const workload::PlacedDatabase &pd,
                   const ServiceConfig &config);

    /** Prime the generators, serve until the horizon passes and all
     *  traffic drains, and collect the result. */
    ServiceResult run();

    // --- Introspection (tests drive submit/dispatch directly). ---

    /** Submit one request through admission control.
     *  @return false when the run queue is full (request dropped
     *  and counted as rejected). */
    bool submit(Request request);

    /** Requests parked in the run queue. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Highest run-queue depth observed. */
    std::size_t queuePeak() const { return queuePeak_; }

    /** Requests dispatched onto a core and not yet completed. */
    unsigned inFlight() const { return inFlightCount_; }

    /** Completed-request latency histogram of @p cls. */
    const util::Log2Histogram &latencyHistogram(RequestClass cls) const
    {
        return cls == RequestClass::Oltp ? oltpLatency_
                                         : olapLatency_;
    }

    /** Completions of @p cls so far. */
    std::uint64_t completed(RequestClass cls) const
    {
        return (cls == RequestClass::Oltp ? oltpCompleted_
                                          : olapCompleted_)
            .value();
    }

    /** Open-loop rejects so far. */
    std::uint64_t rejected() const { return oltpRejected_.value(); }

    /** Closed-loop (re)submissions denied admission and parked. */
    std::uint64_t resubmitDenied() const
    {
        return olapResubmitDenied_.value();
    }

    /** OLAP requests currently parked awaiting a queue slot. */
    std::size_t parkedCount() const { return parkedOlap_.size(); }

  private:
    void registerStats();
    void scheduleNextOltpArrival();
    void onOltpArrival();
    /** Append to the run queue (capacity already checked). */
    void enqueue(Request request);
    /**
     * Closed-loop admission: enqueue when the run queue has a slot,
     * otherwise park the request (counted as a resubmit denial) —
     * closed-loop work is deferred, never dropped, so a saturated
     * OLAP tenant waits instead of overflowing the bound that
     * open-loop arrivals are rejected against.
     */
    void admitOlap(Request request);
    /** Move parked OLAP requests into freed run-queue slots. */
    void admitParked();
    /** Start queued requests on idle cores until one side runs out. */
    void dispatch();
    void onComplete(unsigned core, Tick finish);

    cpu::Machine &machine_;
    ServiceConfig cfg_;
    OltpGenerator oltpGen_;
    OlapGenerator olapGen_;

    std::deque<Request> queue_;
    /** Closed-loop requests denied admission, in denial order. */
    std::deque<Request> parkedOlap_;
    std::vector<std::optional<Request>> executing_; //!< per core
    unsigned inFlightCount_ = 0;
    std::size_t queuePeak_ = 0;

    util::Log2Histogram oltpLatency_;
    util::Log2Histogram olapLatency_;
    util::Counter oltpGenerated_;
    util::Counter olapGenerated_;
    util::Counter oltpCompleted_;
    util::Counter olapCompleted_;
    util::Counter oltpRejected_;
    util::Counter olapRejected_; //!< stays 0; exported for symmetry
    util::Counter olapResubmitDenied_;
};

} // namespace rcnvm::olxp

#endif // RCNVM_OLXP_SERVICE_HH_
