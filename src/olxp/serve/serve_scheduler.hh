/**
 * @file
 * The multi-tenant serving scheduler (DESIGN.md 4i).
 *
 * Builds on the OLXP service layer's machine primitives (arrival
 * events + startOnCore + serve) and adds the three serving-layer
 * mechanisms of the ROADMAP's production-scale item:
 *
 *  - Plan optimization: backfill scans are described declaratively
 *    (ScanQuery) and compiled through the PlanOptimizer, which
 *    prunes chunks by min/max summary and dead columns by
 *    projection pushdown. The optimizer-off path is
 *    result-identical.
 *  - Tenant classes and SLO-aware dispatch: every request carries
 *    its tenant's class. OLTP-latency requests dispatch onto any
 *    idle core with the priority flag set (the read-priority channel
 *    policy serves their misses first); backfill classes are limited
 *    to a dynamic slot count. A periodic control loop measures OLTP
 *    p99 over the last window (histogram delta) and preempts
 *    backfill dispatch slots while the target is breached, growing
 *    them back when latency recovers.
 *  - Shared scans: a backfill tenant's N streams attach to one
 *    shared cursor. The cursor issues bounded segments; each
 *    completed segment is credited to every attached stream, so 10^3
 *    streams cost one scan's worth of memory traffic per pass.
 *
 * Admission is a per-tenant token bucket over one bounded run queue.
 * Open-loop (OLTP) arrivals beyond budget or bound are rejected and
 * counted; closed-loop segments are parked and deterministically
 * retried — deferred, never dropped.
 *
 * Everything runs on the machine's core-shard event queue, so all
 * serve.* statistics are byte-identical across RCNVM_THREADS.
 */

#ifndef RCNVM_OLXP_SERVE_SERVE_SCHEDULER_HH_
#define RCNVM_OLXP_SERVE_SERVE_SCHEDULER_HH_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "olxp/generators.hh"
#include "olxp/serve/plan_optimizer.hh"
#include "olxp/serve/tenant.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace rcnvm::olxp::serve {

/** Configuration of one serving run. */
struct ServeConfig {
    std::vector<TenantConfig> tenants;

    /** Chunk/column pruning on (the off path is result-identical
     *  and used by the optimizer property tests). */
    bool optimizer = true;

    /** SLO-aware dispatch on; off = backfill may fill every core
     *  (the unprotected comparator of the bench). */
    bool slo = true;
    /** OLTP p99 target in ticks; the control loop preempts backfill
     *  slots while the windowed p99 exceeds it. */
    Tick sloTarget{2000000};
    /** Control-loop period in ticks. */
    Tick sloPeriod{500000};
    /** Backfill dispatch slots the control loop never preempts. */
    unsigned backfillFloor = 1;

    /** Field pool of the shared scans: a segment's template touches
     *  fields [0, scanFields) and the optimizer prunes down to the
     *  two the aggregate consumes. */
    unsigned scanFields = 4;
    /** Predicate band in value units: thresholds are drawn within
     *  this distance of the value-domain edge, making segments
     *  selective enough that chunk summaries can prune. */
    std::uint64_t predBand = 256;

    /** Generators stop at this tick; queued work then drains. */
    Tick horizon{20000000};
    /** OLTP percentile measurement starts here: arrivals before this
     *  tick are served and histogrammed but excluded from the
     *  ServeResult percentiles, so a protected run's tail reflects
     *  the converged control loop, not its warm-up transient. */
    Tick measureFrom{0};
    /** Stop each shared cursor after this many segments (0 = run to
     *  the horizon). A capped run executes exactly the same segment
     *  sequence whatever the timing, which is what lets the
     *  result-identity checks compare optimizer-on and -off runs
     *  checksum for checksum. */
    std::uint64_t maxSegmentsPerGroup = 0;
    /** Bounded run queue shared by all tenants. */
    unsigned runQueueCapacity = 256;
    /** Seed; 0 uses the machine's (RCNVM_SEED-controlled) seed. */
    std::uint64_t seed = 0;
};

/** Outcome of one serving run. */
struct ServeResult {
    cpu::RunResult run;

    std::uint64_t oltpGenerated = 0;
    std::uint64_t oltpCompleted = 0;
    std::uint64_t oltpRejected = 0;
    std::uint64_t segmentsCompleted = 0; //!< shared-scan segments
    std::uint64_t streamScans = 0; //!< per-stream segment credits
    std::uint64_t backfillDenied = 0; //!< parked (later retried)

    std::uint64_t chunksScanned = 0;
    std::uint64_t chunksPruned = 0;
    std::uint64_t colsPruned = 0;

    std::uint64_t sloBreaches = 0;

    /** Exact sample percentiles in ticks (the serve.oltpLatency*
     *  formula stats are the log2-histogram approximations; tail
     *  ratios like "within 1.25x of baseline" need sample
     *  resolution). */
    double oltpP50 = 0, oltpP95 = 0, oltpP99 = 0;

    /** Host-side result merged over every completed segment: the
     *  pruned-vs-unpruned identity oracle. */
    ScanResult scanChecksum;

    /** Completed OLTP requests per microsecond of run time. */
    double
    oltpThroughput() const
    {
        const double us =
            static_cast<double>(run.ticks.value()) / 1.0e6;
        return us > 0 ? static_cast<double>(oltpCompleted) / us : 0;
    }

    /** Completed shared-scan segments per microsecond. */
    double
    backfillThroughput() const
    {
        const double us =
            static_cast<double>(run.ticks.value()) / 1.0e6;
        return us > 0 ? static_cast<double>(segmentsCompleted) / us
                      : 0;
    }
};

/**
 * One serving run over one machine. Construction registers the
 * serve.* statistics into the machine's registry (the scheduler must
 * outlive later snapshots):
 *
 *   serve.oltpLatency                log2 histogram (ticks)
 *   serve.oltpLatency{P50,P95,P99}   formula percentiles
 *   serve.oltpGenerated/Completed/Rejected     counters
 *   serve.segmentsCompleted / streamScans      counters
 *   serve.backfillDenied                       counter
 *   serve.chunksScanned / chunksPruned / colsPruned  counters
 *   serve.scanMatches / scanSum       result-checksum counters
 *   serve.sloBreaches                 counter
 *   serve.backfillSlots               gauge (current slot count)
 *   serve.<tenant>.admitted/denied/completed   per-tenant counters
 */
class ServeScheduler
{
  public:
    ServeScheduler(cpu::Machine &machine,
                   const workload::PlacedDatabase &pd,
                   const ServeConfig &config);

    /** Prime every tenant, serve to the horizon, drain, collect. */
    ServeResult run();

    /** The optimizer in use (tests inspect pruning counters). */
    const PlanOptimizer &optimizer() const { return optimizer_; }

    /** Current backfill dispatch slots (tests drive the loop). */
    unsigned backfillSlots() const { return backfillSlots_; }

    /** Requests parked awaiting budget or queue space. */
    std::size_t parkedCount() const { return parked_.size(); }

  private:
    /** One admitted (or parked) unit of work. */
    struct ServeRequest {
        unsigned tenant = 0;
        cpu::AccessPlan plan;
        Tick arrival{0};
        bool backfill = false;
        int group = -1;          //!< shared-scan group, -1 = OLTP
        std::uint64_t tuples = 0; //!< segment length
        ScanResult result;        //!< host-side segment result
    };

    /** One shared scan cursor with its attached streams. */
    struct ScanGroup {
        unsigned tenant = 0;
        unsigned streams = 1;
        std::uint64_t cursor = 0;
        std::uint64_t issued = 0; //!< segments generated so far
        unsigned inFlight = 0; //!< queued + parked + executing
        util::Random rng;      //!< predicate/field draws

        ScanGroup(unsigned tenant_ix, unsigned stream_count,
                  std::uint64_t seed)
            : tenant(tenant_ix),
              streams(stream_count == 0 ? 1 : stream_count),
              rng(seed)
        {
        }
    };

    /** Per-tenant runtime state. */
    struct TenantState {
        TenantConfig cfg;
        TokenBucket bucket;
        int group = -1; //!< backfill classes only
        std::optional<OltpGenerator> oltp;

        util::Counter admitted;
        util::Counter denied;
        util::Counter completed;

        TenantState(const TenantConfig &c, double rate)
            : cfg(c), bucket(rate, c.tokenBurst)
        {
        }
    };

    void registerStats();
    std::size_t queuedTotal() const
    {
        return oltpQueue_.size() + backfillQueue_.size();
    }

    void scheduleOltp(unsigned ti);
    void onOltpArrival(unsigned ti);

    /** Build the next segment query of @p g (advances the cursor and
     *  the group RNG). */
    ScanQuery nextSegment(ScanGroup &g);
    /** Top the group up to its segment-parallelism bound. */
    void pumpGroup(unsigned gi);
    /** Admit a backfill segment: budget + queue bound, else park. */
    void admitBackfill(ServeRequest request);
    /** Move parked requests into freed budget/queue space. */
    void admitParked();
    /** Schedule a deterministic budget-retry when tokens ran out. */
    void scheduleRetry(unsigned ti);

    void dispatch();
    void onComplete(unsigned core, Tick finish);
    void sloTick();

    cpu::Machine &machine_;
    const workload::PlacedDatabase &pd_;
    ServeConfig cfg_;
    PlanOptimizer optimizer_;
    std::uint64_t baseSeed_;

    std::vector<TenantState> tenants_;
    std::vector<ScanGroup> groups_;

    std::deque<ServeRequest> oltpQueue_;
    std::deque<ServeRequest> backfillQueue_;
    std::deque<ServeRequest> parked_;
    std::vector<std::optional<ServeRequest>> executing_; //!< per core
    unsigned inFlightCount_ = 0;
    unsigned backfillBusy_ = 0;
    unsigned backfillSlots_ = 1;
    bool retryScheduled_ = false;

    /** Consecutive healthy SLO windows; backfill regrows only after
     *  two in a row (shrink fast, grow slow). */
    unsigned healthyStreak_ = 0;
    /** Breach ceiling: a breach at slot level L pins growth to L-1
     *  until the probe countdown expires, so the loop re-probes the
     *  known-breaching level rarely instead of every few windows —
     *  each probe window spends tail budget. The interval doubles on
     *  every breach (capped), so a converged loop probes ever more
     *  rarely instead of periodically re-spending the budget. */
    unsigned slotCeil_ = 1;
    unsigned probeCountdown_ = 0;
    unsigned probeInterval_ = 8;

    /** Every OLTP latency sample (ticks): exact percentiles. */
    std::vector<std::uint64_t> oltpSamples_;
    /** Samples since the last SLO window edge. */
    std::vector<std::uint64_t> windowSamples_;

    util::Log2Histogram oltpLatency_;
    util::Counter oltpGenerated_;
    util::Counter oltpCompleted_;
    util::Counter oltpRejected_;
    util::Counter segmentsCompleted_;
    util::Counter streamScans_;
    util::Counter backfillDenied_;
    util::Counter scanMatches_;
    util::Counter scanSum_;
    util::Counter sloBreaches_;
    ScanResult scanChecksum_;
};

} // namespace rcnvm::olxp::serve

#endif // RCNVM_OLXP_SERVE_SERVE_SCHEDULER_HH_
