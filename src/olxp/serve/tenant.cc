#include "olxp/serve/tenant.hh"

#include "util/logging.hh"

namespace rcnvm::olxp::serve {

const char *
toString(TenantClass cls)
{
    switch (cls) {
      case TenantClass::OltpLatency:
        return "oltp";
      case TenantClass::OlapThroughput:
        return "olap";
      case TenantClass::Background:
        return "background";
    }
    rcnvm_panic("unknown tenant class");
}

} // namespace rcnvm::olxp::serve
