/**
 * @file
 * The serving-layer plan optimizer: chunk and column pruning over
 * PlanBuilder scan plans (DESIGN.md 4i).
 *
 * A serving-layer scan is described declaratively (ScanQuery) rather
 * than compiled eagerly, which gives the optimizer a window between
 * request generation and dispatch. Two rewrites apply:
 *
 *  - Chunk pruning: per-chunk min/max summaries (imdb::Table) prove
 *    that no tuple of a chunk can satisfy the predicate, so the
 *    chunk's lines are dropped from the plan. Pruned chunks contain
 *    no matches by construction, so the optimized and unoptimized
 *    plans produce identical query results.
 *  - Column pruning: an aggregate consumes only its predicate and
 *    aggregate fields; any other field the stream template touches
 *    is a dead load (projection pushdown) and is dropped.
 *
 * The optimizer-off path compiles the same query over the full tuple
 * range and every touched field — byte-identical to what a
 * pre-optimizer client would have built.
 */

#ifndef RCNVM_OLXP_SERVE_PLAN_OPTIMIZER_HH_
#define RCNVM_OLXP_SERVE_PLAN_OPTIMIZER_HH_

#include <cstdint>
#include <vector>

#include "cpu/mem_op.hh"
#include "util/stats.hh"
#include "workload/queries.hh"

namespace rcnvm::olxp::serve {

/** Comparison operator of a serving-layer scan predicate. */
enum class PredOp : std::uint8_t {
    Greater, //!< field > threshold
    Less,    //!< field < threshold
};

/**
 * One declarative aggregate scan: SELECT count(*), sum(aggField)
 * FROM table WHERE predField <op> threshold over tuples [t0, t1),
 * with touchedFields naming every field the stream template reads
 * (the optimizer prunes the ones the aggregate never consumes).
 */
struct ScanQuery {
    imdb::Database::TableId table = 0;
    unsigned predField = 0;
    PredOp op = PredOp::Greater;
    std::int64_t threshold = 0;
    unsigned aggField = 1;
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0; //!< exclusive
    /** Fields the unoptimized plan scans (predicate and aggregate
     *  fields included); empty means just {predField, aggField}. */
    std::vector<unsigned> touchedFields;
};

/** Host-side result of one ScanQuery (the correctness oracle). */
struct ScanResult {
    std::uint64_t matches = 0;
    std::int64_t sum = 0; //!< sum of aggField over matching tuples

    void
    merge(const ScanResult &o)
    {
        matches += o.matches;
        sum += o.sum;
    }

    bool operator==(const ScanResult &) const = default;
};

/**
 * Builds scan plans from ScanQuery descriptions, pruning chunks and
 * columns when enabled. One optimizer serves one placed database;
 * its counters are registered by the serve scheduler under
 * `serve.chunksScanned` / `serve.chunksPruned` / `serve.colsPruned`.
 */
class PlanOptimizer
{
  public:
    /**
     * @param pd       placed database plans compile against
     * @param enabled  false = the result-identical unoptimized path
     */
    PlanOptimizer(const workload::PlacedDatabase &pd, bool enabled);

    bool enabled() const { return enabled_; }

    /**
     * Compile @p q into a per-core access plan: a predicate-field
     * scan plus one scan per surviving touched field, restricted to
     * the chunks the summaries cannot rule out. Updates the pruning
     * counters.
     */
    cpu::AccessPlan build(const ScanQuery &q);

    /**
     * Evaluate @p q host-side over the same chunks the plan visits.
     * Pruning is provably sound, so enabled/disabled evaluation
     * returns identical results for identical queries — the property
     * the optimizer test asserts.
     */
    ScanResult evaluate(const ScanQuery &q) const;

    /** True when the chunk summaries prove chunk @p chunk of
     *  @p q.table contains no tuple satisfying the predicate. */
    bool chunkPrunable(const ScanQuery &q, unsigned chunk) const;

    // --- Counters (registered by the scheduler). ---
    const util::Counter &chunksScanned() const { return chunksScanned_; }
    const util::Counter &chunksPruned() const { return chunksPruned_; }
    const util::Counter &colsPruned() const { return colsPruned_; }

  private:
    /** Append the surviving chunk sub-ranges of [q.t0, q.t1). */
    void surviveRanges(
        const ScanQuery &q,
        std::vector<std::pair<std::uint64_t, std::uint64_t>> &out);

    const workload::PlacedDatabase *pd_;
    bool enabled_;

    util::Counter chunksScanned_;
    util::Counter chunksPruned_;
    util::Counter colsPruned_;
};

} // namespace rcnvm::olxp::serve

#endif // RCNVM_OLXP_SERVE_PLAN_OPTIMIZER_HH_
