/**
 * @file
 * Tenant and priority-class primitives of the serving layer: the
 * three traffic classes, per-tenant admission token buckets, and the
 * tenant configuration block (DESIGN.md 4i).
 */

#ifndef RCNVM_OLXP_SERVE_TENANT_HH_
#define RCNVM_OLXP_SERVE_TENANT_HH_

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rcnvm::olxp::serve {

/** Priority class of a tenant's traffic. */
enum class TenantClass : std::uint8_t {
    OltpLatency,    //!< open-loop point traffic, p99-protected
    OlapThroughput, //!< closed-loop scan streams, backfill
    Background,     //!< closed-loop maintenance scans, backfill
};

/** Stable class name ("oltp" / "olap" / "background"). */
const char *toString(TenantClass cls);

/** True for classes dispatched into backfill (preemptible) slots. */
inline bool
isBackfill(TenantClass cls)
{
    return cls != TenantClass::OltpLatency;
}

/**
 * Deterministic token bucket: @p rate tokens accrue per tick up to
 * @p burst. Refill is computed from the event-queue clock, so runs
 * are reproducible — and identical across RCNVM_THREADS settings,
 * since every charge happens on the core-shard event queue.
 */
class TokenBucket
{
  public:
    /** A full bucket of @p burst tokens refilling at @p rate
     *  tokens/tick. rate <= 0 disables metering (always admits). */
    TokenBucket(double rate, double burst)
        : rate_(rate), burst_(burst), tokens_(burst)
    {
    }

    /** Take @p cost tokens at @p now; false when short (no debt). */
    bool
    tryTake(Tick now, double cost = 1.0)
    {
        if (rate_ <= 0.0)
            return true;
        refill(now);
        if (tokens_ < cost)
            return false;
        tokens_ -= cost;
        return true;
    }

    /** Tokens available at @p now (after refill). */
    double
    level(Tick now)
    {
        refill(now);
        return tokens_;
    }

  private:
    void
    refill(Tick now)
    {
        if (now > last_) {
            const double dt =
                static_cast<double>((now - last_).value());
            tokens_ = std::min(burst_, tokens_ + rate_ * dt);
            last_ = now;
        }
    }

    double rate_;
    double burst_;
    double tokens_;
    Tick last_{0};
};

/** Configuration of one serving tenant. */
struct TenantConfig {
    /** Stable name: the tenant's statistics register under
     *  `serve.<name>.*`. */
    std::string name = "tenant";
    TenantClass cls = TenantClass::OlapThroughput;

    /** Closed-loop streams attached to the tenant's shared scan
     *  cursor (backfill classes; ignored for OltpLatency). */
    unsigned streams = 0;

    /** Mean open-loop inter-arrival gap in ticks (OltpLatency
     *  only). */
    Tick oltpInterArrival{100000};
    /** Fraction of OLTP requests that also write one field. */
    double oltpUpdateFraction = 0.2;

    /** Tuples one shared-scan segment covers (backfill classes);
     *  also the per-stream scan length credited by the cursor. */
    std::uint64_t segmentTuples = 4096;
    /** Shared-scan segments the tenant keeps in flight at once. */
    unsigned segmentParallelism = 2;

    /** Admission token-bucket rate in requests (segments) per
     *  million ticks; <= 0 disables metering for the tenant. */
    double tokensPerMTick = 0.0;
    /** Token-bucket burst capacity in requests. */
    double tokenBurst = 8.0;
};

} // namespace rcnvm::olxp::serve

#endif // RCNVM_OLXP_SERVE_TENANT_HH_
