#include "olxp/serve/serve_scheduler.hh"

#include <algorithm>
#include <utility>

#include "imdb/plan_builder.hh"
#include "util/logging.hh"

namespace rcnvm::olxp::serve {

namespace {

/** Percentile-formula factory over a registered histogram name. */
util::StatRegistry::Formula
percentileOf(std::string name, double p)
{
    return [name = std::move(name), p](const util::StatRegistry &r) {
        return r.histogram(name).percentile(p);
    };
}

/**
 * Exact nearest-rank percentile of @p samples (sorted in place);
 * 0 when empty. The log2 histogram only resolves powers of two —
 * too coarse for tail targets like "within 1.25x of baseline".
 */
double
exactPercentile(std::vector<std::uint64_t> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(
            p * static_cast<double>(samples.size())));
    return static_cast<double>(samples[rank]);
}

} // namespace

ServeScheduler::ServeScheduler(cpu::Machine &machine,
                               const workload::PlacedDatabase &pd,
                               const ServeConfig &config)
    : machine_(machine),
      pd_(pd),
      cfg_(config),
      optimizer_(pd, config.optimizer),
      baseSeed_(config.seed ? config.seed : machine.config().seed),
      executing_(machine.coreCount())
{
    if (machine_.coreCount() == 0)
        rcnvm_fatal("serve scheduler needs at least one core");
    if (cfg_.tenants.empty())
        rcnvm_fatal("serve scheduler needs at least one tenant");

    tenants_.reserve(cfg_.tenants.size());
    for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
        const TenantConfig &tc = cfg_.tenants[i];
        tenants_.emplace_back(tc, tc.tokensPerMTick / 1.0e6);
        TenantState &ts = tenants_.back();
        if (tc.cls == TenantClass::OltpLatency) {
            ts.oltp.emplace(pd_, tc.oltpInterArrival,
                            tc.oltpUpdateFraction,
                            baseSeed_ + 0x100 + i);
        } else {
            ts.group = static_cast<int>(groups_.size());
            groups_.emplace_back(static_cast<unsigned>(i),
                                 tc.streams,
                                 baseSeed_ + 0x200 + i);
        }
    }
    backfillSlots_ = cfg_.slo && machine_.coreCount() > 1
                         ? machine_.coreCount() - 1
                         : machine_.coreCount();
    slotCeil_ = backfillSlots_;
    registerStats();
}

void
ServeScheduler::registerStats()
{
    util::StatRegistry &r = machine_.registry();
    r.addHistogram("serve.oltpLatency", oltpLatency_);
    r.addCounter("serve.oltpGenerated", oltpGenerated_);
    r.addCounter("serve.oltpCompleted", oltpCompleted_);
    r.addCounter("serve.oltpRejected", oltpRejected_);
    r.addCounter("serve.segmentsCompleted", segmentsCompleted_);
    r.addCounter("serve.streamScans", streamScans_);
    r.addCounter("serve.backfillDenied", backfillDenied_);
    r.addCounter("serve.chunksScanned", optimizer_.chunksScanned());
    r.addCounter("serve.chunksPruned", optimizer_.chunksPruned());
    r.addCounter("serve.colsPruned", optimizer_.colsPruned());
    r.addCounter("serve.scanMatches", scanMatches_);
    r.addCounter("serve.scanSum", scanSum_);
    r.addCounter("serve.sloBreaches", sloBreaches_);
    r.addGauge("serve.backfillSlots", [this] {
        return static_cast<double>(backfillSlots_);
    });
    const std::string hist = "serve.oltpLatency";
    r.addFormula(hist + "P50", percentileOf(hist, 0.50));
    r.addFormula(hist + "P95", percentileOf(hist, 0.95));
    r.addFormula(hist + "P99", percentileOf(hist, 0.99));
    for (TenantState &ts : tenants_) {
        const std::string base = "serve." + ts.cfg.name;
        r.addCounter(base + ".admitted", ts.admitted);
        r.addCounter(base + ".denied", ts.denied);
        r.addCounter(base + ".completed", ts.completed);
    }
    if (sim::EpochSampler *sampler = machine_.epochSampler()) {
        sampler->addGauge("serve.queueDepth", [this] {
            return static_cast<double>(queuedTotal());
        });
        sampler->addGauge("serve.parked", [this] {
            return static_cast<double>(parked_.size());
        });
        sampler->addGauge("serve.backfillSlots", [this] {
            return static_cast<double>(backfillSlots_);
        });
    }
}

ServeResult
ServeScheduler::run()
{
    sim::EventQueue &eq = machine_.eventQueue();

    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
        pumpGroup(static_cast<unsigned>(gi));
    for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
        if (tenants_[ti].oltp)
            scheduleOltp(static_cast<unsigned>(ti));
    }
    if (cfg_.slo && cfg_.sloPeriod > Tick{0})
        eq.scheduleAfter(cfg_.sloPeriod, [this] { sloTick(); });
    dispatch();

    cpu::RunResult rr = machine_.serve();

    if (queuedTotal() != 0 || !parked_.empty() || inFlightCount_ != 0)
        rcnvm_panic("serve drain left ", queuedTotal(), " queued, ",
                    parked_.size(), " parked, and ", inFlightCount_,
                    " in-flight requests");

    ServeResult result;
    result.run = std::move(rr);
    result.oltpGenerated = oltpGenerated_.value();
    result.oltpCompleted = oltpCompleted_.value();
    result.oltpRejected = oltpRejected_.value();
    result.segmentsCompleted = segmentsCompleted_.value();
    result.streamScans = streamScans_.value();
    result.backfillDenied = backfillDenied_.value();
    result.chunksScanned = optimizer_.chunksScanned().value();
    result.chunksPruned = optimizer_.chunksPruned().value();
    result.colsPruned = optimizer_.colsPruned().value();
    result.sloBreaches = sloBreaches_.value();
    result.oltpP50 = exactPercentile(oltpSamples_, 0.50);
    result.oltpP95 = exactPercentile(oltpSamples_, 0.95);
    result.oltpP99 = exactPercentile(oltpSamples_, 0.99);
    result.scanChecksum = scanChecksum_;
    return result;
}

void
ServeScheduler::scheduleOltp(unsigned ti)
{
    sim::EventQueue &eq = machine_.eventQueue();
    const Tick when = eq.now() + tenants_[ti].oltp->nextGap();
    if (when >= cfg_.horizon)
        return;
    eq.schedule(when, [this, ti] { onOltpArrival(ti); });
}

void
ServeScheduler::onOltpArrival(unsigned ti)
{
    TenantState &ts = tenants_[ti];
    oltpGenerated_.inc();
    Request r = ts.oltp->make(machine_.eventQueue().now());
    if (queuedTotal() < cfg_.runQueueCapacity &&
        ts.bucket.tryTake(machine_.eventQueue().now())) {
        ts.admitted.inc();
        ServeRequest sr;
        sr.tenant = ti;
        sr.plan = std::move(r.plan);
        sr.arrival = r.arrival;
        oltpQueue_.push_back(std::move(sr));
        dispatch();
    } else {
        // Open loop: over-budget or over-bound arrivals drop.
        ts.denied.inc();
        oltpRejected_.inc();
    }
    scheduleOltp(ti);
}

ScanQuery
ServeScheduler::nextSegment(ScanGroup &g)
{
    const TenantConfig &tc = tenants_[g.tenant].cfg;
    const imdb::Table &t = pd_.db->table(pd_.a);
    const unsigned pool = std::max(
        1u, std::min(cfg_.scanFields, t.schema().tupleWords()));
    const std::uint64_t band = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(
               cfg_.predBand,
               static_cast<std::uint64_t>(imdb::Table::valueRange)));

    ScanQuery q;
    q.table = pd_.a;
    q.predField = static_cast<unsigned>(g.rng.nextBounded(pool));
    q.aggField = static_cast<unsigned>(g.rng.nextBounded(pool));
    // Selective edge predicates: the serving mix models outlier
    // lookups, whose thresholds sit close enough to the domain edge
    // that chunk min/max summaries have real pruning power.
    const std::int64_t off =
        static_cast<std::int64_t>(g.rng.nextBounded(band));
    if (g.rng.nextBool(0.5)) {
        q.op = PredOp::Greater;
        q.threshold = imdb::Table::valueRange - 1 - off;
    } else {
        q.op = PredOp::Less;
        q.threshold = off + 1;
    }
    q.touchedFields.resize(pool);
    for (unsigned f = 0; f < pool; ++f)
        q.touchedFields[f] = f;

    std::uint64_t seg = tc.segmentTuples;
    if (seg == 0 || seg > t.tuples())
        seg = t.tuples();
    q.t0 = g.cursor;
    q.t1 = std::min(g.cursor + seg, t.tuples());
    g.cursor = q.t1 >= t.tuples() ? 0 : q.t1;
    return q;
}

void
ServeScheduler::pumpGroup(unsigned gi)
{
    ScanGroup &g = groups_[gi];
    const TenantConfig &tc = tenants_[g.tenant].cfg;
    const unsigned parallelism = std::max(1u, tc.segmentParallelism);
    const Tick now = machine_.eventQueue().now();
    if (now >= cfg_.horizon)
        return;
    while (g.inFlight < parallelism &&
           (cfg_.maxSegmentsPerGroup == 0 ||
            g.issued < cfg_.maxSegmentsPerGroup)) {
        ++g.issued;
        const ScanQuery q = nextSegment(g);
        ServeRequest r;
        r.tenant = g.tenant;
        r.backfill = true;
        r.group = static_cast<int>(gi);
        r.tuples = q.t1 - q.t0;
        r.plan = optimizer_.build(q);
        r.result = optimizer_.evaluate(q);
        r.arrival = now;
        ++g.inFlight;
        admitBackfill(std::move(r));
    }
}

void
ServeScheduler::admitBackfill(ServeRequest request)
{
    TenantState &ts = tenants_[request.tenant];
    const Tick now = machine_.eventQueue().now();
    // Parked requests are older; admitting around them would starve
    // the tenants they belong to.
    if (parked_.empty() &&
        queuedTotal() < cfg_.runQueueCapacity &&
        ts.bucket.tryTake(now)) {
        ts.admitted.inc();
        backfillQueue_.push_back(std::move(request));
        return;
    }
    ts.denied.inc();
    backfillDenied_.inc();
    const unsigned ti = request.tenant;
    parked_.push_back(std::move(request));
    scheduleRetry(ti);
}

void
ServeScheduler::admitParked()
{
    const Tick now = machine_.eventQueue().now();
    // Per-tenant FIFO, cross-tenant work-conserving: a tenant whose
    // budget ran dry blocks only its own later segments.
    std::vector<bool> blocked(tenants_.size(), false);
    for (auto it = parked_.begin(); it != parked_.end();) {
        if (queuedTotal() >= cfg_.runQueueCapacity)
            break;
        TenantState &ts = tenants_[it->tenant];
        if (blocked[it->tenant]) {
            ++it;
            continue;
        }
        if (!ts.bucket.tryTake(now)) {
            blocked[it->tenant] = true;
            scheduleRetry(it->tenant);
            ++it;
            continue;
        }
        ts.admitted.inc();
        backfillQueue_.push_back(std::move(*it));
        it = parked_.erase(it);
    }
}

void
ServeScheduler::scheduleRetry(unsigned ti)
{
    const TenantState &ts = tenants_[ti];
    const double rate = ts.cfg.tokensPerMTick / 1.0e6;
    if (rate <= 0.0 || retryScheduled_)
        return; // capacity denials retry at the next completion
    retryScheduled_ = true;
    const Tick delta{std::max<Tick::value_type>(
        1, static_cast<Tick::value_type>(1.0 / rate))};
    machine_.eventQueue().scheduleAfter(delta, [this] {
        retryScheduled_ = false;
        admitParked();
        dispatch();
    });
}

void
ServeScheduler::dispatch()
{
    const auto findIdle = [this]() -> int {
        for (unsigned c = 0; c < machine_.coreCount(); ++c) {
            if (!executing_[c].has_value() && machine_.coreIdle(c))
                return static_cast<int>(c);
        }
        return -1;
    };
    const auto start = [this](int core, std::deque<ServeRequest> &q,
                              bool priority) {
        const unsigned c = static_cast<unsigned>(core);
        executing_[c].emplace(std::move(q.front()));
        q.pop_front();
        ++inFlightCount_;
        machine_.startOnCore(c, executing_[c]->plan, priority,
                             [this, c](Tick t) { onComplete(c, t); });
    };

    // Latency class first: OLTP may take any idle core; backfill is
    // limited to the (SLO-preemptible) slot count.
    while (!oltpQueue_.empty()) {
        const int core = findIdle();
        if (core < 0)
            return;
        start(core, oltpQueue_, true);
    }
    while (!backfillQueue_.empty() &&
           backfillBusy_ < backfillSlots_) {
        const int core = findIdle();
        if (core < 0)
            return;
        ++backfillBusy_;
        start(core, backfillQueue_, false);
    }
}

void
ServeScheduler::onComplete(unsigned core, Tick finish)
{
    ServeRequest &req = *executing_[core];
    TenantState &ts = tenants_[req.tenant];
    ts.completed.inc();
    const bool backfill = req.backfill;
    const int gi = req.group;
    if (!backfill) {
        const Tick latency =
            finish > req.arrival ? finish - req.arrival : Tick{0};
        oltpLatency_.sample(latency.value());
        if (req.arrival >= cfg_.measureFrom)
            oltpSamples_.push_back(latency.value());
        windowSamples_.push_back(latency.value());
        oltpCompleted_.inc();
    } else {
        segmentsCompleted_.inc();
        ScanGroup &g = groups_[static_cast<unsigned>(gi)];
        // The shared cursor credits every attached stream: N streams
        // consumed this segment for one segment of memory traffic.
        streamScans_.inc(g.streams);
        scanMatches_.inc(req.result.matches);
        scanSum_.inc(static_cast<std::uint64_t>(req.result.sum));
        scanChecksum_.merge(req.result);
        --backfillBusy_;
        --g.inFlight;
    }
    executing_[core].reset();
    --inFlightCount_;

    if (backfill)
        pumpGroup(static_cast<unsigned>(gi));
    admitParked();
    dispatch();
}

void
ServeScheduler::sloTick()
{
    sim::EventQueue &eq = machine_.eventQueue();
    const double p99 = exactPercentile(windowSamples_, 0.99);
    windowSamples_.clear();
    const unsigned maxSlots = machine_.coreCount() > 1
                                  ? machine_.coreCount() - 1
                                  : 1;
    const unsigned floor =
        std::min(std::max(1u, cfg_.backfillFloor), maxSlots);
    slotCeil_ = std::min(std::max(slotCeil_, floor), maxSlots);
    if (probeCountdown_ > 0)
        --probeCountdown_;
    if (p99 > static_cast<double>(cfg_.sloTarget.value())) {
        // Breach: preempt one backfill dispatch slot (takes effect
        // as running segments complete; no mid-plan abort) and pin
        // the ceiling there — the breaching level is re-probed only
        // after the countdown, because every probe window that
        // breaches spends part of the 1% tail budget.
        sloBreaches_.inc();
        healthyStreak_ = 0;
        if (backfillSlots_ > floor)
            --backfillSlots_;
        slotCeil_ = backfillSlots_;
        probeInterval_ = std::min(32u, probeInterval_ * 2);
        probeCountdown_ = probeInterval_;
    } else if (++healthyStreak_ >= 2) {
        // Two healthy windows in a row (or no OLTP samples at all,
        // e.g. during drain): grow backfill back up to the ceiling —
        // shrink fast, grow slow keeps the loop off the tail.
        if (backfillSlots_ < slotCeil_) {
            ++backfillSlots_;
            dispatch();
        } else if (probeCountdown_ == 0 && slotCeil_ < maxSlots) {
            ++slotCeil_;
            ++backfillSlots_;
            dispatch();
        }
    }

    // Reschedule only while the serving layer itself has work (or
    // can still generate it), so the run can drain. Deliberately NOT
    // eq.pending(): the core shard's pending count differs between
    // the single-queue and sharded engines (channel events live
    // elsewhere when sharded), and the tick pattern must be
    // byte-identical across RCNVM_THREADS.
    if (eq.now() < cfg_.horizon || inFlightCount_ > 0 ||
        queuedTotal() > 0 || !parked_.empty())
        eq.scheduleAfter(cfg_.sloPeriod, [this] { sloTick(); });
}

} // namespace rcnvm::olxp::serve
