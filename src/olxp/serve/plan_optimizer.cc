#include "olxp/serve/plan_optimizer.hh"

#include <algorithm>

#include "imdb/plan_builder.hh"
#include "util/logging.hh"

namespace rcnvm::olxp::serve {

namespace {

/** True when @p q's predicate holds for @p v. */
bool
matches(const ScanQuery &q, std::int64_t v)
{
    return q.op == PredOp::Greater ? v > q.threshold
                                   : v < q.threshold;
}

/** The fields the aggregate actually consumes, in scan order. */
std::vector<unsigned>
consumedFields(const ScanQuery &q)
{
    if (q.aggField == q.predField)
        return {q.predField};
    return {q.predField, q.aggField};
}

/** The fields the unoptimized plan scans: the touched set, or the
 *  consumed set when the template named none. */
std::vector<unsigned>
touchedFields(const ScanQuery &q)
{
    if (q.touchedFields.empty())
        return consumedFields(q);
    return q.touchedFields;
}

} // namespace

PlanOptimizer::PlanOptimizer(const workload::PlacedDatabase &pd,
                             bool enabled)
    : pd_(&pd), enabled_(enabled)
{
}

bool
PlanOptimizer::chunkPrunable(const ScanQuery &q, unsigned chunk) const
{
    const imdb::Table &t = pd_->db->table(q.table);
    const imdb::Table::ChunkMinMax mm =
        t.chunkStats(q.predField, chunk);
    // The summary covers the whole chunk — a superset of whatever
    // part the query range touches — so ruling the chunk out is
    // sound even for partially covered chunks.
    return q.op == PredOp::Greater ? mm.max <= q.threshold
                                   : mm.min >= q.threshold;
}

void
PlanOptimizer::surviveRanges(
    const ScanQuery &q,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> &out)
{
    constexpr std::uint64_t ct = imdb::Table::chunkTuples;
    for (std::uint64_t lo = q.t0; lo < q.t1;) {
        const unsigned chunk = static_cast<unsigned>(lo / ct);
        const std::uint64_t hi = std::min(q.t1, (chunk + 1) * ct);
        if (enabled_ && chunkPrunable(q, chunk)) {
            chunksPruned_.inc();
        } else {
            chunksScanned_.inc();
            // Extend the previous range instead of opening a new one
            // so surviving neighbours scan as one contiguous run.
            if (!out.empty() && out.back().second == lo)
                out.back().second = hi;
            else
                out.emplace_back(lo, hi);
        }
        lo = hi;
    }
}

cpu::AccessPlan
PlanOptimizer::build(const ScanQuery &q)
{
    if (q.t1 > pd_->db->table(q.table).tuples() || q.t0 >= q.t1)
        rcnvm_fatal("serve scan range [", q.t0, ", ", q.t1,
                    ") invalid for table of ",
                    pd_->db->table(q.table).tuples(), " tuples");

    std::vector<unsigned> fields = touchedFields(q);
    if (enabled_) {
        const std::vector<unsigned> consumed = consumedFields(q);
        std::uint64_t dropped = 0;
        for (const unsigned f : fields) {
            if (std::find(consumed.begin(), consumed.end(), f) ==
                consumed.end())
                ++dropped;
        }
        colsPruned_.inc(dropped);
        fields = consumed;
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    surviveRanges(q, ranges);

    imdb::PlanBuilder b(*pd_->db);
    bool first = true;
    for (const unsigned f : fields) {
        // The predicate field leads (compare cost); every other
        // surviving field is aggregated/materialised per value.
        const unsigned cost =
            first ? b.costs().compare : b.costs().aggregate;
        for (const auto &[lo, hi] : ranges)
            b.scanFieldWord(q.table, f, lo, hi, cost);
        first = false;
    }
    return b.take();
}

ScanResult
PlanOptimizer::evaluate(const ScanQuery &q) const
{
    constexpr std::uint64_t ct = imdb::Table::chunkTuples;
    const imdb::Table &t = pd_->db->table(q.table);
    ScanResult r;
    for (std::uint64_t lo = q.t0; lo < q.t1;) {
        const unsigned chunk = static_cast<unsigned>(lo / ct);
        const std::uint64_t hi = std::min(q.t1, (chunk + 1) * ct);
        if (!(enabled_ && chunkPrunable(q, chunk))) {
            for (std::uint64_t i = lo; i < hi; ++i) {
                const std::int64_t v = t.value(q.predField, i);
                if (matches(q, v)) {
                    ++r.matches;
                    r.sum += t.value(q.aggField, i);
                }
            }
        }
        lo = hi;
    }
    return r;
}

} // namespace rcnvm::olxp::serve
