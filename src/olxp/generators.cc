#include "olxp/generators.hh"

#include <cmath>

#include "imdb/plan_builder.hh"

namespace rcnvm::olxp {

const char *
toString(RequestClass cls)
{
    return cls == RequestClass::Oltp ? "oltp" : "olap";
}

OltpGenerator::OltpGenerator(const workload::PlacedDatabase &pd,
                             Tick mean_inter_arrival,
                             double update_fraction,
                             std::uint64_t seed, double hot_fraction,
                             double hot_probability)
    : pd_(&pd),
      meanInterArrival_(mean_inter_arrival),
      updateFraction_(update_fraction),
      tuples_(pd.db->table(pd.a).tuples()),
      hotProbability_(hot_probability),
      tupleWords_(pd.db->table(pd.a).schema().tupleWords()),
      rng_(seed)
{
    hotTuples_ = static_cast<std::uint64_t>(
        static_cast<double>(tuples_) * hot_fraction);
    if (hotTuples_ == 0)
        hotTuples_ = 1;
    if (hotTuples_ > tuples_)
        hotTuples_ = tuples_;
}

Tick
OltpGenerator::nextGap()
{
    // Inverse-transform exponential draw; nextDouble() < 1 keeps the
    // log argument positive.
    const double u = rng_.nextDouble();
    const double gap =
        -static_cast<double>(meanInterArrival_.value()) * std::log(1.0 - u);
    const Tick t{static_cast<Tick::value_type>(gap)};
    return t < Tick{1} ? Tick{1} : t;
}

Request
OltpGenerator::make(Tick arrival)
{
    std::uint64_t t = rng_.nextBounded(tuples_);
    // Hot-set skew (hybrid-tier studies): folded onto the uniform
    // draw so the disabled path makes exactly the historical draw
    // sequence, keeping every seeded golden byte-identical.
    if (hotProbability_ > 0.0 && rng_.nextBool(hotProbability_))
        t %= hotTuples_;
    const bool update = rng_.nextBool(updateFraction_);
    // The written field is drawn even for read-only requests so the
    // request sequence (and therefore every downstream draw) does
    // not depend on the update coin.
    const unsigned w =
        static_cast<unsigned>(rng_.nextBounded(tupleWords_));

    imdb::PlanBuilder b(*pd_->db);
    b.fetchTuples(pd_->a, {t}, 0, tupleWords_,
                  b.costs().materialize);
    if (update)
        b.storeFieldWord(pd_->a, {t}, w);
    return Request{RequestClass::Oltp, b.take(), arrival};
}

OlapGenerator::OlapGenerator(const workload::PlacedDatabase &pd,
                             std::uint64_t tuples_per_scan,
                             unsigned scan_fields, std::uint64_t seed)
    : pd_(&pd),
      tuplesPerScan_(tuples_per_scan),
      scanFields_(scan_fields),
      tuples_(pd.db->table(pd.a).tuples()),
      tupleWords_(pd.db->table(pd.a).schema().tupleWords()),
      rng_(seed)
{
    if (tuplesPerScan_ == 0 || tuplesPerScan_ > tuples_)
        tuplesPerScan_ = tuples_;
    if (scanFields_ == 0 || scanFields_ > tupleWords_)
        scanFields_ = tupleWords_;
}

Request
OlapGenerator::make(Tick arrival)
{
    const unsigned w =
        static_cast<unsigned>(rng_.nextBounded(scanFields_));
    const std::uint64_t t0 = cursor_;
    std::uint64_t t1 = t0 + tuplesPerScan_;
    if (t1 >= tuples_) {
        t1 = tuples_;
        cursor_ = 0;
    } else {
        cursor_ = t1;
    }

    imdb::PlanBuilder b(*pd_->db);
    b.scanFieldWord(pd_->a, w, t0, t1, b.costs().aggregate);
    return Request{RequestClass::Olap, b.take(), arrival};
}

} // namespace rcnvm::olxp
