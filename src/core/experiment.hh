/**
 * @file
 * Experiment runner utilities shared by benches, tests, and
 * examples: run a compiled query on a machine and collect the
 * statistics the paper reports.
 */

#ifndef RCNVM_CORE_EXPERIMENT_HH_
#define RCNVM_CORE_EXPERIMENT_HH_

#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "workload/micro.hh"
#include "workload/queries.hh"

namespace rcnvm::core {

/** Result of running one query/benchmark on one device. */
struct ExperimentResult {
    Tick ticks{0};
    util::StatsMap stats;
    /** Per-epoch time series; empty unless epoch sampling was on
     *  (MachineConfig::epochTicks or RCNVM_EPOCH_TICKS). */
    sim::EpochSeries series;

    double cycles() const { return static_cast<double>(ticks.value()) / 500.0; }
    double megacycles() const { return cycles() / 1.0e6; }

    /** Demand LLC misses (the Figure-19 metric). */
    double llcMisses() const
    {
        return stats.get("cache.llcMisses");
    }

    /** Combined row/column buffer miss rate (Figure-20 metric). */
    double bufferMissRate() const
    {
        return stats.get("mem.bufferMissRate");
    }

    /** Misses folded into an in-flight MSHR (MLP observability). */
    double mshrCoalesced() const
    {
        return stats.get("cache.mshrCoalesced");
    }

    /** Accesses refused by the saturated miss path (core retries). */
    double retries() const { return stats.get("cache.retries"); }

    /**
     * Cache synonym and coherence overhead ratio (Figure-21
     * metric): the extra work introduced by RC-NVM's dual-address
     * bookkeeping (crossing probes, duplicate updates, eviction
     * clean-up). Ordinary MESI traffic exists on the baselines too
     * and is therefore not counted.
     */
    double
    coherenceOverheadRatio() const
    {
        const double total = static_cast<double>(ticks.value());
        if (total <= 0)
            return 0.0;
        // Overhead ticks accumulate per event across cores;
        // normalise by total machine time (cores x ticks).
        const double cores = 4.0;
        return stats.get("cache.synonymTicks") / (total * cores);
    }
};

/**
 * Run all phases of a compiled query on a fresh machine for
 * @p config. Phases execute back to back on the same machine, so
 * cache and bank state carries over (build -> probe -> fetch).
 */
ExperimentResult runCompiled(const cpu::MachineConfig &config,
                             const workload::CompiledQuery &query);

/** Run a set of single-phase per-core plans. */
ExperimentResult runPlans(const cpu::MachineConfig &config,
                          const std::vector<cpu::AccessPlan> &plans);

/**
 * Convenience: place the workload on @p kind, compile query @p id,
 * and run it on the Table-1 machine.
 */
ExperimentResult runQuery(mem::DeviceKind kind,
                          const workload::QueryWorkload &workload,
                          workload::QueryId id,
                          unsigned group_lines =
                              workload::QueryWorkload::kDefaultGroup);

/** Convenience: run one micro-benchmark on @p kind. */
ExperimentResult runMicro(mem::DeviceKind kind,
                          const workload::TableSet &tables,
                          workload::MicroBench mb,
                          imdb::ChunkLayout layout);

/**
 * Collects labeled runs and writes them as machine-readable
 * artifacts when the RCNVM_STATS_DIR environment variable names a
 * directory: `<dir>/<name>.json` (schema rcnvm-stats-artifact-v1, a
 * "runs" array of per-run rcnvm-stats-v1 objects) and
 * `<dir>/<name>.csv` (`label,stat,value` rows). With the variable
 * unset every call is a no-op, so benches wire it unconditionally.
 * Files are written by the destructor; non-epoch-empty series are
 * exported alongside as `<dir>/<name>.<label>.epochs.csv`.
 */
class ArtifactWriter
{
  public:
    explicit ArtifactWriter(std::string name);
    ~ArtifactWriter();

    ArtifactWriter(const ArtifactWriter &) = delete;
    ArtifactWriter &operator=(const ArtifactWriter &) = delete;

    /** True when RCNVM_STATS_DIR is set (artifacts will be written). */
    bool enabled() const { return !dir_.empty(); }

    /** Record one labeled run. */
    void record(const std::string &label, const ExperimentResult &r);

    /** Record a bare stats map (callers without an
     *  ExperimentResult, e.g. raw machine runs). */
    void record(const std::string &label, const util::StatsMap &stats,
                Tick ticks = Tick{});

  private:
    struct Run {
        std::string label;
        util::StatsMap stats;
        Tick ticks{0};
        sim::EpochSeries series;
    };

    std::string name_;
    std::string dir_; //!< empty = disabled
    std::vector<Run> runs_;
};

} // namespace rcnvm::core

#endif // RCNVM_CORE_EXPERIMENT_HH_
