/**
 * @file
 * RcNvmSystem: the one-stop public facade. Builds the benchmark
 * database, places it on a chosen memory device, and runs Table-2
 * queries or custom access plans on the Table-1 machine.
 */

#ifndef RCNVM_CORE_SYSTEM_HH_
#define RCNVM_CORE_SYSTEM_HH_

#include <memory>
#include <string>

#include "core/experiment.hh"
#include "mem/geometry.hh"
#include "olxp/service.hh"
#include "util/random.hh"

namespace rcnvm::core {

/**
 * A ready-to-use RC-NVM evaluation system.
 *
 * Typical use (see examples/quickstart.cc):
 * @code
 *   RcNvmSystem sys({.device = mem::DeviceKind::RcNvm});
 *   auto r = sys.runQuery(workload::QueryId::Q6);
 *   std::cout << r.megacycles() << " Mcycles\n";
 * @endcode
 */
class RcNvmSystem
{
  public:
    /** Construction options. */
    struct Options {
        mem::DeviceKind device = mem::DeviceKind::RcNvm;
        std::uint64_t tuples = 65536;
        std::uint64_t microTuples = 32768;
        /** Table-content seed; RCNVM_SEED overrides the default. */
        std::uint64_t seed = util::envSeed(42);
        unsigned cores = 4;
        imdb::ChunkLayout rcLayout =
            imdb::ChunkLayout::ColumnOriented;
    };

    explicit RcNvmSystem(const Options &options);
    RcNvmSystem() : RcNvmSystem(Options{}) {}

    /** The options this system was built with. */
    const Options &options() const { return options_; }

    /** The generated benchmark tables. */
    const workload::TableSet &tables() const { return tables_; }

    /** The placed database (addresses, layouts, packing). */
    const workload::PlacedDatabase &database() const { return pd_; }

    /** Run one Table-2 query on a fresh Table-1 machine. */
    ExperimentResult
    runQuery(workload::QueryId id,
             unsigned group_lines =
                 workload::QueryWorkload::kDefaultGroup) const;

    /** Run one Fig-17 micro-benchmark. */
    ExperimentResult runMicro(workload::MicroBench mb) const;

    /** Run custom per-core plans against this system's device. */
    ExperimentResult
    runPlans(const std::vector<cpu::AccessPlan> &plans) const;

    /**
     * Serve concurrent OLXP traffic (open-loop Poisson OLTP against
     * a closed-loop OLAP scan background) on a fresh Table-1
     * machine and report per-class tail latency — the service-layer
     * counterpart of the batch runQuery entry points.
     */
    olxp::ServiceResult
    runService(const olxp::ServiceConfig &config) const;

    /** Subarrays (or 8 MB regions) used by the placement. */
    unsigned binsUsed() const { return pd_.db->binsUsed(); }

    /** Bin-packing area utilisation. */
    double packingUtilization() const
    {
        return pd_.db->packingUtilization();
    }

  private:
    Options options_;
    workload::TableSet tables_;
    std::unique_ptr<workload::QueryWorkload> workload_;
    mem::AddressMap map_;
    workload::PlacedDatabase pd_;
};

} // namespace rcnvm::core

#endif // RCNVM_CORE_SYSTEM_HH_
