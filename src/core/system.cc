#include "core/system.hh"

#include "core/presets.hh"

namespace rcnvm::core {

RcNvmSystem::RcNvmSystem(const Options &options)
    : options_(options),
      tables_(workload::TableSet::standard(
          options.tuples, options.microTuples, options.seed)),
      workload_(std::make_unique<workload::QueryWorkload>(tables_)),
      map_(mem::geometryFor(options.device)),
      pd_(workload_->place(options.device, map_, options.rcLayout))
{
}

ExperimentResult
RcNvmSystem::runQuery(workload::QueryId id,
                      unsigned group_lines) const
{
    const cpu::MachineConfig config = table1Machine(options_.device);
    const workload::CompiledQuery query = workload_->compile(
        id, pd_, options_.cores, group_lines);
    return runCompiled(config, query);
}

ExperimentResult
RcNvmSystem::runMicro(workload::MicroBench mb) const
{
    return core::runMicro(options_.device, tables_, mb,
                          options_.rcLayout);
}

ExperimentResult
RcNvmSystem::runPlans(const std::vector<cpu::AccessPlan> &plans) const
{
    return core::runPlans(table1Machine(options_.device), plans);
}

olxp::ServiceResult
RcNvmSystem::runService(const olxp::ServiceConfig &config) const
{
    cpu::Machine machine(table1Machine(options_.device));
    olxp::QueryScheduler scheduler(machine, pd_, config);
    return scheduler.run();
}

} // namespace rcnvm::core
