/**
 * @file
 * Configuration presets reproducing Table 1 of the paper.
 */

#ifndef RCNVM_CORE_PRESETS_HH_
#define RCNVM_CORE_PRESETS_HH_

#include "cpu/machine.hh"
#include "mem/timing.hh"

namespace rcnvm::core {

/**
 * The Table-1 machine: 4 x86-like cores at 2 GHz, 32 KB L1 / 256 KB
 * L2 private, 8 MB shared L3, 64 B lines, 8-way everywhere, FR-FCFS
 * controllers with 32-entry queues, and the chosen memory device.
 */
cpu::MachineConfig table1Machine(mem::DeviceKind kind);

/**
 * Table-1 machine with an RRAM/RC-NVM cell latency override
 * (Figure-22 sensitivity study).
 *
 * @param read_ns   cell read access time
 * @param write_ns  cell write pulse width
 */
cpu::MachineConfig table1MachineWithCell(mem::DeviceKind kind,
                                         double read_ns,
                                         double write_ns);

/**
 * The Table-1 RC-NVM machine fronted by a small DRAM tier (2 MB by
 * default: 16 frames x 8 banks x 2 channels of one 8 KB far row
 * each) under the given migration policy. The far device and every
 * cache parameter match table1Machine(RcNvm), so hybrid results are
 * directly comparable to the static placements.
 */
cpu::MachineConfig hybridTable1Machine(mem::MigrationPolicyKind policy);

/**
 * The serving-scale machine: 16 cores and an 8-channel device (the
 * Table-1 geometry widened 4x in channels), with the Table-1 cache
 * hierarchy and a 16 MB L3. Sized so the multi-tenant serving bench
 * and the sharded-engine scaling study have a machine whose channel
 * count matches a full worker pool (ROADMAP "bigger machines").
 */
cpu::MachineConfig serve16Machine(mem::DeviceKind kind);

} // namespace rcnvm::core

#endif // RCNVM_CORE_PRESETS_HH_
