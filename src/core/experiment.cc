#include "core/experiment.hh"

#include <cstdlib>
#include <fstream>

#include "core/presets.hh"
#include "util/random.hh"
#include "util/stats_io.hh"

namespace rcnvm::core {

namespace {

/** Apply the RCNVM_EPOCH_TICKS environment override: callers that
 *  did not configure epoch sampling get it turned on externally
 *  (e.g. by CI) without recompiling. */
cpu::MachineConfig
withEpochOverride(cpu::MachineConfig config)
{
    if (config.epochTicks == Tick{}) {
        // Strict parse: a malformed value must fail loudly, not
        // silently disable sampling (raw strtoull yielded 0 here).
        config.epochTicks = Tick{util::envUint64("RCNVM_EPOCH_TICKS", 0)};
    }
    return config;
}

} // namespace

ExperimentResult
runCompiled(const cpu::MachineConfig &config,
            const workload::CompiledQuery &query)
{
    cpu::Machine machine(withEpochOverride(config));
    ExperimentResult result;
    cpu::RunResult last;
    for (const auto &phase : query.phases) {
        last = machine.run(phase);
        result.ticks += last.ticks;
        // Per-phase series chain into one continuous timeline.
        if (result.series.names.empty())
            result.series.names = last.series.names;
        result.series.ticks.insert(result.series.ticks.end(),
                                   last.series.ticks.begin(),
                                   last.series.ticks.end());
        result.series.rows.insert(result.series.rows.end(),
                                  last.series.rows.begin(),
                                  last.series.rows.end());
    }
    result.stats = last.stats; // counters accumulate across phases
    return result;
}

ExperimentResult
runPlans(const cpu::MachineConfig &config,
         const std::vector<cpu::AccessPlan> &plans)
{
    cpu::Machine machine(withEpochOverride(config));
    cpu::RunResult run = machine.run(plans);
    ExperimentResult result;
    result.ticks = run.ticks;
    result.stats = run.stats;
    result.series = std::move(run.series);
    return result;
}

ExperimentResult
runQuery(mem::DeviceKind kind,
         const workload::QueryWorkload &workload,
         workload::QueryId id, unsigned group_lines)
{
    const cpu::MachineConfig config = table1Machine(kind);
    // Placement only needs the address map, which is a pure function
    // of the device geometry.
    mem::AddressMap map(mem::geometryFor(kind));
    const workload::PlacedDatabase pd = workload.place(kind, map);
    const workload::CompiledQuery query =
        workload.compile(id, pd, config.hierarchy.cores,
                         group_lines);
    return runCompiled(config, query);
}

ExperimentResult
runMicro(mem::DeviceKind kind, const workload::TableSet &tables,
         workload::MicroBench mb, imdb::ChunkLayout layout)
{
    const cpu::MachineConfig config = table1Machine(kind);
    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const imdb::Database::TableId tid =
        db.addTable(tables.micro.get(), layout);
    const auto plans = workload::compileMicro(
        db, tid, mb, config.hierarchy.cores);
    return runPlans(config, plans);
}

ArtifactWriter::ArtifactWriter(std::string name)
    : name_(std::move(name))
{
    if (const char *env = std::getenv("RCNVM_STATS_DIR"))
        dir_ = env;
}

void
ArtifactWriter::record(const std::string &label,
                       const ExperimentResult &r)
{
    if (!enabled())
        return;
    runs_.push_back(Run{label, r.stats, r.ticks, r.series});
}

void
ArtifactWriter::record(const std::string &label,
                       const util::StatsMap &stats, Tick ticks)
{
    if (!enabled())
        return;
    runs_.push_back(Run{label, stats, ticks, {}});
}

ArtifactWriter::~ArtifactWriter()
{
    if (!enabled() || runs_.empty())
        return;

    std::ofstream json(dir_ + "/" + name_ + ".json");
    json << "{\"schema\": \"rcnvm-stats-artifact-v1\", \"bench\": \""
         << util::jsonEscape(name_) << "\", \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (i)
            json << ", ";
        util::writeStatsJson(json, runs_[i].stats, runs_[i].label,
                             runs_[i].ticks);
    }
    json << "]}\n";

    std::ofstream csv(dir_ + "/" + name_ + ".csv");
    csv << "label,stat,value\n";
    for (const Run &r : runs_)
        util::writeStatsCsv(csv, r.stats, r.label);

    for (const Run &r : runs_) {
        if (r.series.empty())
            continue;
        std::ofstream epochs(dir_ + "/" + name_ + "." + r.label +
                             ".epochs.csv");
        r.series.writeCsv(epochs);
    }
}

} // namespace rcnvm::core
