#include "core/experiment.hh"

#include "core/presets.hh"

namespace rcnvm::core {

ExperimentResult
runCompiled(const cpu::MachineConfig &config,
            const workload::CompiledQuery &query)
{
    cpu::Machine machine(config);
    ExperimentResult result;
    cpu::RunResult last;
    for (const auto &phase : query.phases) {
        last = machine.run(phase);
        result.ticks += last.ticks;
    }
    result.stats = last.stats; // counters accumulate across phases
    return result;
}

ExperimentResult
runPlans(const cpu::MachineConfig &config,
         const std::vector<cpu::AccessPlan> &plans)
{
    cpu::Machine machine(config);
    const cpu::RunResult run = machine.run(plans);
    ExperimentResult result;
    result.ticks = run.ticks;
    result.stats = run.stats;
    return result;
}

ExperimentResult
runQuery(mem::DeviceKind kind,
         const workload::QueryWorkload &workload,
         workload::QueryId id, unsigned group_lines)
{
    const cpu::MachineConfig config = table1Machine(kind);
    // Placement only needs the address map, which is a pure function
    // of the device geometry.
    mem::AddressMap map(mem::geometryFor(kind));
    const workload::PlacedDatabase pd = workload.place(kind, map);
    const workload::CompiledQuery query =
        workload.compile(id, pd, config.hierarchy.cores,
                         group_lines);
    return runCompiled(config, query);
}

ExperimentResult
runMicro(mem::DeviceKind kind, const workload::TableSet &tables,
         workload::MicroBench mb, imdb::ChunkLayout layout)
{
    const cpu::MachineConfig config = table1Machine(kind);
    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const imdb::Database::TableId tid =
        db.addTable(tables.micro.get(), layout);
    const auto plans = workload::compileMicro(
        db, tid, mb, config.hierarchy.cores);
    return runPlans(config, plans);
}

} // namespace rcnvm::core
