#include "core/presets.hh"

namespace rcnvm::core {

cpu::MachineConfig
table1Machine(mem::DeviceKind kind)
{
    cpu::MachineConfig config;
    config.device = kind;
    config.hierarchy = cache::HierarchyConfig{};
    config.window = 4;
    return config;
}

cpu::MachineConfig
table1MachineWithCell(mem::DeviceKind kind, double read_ns,
                      double write_ns)
{
    cpu::MachineConfig config = table1Machine(kind);
    config.timing =
        mem::timingFor(kind).withCellLatency(read_ns, write_ns);
    return config;
}

cpu::MachineConfig
hybridTable1Machine(mem::MigrationPolicyKind policy)
{
    cpu::MachineConfig config =
        table1Machine(mem::DeviceKind::RcNvm);
    config.tier.enabled = true;
    config.tier.policy = policy;
    return config;
}

} // namespace rcnvm::core
