#include "core/presets.hh"

namespace rcnvm::core {

cpu::MachineConfig
table1Machine(mem::DeviceKind kind)
{
    cpu::MachineConfig config;
    config.device = kind;
    config.hierarchy = cache::HierarchyConfig{};
    config.window = 4;
    return config;
}

cpu::MachineConfig
table1MachineWithCell(mem::DeviceKind kind, double read_ns,
                      double write_ns)
{
    cpu::MachineConfig config = table1Machine(kind);
    config.timing =
        mem::timingFor(kind).withCellLatency(read_ns, write_ns);
    return config;
}

cpu::MachineConfig
hybridTable1Machine(mem::MigrationPolicyKind policy)
{
    cpu::MachineConfig config =
        table1Machine(mem::DeviceKind::RcNvm);
    config.tier.enabled = true;
    config.tier.policy = policy;
    return config;
}

cpu::MachineConfig
serve16Machine(mem::DeviceKind kind)
{
    cpu::MachineConfig config = table1Machine(kind);
    config.hierarchy.cores = 16;
    config.hierarchy.l3 =
        cache::CacheConfig{"L3", 16 * 1024 * 1024, 64, 8};
    // 16 cores x 4-deep core windows can demand 64 outstanding
    // misses; an undersized MSHR file would put every core into a
    // refuse/retry storm instead of queueing at the controllers.
    config.hierarchy.mshrs = 64;
    config.hierarchy.wbBufferDepth = 64;
    // 16 cores' misses can legitimately land ~64 outstanding
    // requests on one channel; deep queues also keep the serving
    // benches clear of controller backpressure, where the sharded
    // engine's window-stale occupancy view and the single-queue live
    // view time rejects differently (RCNVM_THREADS equivalence).
    config.memQueueCapacity = 128;
    mem::Geometry geo = mem::geometryFor(kind);
    geo.channels = 8; // the device's Table-1 geometry, widened
    config.geometry = geo;
    return config;
}

} // namespace rcnvm::core
