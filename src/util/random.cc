#include "util/random.hh"

#include <cassert>
#include <cstdlib>

namespace rcnvm::util {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Random::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Random::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Random::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
envSeed(std::uint64_t fallback)
{
    if (const char *env = std::getenv("RCNVM_SEED"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

} // namespace rcnvm::util
