#include "util/random.hh"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace rcnvm::util {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Random::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Random::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Random::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::nextBool(double p)
{
    return nextDouble() < p;
}

ParseUint
parseUint64(const char *text, std::uint64_t &value)
{
    // strtoull is too permissive on its own: it accepts leading
    // whitespace and signs, stops silently at the first bad
    // character, and saturates on overflow. Each of those turns a
    // typo into a quietly different experiment, so all are rejected.
    if (*text == '\0' ||
        std::isspace(static_cast<unsigned char>(*text)) ||
        *text == '+' || *text == '-')
        return ParseUint::Malformed;
    const int base =
        (text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) ? 16
                                                               : 10;
    char *end = nullptr;
    errno = 0;
    value = std::strtoull(text, &end, base);
    if (end == text || *end != '\0')
        return ParseUint::Malformed;
    if (errno == ERANGE)
        return ParseUint::Overflow;
    return ParseUint::Ok;
}

std::uint64_t
envUint64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    std::uint64_t value = 0;
    switch (parseUint64(env, value)) {
      case ParseUint::Ok:
        return value;
      case ParseUint::Overflow:
        rcnvm_fatal(name, "=\"", env, "\" overflows 64 bits");
      case ParseUint::Malformed:
        break;
    }
    rcnvm_fatal(name, "=\"", env,
                "\" is not a valid decimal or 0x-hex unsigned "
                "integer");
}

std::uint64_t
envSeed(std::uint64_t fallback)
{
    return envUint64("RCNVM_SEED", fallback);
}

} // namespace rcnvm::util
