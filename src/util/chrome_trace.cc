#include "util/chrome_trace.hh"

#include <cstdlib>
#include <fstream>

#include "util/logging.hh"

namespace rcnvm::util {

ChromeTracer *ChromeTracer::active_ = nullptr;
bool ChromeTracer::envChecked_ = false;

void
ChromeTracer::enable(const std::string &path)
{
#if !RCNVM_PACKET_TRACE
    warn("packet tracing was compiled out (RCNVM_PACKET_TRACE=OFF); "
         "ignoring trace request for ", path);
    (void)path;
#else
    disable();
    active_ = new ChromeTracer(path);
    // Belt and braces: a bench that exits through main() without an
    // explicit disable() still gets its trace written.
    static bool atexit_registered = false;
    if (!atexit_registered) {
        atexit_registered = true;
        std::atexit([] { ChromeTracer::disable(); });
    }
#endif
}

void
ChromeTracer::enableFromEnv()
{
    if (envChecked_)
        return;
    envChecked_ = true;
    if (const char *path = std::getenv("RCNVM_CHROME_TRACE")) {
        if (path[0] != '\0')
            enable(path);
    }
}

void
ChromeTracer::disable()
{
    if (!active_)
        return;
    active_->write();
    delete active_;
    active_ = nullptr;
}

void
ChromeTracer::write() const
{
    std::ofstream os(path_);
    if (!os) {
        warn("cannot write chrome trace to ", path_);
        return;
    }
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto emitMeta = [&](unsigned pid, const std::string &name) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
    };
    emitMeta(kPidCpu, "cpu");
    emitMeta(kPidCache, "cache");
    // Channels present in the trace get labels lazily.
    unsigned max_mem_pid = 0;
    for (const Event &e : events_) {
        if (e.pid >= kPidMemBase && e.pid > max_mem_pid)
            max_mem_pid = e.pid;
    }
    for (unsigned pid = kPidMemBase; pid <= max_mem_pid; ++pid)
        emitMeta(pid, "mem.ch" + std::to_string(pid - kPidMemBase));

    os.precision(6);
    os << std::fixed;
    for (const Event &e : events_) {
        os << ",{\"ph\":\"" << e.ph << "\",\"name\":\"" << e.name
           << "\",\"cat\":\"pkt\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid
           << ",\"ts\":" << static_cast<double>(e.ts.value()) / 1e6;
        if (e.ph == 'X')
            os << ",\"dur\":" << static_cast<double>(e.dur.value()) / 1e6;
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";
        os << ",\"args\":{\"addr\":" << e.addr << "}}";
    }
    os << "]}";
    inform("wrote ", events_.size(), " trace events to ", path_);
}

} // namespace rcnvm::util
