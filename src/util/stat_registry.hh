/**
 * @file
 * Typed statistics registry: components register their counters,
 * sampled moments, histograms, gauges, and report-time formulas by
 * name; reports snapshot the registry into a StatsMap whose entries
 * carry the correct merge kind.
 *
 * A name may have several sources (one per channel, core, …); the
 * registry aggregates them at report time with the combination the
 * type prescribes — counters sum, Sampled sets moment-merge,
 * histograms bucket-merge — so derived values such as means, maxima,
 * and utilizations are computed exactly once, from fully aggregated
 * inputs, and are never themselves re-merged downstream.
 */

#ifndef RCNVM_UTIL_STAT_REGISTRY_HH_
#define RCNVM_UTIL_STAT_REGISTRY_HH_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace rcnvm::util {

/**
 * The registry. Registration stores pointers (or closures) into the
 * owning components; the registry must therefore not outlive them.
 * All reads aggregate across every source registered under a name.
 */
class StatRegistry
{
  public:
    /** A zero-argument value source (reads a component member). */
    using Gauge = std::function<double()>;

    /** A report-time formula over already-aggregated statistics. */
    using Formula = std::function<double(const StatRegistry &)>;

    // --- Registration. A name keeps one type for its lifetime;
    // --- registering a second type under the same name panics.

    /** Register an event counter (snapshot kind: Additive). */
    void addCounter(const std::string &name, const Counter &c);

    /** Register an additive value computed by @p fn — e.g. a counter
     *  exposed only through an accessor (snapshot kind: Additive). */
    void addCounterFn(const std::string &name, Gauge fn);

    /** Register an additive plain-double source such as accumulated
     *  energy (snapshot kind: Additive). */
    void addValue(const std::string &name, const double &v);

    /** Register a sampled moment set; snapshot flattens it into
     *  `<name>.count/.mean/.min/.max` Scalar entries. */
    void addSampled(const std::string &name, const Sampled &s);

    /** Register a log2 histogram; snapshot flattens the non-empty
     *  buckets into `<name>.b<i>` Additive entries plus a
     *  `<name>.samples` Additive total. */
    void addHistogram(const std::string &name, const Log2Histogram &h);

    /** Register a non-additive instantaneous value
     *  (snapshot kind: Scalar). */
    void addGauge(const std::string &name, Gauge fn);

    /** Register a derived statistic evaluated against the registry
     *  at report time (snapshot kind: Scalar). */
    void addFormula(const std::string &name, Formula f);

    // --- Aggregated reads (used by formulas and reports).

    /** Sum of every counter/counter-fn/value source of @p name. */
    double counter(const std::string &name) const;

    /** Moment-merge of every Sampled source of @p name. */
    Sampled sampled(const std::string &name) const;

    /** Bucket-merge of every histogram source of @p name. */
    Log2Histogram histogram(const std::string &name) const;

    /**
     * Generic read: counters sum, gauges and formulas evaluate,
     * Sampled yields its mean. Unknown names panic — formulas must
     * reference statistics that exist.
     */
    double value(const std::string &name) const;

    /** True when @p name is registered. */
    bool contains(const std::string &name) const;

    /** Number of registered names. */
    std::size_t size() const { return entries_.size(); }

    /**
     * Flatten every registered statistic into a StatsMap: additive
     * sources via add() (kind Additive), gauges/formulas/sampled
     * moments via set() (kind Scalar).
     */
    StatsMap snapshot() const;

  private:
    enum class Kind : std::uint8_t {
        CounterK,
        Sampled,
        Histogram,
        Gauge,
        Formula,
    };

    struct Entry {
        Kind kind = Kind::CounterK;
        std::vector<const Counter *> counters;
        std::vector<const double *> values;
        std::vector<Gauge> fns; //!< counter-fns or the single gauge
        std::vector<const util::Sampled *> sampleds;
        std::vector<const Log2Histogram *> hists;
        Formula formula;
    };

    /** Fetch-or-create @p name, enforcing one kind per name. */
    Entry &entryFor(const std::string &name, Kind kind);

    const Entry &lookup(const std::string &name) const;

    std::map<std::string, Entry> entries_;
};

} // namespace rcnvm::util

#endif // RCNVM_UTIL_STAT_REGISTRY_HH_
