/**
 * @file
 * Lightweight statistics primitives: counters, scalar values,
 * sampled moments, log2-bucket histograms, and a named map so
 * components can export their statistics to reports.
 */

#ifndef RCNVM_UTIL_STATS_HH_
#define RCNVM_UTIL_STATS_HH_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcnvm::util {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n (default one event). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Sampled
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Fold another sample set into this one (aggregation across
     *  per-channel statistics). */
    void merge(const Sampled &other);

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * A power-of-two-bucket histogram of a non-negative integer quantity
 * (latencies in ticks, queue depths). Bucket 0 counts zero-valued
 * samples; bucket i >= 1 counts samples in [2^(i-1), 2^i). The
 * bucketing is exact at the boundaries: 1 lands in bucket 1, 2 in
 * bucket 2, 3 in bucket 2, 4 in bucket 3.
 */
class Log2Histogram
{
  public:
    /** Bucket 0 (zero) plus one bucket per bit of a 64-bit value. */
    static constexpr unsigned kBuckets = 65;

    /** Bucket index @p v falls into. */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        if (v == 0)
            return 0;
        unsigned b = 1;
        while (v >>= 1)
            ++b;
        return b;
    }

    /** Smallest value bucket @p i accepts (its left edge). */
    static std::uint64_t
    bucketLow(unsigned i)
    {
        return i <= 1 ? i : std::uint64_t{1} << (i - 1);
    }

    /** Largest value bucket @p i accepts (its inclusive right
     *  edge): 0 for the zero bucket, 2^i - 1 otherwise. */
    static std::uint64_t
    bucketHigh(unsigned i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Samples in bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_[i]; }

    /**
     * The @p p quantile (p in [0, 1]) at bucket resolution: the
     * inclusive right edge of the bucket containing the
     * ceil(p * count)-th smallest sample — a conservative upper
     * bound on the true quantile, exact within the factor-of-two
     * bucket width. (It used to return the left edge, which
     * understated tails by up to 2x; reported percentiles never
     * undersell latency now.) 0 when empty.
     */
    double percentile(double p) const;

    /** Highest non-empty bucket index plus one (0 when empty). */
    unsigned usedBuckets() const;

    /** Element-wise accumulation of another histogram. */
    void merge(const Log2Histogram &other);

    /** Drop all samples. */
    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
};

/** How a statistic combines when two maps are merged. */
enum class StatKind : std::uint8_t {
    Additive, //!< raw event counts: merge by summation
    Scalar,   //!< derived values (ratios, means, maxima): last wins
};

/** One named statistic: its value and its merge behaviour. */
struct StatEntry {
    double value = 0.0;
    StatKind kind = StatKind::Scalar;
};

/**
 * A flat name → value map of statistics produced by one simulation.
 *
 * Components contribute entries via set()/add(); reports read them
 * back with get() (lenient; absent names read as zero so report code
 * stays simple when a device lacks some statistic) or at() (strict;
 * throws on unknown names so tables cannot silently print zeros for
 * typos).
 *
 * Every entry carries a StatKind: add() produces Additive entries
 * (raw event counts), set() produces Scalar entries (derived values
 * that must never be summed). merge() respects the kinds — see
 * merge() for the exact collision rules.
 */
class StatsMap
{
  public:
    /** Set (overwrite) a derived statistic; the entry is Scalar. */
    void set(const std::string &name, double value);

    /** Accumulate into a raw-count statistic (creates it at zero);
     *  the entry is Additive. */
    void add(const std::string &name, double value);

    /** Read a statistic; absent names yield @p fallback. */
    double get(const std::string &name, double fallback = 0.0) const;

    /** Strict read: throws std::out_of_range on unknown names. */
    double at(const std::string &name) const;

    /** True when the statistic exists. */
    bool contains(const std::string &name) const;

    /** Merge kind of @p name (Scalar when absent). */
    StatKind kindOf(const std::string &name) const;

    /** All entries in name order. */
    const std::map<std::string, StatEntry> &entries() const
    {
        return entries_;
    }

    /**
     * Merge another map into this one. Collisions on shared names
     * are typed: two Additive entries sum; when either side is
     * Scalar the other map's value wins (last-writer-wins), so
     * non-additive statistics — utilizations, averages, maxima —
     * are never corrupted by summation.
     */
    void merge(const StatsMap &other);

  private:
    std::map<std::string, StatEntry> entries_;
};

} // namespace rcnvm::util

#endif // RCNVM_UTIL_STATS_HH_
