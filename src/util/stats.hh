/**
 * @file
 * Lightweight statistics primitives: counters, scalar values, and a
 * named registry so components can export their statistics to reports.
 */

#ifndef RCNVM_UTIL_STATS_HH_
#define RCNVM_UTIL_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcnvm::util {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n (default one event). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Sampled
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Fold another sample set into this one (aggregation across
     *  per-channel statistics). */
    void merge(const Sampled &other);

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * A flat name → value map of statistics produced by one simulation.
 *
 * Components contribute entries via set()/add(); reports read them
 * back with get(). Missing names read as zero so report code stays
 * simple when a device lacks some statistic (e.g. DRAM has no column
 * buffer).
 */
class StatsMap
{
  public:
    /** Set (overwrite) a statistic. */
    void set(const std::string &name, double value);

    /** Accumulate into a statistic (creates it at zero). */
    void add(const std::string &name, double value);

    /** Read a statistic; absent names yield @p fallback. */
    double get(const std::string &name, double fallback = 0.0) const;

    /** True when the statistic exists. */
    bool contains(const std::string &name) const;

    /** All entries in name order. */
    const std::map<std::string, double> &entries() const
    {
        return entries_;
    }

    /** Merge another map into this one, summing shared names. */
    void merge(const StatsMap &other);

  private:
    std::map<std::string, double> entries_;
};

} // namespace rcnvm::util

#endif // RCNVM_UTIL_STATS_HH_
