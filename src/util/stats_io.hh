/**
 * @file
 * Machine-readable statistics export/import: a JSON writer + minimal
 * parser (round-trip tested) and a CSV writer, so evaluation
 * artifacts are audited from files instead of stdout scraping.
 *
 * The JSON schema for one run is
 *
 *   {
 *     "schema": "rcnvm-stats-v1",
 *     "label": "<run label>",
 *     "ticks": <run ticks>,
 *     "stats": { "<name>": <value>, ... },
 *     "kinds": { "<name>": "additive" | "scalar", ... }
 *   }
 *
 * `kinds` preserves merge semantics across the round trip, so a
 * parsed map behaves exactly like the one that was written.
 */

#ifndef RCNVM_UTIL_STATS_IO_HH_
#define RCNVM_UTIL_STATS_IO_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::util {

/**
 * A minimal JSON value (null/bool/number/string/array/object) —
 * just enough DOM to read back our own exports and to validate
 * chrome-trace output in tests.
 */
struct JsonValue {
    enum class Type {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member lookup on an object; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse one JSON document; throws std::runtime_error on malformed
 *  input. */
JsonValue parseJson(std::istream &in);

/** Parse from a string (convenience overload). */
JsonValue parseJson(const std::string &text);

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Serialise one run's statistics as a JSON object (schema above). */
void writeStatsJson(std::ostream &os, const StatsMap &stats,
                    const std::string &label = "", Tick ticks = Tick{});

/** Rebuild a StatsMap (values and kinds) from a run object parsed
 *  out of writeStatsJson output; throws std::runtime_error when the
 *  document lacks a "stats" member. */
StatsMap statsFromJson(const JsonValue &run);

/** Serialise statistics as `label,stat,value` CSV rows (no header;
 *  callers writing multiple runs emit the header once). */
void writeStatsCsv(std::ostream &os, const StatsMap &stats,
                   const std::string &label = "");

} // namespace rcnvm::util

#endif // RCNVM_UTIL_STATS_IO_HH_
