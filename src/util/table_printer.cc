#include "util/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace rcnvm::util {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    os << "== " << title_ << " ==\n";
    if (rows_.empty())
        return;

    std::vector<std::size_t> widths;
    for (const auto &row : rows_) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
        if (r == 0) {
            std::size_t total = 0;
            for (auto w : widths)
                total += w + 2;
            os << std::string(total, '-') << "\n";
        }
    }
}

} // namespace rcnvm::util
