/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is approximated; simulation continues.
 * inform() — plain status output.
 */

#ifndef RCNVM_UTIL_LOGGING_HH_
#define RCNVM_UTIL_LOGGING_HH_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rcnvm::util {

/** Verbosity threshold for inform(); warn and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Global log level, settable by applications and tests. */
LogLevel logLevel();

/** Change the global log level. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report a simulator bug and abort. */
#define rcnvm_panic(...)                                                  \
    ::rcnvm::util::detail::panicImpl(                                     \
        ::rcnvm::util::detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Report an unusable user configuration and exit. */
#define rcnvm_fatal(...)                                                  \
    ::rcnvm::util::detail::fatalImpl(                                     \
        ::rcnvm::util::detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Warn about approximated or suspicious behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

/** Print a status message subject to the global log level. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() != LogLevel::Quiet)
        detail::informImpl(detail::format(std::forward<Args>(args)...));
}

} // namespace rcnvm::util

#endif // RCNVM_UTIL_LOGGING_HH_
