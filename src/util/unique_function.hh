/**
 * @file
 * A move-only callable wrapper with inline storage.
 *
 * Simulation callbacks (events, memory-completion handlers, cache
 * fill continuations) are created and destroyed once per simulated
 * command, so their allocation cost dominates the simulator's own
 * hot path. Unlike std::function (16-byte small-object buffer in
 * libstdc++, copyable, heap fallback for almost every capturing
 * lambda in this codebase), this wrapper keeps captures up to
 * kInlineBytes inline and never allocates for them; larger callables
 * fall back to the heap but stay move-only.
 */

#ifndef RCNVM_UTIL_UNIQUE_FUNCTION_HH_
#define RCNVM_UTIL_UNIQUE_FUNCTION_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rcnvm::util {

/** Default inline capture capacity in bytes. */
inline constexpr std::size_t kUniqueFunctionInlineBytes = 48;

template <typename Signature,
          std::size_t InlineBytes = kUniqueFunctionInlineBytes>
class UniqueFunction; // primary template left undefined

template <typename R, typename... Args, std::size_t InlineBytes>
class UniqueFunction<R(Args...), InlineBytes>
{
  public:
    UniqueFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    UniqueFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            vt_ = &vtableInline<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            vt_ = &vtableHeap<Fn>;
        }
    }

    UniqueFunction(UniqueFunction &&other) noexcept { moveFrom(other); }

    UniqueFunction &
    operator=(UniqueFunction &&other) noexcept
    {
        if (this != &other) {
            if (vt_)
                vt_->destroy(buf_);
            moveFrom(other);
        }
        return *this;
    }

    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    ~UniqueFunction()
    {
        if (vt_)
            vt_->destroy(buf_);
    }

    /** Invoke the wrapped callable (undefined when empty). */
    R
    operator()(Args... args)
    {
        return vt_->call(buf_, std::forward<Args>(args)...);
    }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return vt_ != nullptr; }

  private:
    /** Inline capture capacity. The default fits a `this` pointer
     *  plus a moved completion callback and a couple of scalars;
     *  holders on the hot path widen it so moved-in continuations
     *  chain without ever spilling to the heap. */
    static constexpr std::size_t kInlineBytes = InlineBytes;

    struct VTable {
        R (*call)(void *, Args...);
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr VTable vtableInline{
        [](void *b, Args... args) -> R {
            return (*reinterpret_cast<Fn *>(b))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *s = reinterpret_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *b) { reinterpret_cast<Fn *>(b)->~Fn(); }};

    template <typename Fn>
    static constexpr VTable vtableHeap{
        [](void *b, Args... args) -> R {
            return (**reinterpret_cast<Fn **>(b))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *b) { delete *reinterpret_cast<Fn **>(b); }};

    void
    moveFrom(UniqueFunction &other) noexcept
    {
        vt_ = other.vt_;
        if (vt_)
            vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const VTable *vt_ = nullptr;
};

} // namespace rcnvm::util

#endif // RCNVM_UTIL_UNIQUE_FUNCTION_HH_
