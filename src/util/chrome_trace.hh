/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto JSON) event tracer for
 * the packet pipeline: each MemPacket's lifecycle — core issue, MSHR
 * allocation/coalescing, channel queueing, bank service, fill and
 * retry — is recorded as duration ("X") and instant ("i") events
 * grouped by pid (component) and tid (core / bank).
 *
 * Cost model: tracing is OFF by default. The hot-path guard is one
 * global pointer load (`ChromeTracer::active()`); set the
 * RCNVM_CHROME_TRACE environment variable to an output path (or call
 * enable()) to turn it on. Building with -DRCNVM_PACKET_TRACE=OFF
 * compiles every probe out entirely, removing even the pointer load.
 *
 * Time base: simulation ticks are picoseconds; chrome trace
 * timestamps are microseconds, so events are emitted at tick/1e6
 * with fractional precision preserved.
 */

#ifndef RCNVM_UTIL_CHROME_TRACE_HH_
#define RCNVM_UTIL_CHROME_TRACE_HH_

#include <string>
#include <vector>

#include "util/types.hh"

// Compiled in (but runtime-disabled) unless the build says otherwise.
#ifndef RCNVM_PACKET_TRACE
#define RCNVM_PACKET_TRACE 1
#endif

namespace rcnvm::util {

/** Collects trace events in memory; writes JSON on disable()/exit. */
class ChromeTracer
{
  public:
    // Process ids used to group the timeline rows.
    static constexpr unsigned kPidCpu = 1;     //!< tid = core
    static constexpr unsigned kPidCache = 2;   //!< tid = core
    static constexpr unsigned kPidMemBase = 16; //!< +channel; tid = bank

    /** The live tracer, or nullptr when tracing is off. */
    static ChromeTracer *active() { return active_; }

    /** Start tracing into @p path (overwrites any active tracer's
     *  buffered events after flushing them). */
    static void enable(const std::string &path);

    /** Start tracing when RCNVM_CHROME_TRACE names a path; safe to
     *  call repeatedly (only the first call reads the environment). */
    static void enableFromEnv();

    /** Flush buffered events to the output file and stop tracing. */
    static void disable();

    /** Record a duration event of @p dur ticks starting at @p start. */
    void
    complete(const char *name, unsigned pid, unsigned tid, Tick start,
             Tick dur, Addr addr)
    {
        events_.push_back(Event{name, start, dur, addr, pid, tid, 'X'});
    }

    /** Record an instant event at @p at. */
    void
    instant(const char *name, unsigned pid, unsigned tid, Tick at,
            Addr addr)
    {
        events_.push_back(Event{name, at, Tick{}, addr, pid, tid, 'i'});
    }

    /** Number of buffered events (tests). */
    std::size_t eventCount() const { return events_.size(); }

  private:
    explicit ChromeTracer(std::string path) : path_(std::move(path)) {}

    void write() const;

    struct Event {
        const char *name; //!< static string (never owned)
        Tick ts;
        Tick dur;
        Addr addr;
        unsigned pid;
        unsigned tid;
        char ph;
    };

    std::string path_;
    std::vector<Event> events_;

    static ChromeTracer *active_;
    static bool envChecked_;
};

} // namespace rcnvm::util

// Probe macros: no-ops when the tracer is compiled out, one pointer
// load + branch when compiled in but disabled.
#if RCNVM_PACKET_TRACE
#define RCNVM_TRACE_COMPLETE(name, pid, tid, start, dur, addr)            \
    do {                                                                  \
        if (auto *rcnvm_tr_ = ::rcnvm::util::ChromeTracer::active())      \
            rcnvm_tr_->complete((name), (pid), (tid), (start), (dur),     \
                                (addr));                                  \
    } while (0)
#define RCNVM_TRACE_INSTANT(name, pid, tid, at, addr)                     \
    do {                                                                  \
        if (auto *rcnvm_tr_ = ::rcnvm::util::ChromeTracer::active())      \
            rcnvm_tr_->instant((name), (pid), (tid), (at), (addr));       \
    } while (0)
#else
#define RCNVM_TRACE_COMPLETE(name, pid, tid, start, dur, addr) ((void)0)
#define RCNVM_TRACE_INSTANT(name, pid, tid, at, addr) ((void)0)
#endif

#endif // RCNVM_UTIL_CHROME_TRACE_HH_
