#include "util/logging.hh"

namespace rcnvm::util {

namespace {
LogLevel globalLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << "\n";
}

} // namespace detail

} // namespace rcnvm::util
