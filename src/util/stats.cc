#include "util/stats.hh"

namespace rcnvm::util {

void
Sampled::merge(const Sampled &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    sum_ += other.sum_;
    count_ += other.count_;
}

void
StatsMap::set(const std::string &name, double value)
{
    entries_[name] = value;
}

void
StatsMap::add(const std::string &name, double value)
{
    entries_[name] += value;
}

double
StatsMap::get(const std::string &name, double fallback) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? fallback : it->second;
}

bool
StatsMap::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

void
StatsMap::merge(const StatsMap &other)
{
    for (const auto &[name, value] : other.entries_)
        entries_[name] += value;
}

} // namespace rcnvm::util
