#include "util/stats.hh"

#include <cmath>
#include <stdexcept>

namespace rcnvm::util {

void
Sampled::merge(const Sampled &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    sum_ += other.sum_;
    count_ += other.count_;
}

unsigned
Log2Histogram::usedBuckets() const
{
    for (unsigned i = kBuckets; i > 0; --i) {
        if (buckets_[i - 1] != 0)
            return i;
    }
    return 0;
}

double
Log2Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(clamped * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= rank)
            return static_cast<double>(bucketHigh(i));
    }
    return static_cast<double>(bucketHigh(kBuckets - 1));
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

void
StatsMap::set(const std::string &name, double value)
{
    entries_[name] = StatEntry{value, StatKind::Scalar};
}

void
StatsMap::add(const std::string &name, double value)
{
    StatEntry &e = entries_[name];
    e.kind = StatKind::Additive;
    e.value += value;
}

double
StatsMap::get(const std::string &name, double fallback) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? fallback : it->second.value;
}

double
StatsMap::at(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("unknown statistic: " + name);
    return it->second.value;
}

bool
StatsMap::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

StatKind
StatsMap::kindOf(const std::string &name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? StatKind::Scalar : it->second.kind;
}

void
StatsMap::merge(const StatsMap &other)
{
    for (const auto &[name, e] : other.entries_) {
        auto [it, inserted] = entries_.emplace(name, e);
        if (inserted)
            continue;
        StatEntry &mine = it->second;
        if (mine.kind == StatKind::Additive &&
            e.kind == StatKind::Additive) {
            mine.value += e.value;
        } else {
            // A derived value (ratio, mean, maximum) cannot be
            // summed; the incoming map is the newer snapshot, so its
            // value wins.
            mine = e;
        }
    }
}

} // namespace rcnvm::util
