#include "util/stats.hh"

namespace rcnvm::util {

void
StatsMap::set(const std::string &name, double value)
{
    entries_[name] = value;
}

void
StatsMap::add(const std::string &name, double value)
{
    entries_[name] += value;
}

double
StatsMap::get(const std::string &name, double fallback) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? fallback : it->second;
}

bool
StatsMap::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

void
StatsMap::merge(const StatsMap &other)
{
    for (const auto &[name, value] : other.entries_)
        entries_[name] += value;
}

} // namespace rcnvm::util
