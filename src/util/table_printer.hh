/**
 * @file
 * Aligned plain-text table output used by the benchmark harnesses to
 * print paper-style rows and series.
 */

#ifndef RCNVM_UTIL_TABLE_PRINTER_HH_
#define RCNVM_UTIL_TABLE_PRINTER_HH_

#include <ostream>
#include <string>
#include <vector>

namespace rcnvm::util {

/**
 * Collects rows of string cells and prints them with columns padded
 * to the widest cell. The first row added is treated as the header.
 */
class TablePrinter
{
  public:
    /** Create a table titled @p title (printed above the header). */
    explicit TablePrinter(std::string title);

    /** Append one row of cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Format a double with @p precision fraction digits. */
    static std::string num(double v, int precision = 2);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rcnvm::util

#endif // RCNVM_UTIL_TABLE_PRINTER_HH_
