/**
 * @file
 * Zero-cost tagged-integer wrapper for compile-time unit safety.
 *
 * The simulator's scalar vocabulary (ticks, per-domain cycles,
 * orientation-tagged addresses) is all `std::uint64_t` underneath;
 * wrapping each quantity in a distinct `Strong<T, Tag>` instantiation
 * turns accidental cross-unit mixing — a column address handed to a
 * row-address parameter, DDR cycles added to CPU cycles — into a
 * compile error while generating exactly the same machine code as
 * the bare integer.
 */

#ifndef RCNVM_UTIL_STRONG_HH_
#define RCNVM_UTIL_STRONG_HH_

#include <compare>
#include <cstddef>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace rcnvm::util {

/**
 * A trivially-copyable wrapper around an arithmetic type @p T whose
 * identity is the tag type @p Tag.
 *
 * Permitted operations, chosen so that dimensionally meaningful code
 * compiles unchanged and everything else does not:
 *
 *  - explicit construction from T; default construction is zero
 *  - same-tag addition, subtraction, remainder and comparison
 *  - scaling by a raw T (`q * k`, `k * q`, `q / k`)
 *  - same-tag division yielding a raw T ratio (`q1 / q2`)
 *  - `value()`, the audited escape hatch back to the raw T
 *
 * There is deliberately no implicit conversion in either direction
 * and no cross-tag operator: the only way to cross between tags is a
 * named conversion point (`ClockDomain::cyclesToTicks`,
 * `AddressMap::convert`, ...) that spells out the unit change.
 */
template <typename T, typename Tag>
class Strong
{
    static_assert(std::is_arithmetic_v<T>,
                  "Strong wraps arithmetic types only");

  public:
    using value_type = T;

    constexpr Strong() = default;
    constexpr explicit Strong(T v) : v_(v) {}

    /** The raw value; the audited escape hatch. */
    constexpr T value() const { return v_; }

    // Same-tag arithmetic -----------------------------------------

    friend constexpr Strong operator+(Strong a, Strong b)
    {
        return Strong(a.v_ + b.v_);
    }

    friend constexpr Strong operator-(Strong a, Strong b)
    {
        return Strong(a.v_ - b.v_);
    }

    friend constexpr Strong operator%(Strong a, Strong b)
    {
        return Strong(a.v_ % b.v_);
    }

    constexpr Strong &
    operator+=(Strong o)
    {
        v_ += o.v_;
        return *this;
    }

    constexpr Strong &
    operator-=(Strong o)
    {
        v_ -= o.v_;
        return *this;
    }

    // Scaling by the raw representation ---------------------------

    friend constexpr Strong operator*(Strong a, T k)
    {
        return Strong(a.v_ * k);
    }

    friend constexpr Strong operator*(T k, Strong a)
    {
        return Strong(k * a.v_);
    }

    friend constexpr Strong operator/(Strong a, T k)
    {
        return Strong(a.v_ / k);
    }

    /** Ratio of two same-tag quantities is a dimensionless raw T. */
    friend constexpr T operator/(Strong a, Strong b)
    {
        return a.v_ / b.v_;
    }

    // Comparison --------------------------------------------------

    friend constexpr auto operator<=>(Strong a, Strong b) = default;

    /** Streams the raw value (printing is not a unit hazard). */
    friend std::ostream &
    operator<<(std::ostream &os, Strong s)
    {
        return os << s.v_;
    }

  private:
    T v_{};
};

} // namespace rcnvm::util

/**
 * Bounds delegate to the representation. Without this specialization
 * the primary template silently answers `max() == T()` (zero), which
 * turns a sentinel like `numeric_limits<Tick>::max()` into a live
 * tick value instead of "never".
 */
template <typename T, typename Tag>
struct std::numeric_limits<rcnvm::util::Strong<T, Tag>> {
    static constexpr bool is_specialized = true;

    static constexpr rcnvm::util::Strong<T, Tag>
    min() noexcept
    {
        return rcnvm::util::Strong<T, Tag>{
            std::numeric_limits<T>::min()};
    }

    static constexpr rcnvm::util::Strong<T, Tag>
    max() noexcept
    {
        return rcnvm::util::Strong<T, Tag>{
            std::numeric_limits<T>::max()};
    }
};

template <typename T, typename Tag>
struct std::hash<rcnvm::util::Strong<T, Tag>> {
    std::size_t
    operator()(const rcnvm::util::Strong<T, Tag> &s) const noexcept
    {
        return std::hash<T>{}(s.value());
    }
};

#endif // RCNVM_UTIL_STRONG_HH_
