#include "util/stat_registry.hh"

#include "util/logging.hh"

namespace rcnvm::util {

StatRegistry::Entry &
StatRegistry::entryFor(const std::string &name, Kind kind)
{
    auto [it, inserted] = entries_.try_emplace(name);
    if (inserted)
        it->second.kind = kind;
    else if (it->second.kind != kind)
        rcnvm_panic("statistic '", name,
                    "' registered with two different types");
    return it->second;
}

const StatRegistry::Entry &
StatRegistry::lookup(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        rcnvm_panic("unknown statistic '", name, "'");
    return it->second;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c)
{
    entryFor(name, Kind::CounterK).counters.push_back(&c);
}

void
StatRegistry::addCounterFn(const std::string &name, Gauge fn)
{
    entryFor(name, Kind::CounterK).fns.push_back(std::move(fn));
}

void
StatRegistry::addValue(const std::string &name, const double &v)
{
    entryFor(name, Kind::CounterK).values.push_back(&v);
}

void
StatRegistry::addSampled(const std::string &name, const Sampled &s)
{
    entryFor(name, Kind::Sampled).sampleds.push_back(&s);
}

void
StatRegistry::addHistogram(const std::string &name,
                           const Log2Histogram &h)
{
    entryFor(name, Kind::Histogram).hists.push_back(&h);
}

void
StatRegistry::addGauge(const std::string &name, Gauge fn)
{
    Entry &e = entryFor(name, Kind::Gauge);
    if (!e.fns.empty())
        rcnvm_panic("gauge '", name, "' registered twice");
    e.fns.push_back(std::move(fn));
}

void
StatRegistry::addFormula(const std::string &name, Formula f)
{
    Entry &e = entryFor(name, Kind::Formula);
    if (e.formula)
        rcnvm_panic("formula '", name, "' registered twice");
    e.formula = std::move(f);
}

double
StatRegistry::counter(const std::string &name) const
{
    const Entry &e = lookup(name);
    if (e.kind != Kind::CounterK)
        rcnvm_panic("statistic '", name, "' is not a counter");
    double sum = 0;
    for (const Counter *c : e.counters)
        sum += static_cast<double>(c->value());
    for (const double *v : e.values)
        sum += *v;
    for (const Gauge &fn : e.fns)
        sum += fn();
    return sum;
}

Sampled
StatRegistry::sampled(const std::string &name) const
{
    const Entry &e = lookup(name);
    if (e.kind != Kind::Sampled)
        rcnvm_panic("statistic '", name, "' is not sampled");
    Sampled out;
    for (const Sampled *s : e.sampleds)
        out.merge(*s);
    return out;
}

Log2Histogram
StatRegistry::histogram(const std::string &name) const
{
    const Entry &e = lookup(name);
    if (e.kind != Kind::Histogram)
        rcnvm_panic("statistic '", name, "' is not a histogram");
    Log2Histogram out;
    for (const Log2Histogram *h : e.hists)
        out.merge(*h);
    return out;
}

double
StatRegistry::value(const std::string &name) const
{
    const Entry &e = lookup(name);
    switch (e.kind) {
      case Kind::CounterK:
        return counter(name);
      case Kind::Sampled:
        return sampled(name).mean();
      case Kind::Histogram:
        return static_cast<double>(histogram(name).count());
      case Kind::Gauge:
        return e.fns.front()();
      case Kind::Formula:
        return e.formula(*this);
    }
    rcnvm_panic("corrupt statistic entry kind");
}

bool
StatRegistry::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

StatsMap
StatRegistry::snapshot() const
{
    StatsMap out;
    for (const auto &[name, e] : entries_) {
        switch (e.kind) {
          case Kind::CounterK:
            out.add(name, counter(name));
            break;
          case Kind::Sampled: {
            const Sampled s = sampled(name);
            out.set(name + ".count",
                    static_cast<double>(s.count()));
            out.set(name + ".mean", s.mean());
            out.set(name + ".min", s.min());
            out.set(name + ".max", s.max());
            break;
          }
          case Kind::Histogram: {
            const Log2Histogram h = histogram(name);
            out.add(name + ".samples",
                    static_cast<double>(h.count()));
            const unsigned used = h.usedBuckets();
            for (unsigned i = 0; i < used; ++i) {
                if (h.bucket(i) != 0)
                    out.add(name + ".b" + std::to_string(i),
                            static_cast<double>(h.bucket(i)));
            }
            break;
          }
          case Kind::Gauge:
            out.set(name, e.fns.front()());
            break;
          case Kind::Formula:
            out.set(name, e.formula(*this));
            break;
        }
    }
    return out;
}

} // namespace rcnvm::util
