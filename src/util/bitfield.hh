/**
 * @file
 * Bit-manipulation helpers used by address mapping and cache indexing.
 */

#ifndef RCNVM_UTIL_BITFIELD_HH_
#define RCNVM_UTIL_BITFIELD_HH_

#include <cassert>
#include <cstdint>

namespace rcnvm::util {

/**
 * Extract the bit field [first, first+width) from value.
 *
 * @param value  the word to extract from
 * @param first  index of the least significant bit of the field
 * @param width  number of bits in the field (1..64)
 * @return the field, right aligned
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned width)
{
    if (width >= 64)
        return value >> first;
    return (value >> first) & ((std::uint64_t{1} << width) - 1);
}

/**
 * Insert @p field into bit positions [first, first+width) of @p value.
 *
 * @param value  the word to insert into
 * @param first  index of the least significant bit of the field
 * @param width  number of bits in the field (1..63)
 * @param field  field contents (must fit in @p width bits)
 * @return @p value with the field replaced
 */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned width,
           std::uint64_t field)
{
    const std::uint64_t mask = ((std::uint64_t{1} << width) - 1) << first;
    return (value & ~mask) | ((field << first) & mask);
}

/** True when @p v is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace rcnvm::util

#endif // RCNVM_UTIL_BITFIELD_HH_
