#include "util/stats_io.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rcnvm::util {

namespace {

/** Recursive-descent parser over an in-memory buffer. */
class Parser
{
  public:
    explicit Parser(std::string text) : text_(std::move(text)) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::string(w).size();
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
        }
        if (consumeWord("true")) {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            return v;
        }
        if (consumeWord("null"))
            return JsonValue{};
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("dangling escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                // Exports only emit ASCII; decode BMP code points
                // below 0x80 and replace the rest.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const unsigned cp = static_cast<unsigned>(
                    std::stoul(text_.substr(pos_, 4), nullptr, 16));
                pos_ += 4;
                out += cp < 0x80 ? static_cast<char>(cp) : '?';
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        fail("unterminated string");
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

/** Emit a double so the round trip is exact for counters and sane
 *  for ratios (max_digits10 keeps bit-exactness). */
void
emitNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null"; // JSON has no inf/nan
        return;
    }
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    os << oss.str();
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue
parseJson(std::istream &in)
{
    std::ostringstream oss;
    oss << in.rdbuf();
    return Parser(oss.str()).parse();
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeStatsJson(std::ostream &os, const StatsMap &stats,
               const std::string &label, Tick ticks)
{
    os << "{\"schema\":\"rcnvm-stats-v1\",\"label\":\""
       << jsonEscape(label) << "\",\"ticks\":" << ticks
       << ",\"stats\":{";
    bool first = true;
    for (const auto &[name, e] : stats.entries()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":";
        emitNumber(os, e.value);
    }
    os << "},\"kinds\":{";
    first = true;
    for (const auto &[name, e] : stats.entries()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":\""
           << (e.kind == StatKind::Additive ? "additive" : "scalar")
           << "\"";
    }
    os << "}}";
}

StatsMap
statsFromJson(const JsonValue &run)
{
    const JsonValue *stats = run.find("stats");
    if (!stats || stats->type != JsonValue::Type::Object)
        throw std::runtime_error(
            "stats JSON lacks a \"stats\" object");
    const JsonValue *kinds = run.find("kinds");

    StatsMap out;
    for (const auto &[name, v] : stats->object) {
        bool additive = false;
        if (kinds) {
            if (const JsonValue *k = kinds->find(name))
                additive = k->string == "additive";
        }
        if (additive)
            out.add(name, v.number);
        else
            out.set(name, v.number);
    }
    return out;
}

void
writeStatsCsv(std::ostream &os, const StatsMap &stats,
              const std::string &label)
{
    for (const auto &[name, e] : stats.entries()) {
        os << "\"" << label << "\"," << name << ",";
        std::ostringstream oss;
        oss.precision(17);
        oss << e.value;
        os << oss.str() << "\n";
    }
}

} // namespace rcnvm::util
