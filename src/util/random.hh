/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic choices in the repository flow through this class so
 * that every experiment is exactly reproducible from its seed.
 */

#ifndef RCNVM_UTIL_RANDOM_HH_
#define RCNVM_UTIL_RANDOM_HH_

#include <cstdint>

namespace rcnvm::util {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for synthetic database contents and selectivity draws.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed (SplitMix64 expansion). */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit word. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

/** Outcome of a strict unsigned-integer parse. */
enum class ParseUint {
    Ok,        //!< the whole string parsed
    Malformed, //!< empty, signed, partial, or non-numeric input
    Overflow,  //!< syntactically valid but exceeds 64 bits
};

/**
 * Strictly parse @p text as an unsigned 64-bit integer, decimal or
 * 0x-prefixed hexadecimal. Unlike raw strtoull/stoull this rejects
 * leading whitespace, signs (so "-1" cannot wrap to a huge value),
 * partial parses ("123abc"), and overflow saturation — every
 * deviation is reported instead of silently yielding a different
 * number. On success @p value holds the result; it is unspecified
 * otherwise. All user-facing numeric input (environment variables,
 * trace files) routes through this one validator.
 */
ParseUint parseUint64(const char *text, std::uint64_t &value);

/**
 * Strictly parsed unsigned 64-bit environment variable: @p fallback
 * when @p name is unset, otherwise the value parsed as decimal or
 * 0x-prefixed hexadecimal. The whole string must parse — a partial
 * parse ("123abc"), an empty value, a sign, or an out-of-range
 * magnitude is a fatal configuration error rather than a silent 0
 * or a silent truncation.
 */
std::uint64_t envUint64(const char *name, std::uint64_t fallback);

/**
 * The experiment seed: the RCNVM_SEED environment variable when set
 * (decimal or 0x-hex, strictly validated — malformed values are
 * fatal), otherwise @p fallback. All seed-taking entry points (table
 * generation, the OLXP service generators) default through this, so
 * one variable reseeds a whole run without recompiling.
 */
std::uint64_t envSeed(std::uint64_t fallback);

} // namespace rcnvm::util

#endif // RCNVM_UTIL_RANDOM_HH_
