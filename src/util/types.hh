/**
 * @file
 * Fundamental scalar type aliases shared by every RC-NVM module.
 *
 * The quantities that used to be bare `std::uint64_t` aliases are
 * now distinct `util::Strong` instantiations, so the compiler
 * rejects the two bug classes this simulator is most exposed to:
 * mixing the row- and column-oriented views of the same physical
 * location (the paper's synonym problem, Sec. 4.2) and mixing cycle
 * counts across the three clock domains (2 GHz CPU, DDR3-1333,
 * LPDDR3-800).
 */

#ifndef RCNVM_UTIL_TYPES_HH_
#define RCNVM_UTIL_TYPES_HH_

#include <cstdint>

#include "util/strong.hh"

namespace rcnvm {

/** Tag for simulated time. */
struct TickTag {};

/**
 * Simulated time in ticks. One tick is one picosecond. A strong
 * type: construct explicitly (`Tick{500}`), scale by raw integers,
 * add/subtract/compare other Ticks, and escape with `.value()`.
 */
using Tick = util::Strong<std::uint64_t, TickTag>;

/**
 * A raw physical memory address (32-bit address space, stored in
 * 64). This is the orientation-*erased* form used where the
 * orientation travels alongside as runtime data (packets, cache
 * keys); code that statically knows its address space uses RowAddr /
 * ColAddr below.
 */
using Addr = std::uint64_t;

/** Orientation of a memory access or cache line (see paper Sec. 4.2). */
enum class Orientation : std::uint8_t {
    Row = 0,    //!< conventional row-oriented access (load/store)
    Column = 1, //!< column-oriented access (cload/cstore)
};

/** Tag for an @p O -oriented address. */
template <Orientation O>
struct OrientTag {};

/**
 * An address that is statically known to live in the @p O address
 * space of Figure 7. Row- and column-oriented addresses name the
 * same physical locations with swapped bit fields, so the two
 * instantiations do not mix: `AddressMap::convert` is the only legal
 * bridge, and `.value()` the audited escape to the erased Addr.
 */
template <Orientation O>
using OrientedAddr = util::Strong<Addr, OrientTag<O>>;

/** A row-oriented (load/store space) address. */
using RowAddr = OrientedAddr<Orientation::Row>;

/** A column-oriented (cload/cstore space) address. */
using ColAddr = OrientedAddr<Orientation::Column>;

/** The statically-known orientation of a typed address. */
template <Orientation O>
constexpr Orientation
orientationOf(OrientedAddr<O>)
{
    return O;
}

// Clock domains ---------------------------------------------------

/** Tag for the 2 GHz CPU clock domain. */
struct CpuClk {};

/**
 * Tag for a memory-device clock domain (DDR3-1333's 666 MHz bus
 * clock or LPDDR3-800's 400 MHz clock; which one is instance state
 * of the owning `sim::ClockDomain` / `mem::TimingParams`, selected
 * with the device at runtime). The tag separates the clock *kinds*
 * that coexist in one code path — CPU cycles never mix with device
 * cycles, and neither mixes with ticks.
 */
struct MemClk {};

/**
 * A cycle count inside the clock domain named by @p Dom. Same-domain
 * cycle arithmetic works directly; crossing to ticks (or to another
 * domain) goes through `sim::ClockDomain`.
 */
template <typename Dom>
using Cycles = util::Strong<std::uint64_t, Dom>;

/** Cycles of the 2 GHz CPU clock. */
using CpuCycles = Cycles<CpuClk>;

/** Cycles of the owning memory device's clock. */
using MemCycles = Cycles<MemClk>;

// Tick helpers ----------------------------------------------------

/** Number of ticks in one nanosecond. */
inline constexpr Tick ticksPerNs{1000};

/** Convert nanoseconds into ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return Tick{static_cast<Tick::value_type>(
        ns * static_cast<double>(ticksPerNs.value()))};
}

/** Convert ticks into (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t.value()) /
           static_cast<double>(ticksPerNs.value());
}

/** Human-readable name for an orientation. */
constexpr const char *
toString(Orientation o)
{
    return o == Orientation::Row ? "row" : "column";
}

/** The opposite orientation. */
constexpr Orientation
flip(Orientation o)
{
    return o == Orientation::Row ? Orientation::Column
                                 : Orientation::Row;
}

} // namespace rcnvm

#endif // RCNVM_UTIL_TYPES_HH_
