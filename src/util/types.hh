/**
 * @file
 * Fundamental scalar type aliases shared by every RC-NVM module.
 */

#ifndef RCNVM_UTIL_TYPES_HH_
#define RCNVM_UTIL_TYPES_HH_

#include <cstdint>

namespace rcnvm {

/** Simulated time in ticks. One tick is one picosecond. */
using Tick = std::uint64_t;

/** A physical memory address (32-bit address space, stored in 64). */
using Addr = std::uint64_t;

/** A cycle count inside some clock domain. */
using Cycles = std::uint64_t;

/** Number of ticks in one nanosecond. */
inline constexpr Tick ticksPerNs = 1000;

/** Convert nanoseconds into ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs));
}

/** Convert ticks into (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Orientation of a memory access or cache line (see paper Sec. 4.2). */
enum class Orientation : std::uint8_t {
    Row = 0,    //!< conventional row-oriented access (load/store)
    Column = 1, //!< column-oriented access (cload/cstore)
};

/** Human-readable name for an orientation. */
constexpr const char *
toString(Orientation o)
{
    return o == Orientation::Row ? "row" : "column";
}

/** The opposite orientation. */
constexpr Orientation
flip(Orientation o)
{
    return o == Orientation::Row ? Orientation::Column : Orientation::Row;
}

} // namespace rcnvm

#endif // RCNVM_UTIL_TYPES_HH_
