#include "mem/tier.hh"

#include <cmath>

#include "util/logging.hh"

namespace rcnvm::mem {

RemapTable::RemapTable(const Geometry &far, const Geometry &near)
    : far_(far), near_(near)
{
    if (near_.channels != far_.channels)
        rcnvm_panic("remap table: near tier must match the far "
                    "channel count (", near_.channels, " vs ",
                    far_.channels, ")");
    if (near_.colsPerSubarray != far_.colsPerSubarray ||
        near_.wordBytes != far_.wordBytes)
        rcnvm_panic("remap table: near frames must hold exactly one "
                    "far row (cols ", near_.colsPerSubarray, " vs ",
                    far_.colsPerSubarray, ", word ", near_.wordBytes,
                    " vs ", far_.wordBytes, ")");

    banksPerChannel_ = near_.ranksPerChannel * near_.banksPerRank *
                       near_.subarraysPerBank;
    framesPerChannel_ = banksPerChannel_ * near_.rowsPerSubarray;

    const std::uint64_t nRows = std::uint64_t{far_.channels} *
                                far_.ranksPerChannel *
                                far_.banksPerRank *
                                far_.subarraysPerBank *
                                far_.rowsPerSubarray;
    rowToFrame_.assign(nRows, -1);
    frameToRow_.assign(std::size_t{far_.channels} * framesPerChannel_,
                       -1);
}

std::uint64_t
RemapTable::rowId(const DecodedAddr &d) const
{
    return (((std::uint64_t{d.channel} * far_.ranksPerChannel +
              d.rank) *
                 far_.banksPerRank +
             d.bank) *
                far_.subarraysPerBank +
            d.subarray) *
               far_.rowsPerSubarray +
           d.row;
}

unsigned
RemapTable::rowChannel(std::uint64_t row_id) const
{
    return static_cast<unsigned>(row_id / (rows() / far_.channels));
}

void
RemapTable::map(std::uint64_t row_id, std::uint32_t frame)
{
    if (rowToFrame_[row_id] != -1)
        rcnvm_panic("remap: row ", row_id, " is already mapped");
    if (frameToRow_[frame] != -1)
        rcnvm_panic("remap: frame ", frame, " is occupied");
    if (frame / framesPerChannel_ != rowChannel(row_id))
        rcnvm_panic("remap: cross-channel mapping of row ", row_id,
                    " into frame ", frame);
    rowToFrame_[row_id] = static_cast<std::int32_t>(frame);
    frameToRow_[frame] = static_cast<std::int64_t>(row_id);
    ++mapped_;
}

void
RemapTable::unmap(std::uint64_t row_id)
{
    const std::int32_t frame = rowToFrame_[row_id];
    if (frame == -1)
        rcnvm_panic("remap: row ", row_id, " is not mapped");
    rowToFrame_[row_id] = -1;
    frameToRow_[static_cast<std::uint32_t>(frame)] = -1;
    --mapped_;
}

DecodedAddr
RemapTable::toNear(const DecodedAddr &far_dec) const
{
    const std::int64_t frame = frameOf(rowId(far_dec));
    if (frame < 0)
        rcnvm_panic("remap: toNear on an unmapped row");
    return frameLocation(static_cast<std::uint32_t>(frame),
                         far_dec.col);
}

DecodedAddr
RemapTable::frameLocation(std::uint32_t frame, unsigned col) const
{
    DecodedAddr d;
    d.channel = frame / framesPerChannel_;
    const std::uint32_t local = frame % framesPerChannel_;
    // Bank-major-last decomposition: consecutive frames round-robin
    // across the near banks before reusing a bank's next row.
    const std::uint32_t bankIdx = local % banksPerChannel_;
    d.row = local / banksPerChannel_;
    d.subarray = bankIdx % near_.subarraysPerBank;
    d.bank = (bankIdx / near_.subarraysPerBank) % near_.banksPerRank;
    d.rank = bankIdx / (near_.subarraysPerBank * near_.banksPerRank);
    d.col = col;
    d.offset = 0;
    return d;
}

void
RemapTable::reset()
{
    rowToFrame_.assign(rowToFrame_.size(), -1);
    frameToRow_.assign(frameToRow_.size(), -1);
    mapped_ = 0;
}

RowLocalityTracker::RowLocalityTracker(const Geometry &far,
                                       double alpha,
                                       Tick decay_period)
    : alpha_(alpha),
      decayPeriod_(decay_period),
      rowsPerBank_(std::uint64_t{far.subarraysPerBank} *
                   far.rowsPerSubarray)
{
    const std::uint64_t nRows = std::uint64_t{far.channels} *
                                far.ranksPerChannel *
                                far.banksPerRank * rowsPerBank_;
    rows_.assign(nRows, RowLocality{});
    shadow_.assign(std::size_t{far.channels} * far.ranksPerChannel *
                       far.banksPerRank,
                   kClosed);
}

void
RowLocalityTracker::decayTo(RowLocality &r, Tick now) const
{
    if (decayPeriod_ == Tick{} || now < r.lastDecay)
        return;
    const std::uint64_t k =
        (now - r.lastDecay).value() / decayPeriod_.value();
    if (k == 0)
        return;
    const float scale =
        k >= 64 ? 0.0f : std::ldexp(1.0f, -static_cast<int>(k));
    r.rowTouches *= scale;
    r.colTouches *= scale;
    r.lastDecay = Tick{r.lastDecay.value() +
                       k * decayPeriod_.value()};
}

bool
RowLocalityTracker::recordRow(std::uint64_t row_id, Tick now)
{
    std::int64_t &open = shadow_[bankOf(row_id)];
    const bool hit = open == static_cast<std::int64_t>(row_id);
    open = static_cast<std::int64_t>(row_id);

    RowLocality &r = rows_[row_id];
    decayTo(r, now);
    r.ewmaMiss = static_cast<float>(
        (1.0 - alpha_) * r.ewmaMiss + alpha_ * (hit ? 0.0 : 1.0));
    r.rowTouches += 1.0f;
    return hit;
}

void
RowLocalityTracker::recordColumn(std::uint64_t row_id, Tick now)
{
    shadow_[bankOf(row_id)] = kColumn;
    RowLocality &r = rows_[row_id];
    decayTo(r, now);
    r.colTouches += 1.0f;
}

RowLocality
RowLocalityTracker::sample(std::uint64_t row_id, Tick now) const
{
    RowLocality r = rows_[row_id];
    decayTo(r, now);
    return r;
}

void
RowLocalityTracker::reset()
{
    rows_.assign(rows_.size(), RowLocality{});
    shadow_.assign(shadow_.size(), kClosed);
}

} // namespace rcnvm::mem
