/**
 * @file
 * Building blocks of the hybrid memory tier: the address-indirection
 * remap table that lets a small DRAM tier front a far NVM device,
 * and the per-row locality tracker that drives migration decisions
 * (row-buffer hit/miss EWMA per Yoon et al.'s RBLA controller).
 */

#ifndef RCNVM_MEM_TIER_HH_
#define RCNVM_MEM_TIER_HH_

#include <cstdint>
#include <vector>

#include "mem/geometry.hh"
#include "util/types.hh"

namespace rcnvm::mem {

/**
 * Address indirection between a far device and a small near tier.
 *
 * The unit of migration is one far physical row (one row-buffer's
 * worth, 8 KB for the Table-1 RC-NVM). Every far row has a dense
 * flat id; a mapped row redirects its row-oriented accesses to one
 * near-tier frame in the same channel (migrations are channel-local
 * by construction, which keeps them shard-local under the parallel
 * engine). The near geometry must agree with the far geometry on
 * channels, row width, and word size so the column/offset fields of
 * a far address carry over to the near frame unchanged.
 *
 * The table is pure indirection: map() and unmap() are exact
 * inverses, so any even number of migrations returns a row to
 * identity translation (the involution property the tests pin).
 */
class RemapTable
{
  public:
    RemapTable(const Geometry &far, const Geometry &near);

    /** Total number of far rows (dense id space). */
    std::uint64_t rows() const { return rowToFrame_.size(); }

    /** Total number of near frames. */
    std::uint32_t frames() const
    {
        return static_cast<std::uint32_t>(frameToRow_.size());
    }

    /** Near frames belonging to each channel. */
    std::uint32_t framesPerChannel() const { return framesPerChannel_; }

    /** Flat id of the far row holding @p d (a row-oriented decode). */
    std::uint64_t rowId(const DecodedAddr &d) const;

    /** Channel a far row id belongs to. */
    unsigned rowChannel(std::uint64_t row_id) const;

    /** Frame holding @p row_id, or -1 when the row is unmapped. */
    std::int64_t frameOf(std::uint64_t row_id) const
    {
        return rowToFrame_[row_id];
    }

    /** Far row id resident in @p frame, or -1 when the frame is free. */
    std::int64_t rowOfFrame(std::uint32_t frame) const
    {
        return frameToRow_[frame];
    }

    /** Redirect @p row_id into @p frame (same channel, both free). */
    void map(std::uint64_t row_id, std::uint32_t frame);

    /** Remove @p row_id's redirection (exact inverse of map()). */
    void unmap(std::uint64_t row_id);

    /** Rows currently redirected (remap-table occupancy). */
    std::size_t mappedRows() const { return mapped_; }

    /**
     * Translate a far row-oriented decode into its near-tier
     * location; the column and word offset carry over unchanged.
     * @pre the row is mapped
     */
    DecodedAddr toNear(const DecodedAddr &far_dec) const;

    /**
     * Near-tier location of @p frame at column @p col (used for
     * migration copy traffic before the mapping is committed).
     * Consecutive frame indices round-robin across the near banks so
     * co-resident hot rows keep bank-level parallelism.
     */
    DecodedAddr frameLocation(std::uint32_t frame,
                              unsigned col = 0) const;

    /** Drop every mapping. */
    void reset();

  private:
    Geometry far_;
    Geometry near_;
    std::uint32_t framesPerChannel_;
    std::uint32_t banksPerChannel_; //!< near rank*bank*subarray count
    std::vector<std::int32_t> rowToFrame_; //!< far row id -> frame/-1
    std::vector<std::int64_t> frameToRow_; //!< frame -> far row id/-1
    std::size_t mapped_ = 0;
};

/** Decayed locality record of one far row. */
struct RowLocality {
    float ewmaMiss = 0.0f;   //!< row-buffer miss EWMA (far accesses)
    float rowTouches = 0.0f; //!< decayed row-oriented access count
    float colTouches = 0.0f; //!< decayed column-oriented access count
    Tick lastDecay{0};       //!< decay epoch boundary last applied
};

/**
 * Per-row access locality, maintained for the far device only (the
 * near tier is the destination, not the subject, of migration).
 *
 * Row-buffer outcomes are predicted against a shadow row buffer per
 * far bank: the tracker remembers the row a bank would hold open if
 * every request reached the device, so locality is measured on the
 * access stream itself, independent of what the controller happens
 * to reorder. Touch counters decay by halving once per period,
 * applied lazily per row so the tracker schedules no events (the
 * service loop's drain-to-quiescence contract stays intact).
 */
class RowLocalityTracker
{
  public:
    RowLocalityTracker(const Geometry &far, double alpha,
                       Tick decay_period);

    /**
     * Record a row-oriented access to @p row_id at @p now.
     * @return true when the shadow row buffer predicts a hit
     */
    bool recordRow(std::uint64_t row_id, Tick now);

    /** Record a column-oriented touch of @p row_id at @p now (the
     *  shadow buffer flips to column orientation: the next row
     *  access to the bank misses). */
    void recordColumn(std::uint64_t row_id, Tick now);

    /** Decayed locality of @p row_id as of @p now (non-mutating). */
    RowLocality sample(std::uint64_t row_id, Tick now) const;

    /** Drop all locality state. */
    void reset();

  private:
    /** Far bank index of a row id (shadow-buffer granularity). */
    std::size_t bankOf(std::uint64_t row_id) const
    {
        return static_cast<std::size_t>(row_id / rowsPerBank_);
    }

    /** Apply any whole decay periods elapsed since @p r's last. */
    void decayTo(RowLocality &r, Tick now) const;

    double alpha_;
    Tick decayPeriod_;
    std::uint64_t rowsPerBank_; //!< subarraysPerBank * rowsPerSubarray
    std::vector<RowLocality> rows_;
    /** Open row id per far bank; kClosed initially, kColumn after a
     *  column-oriented access. */
    std::vector<std::int64_t> shadow_;

    static constexpr std::int64_t kClosed = -1;
    static constexpr std::int64_t kColumn = -2;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_TIER_HH_
