/**
 * @file
 * Bank state machine with a row buffer and (for RC-NVM) a column
 * buffer. Implements the paper's restriction that the two buffers
 * are never active at the same time (Sec. 3).
 */

#ifndef RCNVM_MEM_BANK_HH_
#define RCNVM_MEM_BANK_HH_

#include <cstdint>
#include <vector>

#include "mem/timing.hh"
#include "util/types.hh"

namespace rcnvm::mem {

/** How a request was served by the bank buffers. */
enum class AccessOutcome {
    BufferHit,         //!< open buffer already holds the target line
    BufferMiss,        //!< bank was precharged; plain activate
    BufferConflict,    //!< same orientation, different row/column
    OrientationSwitch, //!< other-orientation buffer had to be closed
};

/**
 * Timing and buffer state of one bank.
 *
 * A bank holds either its row buffer or its column buffer open,
 * identified by (subarray, index). Service times are computed from
 * TimingParams; the bank records when it is next able to accept a
 * command and when the open buffer was activated (for tRAS).
 */
class Bank
{
  public:
    /** Result of serving one request. */
    struct Service {
        Tick start{0};      //!< when the command began
        Tick dataStart{0};  //!< when the data burst may begin
        Tick finish{0};     //!< when the burst completes
        Tick busyUntil{0};  //!< bank internally busy until here
        AccessOutcome outcome = AccessOutcome::BufferHit;
        bool flushedDirty = false; //!< a dirty buffer was written back
    };

    /** What is currently latched in the bank periphery. */
    enum class BufState : std::uint8_t { Closed, RowOpen, ColOpen };

    /**
     * @param salp_subarrays  when > 0, give each subarray its own
     *        buffer state (SALP-style subarray-level parallelism, an
     *        extension the paper lists as orthogonal related work);
     *        0 models the paper's single buffer pair per bank.
     */
    explicit Bank(unsigned salp_subarrays = 0);

    /** Earliest tick the next command can start. */
    Tick nextReady() const { return nextReady_; }

    /** Buffer state responsible for @p subarray. */
    BufState bufState(unsigned subarray = 0) const
    {
        return bufferFor(subarray).state;
    }

    /** Subarray owning the open buffer (valid unless Closed). */
    unsigned openSubarray(unsigned subarray = 0) const
    {
        return bufferFor(subarray).subarray;
    }

    /** Row or column index of the open buffer. */
    unsigned openIndex(unsigned subarray = 0) const
    {
        return bufferFor(subarray).index;
    }

    /** True when the buffer holds unwritten modifications. */
    bool bufferDirty(unsigned subarray = 0) const
    {
        return bufferFor(subarray).dirty;
    }

    /**
     * Would a request for (@p orient, @p subarray, @p index) hit the
     * open buffer right now? Used by the FR-FCFS scheduler.
     */
    bool hits(Orientation orient, unsigned subarray,
              unsigned index) const;

    /**
     * Scheduler preview of how a request would be served right now,
     * without mutating any state. `cmdReady` is the earliest tick the
     * command sequence could start (bank busy plus, for buffer
     * closes, the tRAS bound); `lead` is the fixed delay from command
     * start to the data burst (flush + precharge + activate + CAS as
     * applicable). For any start >= cmdReady, access() at that start
     * begins its burst exactly at start + lead, so the controller can
     * place bursts against the shared bus without issuing early.
     */
    struct Lookahead {
        Tick cmdReady{0}; //!< earliest command start
        Tick lead{0};     //!< command start to data-burst start
        bool hit = false;  //!< would be a buffer hit
    };
    Lookahead lookahead(Orientation orient, unsigned subarray,
                        unsigned index, const TimingParams &t) const;

    /**
     * Serve one access, updating buffer and timing state.
     *
     * @param now       current tick (command may start later if the
     *                  bank is still busy)
     * @param orient    access orientation
     * @param subarray  target subarray
     * @param index     target row (row orientation) or column
     * @param isWrite   write access
     * @param t         device timing parameters
     * @param bus_free  earliest tick the channel data bus is free;
     *                  the data burst is delayed until then
     * @return service timing and outcome classification
     */
    Service access(Tick now, Orientation orient, unsigned subarray,
                   unsigned index, bool isWrite, const TimingParams &t,
                   Tick bus_free = Tick{});

    /** Reset to the precharged state (between experiment phases). */
    void reset();

  private:
    /** Buffer state of one subarray group. */
    struct Buffer {
        BufState state = BufState::Closed;
        unsigned subarray = 0;
        unsigned index = 0;
        bool dirty = false;
        Tick lastActivate{0};
    };

    /** The buffer responsible for @p subarray. */
    Buffer &bufferFor(unsigned subarray);
    const Buffer &bufferFor(unsigned subarray) const;

    /** Outcome a request would see against @p buf right now. */
    static AccessOutcome classify(const Buffer &buf, Orientation orient,
                                  unsigned subarray, unsigned index);

    std::vector<Buffer> buffers_; //!< one, or one per subarray (SALP)
    Tick nextReady_{0};
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_BANK_HH_
