/**
 * @file
 * The memory packet type exchanged along the access path
 * Core -> Hierarchy -> MemorySystem -> ChannelController.
 */

#ifndef RCNVM_MEM_REQUEST_HH_
#define RCNVM_MEM_REQUEST_HH_

#include <cstdint>

#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::mem {

/**
 * One memory transaction (normally a 64-byte line fill or
 * write-back). The orientation selects which address space the
 * address lives in and which bank buffer serves it; `gathered`
 * marks a GS-DRAM in-row gather access; `origin` names the core the
 * packet was issued on behalf of (kNoOrigin for internal traffic
 * such as write-backs), so queueing and backpressure can be
 * attributed to an owner instead of an anonymous lambda chain.
 */
struct MemPacket {
    /** Origin value of internal (ownerless) traffic. */
    static constexpr unsigned kNoOrigin = ~0u;

    Addr addr = 0;
    unsigned bytes = 64;
    unsigned origin = kNoOrigin; //!< issuing core, or kNoOrigin
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    bool gathered = false;
    /** Latency-class traffic (OLTP-class requests): the read-
     *  priority scheduler policy lets reads carrying this flag
     *  bypass queued writes, bounded by the controller's global
     *  starvation cap. Internal traffic (write-backs) never sets
     *  it. */
    bool priority = false;

    /** Set the (addr, orient) pair from a statically-oriented
     *  address; the fields cannot disagree. */
    template <Orientation O>
    void
    setAddr(OrientedAddr<O> a)
    {
        addr = a.value();
        orient = O;
    }

    /** Invoked exactly once with the completion tick. May be empty
     *  for fire-and-forget write-backs. Move-only: a packet owns
     *  its continuation, so completion handlers are never copied.
     *  The widened inline capacity fits the cache hierarchy's
     *  continuations (a moved-in DoneFn, 64 bytes with padding, or
     *  a line key for the MSHR fill path) without a heap allocation
     *  per miss. */
    util::UniqueFunction<void(Tick), 96> onComplete;
};

// A moved packet must stay within the event queue's inline callback
// storage (one `this` pointer of headroom); growing it forces a heap
// allocation per simulated miss.
static_assert(sizeof(MemPacket) <= 152, "MemPacket outgrew the "
              "event-queue inline callback budget");

/** Historical name, kept for call sites that predate the packet
 *  pipeline; a request and a packet are the same object. */
using MemRequest = MemPacket;

} // namespace rcnvm::mem

#endif // RCNVM_MEM_REQUEST_HH_
