/**
 * @file
 * The memory request type exchanged between the cache hierarchy and
 * the memory controllers.
 */

#ifndef RCNVM_MEM_REQUEST_HH_
#define RCNVM_MEM_REQUEST_HH_

#include <cstdint>

#include "util/types.hh"
#include "util/unique_function.hh"

namespace rcnvm::mem {

/**
 * One memory transaction (normally a 64-byte line fill or
 * write-back). The orientation selects which address space the
 * address lives in and which bank buffer serves it; `gathered`
 * marks a GS-DRAM in-row gather access.
 */
struct MemRequest {
    Addr addr = 0;
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    unsigned bytes = 64;
    bool gathered = false;

    /** Invoked exactly once with the completion tick. May be empty
     *  for fire-and-forget write-backs. Move-only: a request owns
     *  its continuation, so completion handlers are never copied.
     *  The widened inline capacity fits the cache hierarchy's miss
     *  continuation (a moved-in DoneFn plus the line key, 112 bytes
     *  with padding) without a heap allocation per miss. */
    util::UniqueFunction<void(Tick), 112> onComplete;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_REQUEST_HH_
