/**
 * @file
 * The memory request type exchanged between the cache hierarchy and
 * the memory controllers.
 */

#ifndef RCNVM_MEM_REQUEST_HH_
#define RCNVM_MEM_REQUEST_HH_

#include <cstdint>
#include <functional>

#include "util/types.hh"

namespace rcnvm::mem {

/**
 * One memory transaction (normally a 64-byte line fill or
 * write-back). The orientation selects which address space the
 * address lives in and which bank buffer serves it; `gathered`
 * marks a GS-DRAM in-row gather access.
 */
struct MemRequest {
    Addr addr = 0;
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    unsigned bytes = 64;
    bool gathered = false;

    /** Invoked exactly once with the completion tick. May be empty
     *  for fire-and-forget write-backs. */
    std::function<void(Tick)> onComplete;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_REQUEST_HH_
