#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/shard.hh"
#include "util/logging.hh"

namespace rcnvm::mem {

Geometry
geometryFor(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
      case DeviceKind::GsDram:
        return Geometry::dram();
      case DeviceKind::Rram:
        return Geometry::rram();
      case DeviceKind::RcNvm:
        return Geometry::rcNvm();
    }
    rcnvm_panic("unknown device kind");
}

MemorySystem::MemorySystem(DeviceKind kind, sim::EventQueue &eq)
    : MemorySystem(kind, eq, timingFor(kind))
{
}

MemorySystem::MemorySystem(DeviceKind kind, sim::EventQueue &eq,
                           const TimingParams &timing, bool salp,
                           unsigned queue_capacity)
    : MemorySystem(kind, eq, timing, salp, queue_capacity,
                   geometryFor(kind), {})
{
}

MemorySystem::MemorySystem(
    DeviceKind kind, sim::EventQueue &eq, const TimingParams &timing,
    bool salp, unsigned queue_capacity, const Geometry &geometry,
    const std::vector<sim::EventQueue *> &channel_queues,
    SchedPolicyKind sched)
    : kind_(kind),
      caps_(capsFor(kind)),
      map_(geometry),
      eq_(eq)
{
    const unsigned n = map_.geometry().channels;
    if (!channel_queues.empty() && channel_queues.size() != n)
        rcnvm_panic("sharded memory system needs one queue per "
                    "channel: got ", channel_queues.size(), " for ",
                    n, " channels");
    for (unsigned c = 0; c < n; ++c) {
        sim::EventQueue &cq =
            channel_queues.empty() ? eq_ : *channel_queues[c];
        channels_.push_back(std::make_unique<ChannelController>(
            map_, timing, cq, queue_capacity, salp, c, sched));
    }
    if (!channel_queues.empty()) {
        sharded_ = true;
        shardIssued_.assign(n, 0);
        shardDequeued_.assign(n, 0);
    }
}

void
MemorySystem::attachShardLink(sim::ParallelEngine &engine)
{
    if (!sharded_)
        rcnvm_panic("attachShardLink on a single-queue memory system");
    engine_ = &engine;
    for (unsigned c = 0; c < channels(); ++c)
        channels_[c]->setCompletionPort(&engine.toCore(c));
    engine.addExchangeHook(
        [this](Tick next) { shardExchange(next); });
}

void
MemorySystem::postIssue(unsigned c, MemPacket &&pkt)
{
    if (engine_ == nullptr)
        rcnvm_panic("sharded issue before attachShardLink");
    ++shardIssued_[c];
    // The single-queue equivalent of this message is a plain call
    // from the executing core event, so it stands in for that event
    // on the channel queue: it inherits the event's own lineage
    // stamps, and everything the enqueue schedules downstream sees
    // the same currentSchedTick() a shared queue would have shown.
    engine_->toChannel(c).post(
        eq_.now(), eq_.currentSchedTick(), eq_.currentSchedTick2(),
        [ch = channels_[c].get(), pkt = std::move(pkt)]() mutable {
            ch->enqueue(std::move(pkt));
        });
}

void
MemorySystem::shardExchange(Tick next_window_start)
{
    for (unsigned c = 0; c < channels(); ++c)
        shardDequeued_[c] = channels_[c]->dequeueCount();
    if (!retryArmed_ || !retryCb_)
        return;
    for (unsigned c = 0; c < channels(); ++c) {
        if (shardQueued(c) < channels_[c]->capacity()) {
            // Mirror the single-queue contract (a deferred event,
            // never a re-entrant call) at the granularity this mode
            // can offer: the next window boundary.
            retryArmed_ = false;
            eq_.inject(next_window_start, next_window_start,
                       next_window_start, [this] { retryCb_(); });
            return;
        }
    }
}

bool
MemorySystem::canAccept(Addr addr, Orientation orient) const
{
    const DecodedAddr d = map_.decode(addr, orient);
    if (sharded_)
        return shardQueued(d.channel) <
               channels_[d.channel]->capacity();
    return channels_[d.channel]->canAccept();
}

unsigned
MemorySystem::channelOf(Addr addr, Orientation orient) const
{
    return map_.decode(addr, orient).channel;
}

void
MemorySystem::issue(MemRequest &&req)
{
    if (req.orient == Orientation::Column && !caps_.columnAccess) {
        rcnvm_panic("column-oriented request issued to ",
                    toString(kind_),
                    ", which has no column access support");
    }
    if (req.gathered && !caps_.gather)
        rcnvm_panic("gathered request issued to ", toString(kind_));

    const DecodedAddr d = map_.decode(req.addr, req.orient);
    if (sharded_) {
        postIssue(d.channel, std::move(req));
        return;
    }
    channels_[d.channel]->enqueue(std::move(req));
}

bool
MemorySystem::tryIssue(MemPacket &pkt)
{
    // Decoded once: this runs for every miss, and routing through
    // canAccept() + issue() would repeat the address decode.
    const DecodedAddr d = map_.decode(pkt.addr, pkt.orient);
    if (sharded_ ? shardQueued(d.channel) >=
                       channels_[d.channel]->capacity()
                 : !channels_[d.channel]->canAccept()) {
        rejectedIssues_.inc();
        retryArmed_ = true;
        return false;
    }
    if (pkt.orient == Orientation::Column && !caps_.columnAccess) {
        rcnvm_panic("column-oriented request issued to ",
                    toString(kind_),
                    ", which has no column access support");
    }
    if (pkt.gathered && !caps_.gather)
        rcnvm_panic("gathered request issued to ", toString(kind_));
    if (sharded_) {
        postIssue(d.channel, std::move(pkt));
        return true;
    }
    channels_[d.channel]->enqueue(std::move(pkt));
    return true;
}

void
MemorySystem::setRetryCallback(std::function<void()> cb)
{
    // All channels share the one client-side retry hook: a client
    // that was refused re-probes canAccept() per packet, so a spare
    // wakeup from another channel is harmless.
    if (sharded_) {
        // Per-dequeue space callbacks would need zero-lookahead
        // channel-to-core traffic; the window exchange delivers the
        // same notification at window granularity instead.
        retryCb_ = std::move(cb);
        return;
    }
    for (auto &ch : channels_)
        ch->setSpaceCallback(cb);
}

void
MemorySystem::registerStats(util::StatRegistry &r) const
{
    for (const auto &ch : channels_) {
        const ControllerStats &s = ch->stats();
        r.addCounter("mem.reads", s.reads);
        r.addCounter("mem.writes", s.writes);
        r.addCounter("mem.gathered", s.gathered);
        r.addCounter("mem.rowAccesses", s.rowAccesses);
        r.addCounter("mem.colAccesses", s.colAccesses);
        r.addCounter("mem.bufferHits", s.bufferHits);
        r.addCounter("mem.bufferMisses", s.bufferMisses);
        r.addCounter("mem.bufferConflicts", s.bufferConflicts);
        r.addCounter("mem.orientationSwitches",
                     s.orientationSwitches);
        r.addCounter("mem.rowBufferHits", s.rowBufferHits);
        r.addCounter("mem.rowBufferMisses", s.rowBufferMisses);
        r.addCounter("mem.colBufferHits", s.colBufferHits);
        r.addCounter("mem.colBufferMisses", s.colBufferMisses);
        r.addCounter("mem.busBusyTicks", s.busBusyTicks);
        r.addCounter("mem.wakeups", s.wakeups);
        r.addValue("mem.energyPJ", s.energyPJ);
        r.addSampled("mem.queueWaitTicks", s.queueWaitTicks);
        r.addSampled("mem.serviceTicks", s.serviceTicks);
        r.addSampled("mem.bankQueueDepth", s.bankQueueDepth);
        r.addSampled("mem.queueOccupancy", s.queueOccupancy);
        r.addHistogram("mem.queueWaitHist", s.queueWaitHist);
    }
    r.addCounter("mem.rejectedIssues", rejectedIssues_);

    // Derived statistics are report-time formulas over the merged
    // per-channel inputs: they exist only as Scalar snapshot entries
    // and can never be corrupted by a downstream additive merge.
    r.addFormula("mem.requests", [](const util::StatRegistry &g) {
        return g.counter("mem.reads") + g.counter("mem.writes");
    });
    r.addFormula("mem.avgQueueWaitTicks",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.queueWaitTicks").mean();
                 });
    // Tail of the controller queueing delay (inclusive right edge
    // of the log2 bucket holding the 99th-percentile wait, over all
    // channels — a conservative upper bound).
    r.addFormula("mem.queueWaitP99",
                 [](const util::StatRegistry &g) {
                     return g.histogram("mem.queueWaitHist")
                         .percentile(0.99);
                 });
    r.addFormula("mem.avgServiceTicks",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.serviceTicks").mean();
                 });
    r.addFormula("mem.avgBankQueueDepth",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.bankQueueDepth").mean();
                 });
    r.addFormula("mem.maxBankQueueDepth",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.bankQueueDepth").max();
                 });
    r.addFormula("mem.avgQueueOccupancy",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.queueOccupancy").mean();
                 });
    r.addFormula("mem.maxQueueOccupancy",
                 [](const util::StatRegistry &g) {
                     return g.sampled("mem.queueOccupancy").max();
                 });
    // Fraction of the statistics window the channel data buses spent
    // transferring (gathered lines hold the bus for two slots).
    r.addFormula("mem.busUtilization",
                 [this](const util::StatRegistry &g) {
                     double elapsed = 0;
                     for (const auto &ch : channels_)
                         elapsed += static_cast<double>(
                             ch->statsElapsed().value());
                     return elapsed > 0
                                ? g.counter("mem.busBusyTicks") /
                                      elapsed
                                : 0.0;
                 });
    r.addFormula("mem.bufferMissRate",
                 [](const util::StatRegistry &g) {
                     const double hits = g.counter("mem.bufferHits");
                     const double total = g.value("mem.requests");
                     return total > 0 ? 1.0 - hits / total : 0.0;
                 });
}

util::StatsMap
MemorySystem::stats() const
{
    util::StatRegistry r;
    registerStats(r);
    return r.snapshot();
}

std::size_t
MemorySystem::queuedTotal() const
{
    std::size_t n = 0;
    if (sharded_) {
        // The mirrors, not the live controller state: the channel
        // shards may be mid-window, and the mirror is the core
        // shard's deterministic view.
        for (unsigned c = 0; c < channels(); ++c)
            n += shardQueued(c);
        return n;
    }
    for (const auto &ch : channels_)
        n += ch->queued();
    return n;
}

void
MemorySystem::reset()
{
    for (auto &ch : channels_)
        ch->reset();
    rejectedIssues_.reset();
    if (sharded_) {
        std::fill(shardIssued_.begin(), shardIssued_.end(), 0);
        std::fill(shardDequeued_.begin(), shardDequeued_.end(), 0);
        retryArmed_ = false;
    }
}

} // namespace rcnvm::mem
