#include "mem/memory_system.hh"

#include "util/logging.hh"

namespace rcnvm::mem {

Geometry
geometryFor(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
      case DeviceKind::GsDram:
        return Geometry::dram();
      case DeviceKind::Rram:
        return Geometry::rram();
      case DeviceKind::RcNvm:
        return Geometry::rcNvm();
    }
    rcnvm_panic("unknown device kind");
}

MemorySystem::MemorySystem(DeviceKind kind, sim::EventQueue &eq)
    : MemorySystem(kind, eq, timingFor(kind))
{
}

MemorySystem::MemorySystem(DeviceKind kind, sim::EventQueue &eq,
                           const TimingParams &timing, bool salp,
                           unsigned queue_capacity)
    : kind_(kind),
      caps_(capsFor(kind)),
      map_(geometryFor(kind)),
      eq_(eq)
{
    for (unsigned c = 0; c < map_.geometry().channels; ++c) {
        channels_.push_back(std::make_unique<ChannelController>(
            map_, timing, eq_, queue_capacity, salp));
    }
}

bool
MemorySystem::canAccept(Addr addr, Orientation orient) const
{
    const DecodedAddr d = map_.decode(addr, orient);
    return channels_[d.channel]->canAccept();
}

unsigned
MemorySystem::channelOf(Addr addr, Orientation orient) const
{
    return map_.decode(addr, orient).channel;
}

void
MemorySystem::issue(MemRequest &&req)
{
    if (req.orient == Orientation::Column && !caps_.columnAccess) {
        rcnvm_panic("column-oriented request issued to ",
                    toString(kind_),
                    ", which has no column access support");
    }
    if (req.gathered && !caps_.gather)
        rcnvm_panic("gathered request issued to ", toString(kind_));

    const DecodedAddr d = map_.decode(req.addr, req.orient);
    channels_[d.channel]->enqueue(std::move(req));
}

bool
MemorySystem::tryIssue(MemPacket &pkt)
{
    // Decoded once: this runs for every miss, and routing through
    // canAccept() + issue() would repeat the address decode.
    const DecodedAddr d = map_.decode(pkt.addr, pkt.orient);
    if (!channels_[d.channel]->canAccept()) {
        rejectedIssues_.inc();
        return false;
    }
    if (pkt.orient == Orientation::Column && !caps_.columnAccess) {
        rcnvm_panic("column-oriented request issued to ",
                    toString(kind_),
                    ", which has no column access support");
    }
    if (pkt.gathered && !caps_.gather)
        rcnvm_panic("gathered request issued to ", toString(kind_));
    channels_[d.channel]->enqueue(std::move(pkt));
    return true;
}

void
MemorySystem::setRetryCallback(std::function<void()> cb)
{
    // All channels share the one client-side retry hook: a client
    // that was refused re-probes canAccept() per packet, so a spare
    // wakeup from another channel is harmless.
    for (auto &ch : channels_)
        ch->setSpaceCallback(cb);
}

util::StatsMap
MemorySystem::stats() const
{
    util::StatsMap out;
    util::Sampled wait, service, bank_depth, occupancy;
    double elapsed = 0;
    for (const auto &ch : channels_) {
        const ControllerStats &s = ch->stats();
        out.add("mem.reads", static_cast<double>(s.reads.value()));
        out.add("mem.writes", static_cast<double>(s.writes.value()));
        out.add("mem.gathered",
                static_cast<double>(s.gathered.value()));
        out.add("mem.rowAccesses",
                static_cast<double>(s.rowAccesses.value()));
        out.add("mem.colAccesses",
                static_cast<double>(s.colAccesses.value()));
        out.add("mem.bufferHits",
                static_cast<double>(s.bufferHits.value()));
        out.add("mem.bufferMisses",
                static_cast<double>(s.bufferMisses.value()));
        out.add("mem.bufferConflicts",
                static_cast<double>(s.bufferConflicts.value()));
        out.add("mem.orientationSwitches",
                static_cast<double>(s.orientationSwitches.value()));
        out.add("mem.rowBufferHits",
                static_cast<double>(s.rowBufferHits.value()));
        out.add("mem.rowBufferMisses",
                static_cast<double>(s.rowBufferMisses.value()));
        out.add("mem.colBufferHits",
                static_cast<double>(s.colBufferHits.value()));
        out.add("mem.colBufferMisses",
                static_cast<double>(s.colBufferMisses.value()));
        out.add("mem.busBusyTicks",
                static_cast<double>(s.busBusyTicks.value()));
        out.add("mem.wakeups",
                static_cast<double>(s.wakeups.value()));
        out.add("mem.energyPJ", s.energyPJ);
        wait.merge(s.queueWaitTicks);
        service.merge(s.serviceTicks);
        bank_depth.merge(s.bankQueueDepth);
        occupancy.merge(s.queueOccupancy);
        elapsed += static_cast<double>(ch->statsElapsed());
    }
    out.set("mem.requests",
            out.get("mem.reads") + out.get("mem.writes"));
    out.set("mem.rejectedIssues",
            static_cast<double>(rejectedIssues_.value()));
    out.set("mem.avgQueueWaitTicks", wait.mean());
    out.set("mem.avgServiceTicks", service.mean());
    out.set("mem.avgBankQueueDepth", bank_depth.mean());
    out.set("mem.maxBankQueueDepth", bank_depth.max());
    out.set("mem.avgQueueOccupancy", occupancy.mean());
    out.set("mem.maxQueueOccupancy", occupancy.max());
    // Fraction of the statistics window the channel data buses spent
    // transferring (gathered lines hold the bus for two slots).
    out.set("mem.busUtilization",
            elapsed > 0 ? out.get("mem.busBusyTicks") / elapsed : 0.0);
    const double hits = out.get("mem.bufferHits");
    const double total = out.get("mem.requests");
    out.set("mem.bufferMissRate",
            total > 0 ? 1.0 - hits / total : 0.0);
    return out;
}

void
MemorySystem::reset()
{
    for (auto &ch : channels_)
        ch->reset();
    rejectedIssues_.reset();
}

} // namespace rcnvm::mem
