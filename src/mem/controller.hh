/**
 * @file
 * Per-channel memory controller with an FR-FCFS scheduler
 * (first-ready, first-come-first-served; Rixner et al.).
 */

#ifndef RCNVM_MEM_CONTROLLER_HH_
#define RCNVM_MEM_CONTROLLER_HH_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/bank.hh"
#include "mem/geometry.hh"
#include "mem/request.hh"
#include "mem/sched_policy.hh"
#include "mem/timing.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::sim {
class ShardMailbox;
} // namespace rcnvm::sim

namespace rcnvm::mem {

/** Statistics collected by one channel controller. */
struct ControllerStats {
    util::Counter reads;
    util::Counter writes;
    util::Counter gathered;
    util::Counter rowAccesses;
    util::Counter colAccesses;
    util::Counter bufferHits;
    util::Counter bufferMisses;
    util::Counter bufferConflicts;
    util::Counter orientationSwitches;
    util::Counter rowBufferHits;
    util::Counter rowBufferMisses; //!< miss + conflict + switch (row)
    util::Counter colBufferHits;
    util::Counter colBufferMisses;
    util::Sampled queueWaitTicks;
    util::Log2Histogram queueWaitHist; //!< log2 buckets of wait ticks
    util::Sampled serviceTicks;
    util::Sampled bankQueueDepth; //!< target bank's depth at enqueue
    util::Sampled queueOccupancy; //!< total queued after each enqueue
    util::Counter busBusyTicks;   //!< bus slots consumed (2x gathered)
    util::Counter wakeups;        //!< scheduler wakeup events that ran
    double energyPJ = 0.0;        //!< accumulated device energy
};

/**
 * One channel: per-bank request queues, the channel's banks, and the
 * shared data bus. Requests complete asynchronously via callbacks.
 *
 * Selection is delegated to a pluggable SchedulerPolicy (FR-FCFS by
 * default: the oldest request that hits an open buffer on a ready
 * bank is served first; otherwise the oldest ready request). A
 * request is ready only when its bank can start the command AND the
 * shared bus will be free by the time its data burst begins, so bus
 * slots are granted in scheduling order rather than being committed
 * queue-deep in advance (gathered GS-DRAM lines occupy two slots). A
 * starvation cap bounds how many times the globally oldest request
 * may be bypassed by any younger request, independent of policy.
 */
class ChannelController
{
  public:
    /**
     * @param map      address map shared by the memory system
     * @param timing   device timing parameters
     * @param eq       simulation event queue
     * @param queue_capacity  request-queue depth (Table 1: 32)
     * @param salp     give each subarray its own buffer pair
     *                 (subarray-level-parallelism extension)
     * @param channel_id  channel number (trace-event attribution)
     * @param sched    request-selection policy (default FR-FCFS)
     */
    ChannelController(const AddressMap &map, const TimingParams &timing,
                      sim::EventQueue &eq, unsigned queue_capacity = 32,
                      bool salp = false, unsigned channel_id = 0,
                      SchedPolicyKind sched = SchedPolicyKind::FrFcfs);

    /** The request-selection policy in use. */
    const SchedulerPolicy &policy() const { return *policy_; }

    /** True when the request queue has room. */
    bool canAccept() const { return totalQueued_ < capacity_; }

    /** Add a request (caller must have checked canAccept). */
    void enqueue(MemRequest &&req);

    /** Number of queued (not yet issued) requests. */
    std::size_t queued() const { return totalQueued_; }

    /** Configured request-queue depth. */
    unsigned capacity() const { return capacity_; }

    /**
     * Register a backpressure hook: invoked (via a same-tick event,
     * never re-entrantly from inside the scheduler) whenever the
     * queue occupancy drops back below capacity, so a client that
     * was refused by canAccept() knows when to retry.
     */
    void setSpaceCallback(std::function<void()> cb)
    {
        spaceCb_ = std::move(cb);
    }

    /**
     * Route completion callbacks through @p port instead of this
     * channel's event queue (channel-sharded mode: completions must
     * run on the core shard). While ported, the controller also
     * counts dequeues in an atomic the core shard reads at window
     * exchanges to maintain its occupancy mirror; the space callback
     * mechanism is unused in this mode.
     */
    void setCompletionPort(sim::ShardMailbox *port)
    {
        completionPort_ = port;
    }

    /** Requests dequeued (issued to a bank) since construction or
     *  reset. Safe to read from the core shard between rounds. */
    std::uint64_t dequeueCount() const
    {
        return dequeued_.load(std::memory_order_acquire);
    }

    /** Controller statistics. */
    const ControllerStats &stats() const { return stats_; }

    /** Ticks covered by the current statistics window. */
    Tick statsElapsed() const { return eq_.now() - statsSince_; }

    /** Clear statistics and bank state. */
    void reset();

  private:
    struct Pending {
        MemRequest req;
        DecodedAddr dec;
        Tick enqueueTick;
        std::uint64_t seq;    //!< global arrival order
        unsigned bufferIdx;   //!< row (row orient) or column index
        unsigned bypassed = 0;
    };

    /** Pending requests of one bank, in arrival order. */
    struct BankQueue {
        std::deque<Pending> fifo;
        /** Position of the oldest open-buffer hit, or -1. Valid
         *  against the bank's current buffer state; recomputed after
         *  every issue from this bank. */
        std::ptrdiff_t hitPos = -1;
        bool active = false; //!< listed in activeBanks_
    };

    /** Flat bank index for a decoded address. */
    unsigned bankIndex(const DecodedAddr &d) const;

    /** Buffer index within the bank for a request orientation. */
    static unsigned bufferIndex(const DecodedAddr &d, Orientation o);

    /** Issue as many requests as are ready right now. */
    void trySchedule();

    /** Arrange a future trySchedule call at @p when. */
    void scheduleWakeup(Tick when);

    /** Drop any armed wakeup (nothing left to schedule). */
    void cancelWakeup();

    /** Serve entry @p pos of bank @p bank's queue. */
    void issueFrom(unsigned bank, std::size_t pos);

    /** Recompute @p bq's oldest-hit cache against @p bank. */
    void refreshHitPos(BankQueue &bq, const Bank &bank) const;

    /** Earliest tick a request with burst lead @p lead may issue so
     *  its burst queues at most busHorizon() deep behind the bus.
     *  Requests whose command chain is longer than the horizon issue
     *  early enough that bank preparation overlaps the backlog. */
    Tick busReadyAt(Tick lead) const
    {
        const Tick slack = std::max(lead, busHorizon());
        return busFree_ > slack ? busFree_ - slack : Tick{};
    }

    /** How far ahead of the bus a request may be issued: two
     *  gathered transfers (each two burst slots) of backlog. */
    Tick busHorizon() const
    {
        return timing_.cyc(timing_.tBURST) * 4;
    }

    const AddressMap &map_;
    TimingParams timing_;
    sim::EventQueue &eq_;
    /** Selection policy; owned per controller so channel shards
     *  never share policy state. */
    std::unique_ptr<SchedulerPolicy> policy_;
    unsigned capacity_;
    unsigned channelId_;
    std::vector<Bank> banks_;
    std::vector<BankQueue> bankQueues_;
    std::vector<unsigned> activeBanks_; //!< banks with pending work
    std::size_t totalQueued_ = 0;
    std::uint64_t nextSeq_ = 0;
    Tick busFree_{0};
    Tick wakeupAt_{0};
    bool wakeupScheduled_ = false;
    std::uint64_t wakeupGen_ = 0; //!< cancels superseded wakeups
    Tick statsSince_{0};
    ControllerStats stats_;
    std::function<void()> spaceCb_;
    bool spaceNotifyPending_ = false;
    sim::ShardMailbox *completionPort_ = nullptr;
    std::atomic<std::uint64_t> dequeued_{0};

    /** Max bypasses of the globally oldest request. */
    static constexpr unsigned starvationCap = 16;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_CONTROLLER_HH_
