/**
 * @file
 * Per-channel memory controller with an FR-FCFS scheduler
 * (first-ready, first-come-first-served; Rixner et al.).
 */

#ifndef RCNVM_MEM_CONTROLLER_HH_
#define RCNVM_MEM_CONTROLLER_HH_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mem/bank.hh"
#include "mem/geometry.hh"
#include "mem/request.hh"
#include "mem/timing.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rcnvm::mem {

/** Statistics collected by one channel controller. */
struct ControllerStats {
    util::Counter reads;
    util::Counter writes;
    util::Counter gathered;
    util::Counter rowAccesses;
    util::Counter colAccesses;
    util::Counter bufferHits;
    util::Counter bufferMisses;
    util::Counter bufferConflicts;
    util::Counter orientationSwitches;
    util::Counter rowBufferHits;
    util::Counter rowBufferMisses; //!< miss + conflict + switch (row)
    util::Counter colBufferHits;
    util::Counter colBufferMisses;
    util::Sampled queueWaitTicks;
    util::Sampled serviceTicks;
    util::Counter busBusyTicks;
    double energyPJ = 0.0; //!< accumulated device energy
};

/**
 * One channel: a request queue, the channel's banks, and the shared
 * data bus. Requests complete asynchronously via their callbacks.
 *
 * FR-FCFS: the oldest request that hits an open buffer on a ready
 * bank is served first; otherwise the oldest request whose bank is
 * ready. A starvation cap bounds how many times a younger buffer
 * hit may bypass the oldest request.
 */
class ChannelController
{
  public:
    /**
     * @param map      address map shared by the memory system
     * @param timing   device timing parameters
     * @param eq       simulation event queue
     * @param queue_capacity  request-queue depth (Table 1: 32)
     * @param salp     give each subarray its own buffer pair
     *                 (subarray-level-parallelism extension)
     */
    ChannelController(const AddressMap &map, const TimingParams &timing,
                      sim::EventQueue &eq, unsigned queue_capacity = 32,
                      bool salp = false);

    /** True when the request queue has room. */
    bool canAccept() const { return queue_.size() < capacity_; }

    /** Add a request (caller must have checked canAccept). */
    void enqueue(MemRequest req);

    /** Number of queued (not yet issued) requests. */
    std::size_t queued() const { return queue_.size(); }

    /** Controller statistics. */
    const ControllerStats &stats() const { return stats_; }

    /** Clear statistics and bank state. */
    void reset();

  private:
    struct Pending {
        MemRequest req;
        DecodedAddr dec;
        Tick enqueueTick;
        unsigned bypassed = 0;
    };

    /** Flat bank index for a decoded address. */
    unsigned bankIndex(const DecodedAddr &d) const;

    /** Buffer index within the bank for a request orientation. */
    static unsigned bufferIndex(const DecodedAddr &d, Orientation o);

    /** Issue as many requests as are ready right now. */
    void trySchedule();

    /** Arrange a future trySchedule call at @p when. */
    void scheduleWakeup(Tick when);

    /** Serve the queue entry at @p pos. */
    void issueAt(std::size_t pos);

    const AddressMap &map_;
    TimingParams timing_;
    sim::EventQueue &eq_;
    unsigned capacity_;
    std::deque<Pending> queue_;
    std::vector<Bank> banks_;
    Tick busFree_ = 0;
    Tick wakeupAt_ = 0;
    bool wakeupScheduled_ = false;
    ControllerStats stats_;

    /** Max buffer-hit bypasses of the oldest request. */
    static constexpr unsigned starvationCap = 16;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_CONTROLLER_HH_
