#include "mem/geometry.hh"

#include "util/logging.hh"

namespace rcnvm::mem {

using util::bits;
using util::isPowerOfTwo;
using util::log2i;

Geometry
Geometry::rcNvm()
{
    Geometry g;
    g.channels = 2;
    g.ranksPerChannel = 4;
    g.banksPerRank = 8;
    g.subarraysPerBank = 8;
    g.rowsPerSubarray = 1024;
    g.colsPerSubarray = 1024;
    return g;
}

Geometry
Geometry::rram()
{
    // Same physical organisation as RC-NVM; only row-oriented
    // access is wired up.
    return rcNvm();
}

Geometry
Geometry::dram()
{
    Geometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.subarraysPerBank = 1;
    g.rowsPerSubarray = 65536;
    g.colsPerSubarray = 256;
    return g;
}

AddressMap::AddressMap(const Geometry &geometry) : geo_(geometry)
{
    const auto check = [](unsigned v, const char *what) {
        if (!isPowerOfTwo(v))
            rcnvm_fatal("geometry field not a power of two: ", what,
                        " = ", v);
    };
    check(geo_.channels, "channels");
    check(geo_.ranksPerChannel, "ranksPerChannel");
    check(geo_.banksPerRank, "banksPerRank");
    check(geo_.subarraysPerBank, "subarraysPerBank");
    check(geo_.rowsPerSubarray, "rowsPerSubarray");
    check(geo_.colsPerSubarray, "colsPerSubarray");
    check(geo_.wordBytes, "wordBytes");

    offsetBits_ = log2i(geo_.wordBytes);
    minorBits_ = log2i(geo_.colsPerSubarray);
    majorBits_ = log2i(geo_.rowsPerSubarray);
    subarrayBits_ = log2i(geo_.subarraysPerBank);
    bankBits_ = log2i(geo_.banksPerRank);
    rankBits_ = log2i(geo_.ranksPerChannel);
    channelBits_ = log2i(geo_.channels);
    totalBits_ = offsetBits_ + minorBits_ + majorBits_ + subarrayBits_ +
                 bankBits_ + rankBits_ + channelBits_;
}

Addr
AddressMap::encode(const DecodedAddr &d, Orientation o) const
{
    // Field A is the slower-varying index, field B the faster one.
    const bool row_oriented = o == Orientation::Row;
    const unsigned a = row_oriented ? d.row : d.col;
    const unsigned b = row_oriented ? d.col : d.row;
    const unsigned a_bits = row_oriented ? majorBits_ : minorBits_;
    const unsigned b_bits = row_oriented ? minorBits_ : majorBits_;

    Addr addr = 0;
    unsigned shift = 0;
    addr |= Addr{d.offset};
    shift += offsetBits_;
    addr |= Addr{b} << shift;
    shift += b_bits;
    addr |= Addr{a} << shift;
    shift += a_bits;
    addr |= Addr{d.subarray} << shift;
    shift += subarrayBits_;
    addr |= Addr{d.bank} << shift;
    shift += bankBits_;
    addr |= Addr{d.rank} << shift;
    shift += rankBits_;
    addr |= Addr{d.channel} << shift;
    return addr;
}

DecodedAddr
AddressMap::decode(Addr a, Orientation o) const
{
    const bool row_oriented = o == Orientation::Row;
    const unsigned a_bits = row_oriented ? majorBits_ : minorBits_;
    const unsigned b_bits = row_oriented ? minorBits_ : majorBits_;

    DecodedAddr d;
    unsigned shift = 0;
    d.offset = static_cast<unsigned>(bits(a, shift, offsetBits_));
    shift += offsetBits_;
    const unsigned b = static_cast<unsigned>(bits(a, shift, b_bits));
    shift += b_bits;
    const unsigned a_field = static_cast<unsigned>(bits(a, shift, a_bits));
    shift += a_bits;
    d.subarray = static_cast<unsigned>(bits(a, shift, subarrayBits_));
    shift += subarrayBits_;
    d.bank = static_cast<unsigned>(bits(a, shift, bankBits_));
    shift += bankBits_;
    d.rank = static_cast<unsigned>(bits(a, shift, rankBits_));
    shift += rankBits_;
    d.channel = static_cast<unsigned>(bits(a, shift, channelBits_));

    d.row = row_oriented ? a_field : b;
    d.col = row_oriented ? b : a_field;
    return d;
}

Addr
AddressMap::convert(Addr a, Orientation from, Orientation to) const
{
    if (from == to)
        return a;
    return encode(decode(a, from), to);
}

Addr
AddressMap::lineAddr(Addr a, unsigned lineBytes) const
{
    return util::alignDown(a, lineBytes);
}

} // namespace rcnvm::mem
