#include "mem/controller.hh"

#include <limits>

#include "sim/shard.hh"
#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace rcnvm::mem {

namespace {
constexpr std::uint64_t noSeq = std::numeric_limits<std::uint64_t>::max();
constexpr Tick noTick = std::numeric_limits<Tick>::max();
} // namespace

ChannelController::ChannelController(const AddressMap &map,
                                     const TimingParams &timing,
                                     sim::EventQueue &eq,
                                     unsigned queue_capacity,
                                     bool salp, unsigned channel_id,
                                     SchedPolicyKind sched)
    : map_(map),
      timing_(timing),
      eq_(eq),
      policy_(makeSchedulerPolicy(sched)),
      capacity_(queue_capacity),
      channelId_(channel_id),
      statsSince_(eq.now())
{
    const Geometry &g = map_.geometry();
    banks_.assign(g.ranksPerChannel * g.banksPerRank,
                  Bank(salp ? g.subarraysPerBank : 0));
    // Constructed rather than resized: Pending is move-only, so the
    // vector must never instantiate a copying relocation path.
    bankQueues_ = std::vector<BankQueue>(banks_.size());
    activeBanks_.reserve(banks_.size());
}

unsigned
ChannelController::bankIndex(const DecodedAddr &d) const
{
    return d.rank * map_.geometry().banksPerRank + d.bank;
}

unsigned
ChannelController::bufferIndex(const DecodedAddr &d, Orientation o)
{
    return o == Orientation::Row ? d.row : d.col;
}

void
ChannelController::enqueue(MemRequest &&req)
{
    // The capacity is a soft cap: demand traffic respects
    // canAccept(), while write-backs may transiently overshoot so
    // evictions never deadlock the hierarchy.
    const DecodedAddr dec = map_.decode(req.addr, req.orient);
    const unsigned b = bankIndex(dec);
    BankQueue &bq = bankQueues_[b];

    // Built in place: the request's completion continuation is bulky
    // enough that every avoided move shows up in profiles.
    Pending &p = bq.fifo.emplace_back();
    p.dec = dec;
    p.req = std::move(req);
    p.enqueueTick = eq_.now();
    p.seq = nextSeq_++;
    p.bufferIdx = bufferIndex(p.dec, p.req.orient);

    if (bq.hitPos < 0 &&
        banks_[b].hits(p.req.orient, p.dec.subarray, p.bufferIdx))
        bq.hitPos = static_cast<std::ptrdiff_t>(bq.fifo.size()) - 1;
    stats_.bankQueueDepth.sample(static_cast<double>(bq.fifo.size()));
    if (!bq.active) {
        bq.active = true;
        activeBanks_.push_back(b);
    }
    ++totalQueued_;
    stats_.queueOccupancy.sample(static_cast<double>(totalQueued_));
    trySchedule();
}

void
ChannelController::scheduleWakeup(Tick when)
{
    if (wakeupScheduled_ && wakeupAt_ <= when)
        return;
    wakeupScheduled_ = true;
    wakeupAt_ = when;
    const std::uint64_t gen = ++wakeupGen_;
    eq_.schedule(when, [this, gen] {
        if (wakeupGen_ != gen)
            return; // superseded by a newer wakeup or a reset
        wakeupScheduled_ = false;
        stats_.wakeups.inc();
        trySchedule();
    });
}

void
ChannelController::cancelWakeup()
{
    if (wakeupScheduled_) {
        wakeupScheduled_ = false;
        ++wakeupGen_;
    }
}

void
ChannelController::refreshHitPos(BankQueue &bq, const Bank &bank) const
{
    bq.hitPos = -1;
    for (std::size_t i = 0; i < bq.fifo.size(); ++i) {
        const Pending &p = bq.fifo[i];
        if (bank.hits(p.req.orient, p.dec.subarray, p.bufferIdx)) {
            bq.hitPos = static_cast<std::ptrdiff_t>(i);
            return;
        }
    }
}

void
ChannelController::issueFrom(unsigned b, std::size_t pos)
{
    BankQueue &bq = bankQueues_[b];
    Pending p = std::move(bq.fifo[pos]);
    if (pos == 0)
        bq.fifo.pop_front();
    else
        bq.fifo.erase(bq.fifo.begin() +
                      static_cast<std::ptrdiff_t>(pos));
    --totalQueued_;
    if (completionPort_)
        dequeued_.fetch_add(1, std::memory_order_release);

    // Backpressure: tell the client the moment occupancy drops back
    // below capacity. Deferred to a same-tick event so client code
    // (which may re-enter enqueue) never runs inside the scheduler.
    if (spaceCb_ && totalQueued_ == capacity_ - 1 &&
        !spaceNotifyPending_) {
        spaceNotifyPending_ = true;
        eq_.schedule(eq_.now(), [this] {
            spaceNotifyPending_ = false;
            if (spaceCb_)
                spaceCb_();
        });
    }

    Bank &bank = banks_[b];
    Bank::Service s =
        bank.access(eq_.now(), p.req.orient, p.dec.subarray,
                    p.bufferIdx, p.req.isWrite, timing_, busFree_);

    // A gathered line's words come from shuffled column positions
    // across the chips; pattern translation and chip-conflict
    // serialisation halve the useful-word rate on the bus, so the
    // transfer occupies two burst slots (calibrated to the GS-DRAM
    // relationship the RC-NVM paper reports).
    if (p.req.gathered)
        s.finish += timing_.cyc(timing_.tBURST);

    busFree_ = s.finish;

    // The buffer the bank holds open may have changed.
    refreshHitPos(bq, bank);

    // Statistics.
    (p.req.isWrite ? stats_.writes : stats_.reads).inc();
    if (p.req.gathered)
        stats_.gathered.inc();
    const bool is_row = p.req.orient == Orientation::Row;
    (is_row ? stats_.rowAccesses : stats_.colAccesses).inc();
    const bool hit = s.outcome == AccessOutcome::BufferHit;
    switch (s.outcome) {
      case AccessOutcome::BufferHit:
        stats_.bufferHits.inc();
        break;
      case AccessOutcome::BufferMiss:
        stats_.bufferMisses.inc();
        break;
      case AccessOutcome::BufferConflict:
        stats_.bufferConflicts.inc();
        break;
      case AccessOutcome::OrientationSwitch:
        stats_.orientationSwitches.inc();
        break;
    }
    if (is_row)
        (hit ? stats_.rowBufferHits : stats_.rowBufferMisses).inc();
    else
        (hit ? stats_.colBufferHits : stats_.colBufferMisses).inc();
    stats_.queueWaitTicks.sample(
        static_cast<double>((s.start - p.enqueueTick).value()));
    stats_.queueWaitHist.sample((s.start - p.enqueueTick).value());
    stats_.serviceTicks.sample(
        static_cast<double>((s.finish - s.start).value()));
    RCNVM_TRACE_COMPLETE("queue",
                         util::ChromeTracer::kPidMemBase + channelId_,
                         b, p.enqueueTick, s.start - p.enqueueTick,
                         p.req.addr);
    RCNVM_TRACE_COMPLETE("service",
                         util::ChromeTracer::kPidMemBase + channelId_,
                         b, s.start, s.finish - s.start, p.req.addr);
    // A gathered transfer holds the bus for two burst slots.
    stats_.busBusyTicks.inc(timing_.cyc(timing_.tBURST).value() *
                            (p.req.gathered ? 2u : 1u));

    // Energy accounting (extension): activations, bursts, and cell
    // write pulses for dirty-buffer flushes.
    if (s.outcome != AccessOutcome::BufferHit)
        stats_.energyPJ += timing_.eActivate;
    if (s.flushedDirty)
        stats_.energyPJ += timing_.eWritePulse;
    stats_.energyPJ += p.req.isWrite ? timing_.eWriteBurst
                                     : timing_.eReadBurst;
    if (p.req.gathered)
        stats_.energyPJ += timing_.eReadBurst; // second burst slot

    if (p.req.onComplete) {
        if (completionPort_) {
            // Sharded mode: the completion continuation belongs to
            // the core shard. Stamp it with the lineage a local
            // schedule() would have recorded — scheduled at this
            // event's tick by a producer scheduled at this event's
            // own schedule tick — so the same-tick order at the
            // core matches a single shared queue, including against
            // core-local events due at the same tick.
            completionPort_->post(
                s.finish, eq_.now(), eq_.currentSchedTick(),
                [cb = std::move(p.req.onComplete),
                 finish = s.finish]() mutable { cb(finish); });
        } else {
            eq_.schedule(s.finish, [cb = std::move(p.req.onComplete),
                                    finish = s.finish]() mutable {
                cb(finish);
            });
        }
    }
}

void
ChannelController::trySchedule()
{
    for (;;) {
        if (totalQueued_ == 0) {
            cancelWakeup();
            return;
        }

        const Tick now = eq_.now();

        // One pass over the banks that have work: offer every ready
        // candidate to the selection policy while tracking the
        // globally oldest request (for starvation control) and the
        // earliest tick anything becomes ready.
        policy_->begin();
        std::uint64_t headSeq = noSeq;
        Pending *head = nullptr;
        Tick headReadyAt = noTick;
        Tick nextWake = noTick;

        for (std::size_t i = 0; i < activeBanks_.size();) {
            const unsigned b = activeBanks_[i];
            BankQueue &bq = bankQueues_[b];
            if (bq.fifo.empty()) {
                bq.active = false;
                activeBanks_[i] = activeBanks_.back();
                activeBanks_.pop_back();
                continue;
            }
            const Bank &bank = banks_[b];

            // Within a bank requests are FIFO except for buffer
            // hits, so the front plus the oldest cached hit are the
            // only candidates this bank can contribute.
            Pending &front = bq.fifo.front();
            const Bank::Lookahead la = bank.lookahead(
                front.req.orient, front.dec.subarray, front.bufferIdx,
                timing_);
            const Tick readyAt =
                std::max(la.cmdReady, busReadyAt(la.lead));
            if (front.seq < headSeq) {
                headSeq = front.seq;
                head = &front;
                headReadyAt = readyAt;
            }
            if (readyAt <= now) {
                policy_->offer({b, 0, front.seq, la.hit,
                                front.req.isWrite,
                                front.req.priority});
            } else if (readyAt < nextWake) {
                nextWake = readyAt;
            }

            if (bq.hitPos > 0) {
                const Pending &h =
                    bq.fifo[static_cast<std::size_t>(bq.hitPos)];
                const Tick hitReady =
                    std::max(bank.nextReady(),
                             busReadyAt(timing_.cyc(timing_.tCAS)));
                if (hitReady <= now) {
                    policy_->offer(
                        {b, static_cast<std::size_t>(bq.hitPos),
                         h.seq, true, h.req.isWrite,
                         h.req.priority});
                } else if (hitReady < nextWake) {
                    nextWake = hitReady;
                }
            }
            ++i;
        }

        // Starvation control: once the globally oldest request has
        // been bypassed by ANY younger request too often, nothing
        // else may issue until it has been served.
        if (head->bypassed >= starvationCap) {
            if (headReadyAt <= now) {
                issueFrom(bankIndex(head->dec), 0);
                continue;
            }
            scheduleWakeup(headReadyAt);
            return;
        }

        SchedCandidate pick;
        if (!policy_->choose(pick)) {
            if (nextWake != noTick)
                scheduleWakeup(nextWake);
            return;
        }

        if (pick.seq != headSeq)
            ++head->bypassed;
        issueFrom(pick.bank, pick.pos);
    }
}

void
ChannelController::reset()
{
    for (auto &bq : bankQueues_) {
        bq.fifo.clear();
        bq.hitPos = -1;
        bq.active = false;
    }
    activeBanks_.clear();
    totalQueued_ = 0;
    for (auto &bank : banks_)
        bank.reset();
    busFree_ = Tick{};
    cancelWakeup();
    spaceNotifyPending_ = false;
    dequeued_.store(0, std::memory_order_release);
    statsSince_ = eq_.now();
    stats_ = ControllerStats{};
}

} // namespace rcnvm::mem
