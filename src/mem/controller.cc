#include "mem/controller.hh"

#include <limits>

#include "util/logging.hh"

namespace rcnvm::mem {

ChannelController::ChannelController(const AddressMap &map,
                                     const TimingParams &timing,
                                     sim::EventQueue &eq,
                                     unsigned queue_capacity,
                                     bool salp)
    : map_(map),
      timing_(timing),
      eq_(eq),
      capacity_(queue_capacity)
{
    const Geometry &g = map_.geometry();
    banks_.assign(g.ranksPerChannel * g.banksPerRank,
                  Bank(salp ? g.subarraysPerBank : 0));
}

unsigned
ChannelController::bankIndex(const DecodedAddr &d) const
{
    return d.rank * map_.geometry().banksPerRank + d.bank;
}

unsigned
ChannelController::bufferIndex(const DecodedAddr &d, Orientation o)
{
    return o == Orientation::Row ? d.row : d.col;
}

void
ChannelController::enqueue(MemRequest req)
{
    // The capacity is a soft cap: demand traffic respects
    // canAccept(), while write-backs may transiently overshoot so
    // evictions never deadlock the hierarchy.
    Pending p;
    p.dec = map_.decode(req.addr, req.orient);
    p.req = std::move(req);
    p.enqueueTick = eq_.now();
    queue_.push_back(std::move(p));
    trySchedule();
}

void
ChannelController::scheduleWakeup(Tick when)
{
    if (wakeupScheduled_ && wakeupAt_ <= when)
        return;
    wakeupScheduled_ = true;
    wakeupAt_ = when;
    eq_.schedule(when, [this, when] {
        if (wakeupScheduled_ && wakeupAt_ == when) {
            wakeupScheduled_ = false;
            trySchedule();
        }
    });
}

void
ChannelController::issueAt(std::size_t pos)
{
    Pending p = std::move(queue_[pos]);
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(pos));

    Bank &bank = banks_[bankIndex(p.dec)];
    const unsigned index = bufferIndex(p.dec, p.req.orient);
    Bank::Service s =
        bank.access(eq_.now(), p.req.orient, p.dec.subarray, index,
                    p.req.isWrite, timing_, busFree_);

    // A gathered line's words come from shuffled column positions
    // across the chips; pattern translation and chip-conflict
    // serialisation halve the useful-word rate on the bus, so the
    // transfer occupies two burst slots (calibrated to the GS-DRAM
    // relationship the RC-NVM paper reports).
    if (p.req.gathered)
        s.finish += timing_.cyc(timing_.tBURST);

    busFree_ = s.finish;

    // Statistics.
    (p.req.isWrite ? stats_.writes : stats_.reads).inc();
    if (p.req.gathered)
        stats_.gathered.inc();
    const bool is_row = p.req.orient == Orientation::Row;
    (is_row ? stats_.rowAccesses : stats_.colAccesses).inc();
    const bool hit = s.outcome == AccessOutcome::BufferHit;
    switch (s.outcome) {
      case AccessOutcome::BufferHit:
        stats_.bufferHits.inc();
        break;
      case AccessOutcome::BufferMiss:
        stats_.bufferMisses.inc();
        break;
      case AccessOutcome::BufferConflict:
        stats_.bufferConflicts.inc();
        break;
      case AccessOutcome::OrientationSwitch:
        stats_.orientationSwitches.inc();
        break;
    }
    if (is_row)
        (hit ? stats_.rowBufferHits : stats_.rowBufferMisses).inc();
    else
        (hit ? stats_.colBufferHits : stats_.colBufferMisses).inc();
    stats_.queueWaitTicks.sample(
        static_cast<double>(s.start - p.enqueueTick));
    stats_.serviceTicks.sample(
        static_cast<double>(s.finish - s.start));
    stats_.busBusyTicks.inc(timing_.cyc(timing_.tBURST));

    // Energy accounting (extension): activations, bursts, and cell
    // write pulses for dirty-buffer flushes.
    if (s.outcome != AccessOutcome::BufferHit)
        stats_.energyPJ += timing_.eActivate;
    if (s.flushedDirty)
        stats_.energyPJ += timing_.eWritePulse;
    stats_.energyPJ += p.req.isWrite ? timing_.eWriteBurst
                                     : timing_.eReadBurst;
    if (p.req.gathered)
        stats_.energyPJ += timing_.eReadBurst; // second burst slot

    if (p.req.onComplete) {
        auto cb = std::move(p.req.onComplete);
        eq_.schedule(s.finish,
                     [cb = std::move(cb), finish = s.finish] {
                         cb(finish);
                     });
    }
}

void
ChannelController::trySchedule()
{
    for (;;) {
        if (queue_.empty())
            return;

        const Tick now = eq_.now();
        std::size_t pick = queue_.size();
        bool pick_is_hit = false;
        Tick earliest_busy = std::numeric_limits<Tick>::max();

        // The oldest request may veto younger buffer hits once it
        // has been bypassed too often (starvation control).
        const bool oldest_forced =
            queue_.front().bypassed >= starvationCap;

        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const Pending &p = queue_[i];
            const Bank &bank = banks_[bankIndex(p.dec)];
            if (bank.nextReady() > now) {
                earliest_busy =
                    std::min(earliest_busy, bank.nextReady());
                continue;
            }
            const bool is_hit =
                bank.hits(p.req.orient, p.dec.subarray,
                          bufferIndex(p.dec, p.req.orient));
            if (is_hit && !oldest_forced) {
                pick = i;
                pick_is_hit = true;
                break; // oldest ready buffer hit wins
            }
            if (pick == queue_.size())
                pick = i; // remember oldest ready request
            if (oldest_forced && i == 0)
                break; // serve the starving head immediately
        }

        if (pick == queue_.size()) {
            // Nothing ready: wake up when the first bank frees up.
            if (earliest_busy != std::numeric_limits<Tick>::max())
                scheduleWakeup(earliest_busy);
            return;
        }

        if (pick_is_hit && pick != 0)
            ++queue_.front().bypassed;

        issueAt(pick);
    }
}

void
ChannelController::reset()
{
    queue_.clear();
    for (auto &bank : banks_)
        bank.reset();
    busFree_ = 0;
    wakeupScheduled_ = false;
    stats_ = ControllerStats{};
}

} // namespace rcnvm::mem
