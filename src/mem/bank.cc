#include "mem/bank.hh"

#include <algorithm>

namespace rcnvm::mem {

Bank::Bank(unsigned salp_subarrays)
{
    buffers_.resize(salp_subarrays > 0 ? salp_subarrays : 1);
}

Bank::Buffer &
Bank::bufferFor(unsigned subarray)
{
    if (buffers_.size() == 1)
        return buffers_[0];
    return buffers_[subarray % buffers_.size()];
}

const Bank::Buffer &
Bank::bufferFor(unsigned subarray) const
{
    if (buffers_.size() == 1)
        return buffers_[0];
    return buffers_[subarray % buffers_.size()];
}

bool
Bank::hits(Orientation orient, unsigned subarray, unsigned index) const
{
    return classify(bufferFor(subarray), orient, subarray, index) ==
           AccessOutcome::BufferHit;
}

AccessOutcome
Bank::classify(const Buffer &buf, Orientation orient, unsigned subarray,
               unsigned index)
{
    const BufState want = orient == Orientation::Row ? BufState::RowOpen
                                                     : BufState::ColOpen;
    if (buf.state == want && buf.subarray == subarray &&
        buf.index == index)
        return AccessOutcome::BufferHit;
    if (buf.state == BufState::Closed)
        return AccessOutcome::BufferMiss;
    if (buf.state == want)
        return AccessOutcome::BufferConflict;
    return AccessOutcome::OrientationSwitch;
}

Bank::Lookahead
Bank::lookahead(Orientation orient, unsigned subarray, unsigned index,
                const TimingParams &t) const
{
    const Buffer &buf = bufferFor(subarray);
    Lookahead la;
    la.cmdReady = nextReady_;
    la.lead = t.cyc(t.tCAS);
    switch (classify(buf, orient, subarray, index)) {
      case AccessOutcome::BufferHit:
        la.hit = true;
        break;
      case AccessOutcome::BufferMiss:
        la.lead += t.cyc(t.tRCD);
        break;
      case AccessOutcome::BufferConflict:
      case AccessOutcome::OrientationSwitch:
        la.cmdReady = std::max(la.cmdReady,
                               buf.lastActivate + t.cyc(t.tRAS));
        la.lead += (buf.dirty ? t.cyc(t.tWR) : Tick{}) + t.cyc(t.tRP) +
                   t.cyc(t.tRCD);
        break;
    }
    return la;
}

Bank::Service
Bank::access(Tick now, Orientation orient, unsigned subarray,
             unsigned index, bool isWrite, const TimingParams &t,
             Tick bus_free)
{
    Buffer &buf = bufferFor(subarray);

    Service s;
    s.start = std::max(now, nextReady_);
    Tick cursor = s.start;

    const BufState want = orient == Orientation::Row ? BufState::RowOpen
                                                     : BufState::ColOpen;

    // Conflict/switch is the paper's row/column switch, which closes
    // and flushes the active buffer before the new activate (Sec. 3).
    s.outcome = classify(buf, orient, subarray, index);

    if (s.outcome == AccessOutcome::BufferConflict ||
        s.outcome == AccessOutcome::OrientationSwitch) {
        // Precharge may not begin before tRAS has elapsed since the
        // buffer was activated.
        cursor = std::max(cursor, buf.lastActivate + t.cyc(t.tRAS));
        // Flushing a dirty buffer applies the cell write pulse.
        if (buf.dirty) {
            cursor += t.cyc(t.tWR);
            s.flushedDirty = true;
        }
        cursor += t.cyc(t.tRP);
        buf.state = BufState::Closed;
        buf.dirty = false;
    }

    if (buf.state == BufState::Closed) {
        cursor += t.cyc(t.tRCD); // activate: fill the target buffer
        buf.state = want;
        buf.subarray = subarray;
        buf.index = index;
        buf.lastActivate = cursor;
    }

    // CAS issues at `cursor`; the data burst waits for the channel
    // bus. Consecutive accesses to an open buffer pipeline at the
    // CAS-to-CAS interval, so a streaming scan saturates the bus.
    const Tick cas_at = cursor;
    s.dataStart = std::max(cas_at + t.cyc(t.tCAS), bus_free);
    s.finish = s.dataStart + t.cyc(t.tBURST);
    s.busyUntil = cas_at + t.cyc(t.tCCD);

    if (isWrite)
        buf.dirty = true;

    nextReady_ = s.busyUntil;
    return s;
}

void
Bank::reset()
{
    for (Buffer &buf : buffers_)
        buf = Buffer{};
    nextReady_ = Tick{};
}

} // namespace rcnvm::mem
