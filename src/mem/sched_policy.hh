/**
 * @file
 * Pluggable request-selection policies for the channel controller
 * (Ramulator-style policy/mechanism split).
 *
 * The controller keeps the mechanism: the bank scan, readiness and
 * bus-slot computation, starvation control, wakeups, and the issue
 * itself. The policy only ranks the candidates that are ready in one
 * scheduling round, so swapping policies can never violate timing or
 * starvation invariants. FrFcfs reproduces the historical controller
 * selection exactly (byte-identical goldens).
 */

#ifndef RCNVM_MEM_SCHED_POLICY_HH_
#define RCNVM_MEM_SCHED_POLICY_HH_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace rcnvm::mem {

/** One ready request a scheduling round may choose from. */
struct SchedCandidate {
    unsigned bank = 0;     //!< flat bank index within the channel
    std::size_t pos = 0;   //!< position in the bank's FIFO
    std::uint64_t seq = 0; //!< global arrival order
    bool hit = false;      //!< hits the bank's currently open buffer
    bool isWrite = false;  //!< request is a store / write-back
    bool priority = false; //!< OLTP-class (latency-critical) packet
};

/** Which selection policy a controller should construct. */
enum class SchedPolicyKind {
    FrFcfs,       //!< first-ready FCFS (default; Rixner et al.)
    Fcfs,         //!< strict arrival order, no hit-first reordering
    ReadPriority, //!< OLTP-class reads bypass queued writes
};

/** Stable lowercase name ("frfcfs", "fcfs", "readpri"). */
const char *toString(SchedPolicyKind kind);

/** Parse a policy name; false when @p s names no policy. */
bool parseSchedPolicy(std::string_view s, SchedPolicyKind &out);

/**
 * A request-selection policy. The controller drives one round per
 * scheduling pass: begin(), one offer() per ready candidate, then
 * choose(). Policies are per-controller objects (channel shards must
 * never share one) and may keep state across rounds.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Stable policy name for reports and traces. */
    virtual const char *name() const = 0;

    /** Start a scheduling round. */
    virtual void begin() = 0;

    /**
     * Offer one candidate whose bank and bus slot are ready now.
     * Within a bank the controller offers at most the FIFO front
     * (pos 0) and the oldest open-buffer hit (pos > 0).
     */
    virtual void offer(const SchedCandidate &c) = 0;

    /** Select the round's winner; false when nothing was offered. */
    virtual bool choose(SchedCandidate &out) const = 0;
};

/** Construct the policy object for @p kind. */
std::unique_ptr<SchedulerPolicy> makeSchedulerPolicy(SchedPolicyKind kind);

} // namespace rcnvm::mem

#endif // RCNVM_MEM_SCHED_POLICY_HH_
