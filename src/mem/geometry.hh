/**
 * @file
 * Physical geometry of a memory device and the dual addressing
 * scheme of Figure 7.
 */

#ifndef RCNVM_MEM_GEOMETRY_HH_
#define RCNVM_MEM_GEOMETRY_HH_

#include <cstdint>

#include "util/bitfield.hh"
#include "util/types.hh"

namespace rcnvm::mem {

/**
 * Counts of each level of the memory hierarchy. All values must be
 * powers of two so addresses decompose into bit fields.
 *
 * The row/column counts are per subarray. Conventional devices
 * (DRAM) are modelled with subarraysPerBank == 1 and an asymmetric
 * row/column shape; dual-addressable devices use square subarrays.
 */
struct Geometry {
    unsigned channels = 2;
    unsigned ranksPerChannel = 4;
    unsigned banksPerRank = 8;
    unsigned subarraysPerBank = 8;
    unsigned rowsPerSubarray = 1024;
    unsigned colsPerSubarray = 1024;
    unsigned wordBytes = 8; //!< intra-bus granularity (3 offset bits)

    /** Capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t{channels} * ranksPerChannel * banksPerRank *
               subarraysPerBank * rowsPerSubarray * colsPerSubarray *
               wordBytes;
    }

    /** Bytes held by one subarray. */
    std::uint64_t
    subarrayBytes() const
    {
        return std::uint64_t{rowsPerSubarray} * colsPerSubarray *
               wordBytes;
    }

    /** Bytes in one physical row of a subarray (row buffer size). */
    std::uint64_t rowBytes() const
    {
        return std::uint64_t{colsPerSubarray} * wordBytes;
    }

    /** Bytes in one physical column of a subarray. */
    std::uint64_t columnBytes() const
    {
        return std::uint64_t{rowsPerSubarray} * wordBytes;
    }

    /** The RC-NVM geometry of Table 1 (4 GB, 1024x1024 subarrays). */
    static Geometry rcNvm();

    /** The conventional RRAM geometry of Table 1. */
    static Geometry rram();

    /** The DDR3 DRAM geometry of Table 1 (65536x256 banks). */
    static Geometry dram();
};

/** A fully decoded physical location. */
struct DecodedAddr {
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    unsigned subarray = 0;
    unsigned row = 0;    //!< row index within the subarray
    unsigned col = 0;    //!< column (word) index within the subarray
    unsigned offset = 0; //!< byte offset within the 8-byte word

    bool operator==(const DecodedAddr &) const = default;
};

/**
 * The Figure-7 address mapper.
 *
 * Bit layout, most to least significant:
 *
 *   channel | rank | bank | subarray | A | B | intra-bus offset
 *
 * where (A, B) = (row, column) for a row-oriented address and
 * (column, row) for a column-oriented address. Incrementing a
 * row-oriented address walks along a physical row; incrementing a
 * column-oriented address walks down a physical column; converting
 * between the two is a swap of the row and column fields.
 */
class AddressMap
{
  public:
    /** Build a mapper for @p geometry (all counts powers of two). */
    explicit AddressMap(const Geometry &geometry);

    /** The geometry this map was built for. */
    const Geometry &geometry() const { return geo_; }

    /** Total number of address bits used. */
    unsigned addressBits() const { return totalBits_; }

    /** Encode a decoded location as an address of @p o orientation. */
    Addr encode(const DecodedAddr &d, Orientation o) const;

    /** Decode an @p o -oriented address. */
    DecodedAddr decode(Addr a, Orientation o) const;

    /**
     * Re-express an address in the other orientation; the paper's
     * Row2ColAddr/Col2RowAddr primitive (Sec. 4.2.1).
     */
    Addr convert(Addr a, Orientation from, Orientation to) const;

    /**
     * Align an @p o -oriented address down to the start of its
     * 64-byte cache line (8 consecutive words in that orientation).
     */
    Addr lineAddr(Addr a, unsigned lineBytes = 64) const;

    // Typed overloads ---------------------------------------------
    //
    // Call sites that statically know their address space use these;
    // the strong RowAddr/ColAddr types then make it impossible to
    // hand a column-oriented address to row-oriented code without an
    // explicit convert() — the compile-time form of the paper's
    // Row2ColAddr/Col2RowAddr primitive.

    /** Encode a decoded location as an @p O -oriented address. */
    template <Orientation O>
    OrientedAddr<O>
    encode(const DecodedAddr &d) const
    {
        return OrientedAddr<O>{encode(d, O)};
    }

    /** Encode a decoded location as a row-oriented address. */
    RowAddr
    encodeRow(const DecodedAddr &d) const
    {
        return encode<Orientation::Row>(d);
    }

    /** Encode a decoded location as a column-oriented address. */
    ColAddr
    encodeCol(const DecodedAddr &d) const
    {
        return encode<Orientation::Column>(d);
    }

    /** Decode a statically-oriented address. */
    template <Orientation O>
    DecodedAddr
    decode(OrientedAddr<O> a) const
    {
        return decode(a.value(), O);
    }

    /** Re-express a row-oriented address in column orientation. */
    ColAddr
    convert(RowAddr a) const
    {
        return ColAddr{
            convert(a.value(), Orientation::Row, Orientation::Column)};
    }

    /** Re-express a column-oriented address in row orientation. */
    RowAddr
    convert(ColAddr a) const
    {
        return RowAddr{
            convert(a.value(), Orientation::Column, Orientation::Row)};
    }

    /** Line-align a statically-oriented address (stays oriented). */
    template <Orientation O>
    OrientedAddr<O>
    lineAddr(OrientedAddr<O> a, unsigned lineBytes = 64) const
    {
        return OrientedAddr<O>{lineAddr(a.value(), lineBytes)};
    }

  private:
    Geometry geo_;
    unsigned offsetBits_;
    unsigned minorBits_; //!< B field width (cols for row orientation)
    unsigned majorBits_; //!< A field width
    unsigned subarrayBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned channelBits_;
    unsigned totalBits_;
};

} // namespace rcnvm::mem

#endif // RCNVM_MEM_GEOMETRY_HH_
