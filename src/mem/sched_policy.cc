#include "mem/sched_policy.hh"

#include <limits>

#include "util/logging.hh"

namespace rcnvm::mem {

namespace {

constexpr std::uint64_t noSeq = std::numeric_limits<std::uint64_t>::max();

/**
 * First-ready FCFS: the oldest ready open-buffer hit wins; with no
 * ready hit, the oldest ready FIFO front. Only fronts compete in the
 * no-hit tier — a deeper entry may bypass its bank's front solely on
 * the strength of an open-buffer hit.
 */
class FrFcfsPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "frfcfs"; }

    void begin() override
    {
        bestHitSeq_ = noSeq;
        bestAnySeq_ = noSeq;
    }

    void offer(const SchedCandidate &c) override
    {
        if (c.pos == 0 && c.seq < bestAnySeq_) {
            bestAnySeq_ = c.seq;
            bestAny_ = c;
        }
        if (c.hit && c.seq < bestHitSeq_) {
            bestHitSeq_ = c.seq;
            bestHit_ = c;
        }
    }

    bool choose(SchedCandidate &out) const override
    {
        if (bestHitSeq_ != noSeq) {
            out = bestHit_;
            return true;
        }
        if (bestAnySeq_ != noSeq) {
            out = bestAny_;
            return true;
        }
        return false;
    }

  private:
    SchedCandidate bestHit_;
    SchedCandidate bestAny_;
    std::uint64_t bestHitSeq_ = noSeq;
    std::uint64_t bestAnySeq_ = noSeq;
};

/**
 * Strict FCFS: the oldest ready FIFO front wins regardless of buffer
 * state. Deeper open-buffer hits never bypass, so per-bank service
 * is pure arrival order (the classic row-hit-blind baseline).
 */
class FcfsPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    void begin() override { bestSeq_ = noSeq; }

    void offer(const SchedCandidate &c) override
    {
        if (c.pos == 0 && c.seq < bestSeq_) {
            bestSeq_ = c.seq;
            best_ = c;
        }
    }

    bool choose(SchedCandidate &out) const override
    {
        if (bestSeq_ == noSeq)
            return false;
        out = best_;
        return true;
    }

  private:
    SchedCandidate best_;
    std::uint64_t bestSeq_ = noSeq;
};

/**
 * Two-tier FR-FCFS: reads carrying the OLTP-class priority flag form
 * the upper tier and are ranked FR-FCFS among themselves; everything
 * else (writes, plain reads) competes in the lower tier only when no
 * priority read is ready. Starvation of the lower tier is bounded by
 * the controller's mechanism-side starvation cap, not by the policy.
 */
class ReadPriorityPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "readpri"; }

    void begin() override
    {
        pri_.begin();
        rest_.begin();
    }

    void offer(const SchedCandidate &c) override
    {
        if (c.priority && !c.isWrite)
            pri_.offer(c);
        else
            rest_.offer(c);
    }

    bool choose(SchedCandidate &out) const override
    {
        if (pri_.choose(out))
            return true;
        return rest_.choose(out);
    }

  private:
    FrFcfsPolicy pri_;
    FrFcfsPolicy rest_;
};

} // namespace

const char *
toString(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::FrFcfs:
        return "frfcfs";
      case SchedPolicyKind::Fcfs:
        return "fcfs";
      case SchedPolicyKind::ReadPriority:
        return "readpri";
    }
    rcnvm_panic("unknown scheduler policy kind");
}

bool
parseSchedPolicy(std::string_view s, SchedPolicyKind &out)
{
    if (s == "frfcfs" || s == "fr-fcfs") {
        out = SchedPolicyKind::FrFcfs;
        return true;
    }
    if (s == "fcfs") {
        out = SchedPolicyKind::Fcfs;
        return true;
    }
    if (s == "readpri" || s == "read-priority") {
        out = SchedPolicyKind::ReadPriority;
        return true;
    }
    return false;
}

std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::FrFcfs:
        return std::make_unique<FrFcfsPolicy>();
      case SchedPolicyKind::Fcfs:
        return std::make_unique<FcfsPolicy>();
      case SchedPolicyKind::ReadPriority:
        return std::make_unique<ReadPriorityPolicy>();
    }
    rcnvm_panic("unknown scheduler policy kind");
}

} // namespace rcnvm::mem
