/**
 * @file
 * Device timing parameters (Table 1) and the device kind taxonomy.
 */

#ifndef RCNVM_MEM_TIMING_HH_
#define RCNVM_MEM_TIMING_HH_

#include <string>

#include "sim/clock_domain.hh"
#include "util/types.hh"

namespace rcnvm::mem {

/** The four memory devices evaluated in the paper. */
enum class DeviceKind {
    Dram,   //!< DDR3-1333 DRAM, row-oriented only
    Rram,   //!< LPDDR3-800 crossbar RRAM, row-oriented only
    RcNvm,  //!< dual-addressable RRAM (the paper's contribution)
    GsDram, //!< DDR3 DRAM with gather-scatter support (baseline)
};

/** Human-readable device name. */
const char *toString(DeviceKind kind);

/**
 * Timing parameters in device clock cycles, following Table 1.
 *
 * The paper's "read access time" equals tRCD x clock period (25 ns
 * for RRAM at 400 MHz, 29/30 ns for RC-NVM); the "write pulse width"
 * is the cell write time applied by the write drivers.
 */
struct TimingParams {
    Tick clkPeriod{2500};  //!< device clock period in ticks (ps)
    MemCycles tCAS{6};   //!< column access strobe latency
    MemCycles tRCD{10};  //!< activate (buffer fill) latency
    MemCycles tRP{1};    //!< precharge / buffer close latency
    MemCycles tRAS{0};   //!< minimum activate-to-precharge interval
    MemCycles tBURST{4}; //!< 64-byte burst duration on the bus
    MemCycles tCCD{4};   //!< CAS-to-CAS gap (burst pipelining)
    MemCycles tWR{4};    //!< cell write pulse width in cycles

    // Representative per-command energies in picojoules, used by
    // the energy-accounting extension (values follow the usual
    // DDR3/RRAM modelling literature; relative magnitudes are what
    // matters for the comparisons).
    double eActivate = 15000.0;   //!< buffer fill (ACT) + precharge
    double eReadBurst = 4000.0;   //!< one 64-byte read burst
    double eWriteBurst = 4500.0;  //!< one 64-byte write burst
    double eWritePulse = 20000.0; //!< cell write-back of a dirty buffer

    /** This device's bus clock as a `MemClk` clock domain. */
    sim::ClockDomain<MemClk>
    clock() const
    {
        return sim::ClockDomain<MemClk>(clkPeriod);
    }

    /** Ticks for @p c device cycles (via the device clock domain,
     *  the only legal MemCycles -> Tick crossing). */
    Tick cyc(MemCycles c) const { return clock().cyclesToTicks(c); }

    /** DDR3-1333 parameters from Table 1. */
    static TimingParams ddr3_1333();

    /** LPDDR3-800 RRAM parameters from Table 1 (Panasonic model). */
    static TimingParams rram();

    /** RC-NVM parameters from Table 1 (RRAM + mux overhead). */
    static TimingParams rcNvm();

    /**
     * Scale the cell read access time (tRCD) and write pulse width
     * (tWR) to the given nanosecond values; used by the Figure-22
     * sensitivity sweep.
     */
    TimingParams withCellLatency(double read_ns, double write_ns) const;
};

/** Capabilities that differ between the four devices. */
struct DeviceCaps {
    bool columnAccess = false; //!< supports cload/cstore
    bool gather = false;       //!< GS-DRAM power-of-2 gather
};

/** Capability set for a device kind. */
DeviceCaps capsFor(DeviceKind kind);

/** Timing preset for a device kind. */
TimingParams timingFor(DeviceKind kind);

} // namespace rcnvm::mem

#endif // RCNVM_MEM_TIMING_HH_
