/**
 * @file
 * The main-memory facade: address map, per-channel controllers, and
 * aggregate statistics for one of the four evaluated devices.
 */

#ifndef RCNVM_MEM_MEMORY_SYSTEM_HH_
#define RCNVM_MEM_MEMORY_SYSTEM_HH_

#include <functional>
#include <memory>
#include <vector>

#include "mem/controller.hh"
#include "mem/geometry.hh"
#include "mem/request.hh"
#include "mem/timing.hh"
#include "sim/event_queue.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace rcnvm::mem {

/**
 * A complete main-memory subsystem (RC-NVM, RRAM, DRAM, or GS-DRAM):
 * the Figure-6 organisation of channels x ranks x banks x subarrays
 * behind per-channel FR-FCFS controllers.
 */
class MemorySystem
{
  public:
    /**
     * @param kind    which of the four devices to model
     * @param eq      simulation event queue
     * @param timing  timing override (defaults to the Table-1 preset)
     * @param salp    per-subarray buffer pairs (SALP extension)
     * @param queue_capacity  per-channel request-queue depth
     */
    MemorySystem(DeviceKind kind, sim::EventQueue &eq);
    MemorySystem(DeviceKind kind, sim::EventQueue &eq,
                 const TimingParams &timing, bool salp = false,
                 unsigned queue_capacity = 32);

    /** Device kind being modelled. */
    DeviceKind kind() const { return kind_; }

    /** Capability set (column access, gather). */
    const DeviceCaps &caps() const { return caps_; }

    /** The device's dual (or single) address map. */
    const AddressMap &map() const { return map_; }

    /** True when a request can be queued right now. */
    bool canAccept(Addr addr, Orientation orient) const;

    /** Channel a packet to this address/orientation would use. */
    unsigned channelOf(Addr addr, Orientation orient) const;

    /** Number of channels (for per-channel client bookkeeping). */
    unsigned channels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /**
     * Queue a request. Column-oriented requests are rejected with a
     * panic on devices without column access (the compiler must not
     * emit them).
     */
    void issue(MemRequest &&req);

    /**
     * Backpressured issue: queue @p pkt only if its channel has
     * room. On refusal the packet is left untouched (the caller
     * keeps ownership and retries after the retry callback) and the
     * rejection is counted in `mem.rejectedIssues`.
     */
    [[nodiscard]] bool tryIssue(MemPacket &pkt);

    /**
     * Register the retry hook invoked (via a same-tick event)
     * whenever any channel that refused a packet frees queue space.
     */
    void setRetryCallback(std::function<void()> cb);

    /**
     * Register this memory system's statistics: per-channel counters
     * and sample sets under shared names (the registry aggregates
     * them), and the derived statistics — `mem.requests`, the
     * avg/max family, `mem.busUtilization`, `mem.bufferMissRate` —
     * as report-time formulas so they are computed from fully merged
     * inputs and can never be re-merged downstream.
     *
     * The registry stores pointers into this object; it must not
     * outlive the memory system.
     */
    void registerStats(util::StatRegistry &r) const;

    /** Aggregate statistics over all channels (a snapshot of a
     *  registry built by registerStats). */
    util::StatsMap stats() const;

    /** Requests queued across all channels right now (epoch gauge). */
    std::size_t queuedTotal() const;

    /** Reset controllers, banks, and statistics. */
    void reset();

  private:
    DeviceKind kind_;
    DeviceCaps caps_;
    AddressMap map_;
    sim::EventQueue &eq_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    util::Counter rejectedIssues_; //!< tryIssue refusals
};

/** Geometry preset for a device kind. */
Geometry geometryFor(DeviceKind kind);

} // namespace rcnvm::mem

#endif // RCNVM_MEM_MEMORY_SYSTEM_HH_
