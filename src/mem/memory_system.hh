/**
 * @file
 * The main-memory facade: address map, per-channel controllers, and
 * aggregate statistics for one of the four evaluated devices.
 */

#ifndef RCNVM_MEM_MEMORY_SYSTEM_HH_
#define RCNVM_MEM_MEMORY_SYSTEM_HH_

#include <functional>
#include <memory>
#include <vector>

#include "mem/controller.hh"
#include "mem/geometry.hh"
#include "mem/request.hh"
#include "mem/timing.hh"
#include "sim/event_queue.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace rcnvm::sim {
class ParallelEngine;
} // namespace rcnvm::sim

namespace rcnvm::mem {

/**
 * The abstract memory tier the cache hierarchy (and any other
 * memory-side client) programs against. A tier is anything that can
 * accept line packets and complete them asynchronously: a single
 * device (MemorySystem) or a composition such as the hybrid
 * DRAM-fronting-RC-NVM tier (HybridMemory). The interface is exactly
 * the surface the hierarchy already consumed, so single-tier
 * machines pay only a devirtualisable indirection.
 */
class MemoryTier
{
  public:
    virtual ~MemoryTier() = default;

    /** Capability set (column access, gather) of the tier as the
     *  client sees it (for a hybrid tier: the backing device's). */
    virtual const DeviceCaps &caps() const = 0;

    /** The address map client addresses are expressed in. */
    virtual const AddressMap &map() const = 0;

    /** True when a request can be queued right now. */
    virtual bool canAccept(Addr addr, Orientation orient) const = 0;

    /** Channel a packet to this address/orientation would use. */
    virtual unsigned channelOf(Addr addr, Orientation orient) const = 0;

    /** Number of channels (for per-channel client bookkeeping). */
    virtual unsigned channels() const = 0;

    /** Queue a request unconditionally (write-back overshoot). */
    virtual void issue(MemRequest &&req) = 0;

    /** Backpressured issue; on refusal @p pkt is left untouched. */
    [[nodiscard]] virtual bool tryIssue(MemPacket &pkt) = 0;

    /** Register the retry hook for refused clients. */
    virtual void setRetryCallback(std::function<void()> cb) = 0;

    /** Register the tier's statistics into @p r. */
    virtual void registerStats(util::StatRegistry &r) const = 0;

    /** Requests queued across the tier right now (epoch gauge). */
    virtual std::size_t queuedTotal() const = 0;

    /** Reset device state and statistics. */
    virtual void reset() = 0;
};

/**
 * A complete main-memory subsystem (RC-NVM, RRAM, DRAM, or GS-DRAM):
 * the Figure-6 organisation of channels x ranks x banks x subarrays
 * behind per-channel pluggable-policy (default FR-FCFS) controllers.
 */
class MemorySystem : public MemoryTier
{
  public:
    /**
     * @param kind    which of the four devices to model
     * @param eq      simulation event queue
     * @param timing  timing override (defaults to the Table-1 preset)
     * @param salp    per-subarray buffer pairs (SALP extension)
     * @param queue_capacity  per-channel request-queue depth
     */
    MemorySystem(DeviceKind kind, sim::EventQueue &eq);
    MemorySystem(DeviceKind kind, sim::EventQueue &eq,
                 const TimingParams &timing, bool salp = false,
                 unsigned queue_capacity = 32);

    /**
     * Full-control constructor: explicit geometry (scaling studies
     * and multi-channel benchmarks) and, for the channel-sharded
     * engine, one private event queue per channel. An empty
     * @p channel_queues builds the classic single-queue system on
     * @p eq; otherwise @p eq remains the core-shard queue (client
     * callbacks, retry events) while controller @p c runs entirely
     * on @p channel_queues[c], and the system must be connected to
     * the engine with attachShardLink() before the first issue.
     */
    MemorySystem(DeviceKind kind, sim::EventQueue &eq,
                 const TimingParams &timing, bool salp,
                 unsigned queue_capacity, const Geometry &geometry,
                 const std::vector<sim::EventQueue *> &channel_queues,
                 SchedPolicyKind sched = SchedPolicyKind::FrFcfs);

    /**
     * Wire the sharded memory system to the engine: controller
     * completions route through the per-channel core-bound
     * mailboxes, and the engine's window exchange drives this
     * system's occupancy mirrors and deferred retry notifications.
     */
    void attachShardLink(sim::ParallelEngine &engine);

    /** True when built with per-channel queues (sharded mode). */
    bool sharded() const { return sharded_; }

    /** Device kind being modelled. */
    DeviceKind kind() const { return kind_; }

    /** Capability set (column access, gather). */
    const DeviceCaps &caps() const override { return caps_; }

    /** The device's dual (or single) address map. */
    const AddressMap &map() const override { return map_; }

    /** True when a request can be queued right now. */
    bool canAccept(Addr addr, Orientation orient) const override;

    /** Channel a packet to this address/orientation would use. */
    unsigned channelOf(Addr addr, Orientation orient) const override;

    /** Number of channels (for per-channel client bookkeeping). */
    unsigned channels() const override
    {
        return static_cast<unsigned>(channels_.size());
    }

    /**
     * Queue a request. Column-oriented requests are rejected with a
     * panic on devices without column access (the compiler must not
     * emit them).
     */
    void issue(MemRequest &&req) override;

    /**
     * Backpressured issue: queue @p pkt only if its channel has
     * room. On refusal the packet is left untouched (the caller
     * keeps ownership and retries after the retry callback) and the
     * rejection is counted in `mem.rejectedIssues`.
     */
    [[nodiscard]] bool tryIssue(MemPacket &pkt) override;

    /**
     * Register the retry hook invoked (via a same-tick event)
     * whenever any channel that refused a packet frees queue space.
     */
    void setRetryCallback(std::function<void()> cb) override;

    /**
     * Register this memory system's statistics: per-channel counters
     * and sample sets under shared names (the registry aggregates
     * them), and the derived statistics — `mem.requests`, the
     * avg/max family, `mem.busUtilization`, `mem.bufferMissRate` —
     * as report-time formulas so they are computed from fully merged
     * inputs and can never be re-merged downstream.
     *
     * The registry stores pointers into this object; it must not
     * outlive the memory system.
     */
    void registerStats(util::StatRegistry &r) const override;

    /** Aggregate statistics over all channels (a snapshot of a
     *  registry built by registerStats). */
    util::StatsMap stats() const;

    /** Requests queued across all channels right now (epoch gauge). */
    std::size_t queuedTotal() const override;

    /** Reset controllers, banks, and statistics. */
    void reset() override;

  private:
    /** Post @p pkt's enqueue to channel @p c's shard, stamped with
     *  the issuing core event's position in the same-tick order. */
    void postIssue(unsigned c, MemPacket &&pkt);

    /** Window-exchange hook body (sharded mode): fold controller
     *  dequeue counts into the occupancy mirrors and wake a refused
     *  client at @p next_window_start when space appeared. */
    void shardExchange(Tick next_window_start);

    /** Core-side occupancy mirror of channel @p c (sharded mode):
     *  issues counted immediately, dequeues as of the last window
     *  exchange, so it conservatively over-estimates by at most one
     *  window's drain. */
    std::size_t shardQueued(unsigned c) const
    {
        return static_cast<std::size_t>(shardIssued_[c] -
                                        shardDequeued_[c]);
    }

    DeviceKind kind_;
    DeviceCaps caps_;
    AddressMap map_;
    sim::EventQueue &eq_; //!< core-shard queue in sharded mode
    std::vector<std::unique_ptr<ChannelController>> channels_;
    util::Counter rejectedIssues_; //!< tryIssue refusals

    // Channel-sharded mode. The mirrors and the retry flag are only
    // touched from the core shard (issue paths and the exchange
    // hook), so they need no synchronisation of their own.
    bool sharded_ = false;
    sim::ParallelEngine *engine_ = nullptr;
    std::vector<std::uint64_t> shardIssued_;    //!< per channel
    std::vector<std::uint64_t> shardDequeued_;  //!< as of exchange
    std::function<void()> retryCb_;
    bool retryArmed_ = false; //!< a client was refused since the
                              //!< last retry notification
};

/** Geometry preset for a device kind. */
Geometry geometryFor(DeviceKind kind);

} // namespace rcnvm::mem

#endif // RCNVM_MEM_MEMORY_SYSTEM_HH_
