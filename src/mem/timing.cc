#include "mem/timing.hh"

#include <cmath>

#include "util/logging.hh"

namespace rcnvm::mem {

const char *
toString(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
        return "DRAM";
      case DeviceKind::Rram:
        return "RRAM";
      case DeviceKind::RcNvm:
        return "RC-NVM";
      case DeviceKind::GsDram:
        return "GS-DRAM";
    }
    return "?";
}

TimingParams
TimingParams::ddr3_1333()
{
    TimingParams t;
    // Cycle unit is the 750 ps transfer (beat) time of DDR3-1333;
    // tRCD + tCAS then matches the paper's 14 ns access time.
    t.clkPeriod = 750;
    t.tCAS = 10;
    t.tRCD = 9;
    t.tRP = 9;
    t.tRAS = 24;
    t.tBURST = 8; // BL8: eight 8-byte beats = 6 ns per line
    t.tCCD = 8;   // back-to-back bursts saturate the bus
    t.tWR = 13;   // ~10 ns write recovery
    t.eActivate = 15000.0; // 2 KB destructive read + restore
    t.eReadBurst = 4000.0;
    t.eWriteBurst = 4500.0;
    t.eWritePulse = 0.0; // DRAM restores rows during precharge
    return t;
}

TimingParams
TimingParams::rram()
{
    TimingParams t;
    t.clkPeriod = 2500; // LPDDR3-800, 400 MHz clock
    t.tCAS = 6;
    t.tRCD = 10; // 25 ns read access time
    t.tRP = 1;   // no destructive read: nothing to restore
    t.tRAS = 0;
    t.tBURST = 4; // eight beats at 800 MT/s = 10 ns per line
    t.tCCD = 4;
    t.tWR = 4; // 10 ns write pulse
    // Crossbar sensing reads non-destructively (no restore), but
    // the cell write pulse is expensive.
    t.eActivate = 9000.0;
    t.eReadBurst = 3500.0;
    t.eWriteBurst = 3800.0;
    t.eWritePulse = 45000.0;
    return t;
}

TimingParams
TimingParams::rcNvm()
{
    TimingParams t = rram();
    t.tRCD = 12; // 29-30 ns read access: mux + routing overhead
    t.tWR = 6;   // 15 ns write pulse
    // Extra multiplexers load every access slightly.
    t.eActivate = 9900.0;
    t.eReadBurst = 3850.0;
    t.eWriteBurst = 4180.0;
    t.eWritePulse = 49500.0;
    return t;
}

TimingParams
TimingParams::withCellLatency(double read_ns, double write_ns) const
{
    TimingParams t = *this;
    const double period_ns =
        static_cast<double>(clkPeriod) / ticksPerNs;
    t.tRCD = static_cast<Cycles>(std::ceil(read_ns / period_ns));
    t.tWR = static_cast<Cycles>(std::ceil(write_ns / period_ns));
    if (t.tRCD == 0)
        t.tRCD = 1;
    if (t.tWR == 0)
        t.tWR = 1;
    return t;
}

DeviceCaps
capsFor(DeviceKind kind)
{
    DeviceCaps caps;
    caps.columnAccess = kind == DeviceKind::RcNvm;
    caps.gather = kind == DeviceKind::GsDram;
    return caps;
}

TimingParams
timingFor(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
      case DeviceKind::GsDram:
        return TimingParams::ddr3_1333();
      case DeviceKind::Rram:
        return TimingParams::rram();
      case DeviceKind::RcNvm:
        return TimingParams::rcNvm();
    }
    rcnvm_panic("unknown device kind");
}

} // namespace rcnvm::mem
