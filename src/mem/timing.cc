#include "mem/timing.hh"

#include <cmath>

#include "util/logging.hh"

namespace rcnvm::mem {

const char *
toString(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
        return "DRAM";
      case DeviceKind::Rram:
        return "RRAM";
      case DeviceKind::RcNvm:
        return "RC-NVM";
      case DeviceKind::GsDram:
        return "GS-DRAM";
    }
    return "?";
}

TimingParams
TimingParams::ddr3_1333()
{
    TimingParams t;
    // Cycle unit is the 750 ps transfer (beat) time of DDR3-1333;
    // tRCD + tCAS then matches the paper's 14 ns access time.
    t.clkPeriod = Tick{750};
    t.tCAS = MemCycles{10};
    t.tRCD = MemCycles{9};
    t.tRP = MemCycles{9};
    t.tRAS = MemCycles{24};
    t.tBURST = MemCycles{8}; // BL8: eight 8-byte beats = 6 ns per line
    t.tCCD = MemCycles{8};   // back-to-back bursts saturate the bus
    t.tWR = MemCycles{13};   // ~10 ns write recovery
    t.eActivate = 15000.0; // 2 KB destructive read + restore
    t.eReadBurst = 4000.0;
    t.eWriteBurst = 4500.0;
    t.eWritePulse = 0.0; // DRAM restores rows during precharge
    return t;
}

TimingParams
TimingParams::rram()
{
    TimingParams t;
    t.clkPeriod = Tick{2500}; // LPDDR3-800, 400 MHz clock
    t.tCAS = MemCycles{6};
    t.tRCD = MemCycles{10}; // 25 ns read access time
    t.tRP = MemCycles{1};   // no destructive read: nothing to restore
    t.tRAS = MemCycles{0};
    t.tBURST = MemCycles{4}; // eight beats at 800 MT/s = 10 ns per line
    t.tCCD = MemCycles{4};
    t.tWR = MemCycles{4}; // 10 ns write pulse
    // Crossbar sensing reads non-destructively (no restore), but
    // the cell write pulse is expensive.
    t.eActivate = 9000.0;
    t.eReadBurst = 3500.0;
    t.eWriteBurst = 3800.0;
    t.eWritePulse = 45000.0;
    return t;
}

TimingParams
TimingParams::rcNvm()
{
    TimingParams t = rram();
    t.tRCD = MemCycles{12}; // 29-30 ns read access: mux + routing overhead
    t.tWR = MemCycles{6};   // 15 ns write pulse
    // Extra multiplexers load every access slightly.
    t.eActivate = 9900.0;
    t.eReadBurst = 3850.0;
    t.eWriteBurst = 4180.0;
    t.eWritePulse = 49500.0;
    return t;
}

TimingParams
TimingParams::withCellLatency(double read_ns, double write_ns) const
{
    TimingParams t = *this;
    const double period_ns = ticksToNs(clkPeriod);
    t.tRCD = MemCycles{static_cast<std::uint64_t>(
        std::ceil(read_ns / period_ns))};
    t.tWR = MemCycles{static_cast<std::uint64_t>(
        std::ceil(write_ns / period_ns))};
    if (t.tRCD == MemCycles{0})
        t.tRCD = MemCycles{1};
    if (t.tWR == MemCycles{0})
        t.tWR = MemCycles{1};
    return t;
}

DeviceCaps
capsFor(DeviceKind kind)
{
    DeviceCaps caps;
    caps.columnAccess = kind == DeviceKind::RcNvm;
    caps.gather = kind == DeviceKind::GsDram;
    return caps;
}

TimingParams
timingFor(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Dram:
      case DeviceKind::GsDram:
        return TimingParams::ddr3_1333();
      case DeviceKind::Rram:
        return TimingParams::rram();
      case DeviceKind::RcNvm:
        return TimingParams::rcNvm();
    }
    rcnvm_panic("unknown device kind");
}

} // namespace rcnvm::mem
