#include "mem/hybrid_tier.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcnvm::mem {

namespace {

/**
 * RBLA (Yoon et al.): promote rows whose far accesses keep missing
 * the row buffer — those pay the NVM activate latency repeatedly and
 * benefit most from DRAM residence. Rows that hit stay in NVM, where
 * buffer hits already cost DRAM-like latency. Victim rank follows
 * the same benefit estimate: evict the row gaining least.
 */
class RblaPolicy final : public MigrationPolicy
{
  public:
    RblaPolicy(double miss_threshold, double hot_threshold)
        : missThreshold_(miss_threshold), hotThreshold_(hot_threshold)
    {
    }

    const char *name() const override { return "rbla"; }

    bool promote(const RowLocality &row) const override
    {
        return row.ewmaMiss >= missThreshold_ &&
               row.rowTouches >= hotThreshold_;
    }

    bool demoteOnColumn(const RowLocality &) const override
    {
        return false;
    }

    double victimScore(const RowLocality &row,
                       const TierFrame &frame) const override
    {
        return static_cast<double>(row.ewmaMiss) * frame.touches;
    }

  private:
    double missThreshold_;
    double hotThreshold_;
};

/** Hot-page: promote on access count alone (locality-blind; the
 *  classic baseline RBLA was proposed against). */
class HotPagePolicy final : public MigrationPolicy
{
  public:
    explicit HotPagePolicy(double hot_threshold)
        : hotThreshold_(hot_threshold)
    {
    }

    const char *name() const override { return "hotpage"; }

    bool promote(const RowLocality &row) const override
    {
        return row.rowTouches >= hotThreshold_;
    }

    bool demoteOnColumn(const RowLocality &) const override
    {
        return false;
    }

    double victimScore(const RowLocality &,
                       const TierFrame &frame) const override
    {
        return frame.touches;
    }

  private:
    double hotThreshold_;
};

/**
 * Orientation-aware: hot-page promotion gated by column usage. A row
 * the OLAP side scans column-wise must stay in RC-NVM — its column
 * segments are only addressable there, and promoting it turns every
 * overlapping column access into a coherence write-back. Column
 * pressure discovered after promotion demotes the row.
 */
class OrientationPolicy final : public MigrationPolicy
{
  public:
    OrientationPolicy(double hot_threshold, double orient_veto)
        : hotThreshold_(hot_threshold), orientVeto_(orient_veto)
    {
    }

    const char *name() const override { return "orientation"; }

    bool promote(const RowLocality &row) const override
    {
        return row.rowTouches >= hotThreshold_ &&
               row.colTouches <=
                   orientVeto_ * static_cast<double>(row.rowTouches);
    }

    bool demoteOnColumn(const RowLocality &row) const override
    {
        return row.colTouches >
               orientVeto_ * static_cast<double>(row.rowTouches);
    }

    double victimScore(const RowLocality &row,
                       const TierFrame &frame) const override
    {
        // Column-touched rows rank first for eviction.
        return frame.touches -
               static_cast<double>(row.colTouches) * hotThreshold_;
    }

  private:
    double hotThreshold_;
    double orientVeto_;
};

} // namespace

const char *
toString(MigrationPolicyKind kind)
{
    switch (kind) {
      case MigrationPolicyKind::Rbla:
        return "rbla";
      case MigrationPolicyKind::HotPage:
        return "hotpage";
      case MigrationPolicyKind::Orientation:
        return "orientation";
    }
    rcnvm_panic("unknown migration policy kind");
}

std::unique_ptr<MigrationPolicy>
makeMigrationPolicy(const HybridTierConfig &cfg)
{
    switch (cfg.policy) {
      case MigrationPolicyKind::Rbla:
        return std::make_unique<RblaPolicy>(cfg.missThreshold,
                                            cfg.hotThreshold);
      case MigrationPolicyKind::HotPage:
        return std::make_unique<HotPagePolicy>(cfg.hotThreshold);
      case MigrationPolicyKind::Orientation:
        return std::make_unique<OrientationPolicy>(cfg.hotThreshold,
                                                   cfg.orientVeto);
    }
    rcnvm_panic("unknown migration policy kind");
}

HybridMemory::HybridMemory(MemorySystem &far, MemorySystem &near,
                           const HybridTierConfig &config,
                           sim::EventQueue &eq)
    : far_(far),
      near_(near),
      cfg_(config),
      eq_(eq),
      policy_(makeMigrationPolicy(config)),
      remap_(far.map().geometry(), near.map().geometry()),
      tracker_(far.map().geometry(), config.ewmaAlpha,
               config.decayPeriod),
      frames_(remap_.frames()),
      inflight_(far.channels(), 0)
{
    if (near_.caps().columnAccess)
        rcnvm_panic("hybrid tier: the near tier is row-oriented by "
                    "construction; use a DRAM device");
}

void
HybridMemory::attachShardLink(sim::ParallelEngine &engine)
{
    far_.attachShardLink(engine);
    near_.attachShardLink(engine);
}

bool
HybridMemory::canAccept(Addr addr, Orientation orient) const
{
    if (orient == Orientation::Row) {
        const DecodedAddr d = far_.map().decode(addr, orient);
        const std::uint64_t row = remap_.rowId(d);
        if (routeRowNear(row)) {
            const Addr na =
                near_.map().encode(remap_.toNear(d), orient);
            return near_.canAccept(na, orient);
        }
    }
    return far_.canAccept(addr, orient);
}

unsigned
HybridMemory::channelOf(Addr addr, Orientation orient) const
{
    // Migrations are channel-local, so near and far agree.
    return far_.channelOf(addr, orient);
}

void
HybridMemory::issue(MemRequest &&req)
{
    if (req.orient == Orientation::Row) {
        const DecodedAddr d = far_.map().decode(req.addr, req.orient);
        const std::uint64_t row = remap_.rowId(d);
        if (routeRowNear(row)) {
            req.addr = near_.map().encode(remap_.toNear(d), req.orient);
            touchNear(row, req.isWrite);
            near_.issue(std::move(req));
            return;
        }
        far_.issue(std::move(req));
        onFarRowAccess(row);
        return;
    }
    const DecodedAddr d = far_.map().decode(req.addr, req.orient);
    far_.issue(std::move(req));
    onColumnAccess(d);
}

bool
HybridMemory::tryIssue(MemPacket &pkt)
{
    if (pkt.orient == Orientation::Row) {
        const DecodedAddr d = far_.map().decode(pkt.addr, pkt.orient);
        const std::uint64_t row = remap_.rowId(d);
        if (routeRowNear(row)) {
            const Addr farAddr = pkt.addr;
            pkt.addr = near_.map().encode(remap_.toNear(d), pkt.orient);
            if (!near_.tryIssue(pkt)) {
                pkt.addr = farAddr; // refused: hand back untouched
                return false;
            }
            touchNear(row, pkt.isWrite);
            return true;
        }
        if (!far_.tryIssue(pkt))
            return false;
        onFarRowAccess(row);
        return true;
    }
    const DecodedAddr d = far_.map().decode(pkt.addr, pkt.orient);
    if (!far_.tryIssue(pkt))
        return false;
    onColumnAccess(d);
    return true;
}

void
HybridMemory::setRetryCallback(std::function<void()> cb)
{
    // Both devices share the client's one hook; a refused client
    // re-probes canAccept() per packet, so spare wakeups from the
    // other tier are harmless (same contract as multi-channel).
    far_.setRetryCallback(cb);
    near_.setRetryCallback(std::move(cb));
}

void
HybridMemory::touchNear(std::uint64_t row_id, bool is_write)
{
    rowAccesses_.inc();
    nearHits_.inc();
    TierFrame &f =
        frames_[static_cast<std::uint32_t>(remap_.frameOf(row_id))];
    f.touches += 1.0;
    f.lastTouch = eq_.now();
    f.dirty = f.dirty || is_write;
}

void
HybridMemory::onFarRowAccess(std::uint64_t row_id)
{
    rowAccesses_.inc();
    tracker_.recordRow(row_id, eq_.now());
    if (migrationPending(row_id))
        return;
    if (policy_->promote(tracker_.sample(row_id, eq_.now())))
        startPromotion(row_id);
}

void
HybridMemory::onColumnAccess(const DecodedAddr &d)
{
    colAccesses_.inc();
    // A 64-byte column-oriented line crosses 8 consecutive far rows
    // (one word from each) at the same column index.
    const unsigned wordsPerLine = 64 / far_.map().geometry().wordBytes;
    const unsigned base = d.row & ~(wordsPerLine - 1);
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        DecodedAddr rd = d;
        rd.row = base + i;
        rd.offset = 0;
        const std::uint64_t row = remap_.rowId(rd);
        tracker_.recordColumn(row, eq_.now());
        const std::int64_t frameIdx = remap_.frameOf(row);
        if (frameIdx < 0)
            continue;
        colNearOverlaps_.inc();
        TierFrame &f = frames_[static_cast<std::uint32_t>(frameIdx)];
        if (f.dirty) {
            // The far copy of this row is stale where the near copy
            // was written; push the overlapped line segment back so
            // the column reader observes current data.
            rd.col = d.col & ~(wordsPerLine - 1);
            MemPacket wb;
            wb.setAddr(far_.map().encodeRow(rd));
            wb.isWrite = true;
            far_.issue(std::move(wb));
            f.dirty = false;
            colDirtyForces_.inc();
        }
        if (!f.busy && !migrationPending(row) &&
            policy_->demoteOnColumn(tracker_.sample(row, eq_.now())))
            startDemotion(static_cast<std::uint32_t>(frameIdx));
    }
}

bool
HybridMemory::migrationPending(std::uint64_t row_id) const
{
    for (const Migration &m : inflightMigs_) {
        if (m.promoteRow == static_cast<std::int64_t>(row_id) ||
            m.victimRow == static_cast<std::int64_t>(row_id))
            return true;
    }
    return false;
}

void
HybridMemory::copyTraffic(const DecodedAddr &src_row, bool src_near,
                          const DecodedAddr &dst_row, bool dst_near)
{
    // A row copy is modelled as a sparse burst over the row: the
    // configured number of read+write line pairs, spread across the
    // row's columns so the traffic exercises the bus like a DMA
    // engine would, without the full 128-line cost (the remainder is
    // folded into migrationLatency).
    const Geometry &g = far_.map().geometry();
    const unsigned lines = std::max(1u, cfg_.migrationBurstLines);
    const unsigned wordsPerLine = 64 / g.wordBytes;
    const unsigned stride =
        std::max(wordsPerLine, g.colsPerSubarray / lines);
    for (unsigned l = 0; l < lines; ++l) {
        const unsigned col = (l * stride) % g.colsPerSubarray &
                             ~(wordsPerLine - 1);
        DecodedAddr s = src_row;
        s.col = col;
        MemPacket rd;
        rd.setAddr((src_near ? near_ : far_).map().encodeRow(s));
        (src_near ? near_ : far_).issue(std::move(rd));

        DecodedAddr t = dst_row;
        t.col = col;
        MemPacket wr;
        wr.setAddr((dst_near ? near_ : far_).map().encodeRow(t));
        wr.isWrite = true;
        (dst_near ? near_ : far_).issue(std::move(wr));
    }
}

void
HybridMemory::startPromotion(std::uint64_t row_id)
{
    const unsigned ch = remap_.rowChannel(row_id);
    if (inflight_[ch] >= cfg_.maxInflightPerChannel) {
        deferred_.inc();
        return;
    }

    // A free frame in this channel, or the lowest-ranked victim.
    const std::uint32_t lo = ch * remap_.framesPerChannel();
    const std::uint32_t hi = lo + remap_.framesPerChannel();
    std::int64_t freeFrame = -1, victimFrame = -1;
    double victimBest = 0;
    for (std::uint32_t f = lo; f < hi; ++f) {
        const TierFrame &fr = frames_[f];
        if (fr.busy)
            continue;
        if (!fr.valid) {
            freeFrame = f;
            break;
        }
        const double score = policy_->victimScore(
            tracker_.sample(fr.rowId, eq_.now()), fr);
        if (victimFrame < 0 || score < victimBest) {
            victimFrame = f;
            victimBest = score;
        }
    }

    Migration m;
    m.promoteRow = static_cast<std::int64_t>(row_id);
    m.channel = ch;
    m.gen = resetGen_;
    if (freeFrame >= 0) {
        m.frame = static_cast<std::uint32_t>(freeFrame);
    } else if (victimFrame >= 0) {
        m.frame = static_cast<std::uint32_t>(victimFrame);
        TierFrame &vf = frames_[m.frame];
        m.victimRow = static_cast<std::int64_t>(vf.rowId);
        if (vf.dirty) {
            // Copy the displaced row's data home before reuse.
            copyTraffic(remap_.frameLocation(m.frame), true,
                        farRowLocation(
                            static_cast<std::uint64_t>(m.victimRow)),
                        false);
            dirtyWritebacks_.inc();
        }
    } else {
        deferred_.inc();
        return;
    }

    TierFrame &f = frames_[m.frame];
    f.busy = true;
    ++inflight_[ch];
    inflightMigs_.push_back(m);

    // Fill traffic: read the promoted row far, write it near.
    copyTraffic(farRowLocation(row_id), false,
                remap_.frameLocation(m.frame), true);

    eq_.schedule(eq_.now() + cfg_.migrationLatency,
                 [this, m] { commit(m); });
}

void
HybridMemory::startDemotion(std::uint32_t frame)
{
    TierFrame &f = frames_[frame];
    const unsigned ch = frame / remap_.framesPerChannel();
    if (inflight_[ch] >= cfg_.maxInflightPerChannel) {
        deferred_.inc();
        return;
    }

    Migration m;
    m.victimRow = static_cast<std::int64_t>(f.rowId);
    m.frame = frame;
    m.channel = ch;
    m.gen = resetGen_;

    if (f.dirty) {
        copyTraffic(remap_.frameLocation(frame), true,
                    farRowLocation(f.rowId), false);
        dirtyWritebacks_.inc();
    }
    f.busy = true;
    ++inflight_[ch];
    inflightMigs_.push_back(m);

    eq_.schedule(eq_.now() + cfg_.migrationLatency,
                 [this, m] { commit(m); });
}

void
HybridMemory::commit(const Migration &m)
{
    if (m.gen != resetGen_)
        return; // the run was reset while this migration flew

    TierFrame &f = frames_[m.frame];
    if (m.victimRow >= 0) {
        remap_.unmap(static_cast<std::uint64_t>(m.victimRow));
        demotions_.inc();
        f.valid = false;
    }
    if (m.promoteRow >= 0) {
        remap_.map(static_cast<std::uint64_t>(m.promoteRow), m.frame);
        f.valid = true;
        f.dirty = false;
        f.rowId = static_cast<std::uint64_t>(m.promoteRow);
        f.touches = 0;
        f.lastTouch = eq_.now();
        promotions_.inc();
    }
    f.busy = false;
    --inflight_[m.channel];
    for (std::size_t i = 0; i < inflightMigs_.size(); ++i) {
        if (inflightMigs_[i].frame == m.frame &&
            inflightMigs_[i].gen == m.gen) {
            inflightMigs_.erase(inflightMigs_.begin() +
                                static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
}

DecodedAddr
HybridMemory::farRowLocation(std::uint64_t row_id) const
{
    const Geometry &g = far_.map().geometry();
    DecodedAddr d;
    d.row = static_cast<unsigned>(row_id % g.rowsPerSubarray);
    row_id /= g.rowsPerSubarray;
    d.subarray = static_cast<unsigned>(row_id % g.subarraysPerBank);
    row_id /= g.subarraysPerBank;
    d.bank = static_cast<unsigned>(row_id % g.banksPerRank);
    row_id /= g.banksPerRank;
    d.rank = static_cast<unsigned>(row_id % g.ranksPerChannel);
    d.channel = static_cast<unsigned>(row_id / g.ranksPerChannel);
    return d;
}

void
HybridMemory::registerStats(util::StatRegistry &r) const
{
    // The far device owns the mem.* namespace: in a hybrid machine
    // mem.* therefore reports far (NVM) traffic only, and the near
    // tier's device counters appear under tier.near.*.
    far_.registerStats(r);

    r.addCounter("tier.rowAccesses", rowAccesses_);
    r.addCounter("tier.nearHits", nearHits_);
    r.addCounter("tier.colAccesses", colAccesses_);
    r.addCounter("tier.colNearOverlaps", colNearOverlaps_);
    r.addCounter("tier.colDirtyForces", colDirtyForces_);
    r.addCounter("tier.promotions", promotions_);
    r.addCounter("tier.demotions", demotions_);
    r.addCounter("tier.dirtyWritebacks", dirtyWritebacks_);
    r.addCounter("tier.migrationsDeferred", deferred_);
    r.addGauge("tier.remapOccupancy", [this] {
        return static_cast<double>(remap_.mappedRows());
    });
    r.addGauge("tier.remapFrames", [this] {
        return static_cast<double>(remap_.frames());
    });
    r.addFormula("tier.nearHitRate", [](const util::StatRegistry &g) {
        const double total = g.counter("tier.rowAccesses");
        return total > 0 ? g.counter("tier.nearHits") / total : 0.0;
    });

    r.addCounterFn("tier.near.reads", [this] {
        return near_.stats().get("mem.reads");
    });
    r.addCounterFn("tier.near.writes", [this] {
        return near_.stats().get("mem.writes");
    });
    r.addCounterFn("tier.near.bufferHits", [this] {
        return near_.stats().get("mem.bufferHits");
    });
    r.addCounterFn("tier.near.bufferMisses", [this] {
        return near_.stats().get("mem.bufferMisses");
    });
    r.addCounterFn("tier.near.energyPJ", [this] {
        return near_.stats().get("mem.energyPJ");
    });
}

void
HybridMemory::reset()
{
    far_.reset();
    near_.reset();
    remap_.reset();
    tracker_.reset();
    frames_.assign(frames_.size(), TierFrame{});
    std::fill(inflight_.begin(), inflight_.end(), 0u);
    inflightMigs_.clear();
    ++resetGen_;
    rowAccesses_.reset();
    nearHits_.reset();
    colAccesses_.reset();
    colNearOverlaps_.reset();
    colDirtyForces_.reset();
    promotions_.reset();
    demotions_.reset();
    dirtyWritebacks_.reset();
    deferred_.reset();
}

} // namespace rcnvm::mem
