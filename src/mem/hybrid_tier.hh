/**
 * @file
 * The hybrid DRAM + RC-NVM memory tier: a small DRAM MemorySystem
 * fronts the far NVM device behind the MemoryTier interface, with a
 * row-granularity remap table and a pluggable migration policy.
 *
 * Clients keep addressing the far device; routing is transparent.
 * Row-oriented accesses to a mapped row are redirected to its DRAM
 * frame; column-oriented accesses always execute in the far device
 * (only RC-NVM can serve them). A column access overlapping a dirty
 * mapped row first forces a write-back of the stale far segment so
 * column readers never observe pre-migration data.
 *
 * All tier state (remap table, tracker, frames) lives on the core
 * shard and is only touched from issue paths and core-shard events,
 * so the channel-sharded engine needs no extra synchronisation:
 * migration commits are core-shard events, and migration copy
 * traffic reaches the channels through the same window-boundary
 * mailboxes as demand traffic (THREADS=1 and THREADS=4 stay
 * stats-identical).
 */

#ifndef RCNVM_MEM_HYBRID_TIER_HH_
#define RCNVM_MEM_HYBRID_TIER_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/memory_system.hh"
#include "mem/tier.hh"
#include "util/stats.hh"

namespace rcnvm::mem {

/** Which migration policy a hybrid tier should construct. */
enum class MigrationPolicyKind {
    Rbla,        //!< row-buffer-locality-aware (Yoon et al.)
    HotPage,     //!< access-count threshold, locality-blind
    Orientation, //!< hot-page plus a column-usage veto: a row that
                 //!< is scanned column-wise stays in RC-NVM
};

/** Stable lowercase name ("rbla", "hotpage", "orientation"). */
const char *toString(MigrationPolicyKind kind);

/** One resident near-tier frame. */
struct TierFrame {
    bool valid = false;  //!< holds a committed mapping
    bool busy = false;   //!< a migration in flight targets it
    bool dirty = false;  //!< written since promotion
    std::uint64_t rowId = 0; //!< resident far row (valid frames)
    Tick lastTouch{0};
    double touches = 0;  //!< accesses while resident
};

/**
 * A migration policy: decides promotion on far-access locality,
 * demotion on column pressure, and victim ranking under capacity.
 * Stateless beyond its thresholds, so decisions are a pure function
 * of the tracker/frame inputs (deterministic across shard counts).
 */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** Stable policy name for reports. */
    virtual const char *name() const = 0;

    /** Promote this far-resident row into the DRAM tier now? */
    virtual bool promote(const RowLocality &row) const = 0;

    /** Demote this near-resident row on a column-oriented touch? */
    virtual bool demoteOnColumn(const RowLocality &row) const = 0;

    /** Eviction rank of a resident frame: the lowest score is the
     *  victim when the tier is full. */
    virtual double victimScore(const RowLocality &row,
                               const TierFrame &frame) const = 0;
};

/** Tier configuration carried by cpu::MachineConfig. */
struct HybridTierConfig {
    bool enabled = false;
    MigrationPolicyKind policy = MigrationPolicyKind::Rbla;

    // Near-tier shape. The DRAM tier inherits the far device's
    // channel count, row width, and word size (a frame holds exactly
    // one far row); these knobs set its capacity and parallelism.
    unsigned nearRanksPerChannel = 1;
    unsigned nearBanksPerRank = 8;
    unsigned nearRowsPerBank = 16; //!< frames per near bank
    /** Near-tier timing; defaults to the Table-1 DDR3-1333 preset. */
    std::optional<TimingParams> nearTiming;

    // Policy thresholds.
    double ewmaAlpha = 0.25;    //!< row-buffer miss EWMA gain
    double missThreshold = 0.4; //!< RBLA: promote above this EWMA
    double hotThreshold = 6.0;  //!< touches counting a row as hot
    double orientVeto = 1.0;    //!< col/row touch ratio vetoing
                                //!< promotion (orientation policy)
    Tick decayPeriod{1'000'000}; //!< touch-count halving period

    // Migration mechanics.
    Tick migrationLatency{200'000}; //!< issue-to-commit delay
    unsigned migrationBurstLines = 4; //!< copy-traffic lines per
                                      //!< direction (of 128 per row)
    unsigned maxInflightPerChannel = 4;
};

/**
 * The composed tier. Owns no devices: the far and near MemorySystems
 * are built (and their shard links attached) by the machine so their
 * controllers share the machine's channel shard queues.
 */
class HybridMemory : public MemoryTier
{
  public:
    HybridMemory(MemorySystem &far, MemorySystem &near,
                 const HybridTierConfig &config, sim::EventQueue &eq);

    /** Wire both devices to the sharded engine. */
    void attachShardLink(sim::ParallelEngine &engine);

    /** The migration policy in use. */
    const MigrationPolicy &policy() const { return *policy_; }

    /** The remap table (tests and reports). */
    const RemapTable &remap() const { return remap_; }

    /** The locality tracker (tests). */
    const RowLocalityTracker &tracker() const { return tracker_; }

    // MemoryTier -----------------------------------------------------
    const DeviceCaps &caps() const override { return far_.caps(); }
    const AddressMap &map() const override { return far_.map(); }
    bool canAccept(Addr addr, Orientation orient) const override;
    unsigned channelOf(Addr addr, Orientation orient) const override;
    unsigned channels() const override { return far_.channels(); }
    void issue(MemRequest &&req) override;
    [[nodiscard]] bool tryIssue(MemPacket &pkt) override;
    void setRetryCallback(std::function<void()> cb) override;
    void registerStats(util::StatRegistry &r) const override;
    std::size_t queuedTotal() const override
    {
        return far_.queuedTotal() + near_.queuedTotal();
    }
    void reset() override;

  private:
    /** An in-flight migration (promotion, optionally displacing a
     *  victim; or a pure demotion when promoteRow is absent). */
    struct Migration {
        std::int64_t promoteRow = -1; //!< far row being promoted
        std::int64_t victimRow = -1;  //!< resident row displaced
        std::uint32_t frame = 0;
        unsigned channel = 0;
        std::uint64_t gen = 0; //!< reset() invalidation stamp
    };

    /** Route decision for one row-oriented packet. */
    bool routeRowNear(std::uint64_t row_id) const
    {
        return remap_.frameOf(row_id) >= 0;
    }

    /** Post-acceptance bookkeeping of a near-routed row access. */
    void touchNear(std::uint64_t row_id, bool is_write);

    /** Post-acceptance bookkeeping of a far row access: tracker
     *  update plus a possible promotion start. */
    void onFarRowAccess(std::uint64_t row_id);

    /** Post-acceptance bookkeeping of a column access: tracker and
     *  dirty-overlap handling for each far row the line crosses. */
    void onColumnAccess(const DecodedAddr &d);

    /** True when @p row_id is the subject of an in-flight migration
     *  (as promotee or victim). */
    bool migrationPending(std::uint64_t row_id) const;

    /** Begin promoting @p row_id; picks a free frame or a victim. */
    void startPromotion(std::uint64_t row_id);

    /** Begin demoting the resident row of @p frame (column veto). */
    void startDemotion(std::uint32_t frame);

    /** Fire-and-forget copy traffic for one row, spread over the
     *  row's columns: reads from the source, writes to the dest. */
    void copyTraffic(const DecodedAddr &src_row, bool src_near,
                     const DecodedAddr &dst_row, bool dst_near);

    /** Commit @p m: apply the remap flips and release the frame. */
    void commit(const Migration &m);

    /** Far-device location of row @p row_id (column 0). */
    DecodedAddr farRowLocation(std::uint64_t row_id) const;

    MemorySystem &far_;
    MemorySystem &near_;
    HybridTierConfig cfg_;
    sim::EventQueue &eq_;
    std::unique_ptr<MigrationPolicy> policy_;
    RemapTable remap_;
    RowLocalityTracker tracker_;
    std::vector<TierFrame> frames_;
    std::vector<unsigned> inflight_; //!< migrations per channel
    std::vector<Migration> inflightMigs_;
    std::uint64_t resetGen_ = 0;

    // Statistics (tier.* namespace).
    util::Counter rowAccesses_;   //!< row packets routed by the tier
    util::Counter nearHits_;      //!< row packets served near
    util::Counter colAccesses_;   //!< column packets (always far)
    util::Counter colNearOverlaps_; //!< column lines crossing a
                                    //!< mapped row
    util::Counter colDirtyForces_;  //!< stale-segment write-backs
                                    //!< forced by column access
    util::Counter promotions_;
    util::Counter demotions_;     //!< policy demotions + evictions
    util::Counter dirtyWritebacks_; //!< demote-time copy-backs
    util::Counter deferred_;      //!< migrations skipped (in-flight
                                  //!< cap or no eligible frame)
};

/** Construct the migration-policy object for @p cfg. */
std::unique_ptr<MigrationPolicy>
makeMigrationPolicy(const HybridTierConfig &cfg);

} // namespace rcnvm::mem

#endif // RCNVM_MEM_HYBRID_TIER_HH_
