/**
 * @file
 * Analytic area model comparing dual-addressable memory designs
 * against their single-addressable baselines (paper Figure 4).
 */

#ifndef RCNVM_CIRCUIT_AREA_MODEL_HH_
#define RCNVM_CIRCUIT_AREA_MODEL_HH_

#include "circuit/tech_params.hh"

namespace rcnvm::circuit {

/**
 * Computes mat/array areas for DRAM, RC-DRAM, crossbar NVM, and
 * RC-NVM as a function of the number of word lines and bit lines in
 * one array, and the relative overheads plotted in Figure 4.
 */
class AreaModel
{
  public:
    /** Build a model from technology parameters. */
    AreaModel(DramTechParams dram, NvmTechParams nvm)
        : dram_(dram), nvm_(nvm)
    {
    }

    /** Default paper calibration. */
    AreaModel() : AreaModel(DramTechParams{}, NvmTechParams{}) {}

    /** Area (F^2) of an n x n conventional DRAM array. */
    double dramArea(unsigned n) const;

    /** Area (F^2) of an n x n dual-addressable RC-DRAM array. */
    double rcDramArea(unsigned n) const;

    /** Area (F^2) of an n x n crossbar NVM array (row-only). */
    double nvmArea(unsigned n) const;

    /** Area (F^2) of an n x n dual-addressable RC-NVM array. */
    double rcNvmArea(unsigned n) const;

    /** RC-DRAM area overhead over DRAM as a ratio (1.0 == +100 %). */
    double rcDramOverhead(unsigned n) const;

    /** RC-NVM area overhead over NVM as a ratio. */
    double rcNvmOverhead(unsigned n) const;

  private:
    DramTechParams dram_;
    NvmTechParams nvm_;
};

} // namespace rcnvm::circuit

#endif // RCNVM_CIRCUIT_AREA_MODEL_HH_
