/**
 * @file
 * Analytic read-latency model for RC-NVM arrays (paper Figure 5).
 */

#ifndef RCNVM_CIRCUIT_LATENCY_MODEL_HH_
#define RCNVM_CIRCUIT_LATENCY_MODEL_HH_

#include "circuit/tech_params.hh"

namespace rcnvm::circuit {

/**
 * Read latency of a crossbar NVM array versus its dual-addressable
 * RC-NVM variant, as a function of word/bit line count. Wire delay
 * follows the Elmore model (quadratic in line length); the RC-NVM
 * variant adds a fixed multiplexer stage plus extra routing delay.
 */
class LatencyModel
{
  public:
    /** Build from technology parameters. */
    explicit LatencyModel(NvmLatencyParams p) : p_(p) {}

    /** Default paper calibration. */
    LatencyModel() : LatencyModel(NvmLatencyParams{}) {}

    /** Baseline row-only NVM array read latency in ns. */
    double baselineReadNs(unsigned n) const;

    /** Dual-addressable RC-NVM array read latency in ns. */
    double rcNvmReadNs(unsigned n) const;

    /** Latency overhead ratio of RC-NVM (1.0 == +100 %). */
    double rcNvmOverhead(unsigned n) const;

  private:
    NvmLatencyParams p_;
};

} // namespace rcnvm::circuit

#endif // RCNVM_CIRCUIT_LATENCY_MODEL_HH_
