#include "circuit/latency_model.hh"

#include <cassert>

namespace rcnvm::circuit {

double
LatencyModel::baselineReadNs(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    return p_.cellReadNs + p_.wireNsPerLineSq * nd * nd;
}

double
LatencyModel::rcNvmReadNs(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    return baselineReadNs(n) + p_.muxNs + p_.rcExtraNsPerLineSq * nd * nd;
}

double
LatencyModel::rcNvmOverhead(unsigned n) const
{
    return rcNvmReadNs(n) / baselineReadNs(n) - 1.0;
}

} // namespace rcnvm::circuit
