/**
 * @file
 * Technology-level parameters for the circuit area/latency models.
 *
 * The models reproduce Figures 4 and 5 of the RC-NVM paper. They are
 * analytic rather than SPICE-based (see DESIGN.md substitution table):
 * cell areas in F^2, peripheral circuitry amortised along array edges,
 * and Elmore-style quadratic wire delay. Constants are calibrated to
 * the paper's stated anchor points:
 *   - RC-DRAM area overhead > 200 % everywhere, growing with array
 *     size (Fig 4);
 *   - RC-NVM area overhead < 20 % at 512x512 (Fig 4, Sec. 3);
 *   - RC-NVM latency overhead ~= 15 % at 512x512 (Fig 5, Sec. 3).
 */

#ifndef RCNVM_CIRCUIT_TECH_PARAMS_HH_
#define RCNVM_CIRCUIT_TECH_PARAMS_HH_

namespace rcnvm::circuit {

/** Parameters of the DRAM / RC-DRAM area model (units of F^2). */
struct DramTechParams {
    /** 1T1C DRAM cell area. */
    double cellArea = 6.0;

    /**
     * Base area of the 2T1C dual-port RC-DRAM cell including the
     * extra word line and bit line routed at wire pitch through the
     * mat. Dominated by pitch doubling in both directions.
     */
    double rcCellBaseArea = 22.0;

    /**
     * Extra capacitor area per additional word/bit line crossed by
     * the orthogonal sensing path. The sensing margin requirement
     * C_cell / C_bitline >= const makes the storage capacitor grow
     * linearly with the orthogonal line length.
     */
    double rcCellAreaPerLine = 6.0 / 512.0;

    /** Peripheral area per word line (decoder + SA + driver). */
    double peripheryPerLine = 60.0;

    /**
     * Periphery growth factor for RC-DRAM: decoders and sense
     * amplifiers duplicated on the orthogonal edge plus wider
     * drivers for the two-transistor cells.
     */
    double rcPeripheryFactor = 2.2;
};

/** Parameters of the crossbar NVM / RC-NVM area model (F^2). */
struct NvmTechParams {
    /** Crossbar cell footprint (4F^2, cell array unchanged). */
    double cellArea = 4.0;

    /**
     * Peripheral area per line for the baseline row-only design:
     * hierarchical decoder slice, sense amplifier, and write driver.
     */
    double peripheryPerLine = 450.0;

    /**
     * Peripheral area added per line by dual addressing: duplicated
     * decoder/SA/WD on the orthogonal edge plus the multiplexers
     * that steer them. Slightly less than a full second periphery
     * because the hierarchical global decoders are shared.
     */
    double rcExtraPeripheryPerLine = 400.0;

    /** Fixed per-bank area of the column buffer (F^2). */
    double columnBufferArea = 8192.0;
};

/** Parameters of the RC-NVM read-latency model (nanoseconds). */
struct NvmLatencyParams {
    /** Cell sensing time, independent of array size. */
    double cellReadNs = 24.0;

    /** Wire + decode delay coefficient: base(N) adds wireNs*N^2. */
    double wireNsPerLineSq = 4.0 / (512.0 * 512.0);

    /** Fixed delay of the added row/column steering multiplexers. */
    double muxNs = 0.5;

    /**
     * Extra routing delay coefficient for the dual-addressable
     * array: wires detour to reach periphery on both edges and the
     * added mux transistors load the critical path.
     */
    double rcExtraNsPerLineSq = 3.85 / (512.0 * 512.0);
};

} // namespace rcnvm::circuit

#endif // RCNVM_CIRCUIT_TECH_PARAMS_HH_
