#include "circuit/area_model.hh"

#include <cassert>

namespace rcnvm::circuit {

double
AreaModel::dramArea(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    return dram_.cellArea * nd * nd + dram_.peripheryPerLine * nd;
}

double
AreaModel::rcDramArea(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    // 2T1C cell with orthogonal WL/BL and a capacitor that grows
    // with the orthogonal line length to keep sensing margin;
    // periphery is duplicated on the second edge.
    const double cell =
        dram_.rcCellBaseArea + dram_.rcCellAreaPerLine * nd;
    return cell * nd * nd +
           dram_.rcPeripheryFactor * dram_.peripheryPerLine * nd;
}

double
AreaModel::nvmArea(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    return nvm_.cellArea * nd * nd + nvm_.peripheryPerLine * nd;
}

double
AreaModel::rcNvmArea(unsigned n) const
{
    assert(n > 0);
    const double nd = n;
    // The crossbar cell array itself is untouched (Sec. 2.3); only
    // peripheral circuitry is added, so the overhead amortises away
    // as the array grows.
    return nvm_.cellArea * nd * nd +
           (nvm_.peripheryPerLine + nvm_.rcExtraPeripheryPerLine) * nd +
           nvm_.columnBufferArea;
}

double
AreaModel::rcDramOverhead(unsigned n) const
{
    return rcDramArea(n) / dramArea(n) - 1.0;
}

double
AreaModel::rcNvmOverhead(unsigned n) const
{
    return rcNvmArea(n) / nvmArea(n) - 1.0;
}

} // namespace rcnvm::circuit
