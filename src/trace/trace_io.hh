/**
 * @file
 * Textual access-trace serialisation.
 *
 * The paper's released artifact (RCNVMTrace) distributes the
 * workload as memory-access traces; this module provides the same
 * capability: any compiled per-core access plan can be dumped to a
 * portable text format and replayed later on any device model.
 *
 * Format: one operation per line, `#` starts a comment, and a
 * `@core N` directive switches the core the following operations
 * belong to.
 *
 *   L  <addr>             row-oriented 64-byte load
 *   S  <addr> <bytes>     row-oriented store
 *   CL <addr>             column-oriented load (cload)
 *   CS <addr> <bytes>     column-oriented store (cstore)
 *   CP <addr> <R|C>       group-caching prefetch into the LLC
 *   G  <addr>             GS-DRAM gathered load
 *   C  <cycles>           compute delay
 *   P  <addr> <bytes> <R|C>   pin an LLC range
 *   U  <addr> <bytes> <R|C>   unpin an LLC range
 *   F                     fence (drain outstanding accesses)
 *
 * Addresses are hexadecimal with 0x prefix.
 */

#ifndef RCNVM_TRACE_TRACE_IO_HH_
#define RCNVM_TRACE_TRACE_IO_HH_

#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/mem_op.hh"

namespace rcnvm::trace {

/** Serialise per-core plans to the text format. */
void writeTrace(std::ostream &os,
                const std::vector<cpu::AccessPlan> &plans);

/**
 * Parse a trace. Malformed lines are a fatal error with the line
 * number in the message.
 *
 * @return one plan per `@core` section (cores may be sparse; empty
 *         plans are kept so core indices round-trip)
 */
std::vector<cpu::AccessPlan> readTrace(std::istream &is);

/** Convenience: serialise to a string. */
std::string toString(const std::vector<cpu::AccessPlan> &plans);

/** Convenience: parse from a string. */
std::vector<cpu::AccessPlan> fromString(const std::string &text);

} // namespace rcnvm::trace

#endif // RCNVM_TRACE_TRACE_IO_HH_
