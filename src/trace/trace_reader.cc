#include "trace/trace_reader.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace rcnvm::trace {

namespace {

std::size_t
pageSize()
{
    const long page = ::sysconf(_SC_PAGESIZE);
    return page > 0 ? static_cast<std::size_t>(page) : 4096;
}

} // namespace

MmapTraceReader::MmapTraceReader(const std::string &path,
                                 std::size_t window_bytes)
    : path_(path)
{
    const std::size_t page = pageSize();
    window_ = ((window_bytes + page - 1) / page) * page;
    if (window_ == 0)
        window_ = page;

    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0)
        rcnvm_fatal("cannot open trace file ", path_, ": ",
                    std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd_, &st) != 0)
        rcnvm_fatal("cannot stat trace file ", path_, ": ",
                    std::strerror(errno));
    fileSize_ = static_cast<std::uint64_t>(st.st_size);

    if (fileSize_ < sizeof(TraceFileHeader))
        rcnvm_fatal("trace file ", path_, ": truncated header (",
                    fileSize_, " bytes; a trace needs at least ",
                    sizeof(TraceFileHeader), ")");
    if (::pread(fd_, &header_, sizeof(header_), 0) !=
        static_cast<ssize_t>(sizeof(header_)))
        rcnvm_fatal("cannot read trace header from ", path_);

    if (std::memcmp(header_.magic, kTraceMagic,
                    sizeof(kTraceMagic)) != 0)
        rcnvm_fatal("trace file ", path_,
                    ": bad magic (not an RC-NVM binary trace)");
    if (header_.version != kTraceVersion)
        rcnvm_fatal("trace file ", path_, ": format version ",
                    header_.version, " is not the supported version ",
                    kTraceVersion);

    payloadOffset_ = tracePayloadOffset(header_.coreCount);
    if (fileSize_ < payloadOffset_)
        rcnvm_fatal("trace file ", path_,
                    ": truncated header (per-core count table for ",
                    header_.coreCount, " core(s) is cut short)");

    coreCounts_.resize(header_.coreCount);
    if (header_.coreCount > 0 &&
        ::pread(fd_, coreCounts_.data(), 8ull * header_.coreCount,
                sizeof(TraceFileHeader)) !=
            static_cast<ssize_t>(8ull * header_.coreCount))
        rcnvm_fatal("cannot read per-core counts from ", path_);

    const std::uint64_t payload = fileSize_ - payloadOffset_;
    if (payload % sizeof(TraceRecord) != 0)
        rcnvm_fatal("trace file ", path_, ": short final record (",
                    payload % sizeof(TraceRecord),
                    " trailing byte(s); records are ",
                    sizeof(TraceRecord), " bytes)");
    const std::uint64_t records = payload / sizeof(TraceRecord);
    if (records != header_.recordCount)
        rcnvm_fatal("trace file ", path_, ": header declares ",
                    header_.recordCount, " record(s) but the file "
                    "holds ", records);
    std::uint64_t sum = 0;
    for (const std::uint64_t c : coreCounts_)
        sum += c;
    if (sum != header_.recordCount)
        rcnvm_fatal("trace file ", path_, ": per-core counts sum "
                    "to ", sum, " but the header declares ",
                    header_.recordCount, " record(s)");
}

MmapTraceReader::~MmapTraceReader()
{
    unmapWindow();
    if (fd_ >= 0)
        ::close(fd_);
}

void
MmapTraceReader::unmapWindow()
{
    if (map_ != nullptr) {
        ::munmap(map_, mapLen_);
        map_ = nullptr;
        mapLen_ = 0;
    }
}

void
MmapTraceReader::mapWindowFor(std::uint64_t file_offset)
{
    unmapWindow();
    const std::size_t page = pageSize();
    const std::uint64_t aligned =
        file_offset - file_offset % page;
    const std::uint64_t remaining = fileSize_ - aligned;
    const std::size_t len = static_cast<std::size_t>(
        remaining < window_ ? remaining : window_);
    void *m = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd_,
                     static_cast<off_t>(aligned));
    if (m == MAP_FAILED)
        rcnvm_fatal("mmap failed for trace file ", path_, ": ",
                    std::strerror(errno));
    ::madvise(m, len, MADV_SEQUENTIAL);
    map_ = static_cast<char *>(m);
    mapOffset_ = aligned;
    mapLen_ = len;
    if (len > maxMapped_)
        maxMapped_ = len;
    ++remaps_;
}

bool
MmapTraceReader::next(TraceRecord &out)
{
    if (nextRecord_ >= header_.recordCount)
        return false;
    const std::uint64_t off =
        payloadOffset_ + nextRecord_ * sizeof(TraceRecord);
    if (map_ == nullptr || off < mapOffset_ ||
        off + sizeof(TraceRecord) > mapOffset_ + mapLen_)
        mapWindowFor(off);
    std::memcpy(&out, map_ + (off - mapOffset_), sizeof(out));
    ++nextRecord_;
    if (out.core >= header_.coreCount)
        rcnvm_fatal("trace file ", path_, ": record ",
                    nextRecord_ - 1, " names core ",
                    static_cast<unsigned>(out.core),
                    " but the header declares ", header_.coreCount,
                    " core(s)");
    return true;
}

} // namespace rcnvm::trace
