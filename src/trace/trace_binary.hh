/**
 * @file
 * Compact fixed-width binary access-trace format (drcachesim-style).
 *
 * The text format of trace_io is convenient to author and diff, but
 * parsing it dominates replay time and a multi-GB capture of a real
 * binary will not fit in memory as an AccessPlan. This module
 * defines the binary counterpart: a versioned header followed by a
 * flat array of 16-byte records, one per operation, carrying the
 * fields DynamoRIO's drcachesim records carry (type / size / addr)
 * plus the two RC-NVM-specific ones (originating core and
 * orientation). The layout is designed for the mmap'd streaming
 * reader (trace_reader.hh): every record starts at a 16-byte-aligned
 * offset, so a page-aligned window never splits a record.
 *
 * File layout (all fields little-endian, native struct layout):
 *
 *   TraceFileHeader             32 bytes (magic, version, counts)
 *   uint64_t x coreCount        per-core record counts
 *   zero padding                to the next 16-byte boundary
 *   TraceRecord x recordCount   16 bytes each
 *
 * The per-core count table lets a demultiplexer know a core's
 * stream is exhausted without scanning the rest of the file, which
 * is what keeps per-core queues bounded for sparse cores.
 */

#ifndef RCNVM_TRACE_TRACE_BINARY_HH_
#define RCNVM_TRACE_TRACE_BINARY_HH_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "cpu/mem_op.hh"

namespace rcnvm::trace {

// The format is defined as the bytes these structs hold on a
// little-endian machine; a big-endian port would need explicit
// byte swapping, so refuse to compile there rather than silently
// write an incompatible file.
static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes little-endian layout");

/** Record type enumeration (drcachesim-style: one tag per access
 *  kind, orthogonal to the per-record payload fields). */
enum class RecordType : std::uint8_t {
    Invalid = 0,
    Read = 1,       //!< row-oriented load (drcachesim TRACE_TYPE_READ)
    Write = 2,      //!< row-oriented store (TRACE_TYPE_WRITE)
    ColRead = 3,    //!< column-oriented load (cload)
    ColWrite = 4,   //!< column-oriented store (cstore)
    ColPrefetch = 5, //!< group-caching prefetch into the LLC
    GatherRead = 6, //!< GS-DRAM gathered load
    Compute = 7,    //!< compute delay; size holds the cycle count
    Pin = 8,        //!< pin [addr, addr+size) in the LLC
    Unpin = 9,      //!< release a pinned range
    Fence = 10,     //!< drain outstanding accesses
};

/** flags bit 0: the pin/prefetch range is column-oriented. */
inline constexpr std::uint16_t kRecordFlagColumn = 1;

/** One fixed-width trace record. 16 bytes, no implicit padding. */
struct TraceRecord {
    std::uint8_t type = 0;   //!< RecordType
    std::uint8_t core = 0;   //!< originating core (0-255)
    std::uint16_t flags = 0; //!< kRecordFlag* bits
    std::uint32_t size = 0;  //!< access bytes, or Compute cycles
    std::uint64_t addr = 0;  //!< access address (Compute/Fence: 0)
};
static_assert(sizeof(TraceRecord) == 16,
              "record layout must stay fixed-width");

/** File magic: "RCNVMTRC". */
inline constexpr char kTraceMagic[8] = {'R', 'C', 'N', 'V',
                                        'M', 'T', 'R', 'C'};

/** Current format version; readers reject anything else. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** The fixed 32-byte file header (followed by the per-core record
 *  count table, padded to 16 bytes). */
struct TraceFileHeader {
    char magic[8] = {};
    std::uint32_t version = 0;
    std::uint32_t coreCount = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t reserved = 0; //!< zero; room for future metadata
};
static_assert(sizeof(TraceFileHeader) == 32,
              "header layout must stay fixed-width");

/** Byte offset of the record payload for a @p core_count file:
 *  header + count table, rounded up so records stay 16-aligned. */
constexpr std::uint64_t
tracePayloadOffset(std::uint32_t core_count)
{
    const std::uint64_t raw =
        sizeof(TraceFileHeader) + 8ull * core_count;
    return (raw + 15) & ~std::uint64_t{15};
}

/** Encode one plan operation as a binary record. Fatal when the
 *  operation cannot be represented (core out of the 8-bit range). */
TraceRecord toRecord(unsigned core, const cpu::MemOp &op);

/** Decode a binary record back into a plan operation. Fatal (with
 *  @p index in the message) on an unknown record type. */
cpu::MemOp toMemOp(const TraceRecord &rec, std::uint64_t index);

/**
 * Streaming binary-trace writer. Declares the core count up front
 * (the per-core count table is part of the header block), appends
 * records in trace order, and patches the record counts into the
 * header on finalize() — also invoked by the destructor, though
 * explicit finalization is preferred since a destructor cannot
 * report I/O failure usefully.
 */
class BinaryTraceWriter
{
  public:
    /** Open @p path for writing a @p core_count -core trace; fatal
     *  when the file cannot be created. */
    BinaryTraceWriter(const std::string &path, unsigned core_count);
    ~BinaryTraceWriter();

    BinaryTraceWriter(const BinaryTraceWriter &) = delete;
    BinaryTraceWriter &operator=(const BinaryTraceWriter &) = delete;

    /** Append @p op as the next record of @p core 's stream. */
    void append(unsigned core, const cpu::MemOp &op);

    /** Append a pre-encoded record. */
    void append(const TraceRecord &rec);

    /** Patch the header counts and flush; fatal on I/O failure. */
    void finalize();

    /** Records appended so far. */
    std::uint64_t recordCount() const { return total_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    bool finalized_ = false;
};

/** Serialise per-core plans to a binary trace file (the in-memory
 *  counterpart of trace_io's writeTrace). */
void writeBinaryTrace(const std::string &path,
                      const std::vector<cpu::AccessPlan> &plans);

/** Materialise a binary trace as per-core plans. Convenience for
 *  tools/tests and the fixed-plan golden path; replay of large
 *  traces streams through MmapTraceReader/TraceDemux instead. */
std::vector<cpu::AccessPlan>
readBinaryTrace(const std::string &path);

} // namespace rcnvm::trace

#endif // RCNVM_TRACE_TRACE_BINARY_HH_
