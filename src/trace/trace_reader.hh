/**
 * @file
 * mmap'd streaming reader for binary access traces.
 *
 * Replay must handle traces far larger than memory, so the reader
 * never materialises the file: it maps one bounded window at a time
 * and slides the window forward as records are consumed. Records
 * are 16 bytes and always start 16-byte-aligned in the file
 * (trace_binary.hh pads the header block), so a page-aligned window
 * never splits a record and the resident set stays at one window
 * regardless of trace size.
 */

#ifndef RCNVM_TRACE_TRACE_READER_HH_
#define RCNVM_TRACE_TRACE_READER_HH_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_binary.hh"

namespace rcnvm::trace {

/**
 * Sequential binary-trace reader over a sliding mmap window.
 *
 * Construction validates the whole header block (magic, version,
 * record-count consistency against the file size and the per-core
 * count table); any deviation is a fatal error naming the file and
 * the defect. next() then streams records in file order, remapping
 * the window as it advances — maxMappedBytes()/remaps() expose the
 * windowing behaviour so tests can assert residency stays bounded.
 */
class MmapTraceReader
{
  public:
    /** Default window: 64 MB, a few thousand pages. */
    static constexpr std::size_t kDefaultWindowBytes = 64u << 20;

    /** Open and validate @p path; @p window_bytes is rounded up to
     *  a whole number of pages (at least one). Fatal on any
     *  malformed input. */
    explicit MmapTraceReader(
        const std::string &path,
        std::size_t window_bytes = kDefaultWindowBytes);
    ~MmapTraceReader();

    MmapTraceReader(const MmapTraceReader &) = delete;
    MmapTraceReader &operator=(const MmapTraceReader &) = delete;

    /** The validated file header. */
    const TraceFileHeader &header() const { return header_; }

    /** Per-core record counts from the header block. */
    const std::vector<std::uint64_t> &coreRecordCounts() const
    {
        return coreCounts_;
    }

    /** Copy the next record into @p out; false at end of trace.
     *  Fatal when a record names a core outside the header's
     *  declared range. */
    bool next(TraceRecord &out);

    /** Restart from the first record (keeps the current window). */
    void rewind() { nextRecord_ = 0; }

    /** Records consumed so far. */
    std::uint64_t consumed() const { return nextRecord_; }

    // Windowing observability (tests assert residency is bounded).

    /** The rounded window size actually used. */
    std::size_t windowBytes() const { return window_; }

    /** Largest mapping ever held at once. */
    std::size_t maxMappedBytes() const { return maxMapped_; }

    /** Window remap count (> 1 proves the file exceeds a window). */
    std::uint64_t remaps() const { return remaps_; }

  private:
    void mapWindowFor(std::uint64_t file_offset);
    void unmapWindow();

    std::string path_;
    int fd_ = -1;
    std::uint64_t fileSize_ = 0;
    std::uint64_t payloadOffset_ = 0;
    std::uint64_t nextRecord_ = 0;
    TraceFileHeader header_;
    std::vector<std::uint64_t> coreCounts_;

    char *map_ = nullptr;
    std::uint64_t mapOffset_ = 0;
    std::size_t mapLen_ = 0;
    std::size_t window_ = 0;
    std::size_t maxMapped_ = 0;
    std::uint64_t remaps_ = 0;
};

} // namespace rcnvm::trace

#endif // RCNVM_TRACE_TRACE_READER_HH_
