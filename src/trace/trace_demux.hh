/**
 * @file
 * Per-core demultiplexing of a binary trace into bounded queues.
 *
 * A trace interleaves the records of all cores in one file-order
 * stream, but each core consumes only its own. The demux reads the
 * file strictly forward (preserving the mmap window's sequential
 * access pattern) and parks records for not-yet-requesting cores in
 * per-core queues. The header's per-core record counts let a core
 * whose stream is exhausted report end-of-stream immediately — no
 * scan to end-of-file — and the queue bound turns a pathologically
 * skewed trace (one core's records millions of positions ahead of
 * another's) into a loud error instead of unbounded memory growth.
 */

#ifndef RCNVM_TRACE_TRACE_DEMUX_HH_
#define RCNVM_TRACE_TRACE_DEMUX_HH_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/op_source.hh"
#include "trace/trace_reader.hh"

namespace rcnvm::trace {

/**
 * Splits one MmapTraceReader into per-core cpu::OpSource streams
 * suitable for cpu::Machine::runSources. The reader is borrowed and
 * must outlive the demux; cores pull lazily, so file I/O happens
 * on demand inside the simulation loop, one window at a time.
 */
class TraceDemux
{
  public:
    struct Config {
        /** Maximum records parked for one core while another core
         *  pulls; exceeding it is fatal (trace too skewed). */
        std::size_t queueCapacity = 1u << 16;
    };

    TraceDemux(MmapTraceReader &reader, Config config);
    explicit TraceDemux(MmapTraceReader &reader)
        : TraceDemux(reader, Config{})
    {}

    /** Number of core streams (the header's core count). */
    unsigned coreCount() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    /** The pull stream of @p core. */
    cpu::OpSource &source(unsigned core);

    /** All streams in core order (Machine::runSources shape). */
    std::vector<cpu::OpSource *> sources();

    /** High-water mark of any single parked queue (observability:
     *  tests assert boundedness on interleaved traces). */
    std::size_t maxQueued() const { return maxQueued_; }

  private:
    class CoreSource final : public cpu::OpSource
    {
      public:
        CoreSource() = default;

        void
        bind(TraceDemux &demux, unsigned core)
        {
            demux_ = &demux;
            core_ = core;
        }

        const cpu::MemOp *peek() override;
        void advance() override;

      private:
        TraceDemux *demux_ = nullptr;
        unsigned core_ = 0;
    };

    /** Read forward until @p core has a queued record; false when
     *  its stream is exhausted. */
    bool refill(unsigned core);

    MmapTraceReader &reader_;
    Config config_;
    std::vector<std::deque<cpu::MemOp>> queues_;
    /** Records of each core still unread in the file. */
    std::vector<std::uint64_t> unread_;
    std::vector<CoreSource> sources_;
    std::size_t maxQueued_ = 0;
};

} // namespace rcnvm::trace

#endif // RCNVM_TRACE_TRACE_DEMUX_HH_
