#include "trace/trace_demux.hh"

#include "trace/trace_binary.hh"
#include "util/logging.hh"

namespace rcnvm::trace {

TraceDemux::TraceDemux(MmapTraceReader &reader, Config config)
    : reader_(reader),
      config_(config),
      queues_(reader.header().coreCount),
      unread_(reader.coreRecordCounts()),
      sources_(reader.header().coreCount)
{
    for (unsigned c = 0; c < coreCount(); ++c)
        sources_[c].bind(*this, c);
}

cpu::OpSource &
TraceDemux::source(unsigned core)
{
    if (core >= sources_.size())
        rcnvm_fatal("trace demux has ", sources_.size(),
                    " core stream(s); asked for core ", core);
    return sources_[core];
}

std::vector<cpu::OpSource *>
TraceDemux::sources()
{
    std::vector<cpu::OpSource *> out;
    out.reserve(sources_.size());
    for (CoreSource &src : sources_)
        out.push_back(&src);
    return out;
}

bool
TraceDemux::refill(unsigned core)
{
    TraceRecord rec;
    while (queues_[core].empty()) {
        if (!reader_.next(rec)) {
            // The total record count checks out at open time, so
            // this means the per-core table misattributed records.
            rcnvm_fatal("trace demux: reader exhausted with ",
                        unread_[core], " record(s) of core ", core,
                        " still promised by the per-core counts");
        }
        std::deque<cpu::MemOp> &q = queues_[rec.core];
        q.push_back(toMemOp(rec, reader_.consumed() - 1));
        if (unread_[rec.core] == 0)
            rcnvm_fatal("trace demux: more records for core ",
                        static_cast<unsigned>(rec.core),
                        " than the header's per-core count");
        --unread_[rec.core];
        if (q.size() > maxQueued_)
            maxQueued_ = q.size();
        if (rec.core != core && q.size() > config_.queueCapacity)
            rcnvm_fatal(
                "trace interleaving too skewed: ", q.size(),
                " record(s) of core ",
                static_cast<unsigned>(rec.core),
                " are buffered while core ", core,
                " still waits for its next record; raise the demux "
                "queue capacity or interleave the trace");
    }
    return true;
}

const cpu::MemOp *
TraceDemux::CoreSource::peek()
{
    std::deque<cpu::MemOp> &q = demux_->queues_[core_];
    if (q.empty()) {
        if (demux_->unread_[core_] == 0)
            return nullptr; // stream exhausted, no file scan needed
        demux_->refill(core_);
    }
    return &q.front();
}

void
TraceDemux::CoreSource::advance()
{
    demux_->queues_[core_].pop_front();
}

} // namespace rcnvm::trace
