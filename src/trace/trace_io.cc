#include "trace/trace_io.hh"

#include <cstdint>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/logging.hh"
#include "util/random.hh"

namespace rcnvm::trace {

using cpu::MemOp;
using cpu::OpKind;

namespace {

char
orientChar(Orientation o)
{
    return o == Orientation::Row ? 'R' : 'C';
}

Orientation
parseOrient(const std::string &token, unsigned line_no)
{
    if (token == "R")
        return Orientation::Row;
    if (token == "C")
        return Orientation::Column;
    rcnvm_fatal("trace line ", line_no,
                ": expected orientation R or C, got '", token, "'");
}

/** Strictly parse one numeric trace token; any deviation (garbage,
 *  sign, partial parse, overflow) is the documented fatal error with
 *  the line number rather than a raw std::stoull exception or a
 *  silent wrap. */
std::uint64_t
parseNumber(const std::string &token, const char *what,
            unsigned line_no)
{
    std::uint64_t value = 0;
    switch (util::parseUint64(token.c_str(), value)) {
      case util::ParseUint::Ok:
        return value;
      case util::ParseUint::Overflow:
        rcnvm_fatal("trace line ", line_no, ": ", what, " '", token,
                    "' overflows 64 bits");
      case util::ParseUint::Malformed:
        break;
    }
    rcnvm_fatal("trace line ", line_no, ": ", what, " '", token,
                "' is not a valid decimal or 0x-hex unsigned "
                "integer");
}

void
writeOp(std::ostream &os, const MemOp &op)
{
    const auto hex = [](Addr a) {
        std::ostringstream oss;
        oss << "0x" << std::hex << a;
        return oss.str();
    };
    switch (op.kind) {
      case OpKind::Load:
        os << "L " << hex(op.addr) << "\n";
        return;
      case OpKind::Store:
        os << "S " << hex(op.addr) << " " << op.bytes << "\n";
        return;
      case OpKind::CLoad:
        os << "CL " << hex(op.addr) << "\n";
        return;
      case OpKind::CStore:
        os << "CS " << hex(op.addr) << " " << op.bytes << "\n";
        return;
      case OpKind::CPrefetch:
        os << "CP " << hex(op.addr) << " "
           << orientChar(op.pinOrient) << "\n";
        return;
      case OpKind::GLoad:
        os << "G " << hex(op.addr) << "\n";
        return;
      case OpKind::Compute:
        os << "C " << op.computeCycles << "\n";
        return;
      case OpKind::Pin:
        os << "P " << hex(op.addr) << " " << op.bytes << " "
           << orientChar(op.pinOrient) << "\n";
        return;
      case OpKind::Unpin:
        os << "U " << hex(op.addr) << " " << op.bytes << " "
           << orientChar(op.pinOrient) << "\n";
        return;
      case OpKind::Fence:
        os << "F\n";
        return;
    }
    rcnvm_panic("unknown op kind while writing trace");
}

} // namespace

void
writeTrace(std::ostream &os, const std::vector<cpu::AccessPlan> &plans)
{
    os << "# rcnvm access trace, " << plans.size() << " core(s)\n";
    for (std::size_t core = 0; core < plans.size(); ++core) {
        os << "@core " << core << "\n";
        for (const MemOp &op : plans[core])
            writeOp(os, op);
    }
}

std::vector<cpu::AccessPlan>
readTrace(std::istream &is)
{
    std::vector<cpu::AccessPlan> plans;
    std::size_t core = 0;
    unsigned line_no = 0;
    std::string line;

    const auto plan = [&]() -> cpu::AccessPlan & {
        if (plans.size() <= core)
            plans.resize(core + 1);
        return plans[core];
    };

    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;

        const auto need_addr = [&]() {
            std::string token;
            if (!(ls >> token))
                rcnvm_fatal("trace line ", line_no,
                            ": missing address");
            return static_cast<Addr>(
                parseNumber(token, "address", line_no));
        };
        const auto need_u32 = [&](const char *what) {
            std::string token;
            if (!(ls >> token))
                rcnvm_fatal("trace line ", line_no, ": missing ",
                            what);
            const std::uint64_t v = parseNumber(token, what, line_no);
            if (v > std::numeric_limits<std::uint32_t>::max())
                rcnvm_fatal("trace line ", line_no, ": ", what, " ",
                            v, " does not fit in 32 bits");
            return static_cast<std::uint32_t>(v);
        };
        const auto need_orient = [&]() {
            std::string token;
            if (!(ls >> token))
                rcnvm_fatal("trace line ", line_no,
                            ": missing orientation");
            return parseOrient(token, line_no);
        };

        if (tag == "@core") {
            core = need_u32("core index");
            (void)plan();
        } else if (tag == "L") {
            plan().push_back(MemOp::load(need_addr()));
        } else if (tag == "S") {
            const Addr a = need_addr();
            plan().push_back(MemOp::store(a, need_u32("bytes")));
        } else if (tag == "CL") {
            plan().push_back(MemOp::cload(need_addr()));
        } else if (tag == "CS") {
            const Addr a = need_addr();
            plan().push_back(MemOp::cstore(a, need_u32("bytes")));
        } else if (tag == "CP") {
            const Addr a = need_addr();
            plan().push_back(MemOp::cprefetch(a, need_orient()));
        } else if (tag == "G") {
            plan().push_back(MemOp::gload(need_addr()));
        } else if (tag == "C") {
            plan().push_back(MemOp::compute(need_u32("cycles")));
        } else if (tag == "P" || tag == "U") {
            const Addr a = need_addr();
            const std::uint32_t bytes = need_u32("bytes");
            const Orientation o = need_orient();
            plan().push_back(tag == "P" ? MemOp::pin(a, bytes, o)
                                        : MemOp::unpin(a, bytes, o));
        } else if (tag == "F") {
            plan().push_back(MemOp::fence());
        } else {
            rcnvm_fatal("trace line ", line_no, ": unknown tag '",
                        tag, "'");
        }
    }
    return plans;
}

std::string
toString(const std::vector<cpu::AccessPlan> &plans)
{
    std::ostringstream oss;
    writeTrace(oss, plans);
    return oss.str();
}

std::vector<cpu::AccessPlan>
fromString(const std::string &text)
{
    std::istringstream iss(text);
    return readTrace(iss);
}

} // namespace rcnvm::trace
