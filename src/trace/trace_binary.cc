#include "trace/trace_binary.hh"

#include <cstring>
#include <limits>

#include "trace/trace_reader.hh"
#include "util/logging.hh"

namespace rcnvm::trace {

using cpu::MemOp;
using cpu::OpKind;

TraceRecord
toRecord(unsigned core, const MemOp &op)
{
    if (core > std::numeric_limits<std::uint8_t>::max())
        rcnvm_fatal("binary trace records address at most 256 "
                    "cores; got core ",
                    core);

    TraceRecord rec;
    rec.core = static_cast<std::uint8_t>(core);
    rec.size = op.bytes;
    rec.addr = op.addr;

    const auto set = [&rec](RecordType t) {
        rec.type = static_cast<std::uint8_t>(t);
    };
    switch (op.kind) {
      case OpKind::Load:
        set(RecordType::Read);
        break;
      case OpKind::Store:
        set(RecordType::Write);
        break;
      case OpKind::CLoad:
        set(RecordType::ColRead);
        break;
      case OpKind::CStore:
        set(RecordType::ColWrite);
        break;
      case OpKind::CPrefetch:
        set(RecordType::ColPrefetch);
        break;
      case OpKind::GLoad:
        set(RecordType::GatherRead);
        break;
      case OpKind::Compute:
        set(RecordType::Compute);
        rec.size = op.computeCycles;
        rec.addr = 0;
        break;
      case OpKind::Pin:
        set(RecordType::Pin);
        break;
      case OpKind::Unpin:
        set(RecordType::Unpin);
        break;
      case OpKind::Fence:
        set(RecordType::Fence);
        rec.size = 0;
        rec.addr = 0;
        break;
    }
    if (op.kind == OpKind::CPrefetch || op.kind == OpKind::Pin ||
        op.kind == OpKind::Unpin) {
        if (op.pinOrient == Orientation::Column)
            rec.flags |= kRecordFlagColumn;
    }
    return rec;
}

cpu::MemOp
toMemOp(const TraceRecord &rec, std::uint64_t index)
{
    const Orientation orient = (rec.flags & kRecordFlagColumn) != 0
                                   ? Orientation::Column
                                   : Orientation::Row;
    switch (static_cast<RecordType>(rec.type)) {
      case RecordType::Read:
        return MemOp::load(rec.addr, rec.size);
      case RecordType::Write:
        return MemOp::store(rec.addr, rec.size);
      case RecordType::ColRead:
        return MemOp::cload(rec.addr, rec.size);
      case RecordType::ColWrite:
        return MemOp::cstore(rec.addr, rec.size);
      case RecordType::ColPrefetch:
        return MemOp::cprefetch(rec.addr, orient);
      case RecordType::GatherRead:
        return MemOp::gload(rec.addr);
      case RecordType::Compute:
        return MemOp::compute(rec.size);
      case RecordType::Pin:
        return MemOp::pin(rec.addr, rec.size, orient);
      case RecordType::Unpin:
        return MemOp::unpin(rec.addr, rec.size, orient);
      case RecordType::Fence:
        return MemOp::fence();
      case RecordType::Invalid:
        break;
    }
    rcnvm_fatal("binary trace record ", index,
                ": unknown record type ",
                static_cast<unsigned>(rec.type));
}

BinaryTraceWriter::BinaryTraceWriter(const std::string &path,
                                     unsigned core_count)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      counts_(core_count, 0)
{
    if (!out_)
        rcnvm_fatal("cannot open ", path_, " for writing");

    // Placeholder header block; finalize() patches the counts.
    TraceFileHeader header;
    std::memcpy(header.magic, kTraceMagic, sizeof(header.magic));
    header.version = kTraceVersion;
    header.coreCount = core_count;
    out_.write(reinterpret_cast<const char *>(&header),
               sizeof(header));
    const std::uint64_t pad =
        tracePayloadOffset(core_count) - sizeof(header) -
        8ull * core_count;
    const std::vector<char> zeros(8ull * core_count + pad, 0);
    out_.write(zeros.data(),
               static_cast<std::streamsize>(zeros.size()));
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    if (!finalized_)
        finalize();
}

void
BinaryTraceWriter::append(unsigned core, const MemOp &op)
{
    append(toRecord(core, op));
}

void
BinaryTraceWriter::append(const TraceRecord &rec)
{
    if (rec.core >= counts_.size())
        rcnvm_fatal("binary trace declares ", counts_.size(),
                    " core(s) but a record names core ",
                    static_cast<unsigned>(rec.core));
    out_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    ++counts_[rec.core];
    ++total_;
}

void
BinaryTraceWriter::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    TraceFileHeader header;
    std::memcpy(header.magic, kTraceMagic, sizeof(header.magic));
    header.version = kTraceVersion;
    header.coreCount = static_cast<std::uint32_t>(counts_.size());
    header.recordCount = total_;
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&header),
               sizeof(header));
    out_.write(reinterpret_cast<const char *>(counts_.data()),
               static_cast<std::streamsize>(8 * counts_.size()));
    out_.flush();
    if (!out_)
        rcnvm_fatal("write failed for binary trace ", path_);
    out_.close();
}

void
writeBinaryTrace(const std::string &path,
                 const std::vector<cpu::AccessPlan> &plans)
{
    BinaryTraceWriter writer(
        path, static_cast<unsigned>(plans.size()));
    for (std::size_t core = 0; core < plans.size(); ++core) {
        for (const MemOp &op : plans[core])
            writer.append(static_cast<unsigned>(core), op);
    }
    writer.finalize();
}

std::vector<cpu::AccessPlan>
readBinaryTrace(const std::string &path)
{
    MmapTraceReader reader(path);
    std::vector<cpu::AccessPlan> plans(reader.header().coreCount);
    TraceRecord rec;
    std::uint64_t index = 0;
    while (reader.next(rec)) {
        plans[rec.core].push_back(toMemOp(rec, index));
        ++index;
    }
    return plans;
}

} // namespace rcnvm::trace
