/**
 * @file
 * Extension bench: the hybrid DRAM + RC-NVM tier on the OLXP
 * service workload. Sweeps the offered open-loop OLTP load (skewed
 * toward a hot tuple set) against a closed-loop OLAP column-scan
 * background on five placements — pure DRAM, pure RC-NVM, and the
 * hybrid tier under each migration policy (rbla, hotpage,
 * orientation) — and reports tail latency, saturation knees, and the
 * tier's own migration statistics.
 *
 * The study machine shrinks the LLC to 1 MB and sizes the table so
 * the OLTP hot set (12.5% of the table) is cache-contested but fits
 * the 2 MB near tier: hot rows promoted to DRAM serve point lookups
 * at DRAM latency while the scan background keeps streaming RC-NVM
 * columns from the retained far copies. Pure DRAM drags full tuples
 * through the hierarchy for every scan; pure RC-NVM pays the slow
 * NVM activate on every hot-row miss. A locality-aware hybrid should
 * therefore hold the OLTP tail below both static placements.
 *
 * `--smoke` runs a reduced sweep for CI. RCNVM_SEED reseeds tables
 * and generators; the same seed reproduces identical statistics at
 * any RCNVM_THREADS.
 */

#include <cstdint>
#include <cstring>
#include <iostream>
#include <tuple>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "olxp/service.hh"

using namespace rcnvm;

namespace {

/** One placement under study: a machine-config factory plus label. */
struct Placement {
    std::string label;
    cpu::MachineConfig config;
    bool hybrid = false;
};

struct SweepPoint {
    Tick interArrival{0};
    olxp::ServiceResult result;

    double offered() const
    {
        return 1.0e6 / static_cast<double>(interArrival.value());
    }
};

std::string
usLabel(double ticks)
{
    return bench::num(ticks / 1.0e6, 2);
}

/** Shrink the cache so the hot set is memory-resident, not
 *  LLC-resident: the tier study measures memory placement, and an
 *  8 MB LLC would simply absorb the whole hot set. */
void
shrinkCaches(cpu::MachineConfig &config)
{
    config.hierarchy.l3 =
        cache::CacheConfig{"L3", 1024 * 1024, 64, 8};
}

} // namespace

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "ext_hybrid_tier",
            "Extension bench: hybrid DRAM + RC-NVM tier vs the "
            "static placements\non the OLXP service workload "
            "(hot-set OLTP stream over an OLAP\ncolumn-scan "
            "background), one sweep per migration policy.",
            {"--smoke  reduced sweep (smaller table, fewer load "
             "points) for CI"}))
        return 0;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    util::setLogLevel(util::LogLevel::Quiet);

    // 128 B tuples: 65536 tuples = 8 MB of table, hot set 1 MB =
    // 128 far rows, within the hybrid machine's 2 MB near tier.
    const std::uint64_t tuples =
        bench::benchTuples(smoke ? 32768 : 65536);
    const std::uint64_t seed = util::envSeed(42);

    olxp::ServiceConfig service;
    service.oltpUpdateFraction = 0.2;
    service.oltpHotTupleFraction = 0.125;
    service.oltpHotProbability = 0.8;
    service.olapStreams = 3;
    service.olapTuplesPerScan = 512;
    service.olapFields = 1;
    service.horizon = smoke ? Tick{12000000} : Tick{30000000};
    service.runQueueCapacity = 64;

    const std::vector<Tick> loads =
        smoke ? std::vector<Tick>{Tick{100000}, Tick{25000}}
              : std::vector<Tick>{Tick{200000}, Tick{100000},
                                  Tick{50000}, Tick{25000},
                                  Tick{12500}};

    std::vector<Placement> placements;
    placements.push_back(
        {"dram", core::table1Machine(mem::DeviceKind::Dram), false});
    placements.push_back(
        {"rcnvm", core::table1Machine(mem::DeviceKind::RcNvm),
         false});
    for (const auto policy : {mem::MigrationPolicyKind::Rbla,
                              mem::MigrationPolicyKind::HotPage,
                              mem::MigrationPolicyKind::Orientation}) {
        placements.push_back(
            {std::string("hybrid-") + mem::toString(policy),
             core::hybridTable1Machine(policy), true});
    }
    for (Placement &p : placements) {
        shrinkCaches(p.config);
        p.config.seed = seed;
    }

    core::ArtifactWriter artifacts("ext_hybrid_tier");

    util::TablePrinter t(
        "Extension: hybrid memory tier, OLXP service sweep (latency "
        "in us; offered load in OLTP req/us; hot set " +
        bench::num(100.0 * service.oltpHotTupleFraction, 1) +
        "% of table, P(hot) = " +
        bench::num(service.oltpHotProbability, 2) + ")");
    t.addRow({"placement", "offered", "oltp done", "rej", "p50",
              "p99", "olap done", "promo", "demo", "nearHit%"});

    std::vector<std::vector<SweepPoint>> sweeps;
    for (const Placement &p : placements) {
        const mem::DeviceKind kind = p.config.device;
        mem::AddressMap map(p.config.geometry
                                ? mem::AddressMap(*p.config.geometry)
                                : mem::AddressMap(
                                      mem::geometryFor(kind)));
        const workload::TableSet tables =
            workload::TableSet::standard(tuples, 1024, seed);
        const workload::QueryWorkload workload(tables);
        const workload::PlacedDatabase pd = workload.place(kind, map);

        std::vector<SweepPoint> sweep;
        for (const Tick ia : loads) {
            cpu::Machine machine(p.config);

            olxp::ServiceConfig cfg = service;
            cfg.oltpInterArrival = ia;
            olxp::QueryScheduler scheduler(machine, pd, cfg);

            SweepPoint point;
            point.interArrival = ia;
            point.result = scheduler.run();
            if (artifacts.enabled()) {
                artifacts.record(p.label + "-ia" +
                                     std::to_string(ia.value()),
                                 point.result.run.stats,
                                 point.result.run.ticks);
            }

            const olxp::ServiceResult &r = point.result;
            const util::StatsMap &s = r.run.stats;
            const double promos = s.get("tier.promotions");
            const double demos = s.get("tier.demotions");
            const double hitRate = s.get("tier.nearHitRate");
            t.addRow({p.label, bench::num(point.offered(), 2),
                      std::to_string(r.oltpCompleted),
                      std::to_string(r.oltpRejected),
                      usLabel(r.oltpP50), usLabel(r.oltpP99),
                      std::to_string(r.olapCompleted),
                      p.hybrid ? bench::num(promos, 0) : "-",
                      p.hybrid ? bench::num(demos, 0) : "-",
                      p.hybrid ? bench::num(100.0 * hitRate, 1)
                               : "-"});
            sweep.push_back(std::move(point));
        }
        sweeps.push_back(std::move(sweep));
    }
    t.print(std::cout);

    // Knee: highest offered load whose p99 stays under 2x the
    // placement's own lightest-load baseline with no rejects.
    std::cout << "\nsaturation knees (p99 < 2x own baseline, no "
                 "rejects):\n";
    std::vector<double> knees;
    for (std::size_t d = 0; d < sweeps.size(); ++d) {
        const std::vector<SweepPoint> &sweep = sweeps[d];
        const double base = sweep.front().result.oltpP99;
        double knee = 0;
        for (const SweepPoint &p : sweep) {
            if (p.result.oltpP99 < 2.0 * base &&
                p.result.oltpRejected == 0)
                knee = std::max(knee, p.offered());
        }
        knees.push_back(knee);
        std::cout << "  " << placements[d].label << ": "
                  << bench::num(knee, 2) << " req/us (baseline p99 "
                  << usLabel(base) << " us)\n";
    }

    // Verdict: does any migration policy beat BOTH static
    // placements on OLTP tail service at the heaviest load point?
    // The log2 latency histogram quantizes percentiles to
    // factor-of-two bucket edges, so saturated placements often tie
    // on raw p99; rank lexicographically by (p99, rejects,
    // -completions) — at equal tail latency, fewer admission drops
    // and more completed requests is strictly better service.
    const auto score = [](const olxp::ServiceResult &r) {
        return std::make_tuple(
            r.oltpP99, r.oltpRejected,
            -static_cast<std::int64_t>(r.oltpCompleted));
    };
    const olxp::ServiceResult &dram_h = sweeps[0].back().result;
    const olxp::ServiceResult &rc_h = sweeps[1].back().result;
    int best = -1;
    for (std::size_t d = 2; d < sweeps.size(); ++d) {
        const olxp::ServiceResult &h = sweeps[d].back().result;
        if (score(h) < score(dram_h) && score(h) < score(rc_h) &&
            (best < 0 ||
             score(h) < score(sweeps[best].back().result)))
            best = static_cast<int>(d);
    }
    std::cout << "\nheadline: at the heaviest load, pure DRAM p99 = "
              << usLabel(dram_h.oltpP99) << " us ("
              << dram_h.oltpRejected << " rejects), pure RC-NVM "
              << "p99 = " << usLabel(rc_h.oltpP99) << " us ("
              << rc_h.oltpRejected << " rejects)";
    if (best >= 0) {
        const olxp::ServiceResult &h = sweeps[best].back().result;
        std::cout << "; " << placements[best].label
                  << " beats both at p99 = " << usLabel(h.oltpP99)
                  << " us (" << h.oltpRejected << " rejects, "
                  << h.oltpCompleted << " completed).\n";
    } else {
        std::cout << "; no hybrid policy beat both statics.\n";
        std::cout << "WARNING: expected >= 1 migration policy to "
                     "win\n";
        // The smoke sweep has too few tail samples to rank
        // placements reliably; it validates the tier pipeline, the
        // full sweep enforces the result.
        return smoke ? 0 : 1;
    }
    return 0;
}
