/**
 * @file
 * Figure 4 reproduction: area overhead of RC-DRAM over DRAM and of
 * RC-NVM over RRAM as a function of the word/bit line count in one
 * array.
 *
 * Paper anchors: RC-DRAM always above 200% and growing; RC-NVM
 * decreasing, below 20% at 512 lines.
 */

#include <iostream>

#include "bench_common.hh"
#include "circuit/area_model.hh"

using namespace rcnvm;

int
main()
{
    circuit::AreaModel model;

    util::TablePrinter t(
        "Figure 4: area overhead vs WL & BL numbers");
    t.addRow({"WL&BL", "RC-DRAM over DRAM", "RC-NVM over RRAM"});
    for (const unsigned n : {16u, 32u, 64u, 128u, 256u, 512u,
                             1024u}) {
        t.addRow({std::to_string(n),
                  bench::num(100.0 * model.rcDramOverhead(n), 1) +
                      "%",
                  bench::num(100.0 * model.rcNvmOverhead(n), 1) +
                      "%"});
    }
    t.print(std::cout);

    std::cout << "\npaper anchors: RC-DRAM > 200% everywhere and "
                 "growing; RC-NVM < 20% at 512 (deployed mat size), "
                 "~15% area overhead overall.\n";
    return 0;
}
