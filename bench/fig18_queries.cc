/**
 * @file
 * Figure 18 reproduction: execution time of Q1-Q13 on RC-NVM,
 * RRAM, GS-DRAM, and DRAM.
 *
 * Paper anchors: RC-NVM reduces execution time by ~71% vs RRAM and
 * ~67% vs DRAM on average; best case Q6 (14.5x / 13.3x); Q3 is the
 * only query where DRAM wins; GS-DRAM only helps where power-of-2
 * gathers apply (Q1/Q4/Q6, table-a).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "fig18_queries",
            "Figure 18 reproduction: execution time of the Q1-Q13 "
            "SQL suite on\nRC-NVM, RRAM, GS-DRAM, and DRAM."))
        return 0;

    const auto rows = bench::runSqlSuite(bench::benchTuples());

    core::ArtifactWriter artifacts("fig18_queries");
    for (const auto &row : rows) {
        for (std::size_t d = 0; d < row.byDevice.size(); ++d) {
            artifacts.record(
                std::string(workload::querySpec(row.id).name) + "." +
                    mem::toString(bench::allDevices()[d]),
                row.byDevice[d]);
        }
    }

    util::TablePrinter t(
        "Figure 18: SQL benchmark execution time (Mcycles)");
    t.addRow({"query", "RC-NVM", "RRAM", "GS-DRAM", "DRAM",
              "RRAM/RC", "DRAM/RC"});
    double rc_sum = 0, rram_sum = 0, gs_sum = 0, dram_sum = 0;
    for (const auto &row : rows) {
        const double rc = row.byDevice[0].megacycles();
        const double rram = row.byDevice[1].megacycles();
        const double gs = row.byDevice[2].megacycles();
        const double dram = row.byDevice[3].megacycles();
        rc_sum += rc;
        rram_sum += rram;
        gs_sum += gs;
        dram_sum += dram;
        t.addRow({workload::querySpec(row.id).name, bench::num(rc),
                  bench::num(rram), bench::num(gs),
                  bench::num(dram), bench::num(rram / rc, 2) + "x",
                  bench::num(dram / rc, 2) + "x"});
    }
    t.addRow({"sum", bench::num(rc_sum), bench::num(rram_sum),
              bench::num(gs_sum), bench::num(dram_sum),
              bench::num(rram_sum / rc_sum, 2) + "x",
              bench::num(dram_sum / rc_sum, 2) + "x"});
    t.print(std::cout);

    std::cout << "\nmean execution-time reduction: "
              << bench::num(100.0 * (1.0 - rc_sum / rram_sum), 1)
              << "% vs RRAM, "
              << bench::num(100.0 * (1.0 - rc_sum / dram_sum), 1)
              << "% vs DRAM, "
              << bench::num(gs_sum / rc_sum, 2)
              << "x improvement over GS-DRAM overall.\n"
              << "paper anchors: 71% vs RRAM, 67% vs DRAM, up to "
                 "14.5x (Q6); 2.37x mean over GS-DRAM; DRAM wins "
                 "only Q3.\n";
    return 0;
}
