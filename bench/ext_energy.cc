/**
 * @file
 * Extension bench: memory energy per query. The paper evaluates
 * performance only; this harness applies representative
 * per-command energies (activations, bursts, cell write pulses) to
 * the timed Q1-Q13 suite (workload::kTimedQueryCount; the engine
 * compiles all of Q1-Q15, but Q14/Q15 are the group-caching
 * studies) and reports microjoules per query.
 *
 * Expectation: RC-NVM's access-count reduction translates into an
 * energy reduction on the scan-dominated queries despite the more
 * expensive NVM write pulses.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main()
{
    const auto rows = bench::runSqlSuite(bench::benchTuples());

    util::TablePrinter t(
        "Extension: memory energy per query (uJ)");
    t.addRow({"query", "RC-NVM", "RRAM", "GS-DRAM", "DRAM",
              "DRAM/RC"});
    double rc_sum = 0, dram_sum = 0;
    for (const auto &row : rows) {
        std::vector<std::string> cells = {
            workload::querySpec(row.id).name};
        for (const auto &r : row.byDevice) {
            cells.push_back(bench::num(
                r.stats.at("mem.energyPJ") / 1.0e6, 2));
        }
        const double rc = row.byDevice[0].stats.at("mem.energyPJ");
        const double dram =
            row.byDevice[3].stats.at("mem.energyPJ");
        rc_sum += rc;
        dram_sum += dram;
        cells.push_back(bench::num(dram / rc, 2) + "x");
        t.addRow(cells);
    }
    t.print(std::cout);

    std::cout << "\ntotal: RC-NVM uses "
              << bench::num(100.0 * rc_sum / dram_sum, 1)
              << "% of DRAM's memory energy across "
              << bench::sqlSuiteLabel() << ".\n";
    return 0;
}
