/**
 * @file
 * Figure 22 reproduction: sensitivity of the mean Q1-Q13 execution
 * time to the RRAM/RC-NVM cell latency, sweeping (read access
 * time, write pulse width) from (12.5 ns, 5 ns) to (200 ns, 80 ns),
 * with the fixed-latency DRAM result as the reference line.
 *
 * Paper anchor: RC-NVM still outperforms DRAM even at cell read
 * latencies of hundreds of cycles.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

namespace {

double
meanSuite(const workload::QueryWorkload &wl, mem::DeviceKind kind,
          const cpu::MachineConfig &config)
{
    mem::AddressMap map(mem::geometryFor(kind));
    const workload::PlacedDatabase pd = wl.place(kind, map);
    double sum = 0;
    for (const auto id : bench::sqlQueries()) {
        const auto q =
            wl.compile(id, pd, config.hierarchy.cores);
        sum += core::runCompiled(config, q).megacycles();
    }
    return sum / static_cast<double>(bench::sqlQueries().size());
}

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    // The sweep runs the full suite 11 times; default to a lighter
    // scale than the other benches.
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples(65536));
    const workload::QueryWorkload wl(tables);

    const double dram_mean =
        meanSuite(wl, mem::DeviceKind::Dram,
                  core::table1Machine(mem::DeviceKind::Dram));

    util::TablePrinter t(
        "Figure 22: cell-latency sensitivity, mean Q1-Q13 "
        "execution time (Mcycles)");
    t.addRow({"(read, write-pulse)", "RC-NVM", "RRAM",
              "DRAM (fixed)"});
    const double points[][2] = {{12.5, 5.0},
                                {25.0, 10.0},
                                {50.0, 20.0},
                                {100.0, 40.0},
                                {200.0, 80.0}};
    for (const auto &p : points) {
        const double rc = meanSuite(
            wl, mem::DeviceKind::RcNvm,
            core::table1MachineWithCell(mem::DeviceKind::RcNvm,
                                        p[0], p[1]));
        const double rram = meanSuite(
            wl, mem::DeviceKind::Rram,
            core::table1MachineWithCell(mem::DeviceKind::Rram, p[0],
                                        p[1]));
        t.addRow({"(" + bench::num(p[0], 1) + " ns, " +
                      bench::num(p[1], 1) + " ns)",
                  bench::num(rc), bench::num(rram),
                  bench::num(dram_mean)});
    }
    t.print(std::cout);

    std::cout << "\npaper anchor: RC-NVM remains ahead of DRAM "
                 "even at (200 ns, 80 ns) cell latency.\n";
    return 0;
}
