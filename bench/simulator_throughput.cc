/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot
 * paths: event queue throughput, address mapping, bank state
 * machine, and end-to-end simulated-access rate. These guard
 * against performance regressions of the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "core/presets.hh"
#include "cpu/machine.hh"
#include "mem/bank.hh"
#include "mem/geometry.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

using namespace rcnvm;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i) {
            // rcnvm-lint: capture-ok (run() drains before exit)
            eq.schedule(static_cast<Tick>(i), [&sink] { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_AddressEncodeDecode(benchmark::State &state)
{
    const mem::AddressMap map(mem::Geometry::rcNvm());
    mem::DecodedAddr d;
    d.row = 437;
    d.col = 182;
    for (auto _ : state) {
        const Addr a = map.encode(d, Orientation::Row);
        benchmark::DoNotOptimize(
            map.decode(a, Orientation::Row).col);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressEncodeDecode);

void
BM_AddressConvert(benchmark::State &state)
{
    const mem::AddressMap map(mem::Geometry::rcNvm());
    Addr a = 0x12345678;
    for (auto _ : state) {
        a = map.convert(a, Orientation::Row, Orientation::Column);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressConvert);

void
BM_BankAccessStream(benchmark::State &state)
{
    const mem::TimingParams t = mem::TimingParams::rcNvm();
    mem::Bank bank;
    unsigned col = 0;
    for (auto _ : state) {
        const auto s =
            bank.access(bank.nextReady(), Orientation::Column, 0,
                        col++ & 1023, false, t);
        benchmark::DoNotOptimize(s.finish);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankAccessStream);

void
BM_ChannelControllerThroughput(benchmark::State &state)
{
    // The controller hot path in isolation: a four-bank interleaved
    // read stream with periodic row crossings, driven directly at
    // the memory system so no cache or core costs are measured.
    util::setLogLevel(util::LogLevel::Quiet);
    sim::EventQueue eq;
    mem::MemorySystem memory(mem::DeviceKind::RcNvm, eq);
    const mem::AddressMap &map = memory.map();
    std::vector<Addr> addrs;
    mem::DecodedAddr d;
    for (unsigned i = 0; i < 4096; ++i) {
        d.bank = i % 4;
        d.row = (i / 64) % 512;
        d.col = i % 128;
        addrs.push_back(map.encode(d, Orientation::Row));
    }
    std::uint64_t completions = 0;
    for (auto _ : state) {
        for (const Addr a : addrs) {
            mem::MemRequest req;
            req.addr = a;
            req.orient = Orientation::Row;
            req.onComplete = [&completions](Tick) { ++completions; };
            memory.issue(std::move(req));
            // Drain in chunks so queues stay at realistic depths.
            if (!memory.canAccept(a, Orientation::Row))
                eq.run();
        }
        eq.run();
        benchmark::DoNotOptimize(completions);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ChannelControllerThroughput);

void
BM_MachineConstruction(benchmark::State &state)
{
    util::setLogLevel(util::LogLevel::Quiet);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    for (auto _ : state) {
        cpu::Machine machine(config);
        benchmark::DoNotOptimize(&machine);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineConstruction);

void
BM_EndToEndSimulatedAccesses(benchmark::State &state)
{
    // Steady-state simulation rate: the machine is built once and
    // reset between runs (construction is measured separately by
    // BM_MachineConstruction), so this tracks the event-driven
    // core/cache/memory path that dominates experiment runtime.
    util::setLogLevel(util::LogLevel::Quiet);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    cpu::AccessPlan plan;
    for (unsigned i = 0; i < 4096; ++i)
        plan.push_back(cpu::MemOp::load((Addr{i} * 64) & 0xffffffff));
    cpu::Machine machine(config);
    for (auto _ : state) {
        machine.reset();
        benchmark::DoNotOptimize(machine.run(plan).ticks);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EndToEndSimulatedAccesses);

void
BM_ShardedEngineScaling(benchmark::State &state)
{
    // Simulated-tick rate of the channel-sharded engine at 1..8
    // worker threads over a 4-channel RC-NVM machine (workers clamp
    // to the channel count). Four cores stream mixed loads/stores
    // spread across all channels through a deliberately small LLC,
    // so the channel shards carry most of the event load. On a host
    // with spare hardware threads the 4-worker rate should scale
    // towards the channel count; on a single-CPU host the lines
    // collapse and only the synchronisation overhead is visible.
    util::setLogLevel(util::LogLevel::Quiet);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    mem::Geometry geometry = mem::geometryFor(config.device);
    geometry.channels = 4;
    config.geometry = geometry;
    config.threads = static_cast<unsigned>(state.range(0));
    config.hierarchy.l3 =
        cache::CacheConfig{"L3", 64 * 1024, 64, 8};
    config.seed = 42;
    cpu::Machine machine(config);
    const mem::AddressMap &map = machine.map();
    std::vector<cpu::AccessPlan> plans(4);
    for (unsigned core = 0; core < 4; ++core) {
        for (unsigned i = 0; i < 4096; ++i) {
            mem::DecodedAddr d;
            d.channel = (core + i) % geometry.channels;
            d.rank = i % geometry.ranksPerChannel;
            d.bank = (i / 3) % geometry.banksPerRank;
            d.subarray = (i / 7) % geometry.subarraysPerBank;
            d.row = (core * 31 + i * 7) % geometry.rowsPerSubarray;
            d.col =
                ((i * 13) % (geometry.colsPerSubarray / 8)) * 8;
            const Addr a = map.encode(d, Orientation::Row);
            plans[core].push_back(i % 3 == 0 ? cpu::MemOp::store(a)
                                             : cpu::MemOp::load(a));
        }
    }
    std::uint64_t simTicks = 0;
    for (auto _ : state) {
        machine.reset();
        const cpu::RunResult r = machine.run(plans);
        simTicks += r.ticks.value();
        benchmark::DoNotOptimize(r.ticks);
    }
    state.SetItemsProcessed(state.iterations() * 4096 * 4);
    state.counters["simTicks/s"] = benchmark::Counter(
        static_cast<double>(simTicks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedEngineScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_Serve16EngineScaling(benchmark::State &state)
{
    // The same thread sweep on the serving machine preset
    // (core::serve16Machine: 16 cores, 8 channels, 16 MB LLC, deep
    // MSHR and controller queues) — the "bigger machine" the sharded
    // engine was built for. Sixteen cores stream mixed loads/stores
    // spread across all eight channels; with twice the shards of the
    // 4-channel sweep the engine has twice the parallelism to
    // harvest, so this is where scaling headroom (or its loss) shows
    // first.
    util::setLogLevel(util::LogLevel::Quiet);
    cpu::MachineConfig config =
        core::serve16Machine(mem::DeviceKind::RcNvm);
    const mem::Geometry geometry = *config.geometry;
    config.threads = static_cast<unsigned>(state.range(0));
    config.seed = 42;
    cpu::Machine machine(config);
    const mem::AddressMap &map = machine.map();
    const unsigned cores = config.hierarchy.cores;
    std::vector<cpu::AccessPlan> plans(cores);
    for (unsigned core = 0; core < cores; ++core) {
        for (unsigned i = 0; i < 2048; ++i) {
            mem::DecodedAddr d;
            d.channel = (core + i) % geometry.channels;
            d.rank = i % geometry.ranksPerChannel;
            d.bank = (i / 3) % geometry.banksPerRank;
            d.subarray = (i / 7) % geometry.subarraysPerBank;
            d.row = (core * 31 + i * 7) % geometry.rowsPerSubarray;
            d.col =
                ((i * 13) % (geometry.colsPerSubarray / 8)) * 8;
            const Addr a = map.encode(d, Orientation::Row);
            plans[core].push_back(i % 3 == 0 ? cpu::MemOp::store(a)
                                             : cpu::MemOp::load(a));
        }
    }
    std::uint64_t simTicks = 0;
    for (auto _ : state) {
        machine.reset();
        const cpu::RunResult r = machine.run(plans);
        simTicks += r.ticks.value();
        benchmark::DoNotOptimize(r.ticks);
    }
    state.SetItemsProcessed(state.iterations() * 2048 * cores);
    state.counters["simTicks/s"] = benchmark::Counter(
        static_cast<double>(simTicks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Serve16EngineScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
