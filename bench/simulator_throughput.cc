/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot
 * paths: event queue throughput, address mapping, bank state
 * machine, and end-to-end simulated-access rate. These guard
 * against performance regressions of the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "cpu/machine.hh"
#include "mem/bank.hh"
#include "mem/geometry.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

using namespace rcnvm;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_AddressEncodeDecode(benchmark::State &state)
{
    const mem::AddressMap map(mem::Geometry::rcNvm());
    mem::DecodedAddr d;
    d.row = 437;
    d.col = 182;
    for (auto _ : state) {
        const Addr a = map.encode(d, Orientation::Row);
        benchmark::DoNotOptimize(
            map.decode(a, Orientation::Row).col);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressEncodeDecode);

void
BM_AddressConvert(benchmark::State &state)
{
    const mem::AddressMap map(mem::Geometry::rcNvm());
    Addr a = 0x12345678;
    for (auto _ : state) {
        a = map.convert(a, Orientation::Row, Orientation::Column);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressConvert);

void
BM_BankAccessStream(benchmark::State &state)
{
    const mem::TimingParams t = mem::TimingParams::rcNvm();
    mem::Bank bank;
    unsigned col = 0;
    for (auto _ : state) {
        const auto s =
            bank.access(bank.nextReady(), Orientation::Column, 0,
                        col++ & 1023, false, t);
        benchmark::DoNotOptimize(s.finish);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankAccessStream);

void
BM_EndToEndSimulatedAccesses(benchmark::State &state)
{
    util::setLogLevel(util::LogLevel::Quiet);
    cpu::MachineConfig config;
    config.device = mem::DeviceKind::RcNvm;
    cpu::AccessPlan plan;
    for (unsigned i = 0; i < 4096; ++i)
        plan.push_back(cpu::MemOp::load((Addr{i} * 64) & 0xffffffff));
    for (auto _ : state) {
        cpu::Machine machine(config);
        benchmark::DoNotOptimize(machine.run(plan).ticks);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EndToEndSimulatedAccesses);

} // namespace

BENCHMARK_MAIN();
