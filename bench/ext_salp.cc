/**
 * @file
 * Extension bench: SALP-style subarray-level parallelism. The
 * paper cites SALP as orthogonal related work that "can be applied
 * together" with RC-NVM; this harness quantifies the combination.
 *
 * Workload: an interleaved column scan over two tables whose chunks
 * share banks but live in different subarrays (a join-style zipped
 * scan). With one buffer pair per bank every access conflicts; with
 * per-subarray buffers both scan streams keep their buffers open.
 */

#include <iostream>

#include "bench_common.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

namespace {

struct Result {
    double mcycles;
    double conflicts;
};

Result
runZippedScan(bool salp, const workload::TableSet &tables)
{
    const auto kind = mem::DeviceKind::RcNvm;
    cpu::MachineConfig config = core::table1Machine(kind);
    config.salp = salp;

    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const auto a = db.addTable(tables.a.get(),
                               imdb::ChunkLayout::ColumnOriented);
    const auto c = db.addTable(tables.b.get(),
                               imdb::ChunkLayout::ColumnOriented);
    // One bin group per table: chunk i of both tables maps to bank
    // i, in different subarrays.

    const std::uint64_t n = tables.a->tuples();
    const unsigned cores = config.hierarchy.cores;
    std::vector<cpu::AccessPlan> plans;
    for (unsigned core = 0; core < cores; ++core) {
        const std::uint64_t lo = core * n / cores;
        const std::uint64_t hi = (core + 1) * n / cores;
        std::vector<imdb::LineRef> la, lc, zipped;
        db.fieldScanLines(a, 9, lo, hi, la);
        db.fieldScanLines(c, 9, lo, hi, lc);
        for (std::size_t i = 0;
             i < std::max(la.size(), lc.size()); ++i) {
            if (i < la.size())
                zipped.push_back(la[i]);
            if (i < lc.size())
                zipped.push_back(lc[i]);
        }
        imdb::PlanBuilder builder(db);
        builder.emitLines(zipped, false, 1);
        plans.push_back(builder.take());
    }

    const auto r = core::runPlans(config, plans);
    return Result{r.megacycles(),
                  r.stats.at("mem.bufferConflicts") +
                      r.stats.at("mem.orientationSwitches")};
}

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples(65536));

    util::TablePrinter t(
        "Extension: SALP on RC-NVM, zipped two-table column scan");
    t.addRow({"configuration", "Mcycles", "buffer conflicts"});
    const Result base = runZippedScan(false, tables);
    const Result salp = runZippedScan(true, tables);
    t.addRow({"per-bank buffers (paper)",
              bench::num(base.mcycles),
              bench::num(base.conflicts, 0)});
    t.addRow({"per-subarray buffers (SALP)",
              bench::num(salp.mcycles),
              bench::num(salp.conflicts, 0)});
    t.print(std::cout);

    std::cout << "\nSALP gain: "
              << bench::num(
                     100.0 * (1.0 - salp.mcycles / base.mcycles), 1)
              << "% on the interleaved scan (the paper's claim that "
                 "SALP composes with RC-NVM).\n";
    return 0;
}
