/**
 * @file
 * Extension bench: multi-tenant serving at 10^3 streams. Runs the
 * serving subsystem (plan optimizer + SLO-aware dispatch + shared
 * scans, DESIGN.md 4i) on the 8-channel/16-core serve16 machine with
 * the read-priority channel policy, on all four devices.
 *
 * Three runs per device:
 *
 *   baseline  OLTP tenant alone — the OLAP-free p99 reference.
 *   unprot    OLTP + 1024 backfill streams, SLO loop off — the
 *             unprotected backfill-throughput reference.
 *   slo       same mix with the SLO loop on, targeting 1.15x the
 *             device's own baseline p99.
 *
 * Plus one result-identity pair per device: the same capped segment
 * sequence with the optimizer on and off must produce an identical
 * scan checksum while the on-run prunes chunks (serve.chunksPruned
 * > 0). This pair is asserted in every mode — it is a correctness
 * property, not a performance target.
 *
 * Expectation (asserted with `--smoke`, warned otherwise): with the
 * SLO loop on, OLTP p99 stays within 1.25x the OLAP-free baseline
 * while backfill still sustains at least half its unprotected
 * throughput. The shared cursor makes the stream count nearly free:
 * streamScans / segmentsCompleted = attached streams.
 *
 * RCNVM_SEED reseeds tables and generators; two runs with the same
 * seed (at any RCNVM_THREADS) produce identical statistics. Shape
 * overrides: RCNVM_SERVE_STREAMS (total backfill streams),
 * RCNVM_SERVE_IA (mean OLTP inter-arrival, ticks),
 * RCNVM_SERVE_HORIZON.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "olxp/serve/serve_scheduler.hh"

using namespace rcnvm;

namespace {

std::string
usLabel(double ticks)
{
    return bench::num(ticks / 1.0e6, 2);
}

olxp::serve::ServeResult
runServe(mem::DeviceKind kind, const workload::PlacedDatabase &pd,
         const olxp::serve::ServeConfig &cfg, std::uint64_t seed,
         core::ArtifactWriter &artifacts, const std::string &label)
{
    cpu::MachineConfig config = core::serve16Machine(kind);
    config.seed = seed;
    config.schedPolicy = mem::SchedPolicyKind::ReadPriority;
    cpu::Machine machine(config);
    olxp::serve::ServeScheduler scheduler(machine, pd, cfg);
    olxp::serve::ServeResult r = scheduler.run();
    if (artifacts.enabled())
        artifacts.record(label, r.run.stats, r.run.ticks);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "ext_olxp_serve",
            "Extension bench: multi-tenant serving at 10^3 streams. "
            "Runs the\nserving subsystem (plan optimizer, SLO-aware "
            "dispatch, shared scans)\non the 8-channel/16-core "
            "machine and reports OLTP tail protection,\nbackfill "
            "retention, shared-scan amplification, and chunk "
            "pruning.",
            {"--smoke  reduced run (smaller tables, shorter horizon) "
             "for CI;\n         asserts the SLO and retention "
             "targets"}))
        return 0;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    util::setLogLevel(util::LogLevel::Quiet);

    // Table-a must exceed the serve16 machine's 16 MB LLC (tuples
    // are 128 B) or backfill never reaches memory.
    const std::uint64_t tuples =
        bench::benchTuples(smoke ? 196608 : 393216);
    const std::uint64_t seed = util::envSeed(42);

    const std::uint64_t totalStreams =
        util::envUint64("RCNVM_SERVE_STREAMS", 1024);
    const Tick ia{util::envUint64("RCNVM_SERVE_IA", 100000)};
    const Tick horizon{util::envUint64(
        "RCNVM_SERVE_HORIZON", smoke ? 64000000 : 128000000)};

    // The serving mix: one latency tenant, one throughput tenant
    // carrying ~70% of the streams on a shared cursor, and one
    // token-metered maintenance tenant carrying the rest (its dry
    // bucket exercises park/retry admission).
    const unsigned olapStreams =
        static_cast<unsigned>(totalStreams * 7 / 10);
    const unsigned maintStreams =
        static_cast<unsigned>(totalStreams) - olapStreams;

    olxp::serve::TenantConfig oltp;
    oltp.name = "oltp";
    oltp.cls = olxp::serve::TenantClass::OltpLatency;
    oltp.oltpInterArrival = ia;
    oltp.oltpUpdateFraction = 0.2;

    olxp::serve::TenantConfig olap;
    olap.name = "olap";
    olap.cls = olxp::serve::TenantClass::OlapThroughput;
    olap.streams = olapStreams;
    olap.segmentTuples = 128;
    olap.segmentParallelism = 12;

    olxp::serve::TenantConfig maint;
    maint.name = "maint";
    maint.cls = olxp::serve::TenantClass::Background;
    maint.streams = maintStreams;
    maint.segmentTuples = 64;
    maint.segmentParallelism = 4;
    maint.tokensPerMTick = 1.0;
    maint.tokenBurst = 4.0;

    olxp::serve::ServeConfig base;
    base.horizon = horizon;
    // Percentiles measure the second half: a protected run's tail
    // should reflect the converged SLO loop, not its warm-up.
    base.measureFrom = Tick{horizon.value() / 2};
    base.runQueueCapacity = 256;
    base.seed = seed;

    const workload::TableSet tables =
        workload::TableSet::standard(tuples, 1024, seed);
    const workload::QueryWorkload workload(tables);

    core::ArtifactWriter artifacts("ext_olxp_serve");

    util::TablePrinter t(
        "Extension: multi-tenant serving (16 cores, 8 channels, "
        "readpri policy; " +
        std::to_string(totalStreams) +
        " backfill streams; latency in us)");
    t.addRow({"device", "mode", "oltp done", "rej", "p99", "vs base",
              "segs", "segs/us", "streamScans", "pruned%"});

    bool identityOk = true;
    bool sloOk = true;
    std::vector<double> sloP99Ratio, retention;

    for (const auto kind : bench::allDevices()) {
        mem::AddressMap map(mem::geometryFor(kind));
        const workload::PlacedDatabase pd = workload.place(kind, map);
        const std::string dev = mem::toString(kind);

        // (1) OLAP-free baseline: the p99 reference.
        olxp::serve::ServeConfig cb = base;
        cb.tenants = {oltp};
        const olxp::serve::ServeResult rb = runServe(
            kind, pd, cb, seed, artifacts, dev + "-baseline");

        // (2) Unprotected mix: SLO loop off, backfill fills cores.
        olxp::serve::ServeConfig cu = base;
        cu.tenants = {oltp, olap, maint};
        cu.slo = false;
        const olxp::serve::ServeResult ru = runServe(
            kind, pd, cu, seed, artifacts, dev + "-unprot");

        // (3) Protected mix: SLO loop targets 1.15x own baseline.
        olxp::serve::ServeConfig cs = cu;
        cs.slo = true;
        cs.sloTarget = Tick{static_cast<std::uint64_t>(
            rb.oltpP99 * 1.15)};
        cs.sloPeriod = Tick{1000000};
        const olxp::serve::ServeResult rs = runServe(
            kind, pd, cs, seed, artifacts, dev + "-slo");

        // (4) Result-identity pair: same capped segment sequence,
        // optimizer on vs off, must checksum identically while the
        // on-run prunes. Backfill tenants only, so the run drains as
        // soon as the capped cursors finish.
        olxp::serve::ServeConfig ci = base;
        ci.tenants = {olap, maint};
        ci.slo = false;
        ci.horizon = Tick{1000000000000};
        ci.maxSegmentsPerGroup = 8;
        const olxp::serve::ServeResult ron = runServe(
            kind, pd, ci, seed, artifacts, dev + "-ident-on");
        ci.optimizer = false;
        const olxp::serve::ServeResult roff = runServe(
            kind, pd, ci, seed, artifacts, dev + "-ident-off");
        if (!(ron.scanChecksum == roff.scanChecksum) ||
            ron.segmentsCompleted != roff.segmentsCompleted ||
            ron.chunksPruned == 0) {
            identityOk = false;
            std::cout << "IDENTITY FAILURE on " << dev
                      << ": on={" << ron.scanChecksum.matches << ","
                      << ron.scanChecksum.sum << "} segs="
                      << ron.segmentsCompleted << " pruned="
                      << ron.chunksPruned << " off={"
                      << roff.scanChecksum.matches << ","
                      << roff.scanChecksum.sum << "} segs="
                      << roff.segmentsCompleted << "\n";
        }

        const auto prunedPct =
            [](const olxp::serve::ServeResult &r) -> std::string {
            const std::uint64_t total =
                r.chunksScanned + r.chunksPruned;
            return total == 0
                       ? std::string("-")
                       : bench::num(100.0 *
                                        static_cast<double>(
                                            r.chunksPruned) /
                                        static_cast<double>(total),
                                    1);
        };
        const auto row = [&](const char *mode,
                             const olxp::serve::ServeResult &r) {
            t.addRow({dev, mode, std::to_string(r.oltpCompleted),
                      std::to_string(r.oltpRejected),
                      usLabel(r.oltpP99),
                      rb.oltpP99 > 0
                          ? bench::num(r.oltpP99 / rb.oltpP99, 2)
                          : "-",
                      std::to_string(r.segmentsCompleted),
                      bench::num(r.backfillThroughput(), 2),
                      std::to_string(r.streamScans), prunedPct(r)});
        };
        row("baseline", rb);
        row("unprot", ru);
        row("slo", rs);

        const double ratio =
            rb.oltpP99 > 0 ? rs.oltpP99 / rb.oltpP99 : 0;
        const double keep =
            ru.backfillThroughput() > 0
                ? rs.backfillThroughput() / ru.backfillThroughput()
                : 0;
        sloP99Ratio.push_back(ratio);
        retention.push_back(keep);
        if (ratio > 1.25 || keep < 0.5)
            sloOk = false;
    }
    t.print(std::cout);

    std::cout << "\nSLO protection (target: p99 <= 1.25x OLAP-free "
                 "baseline, backfill >= 50% of unprotected):\n";
    for (std::size_t d = 0; d < sloP99Ratio.size(); ++d) {
        std::cout << "  " << mem::toString(bench::allDevices()[d])
                  << ": p99 " << bench::num(sloP99Ratio[d], 2)
                  << "x baseline, backfill retention "
                  << bench::num(100.0 * retention[d], 1) << "%\n";
    }
    std::cout << "\nheadline: one shared cursor serves every "
                 "attached stream — "
              << totalStreams
              << " backfill streams cost one scan's traffic per "
                 "segment (streamScans = segments x streams), and "
                 "the SLO loop holds the OLTP tail near its "
                 "OLAP-free baseline while backfill keeps most of "
                 "its unprotected throughput.\n";

    if (!identityOk) {
        std::cout << "FAILURE: optimizer-on and -off runs disagree "
                     "(see above)\n";
        return 1;
    }
    if (!sloOk) {
        std::cout << "WARNING: an SLO or retention target was "
                     "missed (see table)\n";
        // The correctness identity holds regardless; the protection
        // targets are asserted in smoke (CI) mode.
        return smoke ? 1 : 0;
    }
    return 0;
}
