/**
 * @file
 * Ablation: inter-chunk placement policy (Sec. 4.5.3).
 *
 * Compares the Fujita-style Packed policy (minimise subarrays, the
 * paper's bin-packing objective) against the Spread policy (one bin
 * per bank, maximise bank parallelism), and quantifies rotation's
 * effect on packing density. This documents the trade the default
 * configuration makes.
 */

#include <iostream>

#include "bench_common.hh"
#include "imdb/plan_builder.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

namespace {

struct Result {
    unsigned bins;
    double utilization;
    double mcycles;
};

Result
runScan(imdb::PlacementPolicy policy, bool rotation,
        const workload::TableSet &tables)
{
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    imdb::Database db(mem::DeviceKind::RcNvm, map, policy, rotation);
    const auto a = db.addTable(tables.a.get(),
                               imdb::ChunkLayout::ColumnOriented);
    const auto b = db.addTable(tables.b.get(),
                               imdb::ChunkLayout::ColumnOriented);
    const auto c = db.addTable(tables.c.get(),
                               imdb::ChunkLayout::ColumnOriented);
    (void)c;

    // Workload: all four cores scan every field of table-a and
    // table-b over disjoint tuple ranges - the pattern where packed
    // placement makes cores collide on the few subarrays holding
    // the table while spread placement keeps their banks disjoint.
    const unsigned cores = 4;
    std::vector<cpu::AccessPlan> plans;
    const std::uint64_t n = tables.a->tuples();
    for (unsigned core = 0; core < cores; ++core) {
        imdb::PlanBuilder builder(db);
        const std::uint64_t lo = core * n / cores;
        const std::uint64_t hi = (core + 1) * n / cores;
        for (unsigned w = 0; w < 16; ++w)
            builder.scanFieldWord(a, w, lo, hi, 1);
        for (unsigned w = 0; w < 20; ++w)
            builder.scanFieldWord(b, w, lo, hi, 1);
        plans.push_back(builder.take());
    }

    const auto r = core::runPlans(
        core::table1Machine(mem::DeviceKind::RcNvm), plans);
    return Result{db.binsUsed(), db.packingUtilization(),
                  r.megacycles()};
}

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples());

    util::TablePrinter t(
        "Ablation: placement policy and rotation");
    t.addRow({"policy", "rotation", "subarrays", "utilization",
              "scan time (Mcycles)"});
    for (const auto policy : {imdb::PlacementPolicy::Packed,
                              imdb::PlacementPolicy::Spread}) {
        for (const bool rotation : {true, false}) {
            const Result r = runScan(policy, rotation, tables);
            t.addRow({policy == imdb::PlacementPolicy::Packed
                          ? "packed"
                          : "spread",
                      rotation ? "on" : "off",
                      std::to_string(r.bins),
                      bench::num(100.0 * r.utilization, 1) + "%",
                      bench::num(r.mcycles)});
        }
    }
    t.print(std::cout);

    std::cout << "\npacked placement minimises subarrays (the "
                 "paper's packing objective); spreading trades "
                 "density for bank parallelism and is the "
                 "performance default.\n";
    return 0;
}
